//! Fig. 17: system-resource overhead of a restart on one machine.
//!
//! "The presence of two concurrent Proxygen instances contributes to the
//! costs in system resources (increased CPU and Memory usage, decreased
//! throughput) ... Although the tail resource usage can be high
//! (persisting for around 60-70 seconds), the median is below 5% for CPU
//! and RAM usage."

use std::fmt;

use zdr_core::telemetry::HistogramSnapshot;

use crate::cpu::{takeover_overhead_fraction, CpuModel};

/// Fixed-point scale for overhead fractions (~1e-3..0.5): parts per
/// million keeps them well inside the histogram's sub-bucket precision.
const FRACTION_SCALE: f64 = 1e6;

fn pct(values: impl IntoIterator<Item = f64>, p: f64) -> f64 {
    HistogramSnapshot::of_scaled(values, FRACTION_SCALE).percentile_scaled(p, FRACTION_SCALE)
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Machines sampled in the cluster.
    pub machines: usize,
    /// Drain duration, seconds.
    pub drain_s: u64,
    /// CPU model (spike magnitude/duration).
    pub cpu: CpuModel,
    /// Memory overhead of the parallel instance, fraction of RSS (median).
    pub mem_overhead_median: f64,
    /// Seed for per-machine jitter.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            machines: 200,
            drain_s: 20 * 60,
            cpu: CpuModel::default(),
            mem_overhead_median: 0.035,
            seed: 1717,
        }
    }
}

/// Per-machine overhead summary across the restart.
#[derive(Debug, Clone, Copy)]
pub struct MachineOverhead {
    /// Median CPU overhead over the drain window.
    pub cpu_median: f64,
    /// Peak CPU overhead (the takeover spike).
    pub cpu_peak: f64,
    /// Memory overhead.
    pub mem: f64,
    /// Throughput decrease at the spike (fraction).
    pub throughput_dip: f64,
    /// How long the spike lasted, seconds.
    pub spike_duration_s: u64,
}

/// Fig. 17's distribution across a cluster's machines.
#[derive(Debug, Clone)]
pub struct Report {
    /// Per-machine summaries.
    pub machines: Vec<MachineOverhead>,
}

impl Report {
    fn collect(&self, f: impl Fn(&MachineOverhead) -> f64) -> Vec<f64> {
        self.machines.iter().map(f).collect()
    }

    /// Median of a metric across machines.
    pub fn median(&self, f: impl Fn(&MachineOverhead) -> f64) -> f64 {
        pct(self.collect(f), 50.0)
    }

    /// p99 of a metric across machines.
    pub fn p99(&self, f: impl Fn(&MachineOverhead) -> f64) -> f64 {
        pct(self.collect(f), 99.0)
    }
}

fn jitter(seed: u64, i: u64, spread: f64) -> f64 {
    // Deterministic per-machine multiplier in [1-spread, 1+spread].
    let h = zdr_l4lb::hash::fnv1a_u64(seed.wrapping_mul(31).wrapping_add(i));
    let unit = (h % 10_000) as f64 / 10_000.0;
    1.0 - spread + 2.0 * spread * unit
}

/// Simulates the per-machine overhead of one takeover per machine.
pub fn run(cfg: &Config) -> Report {
    let mut machines = Vec::with_capacity(cfg.machines);
    for i in 0..cfg.machines as u64 {
        let j = jitter(cfg.seed, i, 0.3);
        // Walk the drain window; collect the overhead series.
        let mut series = Vec::with_capacity(cfg.drain_s as usize);
        for t in 0..cfg.drain_s {
            series.push(takeover_overhead_fraction(&cfg.cpu, t) * j);
        }
        let cpu_median = pct(series.iter().copied(), 50.0);
        let cpu_peak = pct(series.iter().copied(), 100.0);
        // Throughput dip correlates (inverse-proportionally, §6.3) with the
        // CPU spike.
        let throughput_dip = cpu_peak * 0.8;
        machines.push(MachineOverhead {
            cpu_median,
            cpu_peak,
            mem: cfg.mem_overhead_median * j,
            throughput_dip,
            spike_duration_s: (cfg.cpu.takeover_spike_ticks as f64 * j).round() as u64,
        });
    }
    Report { machines }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Fig. 17: Socket Takeover system overheads ==")?;
        writeln!(
            f,
            "  CPU overhead:        median {:.1}%  p99 {:.1}%  (peak spike median {:.1}%)",
            self.median(|m| m.cpu_median) * 100.0,
            self.p99(|m| m.cpu_median) * 100.0,
            self.median(|m| m.cpu_peak) * 100.0
        )?;
        writeln!(
            f,
            "  RAM overhead:        median {:.1}%  p99 {:.1}%",
            self.median(|m| m.mem) * 100.0,
            self.p99(|m| m.mem) * 100.0
        )?;
        writeln!(
            f,
            "  throughput dip:      median {:.1}%",
            self.median(|m| m.throughput_dip) * 100.0
        )?;
        writeln!(
            f,
            "  spike duration:      median {:.0}s",
            self.median(|m| m.spike_duration_s as f64)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_cpu_and_ram_below_five_percent() {
        let r = run(&Config::default());
        assert!(
            r.median(|m| m.cpu_median) < 0.05,
            "{}",
            r.median(|m| m.cpu_median)
        );
        assert!(r.median(|m| m.mem) < 0.05, "{}", r.median(|m| m.mem));
    }

    #[test]
    fn spike_lasts_about_a_minute() {
        let r = run(&Config::default());
        let d = r.median(|m| m.spike_duration_s as f64);
        assert!((50.0..85.0).contains(&d), "{d}");
    }

    #[test]
    fn peak_overhead_much_higher_than_median() {
        let r = run(&Config::default());
        assert!(r.median(|m| m.cpu_peak) > 3.0 * r.median(|m| m.cpu_median));
    }

    #[test]
    fn overhead_does_not_persist_for_whole_drain() {
        // The spike (~65 s) is a small part of the 20-minute drain, which
        // is why the median is low.
        let cfg = Config::default();
        assert!(cfg.cpu.takeover_spike_ticks < cfg.drain_s / 10);
    }

    #[test]
    fn deterministic() {
        let a = run(&Config::default());
        let b = run(&Config::default());
        assert_eq!(a.median(|m| m.cpu_peak), b.median(|m| m.cpu_peak));
    }

    #[test]
    fn report_prints() {
        let s = run(&Config {
            machines: 10,
            ..Config::default()
        })
        .to_string();
        assert!(s.contains("Fig. 17"));
    }
}

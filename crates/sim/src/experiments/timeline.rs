//! Fig. 13: system/performance timelines during a Zero Downtime release —
//! RPS, active MQTT connections, throughput and CPU for the restarted 20%
//! (GR) vs the other 80% (GNR).
//!
//! "Across RPS and number of MQTT conn., we observe virtually no change in
//! cluster-wide average over the restart period ... We do observe a small
//! increase in CPU utilization after T=2, attributed to the system
//! overheads of Socket Takeover."

use std::fmt;

use zdr_core::mechanism::RestartStrategy;
use zdr_core::metrics::TimeSeries;
use zdr_core::tier::Tier;

use crate::cluster::{ClusterConfig, ClusterSim};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Machines in the cluster.
    pub machines: usize,
    /// Batch fraction restarted at T=0 (paper: 20%).
    pub batch_fraction: f64,
    /// Warm-up ticks before the restart.
    pub warmup_ticks: u64,
    /// Observation ticks after the restart.
    pub window_ticks: u64,
    /// Drain period, ms.
    pub drain_ms: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            machines: 50,
            batch_fraction: 0.2,
            warmup_ticks: 30,
            window_ticks: 180,
            drain_ms: 60_000,
            seed: 1313,
        }
    }
}

/// Fig. 13's four per-group timelines (normalized by pre-restart values).
#[derive(Debug, Clone)]
pub struct Report {
    /// Per-machine RPS, restarted group.
    pub gr_rps: TimeSeries,
    /// Per-machine RPS, non-restarted group.
    pub gnr_rps: TimeSeries,
    /// MQTT connections per machine, restarted group.
    pub gr_mqtt: TimeSeries,
    /// MQTT connections per machine, non-restarted group.
    pub gnr_mqtt: TimeSeries,
    /// Throughput per machine, restarted group.
    pub gr_throughput: TimeSeries,
    /// Throughput per machine, non-restarted group.
    pub gnr_throughput: TimeSeries,
    /// CPU utilization, restarted group.
    pub gr_cpu: TimeSeries,
    /// CPU utilization, non-restarted group.
    pub gnr_cpu: TimeSeries,
    /// Tick index at which the restart began.
    pub restart_tick: u64,
}

/// Runs the Fig. 13 timeline.
pub fn run(cfg: &Config) -> Report {
    let strategy = RestartStrategy::zero_downtime_for(Tier::EdgeProxygen);
    let mut ccfg = ClusterConfig::edge(cfg.machines, strategy, cfg.seed);
    ccfg.drain_ms = cfg.drain_ms;
    ccfg.workload.short_rps = 300.0;
    ccfg.workload.mqtt_tunnels_per_machine = 2_000;
    let mut sim = ClusterSim::new(ccfg);

    // Mark the GR group up front so group series are meaningful from t=0.
    let n = (cfg.machines as f64 * cfg.batch_fraction).round() as usize;
    let indices: Vec<usize> = (0..n).collect();
    sim.set_restart_group(&indices);

    sim.run_ticks(cfg.warmup_ticks);
    sim.begin_restart(&indices);
    sim.run_ticks(cfg.window_ticks);

    // Normalize by the mean of the pre-restart (warm-up) window — "the
    // metrics are normalized by the value just before the release".
    let norm = |name: &str| {
        let s = sim.series(name).expect("series recorded");
        let warm = cfg.warmup_ticks as usize;
        let base = s.points[..warm.min(s.points.len())]
            .iter()
            .map(|&(_, v)| v)
            .sum::<f64>()
            / warm.max(1) as f64;
        if base == 0.0 {
            return s.clone();
        }
        zdr_core::metrics::TimeSeries {
            points: s.points.iter().map(|&(t, v)| (t, v / base)).collect(),
        }
    };
    Report {
        gr_rps: norm("gr_rps"),
        gnr_rps: norm("gnr_rps"),
        gr_mqtt: norm("gr_mqtt"),
        gnr_mqtt: norm("gnr_mqtt"),
        gr_throughput: norm("gr_throughput"),
        gnr_throughput: norm("gnr_throughput"),
        gr_cpu: sim.series("gr_cpu").expect("recorded").clone(),
        gnr_cpu: sim.series("gnr_cpu").expect("recorded").clone(),
        restart_tick: cfg.warmup_ticks,
    }
}

fn post_restart_stats(s: &TimeSeries, restart_tick: u64) -> (f64, f64) {
    let pts: Vec<f64> = s
        .points
        .iter()
        .skip(restart_tick as usize)
        .map(|&(_, v)| v)
        .collect();
    let mean = pts.iter().sum::<f64>() / pts.len().max(1) as f64;
    let max = pts.iter().cloned().fold(0.0, f64::max);
    (mean, max)
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Fig. 13: release timeline, GR (restarted) vs GNR ==")?;
        for (name, s) in [
            ("RPS (GR, norm)", &self.gr_rps),
            ("RPS (GNR, norm)", &self.gnr_rps),
            ("MQTT (GR, norm)", &self.gr_mqtt),
            ("MQTT (GNR, norm)", &self.gnr_mqtt),
            ("throughput (GR, norm)", &self.gr_throughput),
            ("throughput (GNR, norm)", &self.gnr_throughput),
            ("CPU (GR)", &self.gr_cpu),
            ("CPU (GNR)", &self.gnr_cpu),
        ] {
            let (mean, max) = post_restart_stats(s, self.restart_tick);
            writeln!(f, "  {name:<24} post-restart mean {mean:.3}, max {max:.3}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Config {
        Config {
            machines: 20,
            warmup_ticks: 15,
            window_ticks: 80,
            drain_ms: 30_000,
            ..Config::default()
        }
    }

    #[test]
    fn rps_virtually_unchanged_for_both_groups() {
        let r = run(&fast());
        for s in [&r.gr_rps, &r.gnr_rps] {
            let (mean, _) = post_restart_stats(s, r.restart_tick);
            assert!((0.8..1.2).contains(&mean), "mean {mean}");
        }
    }

    #[test]
    fn gnr_mqtt_absorbs_gr_tunnels() {
        // DCR moves the GR group's tunnels to GNR machines: GR's MQTT count
        // collapses, GNR's rises ~proportionally — cluster-wide total flat.
        let r = run(&fast());
        let (gr_mean, _) = post_restart_stats(&r.gr_mqtt, r.restart_tick + 5);
        let (gnr_mean, _) = post_restart_stats(&r.gnr_mqtt, r.restart_tick + 5);
        assert!(gr_mean < 0.2, "gr tunnels re-homed away: {gr_mean}");
        assert!(gnr_mean > 1.1, "gnr absorbed them: {gnr_mean}");
    }

    #[test]
    fn cpu_bump_confined_to_gr() {
        let r = run(&fast());
        let (_, gr_max) = post_restart_stats(&r.gr_cpu, r.restart_tick);
        let (_, gnr_max) = post_restart_stats(&r.gnr_cpu, r.restart_tick);
        assert!(
            gr_max > gnr_max,
            "takeover overhead lives on GR: {gr_max} vs {gnr_max}"
        );
    }

    #[test]
    fn throughput_recovers() {
        let r = run(&fast());
        let last = r.gr_throughput.points.last().unwrap().1;
        assert!(
            (0.7..1.4).contains(&last),
            "final normalized throughput {last}"
        );
    }

    #[test]
    fn report_prints() {
        let s = run(&fast()).to_string();
        assert!(s.contains("Fig. 13"));
        assert!(s.contains("GNR"));
    }
}

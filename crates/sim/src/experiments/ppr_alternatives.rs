//! Ablation: the §4.3 design space for handling restart-interrupted POSTs.
//!
//! The paper weighs four reactions when an app server restarts mid-upload:
//!
//! 1. **Fail with 500** — the error propagates to the user.
//! 2. **307 Temporary Redirect** — the client re-uploads from scratch
//!    "over high-RTT WAN" (performance overhead).
//! 3. **Buffer at the Origin** — the proxy holds *every* POST until
//!    completion so it can retry locally; "the massive overhead of
//!    buffering every POST request ... makes this option impractical".
//! 4. **Partial Post Replay** — the restarting server hands back only the
//!    interrupted requests' partial data; replay bandwidth is spent only
//!    during releases, over intra-datacenter links.
//!
//! This experiment prices all four against the same sampled workload.

use std::fmt;

use crate::workload::WorkloadSampler;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// POST starts per second across the restarted servers.
    pub post_rps: f64,
    /// Median POST size, bytes (log-normal).
    pub post_median_bytes: f64,
    /// Size-distribution σ.
    pub post_sigma: f64,
    /// Median POST duration, ms.
    pub post_median_ms: f64,
    /// Duration σ.
    pub duration_sigma: f64,
    /// Drain period, ms.
    pub drain_ms: u64,
    /// Client↔edge WAN round-trip, ms (the 307 retry penalty).
    pub wan_rtt_ms: f64,
    /// Restarts observed.
    pub restarts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            post_rps: 50.0,
            post_median_bytes: 256.0 * 1024.0,
            post_sigma: 1.5,
            post_median_ms: 20_000.0,
            duration_sigma: 1.2,
            drain_ms: 12_000,
            wan_rtt_ms: 120.0,
            restarts: 20,
            seed: 31337,
        }
    }
}

/// Cost sheet for one option, summed over the observed restarts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OptionCost {
    /// Errors shown to users.
    pub user_errors: u64,
    /// Client bytes re-uploaded over the WAN.
    pub wan_retry_bytes: u64,
    /// Extra client-visible latency from WAN retries, ms.
    pub wan_retry_latency_ms: f64,
    /// Steady-state proxy memory dedicated to POST buffering, bytes
    /// (paid continuously, not just during releases).
    pub steady_buffer_bytes: u64,
    /// Intra-datacenter bytes moved to replay partial requests (paid only
    /// during releases).
    pub dc_replay_bytes: u64,
}

/// The §4.3 comparison.
#[derive(Debug, Clone)]
pub struct Report {
    /// Option (i): fail with 500.
    pub fail_500: OptionCost,
    /// Option (ii): 307 redirect, client re-uploads.
    pub redirect_307: OptionCost,
    /// Option (iii): buffer everything at the Origin.
    pub origin_buffering: OptionCost,
    /// Option (iv): Partial Post Replay.
    pub ppr: OptionCost,
    /// Interrupted POSTs across the observed restarts.
    pub interrupted: u64,
}

/// Prices the four options over the same sampled restarts.
pub fn run(cfg: &Config) -> Report {
    let mut sampler = WorkloadSampler::new(crate::workload::WorkloadConfig::default(), cfg.seed);

    let mut interrupted_total = 0u64;
    let mut partial_bytes_total = 0u64;
    let mut full_bytes_total = 0u64;

    for _ in 0..cfg.restarts {
        // POSTs in flight at the restart instant: arrivals over the
        // duration lookback still running.
        let lookback_ms = cfg.post_median_ms * (cfg.duration_sigma * 4.0).exp();
        let candidates = sampler.poisson(cfg.post_rps * lookback_ms / 1000.0);
        for _ in 0..candidates {
            let age = sampler.uniform(0.0, lookback_ms);
            let duration = sampler.lognormal(cfg.post_median_ms, cfg.duration_sigma) as f64;
            if duration > age && duration - age > cfg.drain_ms as f64 {
                let size = sampler.lognormal(cfg.post_median_bytes, cfg.post_sigma);
                let progress = (age / duration).clamp(0.0, 1.0);
                interrupted_total += 1;
                partial_bytes_total += (size as f64 * progress) as u64;
                full_bytes_total += size;
            }
        }
    }

    // Steady-state buffering for option (iii): mean POSTs in flight ×
    // mean size, held at the proxy at all times.
    let mean_duration_s =
        cfg.post_median_ms / 1000.0 * (cfg.duration_sigma * cfg.duration_sigma / 2.0).exp();
    let mean_size = cfg.post_median_bytes * (cfg.post_sigma * cfg.post_sigma / 2.0).exp();
    let steady_buffer = (cfg.post_rps * mean_duration_s * mean_size) as u64;

    let fail_500 = OptionCost {
        user_errors: interrupted_total,
        ..Default::default()
    };
    let redirect_307 = OptionCost {
        // Partial upload wasted; client re-sends the whole body over WAN.
        wan_retry_bytes: full_bytes_total,
        wan_retry_latency_ms: interrupted_total as f64 * (cfg.wan_rtt_ms * 2.0),
        ..Default::default()
    };
    let origin_buffering = OptionCost {
        steady_buffer_bytes: steady_buffer,
        ..Default::default()
    };
    let ppr = OptionCost {
        dc_replay_bytes: partial_bytes_total,
        ..Default::default()
    };

    Report {
        fail_500,
        redirect_307,
        origin_buffering,
        ppr,
        interrupted: interrupted_total,
    }
}

fn mib(b: u64) -> f64 {
    b as f64 / (1024.0 * 1024.0)
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Ablation: §4.3 alternatives for interrupted POSTs ==")?;
        writeln!(f, "  interrupted POSTs across window: {}", self.interrupted)?;
        writeln!(
            f,
            "  {:<18} {:>11} {:>14} {:>16} {:>15}",
            "option", "user errors", "WAN retry MiB", "steady buf MiB", "DC replay MiB"
        )?;
        for (name, c) in [
            ("(i) 500", &self.fail_500),
            ("(ii) 307 redirect", &self.redirect_307),
            ("(iii) buffer@origin", &self.origin_buffering),
            ("(iv) PPR", &self.ppr),
        ] {
            writeln!(
                f,
                "  {:<18} {:>11} {:>14.1} {:>16.1} {:>15.1}",
                name,
                c.user_errors,
                mib(c.wan_retry_bytes),
                mib(c.steady_buffer_bytes),
                mib(c.dc_replay_bytes)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_500_shows_user_errors() {
        let r = run(&Config::default());
        assert!(r.interrupted > 0);
        assert_eq!(r.fail_500.user_errors, r.interrupted);
        assert_eq!(r.redirect_307.user_errors, 0);
        assert_eq!(r.origin_buffering.user_errors, 0);
        assert_eq!(r.ppr.user_errors, 0);
    }

    #[test]
    fn redirect_wastes_more_wan_bytes_than_ppr_moves_in_dc() {
        // 307 re-uploads whole bodies over the WAN; PPR moves only the
        // received partials over datacenter links.
        let r = run(&Config::default());
        assert!(r.redirect_307.wan_retry_bytes > r.ppr.dc_replay_bytes);
        assert_eq!(r.ppr.wan_retry_bytes, 0);
    }

    #[test]
    fn buffering_pays_continuously_ppr_only_on_release() {
        // The paper's "impractical" point: option (iii)'s buffer is a
        // permanent memory tax orders beyond PPR's per-release traffic
        // when amortized — here just check it's large and constant.
        let r = run(&Config::default());
        assert!(r.origin_buffering.steady_buffer_bytes > 100 * 1024 * 1024);
        assert_eq!(r.fail_500.steady_buffer_bytes, 0);
        assert_eq!(r.ppr.steady_buffer_bytes, 0);
    }

    #[test]
    fn redirect_adds_wan_latency() {
        let r = run(&Config::default());
        assert!(r.redirect_307.wan_retry_latency_ms > 0.0);
        assert_eq!(r.ppr.wan_retry_latency_ms, 0.0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(&Config::default()).ppr, run(&Config::default()).ppr);
    }

    #[test]
    fn report_prints() {
        let s = run(&Config::default()).to_string();
        for needle in ["(i) 500", "(ii) 307", "(iii) buffer", "(iv) PPR"] {
            assert!(s.contains(needle), "{s}");
        }
    }
}

//! Figs. 2d & 10: UDP packets misrouted during a socket handover.
//!
//! Fig. 2d motivates Socket Takeover: with plain `SO_REUSEPORT` rebinding,
//! the kernel's socket ring is in flux and `hash % len` reshuffles nearly
//! every flow. Fig. 10 evaluates the full mechanism: FD passing keeps the
//! ring fixed, and connection-ID user-space routing sends the residual
//! old-process packets back to the draining process — "100X less packets
//! mis-routed for the worst case".

use std::fmt;

use zdr_net::reuseport::{simulate_handover, HandoverReport, HandoverStrategy};
use zdr_net::udp_router::{Classifier, RouteDecision};
use zdr_proto::quic::{ConnectionId, Datagram};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Active UDP flows on the instance.
    pub flows: u64,
    /// `SO_REUSEPORT` sockets per process.
    pub sockets_per_process: usize,
    /// Fraction of flows belonging to the old (draining) generation at
    /// handover time.
    pub old_generation_fraction: f64,
    /// Packets sent per flow during the observation window (Fig. 10's
    /// per-instance timeline).
    pub packets_per_flow: u32,
    /// RNG seed for flow-hash generation.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            flows: 50_000,
            sockets_per_process: 8,
            old_generation_fraction: 0.6,
            packets_per_flow: 4,
            seed: 7,
        }
    }
}

/// Results for the three strategies.
#[derive(Debug, Clone)]
pub struct Report {
    /// Plain rebinding (Fig. 2d's motivation case).
    pub rebind: HandoverReport,
    /// FD passing but **no** connection-ID routing (Fig. 10's
    /// "traditional" line: sockets migrate, old-process packets land on
    /// the new process and are lost).
    pub fd_passing_no_connid: MisrouteCount,
    /// Full Socket Takeover with user-space routing (Fig. 10's ZDR line).
    pub full_takeover: MisrouteCount,
}

/// Simple misroute tally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MisrouteCount {
    /// Packets that reached a process without flow state.
    pub misrouted: u64,
    /// Total packets observed.
    pub total: u64,
}

impl MisrouteCount {
    /// Misrouted fraction.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.misrouted as f64 / self.total as f64
        }
    }
}

fn splitmix(seed: &mut u64) -> u64 {
    // splitmix64 — deterministic flow-hash generator.
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs all three strategies over the same flow population.
pub fn run(cfg: &Config) -> Report {
    let mut seed = cfg.seed;
    let flow_hashes: Vec<u64> = (0..cfg.flows).map(|_| splitmix(&mut seed)).collect();

    // Fig. 2d: ring-flux rebinding.
    let rebind = simulate_handover(
        &flow_hashes,
        cfg.sockets_per_process,
        HandoverStrategy::Rebind,
    );

    // Fig. 10: after FD passing all packets land on the new process (ring
    // unchanged ⇒ kernel delivery is "right socket", but the *process*
    // behind it changed). Old-generation flows need user-space routing;
    // without it, each of their packets is a misroute.
    let old_flows = (cfg.flows as f64 * cfg.old_generation_fraction).round() as u64;
    let new_gen = 5u32;
    let old_gen = 4u32;
    let classifier = Classifier::new(new_gen);

    let mut without = MisrouteCount {
        misrouted: 0,
        total: 0,
    };
    let mut with = MisrouteCount {
        misrouted: 0,
        total: 0,
    };
    for (i, _) in flow_hashes.iter().enumerate() {
        let generation = if (i as u64) < old_flows {
            old_gen
        } else {
            new_gen
        };
        let cid = ConnectionId::new(generation, i as u64);
        for pn in 0..cfg.packets_per_flow {
            let wire =
                zdr_proto::quic::encode(&Datagram::one_rtt(cid, u64::from(pn) + 1, &b"d"[..]))
                    .expect("datagram encodes");
            without.total += 1;
            with.total += 1;
            match classifier.classify(&wire) {
                RouteDecision::Local => {
                    // New-generation flow: state lives in the new process.
                    if generation != new_gen {
                        without.misrouted += 1;
                        with.misrouted += 1;
                    }
                }
                RouteDecision::ForwardToOld => {
                    // Without conn-ID routing this packet is lost at the
                    // new process; with it, it reaches the old process.
                    without.misrouted += 1;
                }
                RouteDecision::Drop(_) => {
                    without.misrouted += 1;
                    with.misrouted += 1;
                }
            }
        }
    }

    Report {
        rebind,
        fd_passing_no_connid: without,
        full_takeover: with,
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Fig. 2d: misrouted UDP packets during SO_REUSEPORT rebind =="
        )?;
        writeln!(
            f,
            "  rebind flux: {} / {} packets misrouted ({:.1}%) over {} ring mutations",
            self.rebind.misrouted,
            self.rebind.total,
            self.rebind.misroute_rate() * 100.0,
            self.rebind.per_step.len()
        )?;
        writeln!(f, "== Fig. 10: misrouting under Socket Takeover ==")?;
        writeln!(
            f,
            "  traditional (no conn-id routing): {} / {} ({:.2}%)",
            self.fd_passing_no_connid.misrouted,
            self.fd_passing_no_connid.total,
            self.fd_passing_no_connid.rate() * 100.0
        )?;
        writeln!(
            f,
            "  zero-downtime (conn-id routing):  {} / {} ({:.4}%)",
            self.full_takeover.misrouted,
            self.full_takeover.total,
            self.full_takeover.rate() * 100.0
        )?;
        let factor =
            self.fd_passing_no_connid.misrouted as f64 / self.full_takeover.misrouted.max(1) as f64;
        writeln!(f, "  improvement factor: {factor:.0}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebind_misroutes_most_packets() {
        let r = run(&Config {
            flows: 5_000,
            ..Config::default()
        });
        assert!(
            r.rebind.misroute_rate() > 0.5,
            "{}",
            r.rebind.misroute_rate()
        );
    }

    #[test]
    fn conn_id_routing_eliminates_misrouting() {
        // §4.1: "this mechanism effectively eliminated all the cases of
        // mis-routing of UDP packets".
        let r = run(&Config {
            flows: 5_000,
            ..Config::default()
        });
        assert_eq!(r.full_takeover.misrouted, 0);
        // Without it, every old-generation packet is lost.
        let expected = (5_000f64 * 0.6).round() as u64 * 4;
        assert_eq!(r.fd_passing_no_connid.misrouted, expected);
    }

    #[test]
    fn improvement_is_orders_of_magnitude() {
        let r = run(&Config {
            flows: 20_000,
            ..Config::default()
        });
        let factor =
            r.fd_passing_no_connid.misrouted as f64 / r.full_takeover.misrouted.max(1) as f64;
        assert!(factor >= 100.0, "factor {factor}"); // the paper's "100X"
    }

    #[test]
    fn deterministic() {
        let a = run(&Config::default());
        let b = run(&Config::default());
        assert_eq!(a.rebind, b.rebind);
        assert_eq!(a.fd_passing_no_connid, b.fd_passing_no_connid);
    }

    #[test]
    fn report_prints() {
        let s = run(&Config {
            flows: 100,
            ..Config::default()
        })
        .to_string();
        assert!(s.contains("Fig. 2d") && s.contains("Fig. 10"));
    }

    #[test]
    fn zero_flows_edge_case() {
        let r = run(&Config {
            flows: 0,
            ..Config::default()
        });
        assert_eq!(r.full_takeover.total, 0);
        assert_eq!(r.full_takeover.rate(), 0.0);
    }
}

//! Restart-storm ablation: the upstream-resilience layer under a mass
//! restart.
//!
//! Half the upstream fleet restarts at once — the worst release wave §3
//! contemplates — and the proxy tier's resilience primitives
//! ([`zdr_core::resilience`]) must turn that into a brief goodput dip
//! instead of a retry storm:
//!
//! * retries are funded by the shared budget, so total retry volume stays
//!   ≤ reserve + 10% of successes (the ≤1.1× amplification bound);
//! * no request is ever served past its propagated deadline;
//! * once an upstream's breaker opens, the only traffic it sees is
//!   half-open probes — the fleet stops paying connect timeouts to it.
//!
//! Virtual time, deterministic seed: the same storm replays bit-for-bit.

use std::fmt;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use zdr_core::resilience::{
    Admit, BreakerConfig, BreakerTransition, CircuitBreaker, RetryBudget, RetryBudgetConfig,
};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Upstream servers behind the proxy tier.
    pub upstreams: usize,
    /// Fraction of upstreams that restart simultaneously.
    pub restart_fraction: f64,
    /// When the storm begins (virtual ms).
    pub restart_at_ms: u64,
    /// How long each restarting upstream stays down.
    pub restart_duration_ms: u64,
    /// Total observation window (virtual ms).
    pub window_ms: u64,
    /// New requests arriving per virtual ms.
    pub requests_per_ms: u64,
    /// Deadline budget stamped on every request.
    pub deadline_budget_ms: u64,
    /// Virtual cost of a connect attempt to a dead upstream (the connect
    /// timeout the breaker saves once open).
    pub connect_timeout_ms: u64,
    /// Virtual cost of a served request.
    pub serve_ms: u64,
    /// Per-upstream circuit-breaker tunables.
    pub breaker: BreakerConfig,
    /// Shared retry-budget tunables.
    pub budget: RetryBudgetConfig,
    /// Storm seed (upstream choice per request).
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            upstreams: 10,
            restart_fraction: 0.5,
            restart_at_ms: 2_000,
            restart_duration_ms: 5_000,
            // Long enough that even the worst-case jittered open-window
            // sequence (1.5s + 3s + 6s + 12s after the first open) probes
            // a recovered upstream and re-closes before the window ends.
            window_ms: 20_000,
            requests_per_ms: 4,
            deadline_budget_ms: 1_000,
            connect_timeout_ms: 100,
            serve_ms: 5,
            breaker: BreakerConfig::default(),
            budget: RetryBudgetConfig::default(),
            seed: 42,
        }
    }
}

/// Outcome of one simulated storm.
#[derive(Debug, Clone)]
pub struct Report {
    /// Requests that completed within their deadline.
    pub successes: u64,
    /// Requests that failed (budget exhausted, deadline hit, or no
    /// admitted upstream).
    pub failures: u64,
    /// Funded retry attempts (second and later attempts).
    pub retries: u64,
    /// Retries refused because the budget was empty.
    pub budget_exhausted: u64,
    /// Requests abandoned at their deadline.
    pub deadline_exceeded: u64,
    /// Half-open probe attempts granted to open breakers.
    pub probes: u64,
    /// Breaker open transitions observed.
    pub breaker_opens: u64,
    /// Breaker close transitions observed.
    pub breaker_closes: u64,
    /// Requests served after their deadline passed — must be zero.
    pub served_past_deadline: u64,
    /// Non-probe attempts that reached a restarting upstream after its
    /// breaker had opened — must be zero.
    pub non_probe_hits_after_open: u64,
    /// Successes per 1-second bucket (the goodput timeline).
    pub goodput: Vec<u64>,
    /// Requests per 1-second bucket (the offered load).
    pub offered: Vec<u64>,
}

impl Report {
    /// retries / successes — the amplification the budget bounds.
    pub fn retry_ratio(&self) -> f64 {
        self.retries as f64 / self.successes.max(1) as f64
    }

    /// Worst per-second goodput over offered load.
    pub fn min_goodput_ratio(&self) -> f64 {
        self.goodput
            .iter()
            .zip(&self.offered)
            .map(|(&g, &o)| g as f64 / o.max(1) as f64)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Runs the storm.
pub fn run(cfg: &Config) -> Report {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let breakers: Vec<CircuitBreaker> = (0..cfg.upstreams)
        .map(|i| {
            CircuitBreaker::new(BreakerConfig {
                jitter_seed: cfg.seed.wrapping_add(i as u64),
                ..cfg.breaker
            })
        })
        .collect();
    let budget = RetryBudget::new(cfg.budget);
    let restarting_count = (cfg.upstreams as f64 * cfg.restart_fraction).round() as usize;
    let restart_end = cfg.restart_at_ms + cfg.restart_duration_ms;
    let is_down = |upstream: usize, now: u64| {
        upstream < restarting_count && (cfg.restart_at_ms..restart_end).contains(&now)
    };

    let buckets = cfg.window_ms.div_ceil(1_000) as usize;
    let mut report = Report {
        successes: 0,
        failures: 0,
        retries: 0,
        budget_exhausted: 0,
        deadline_exceeded: 0,
        probes: 0,
        breaker_opens: 0,
        breaker_closes: 0,
        served_past_deadline: 0,
        non_probe_hits_after_open: 0,
        goodput: vec![0; buckets],
        offered: vec![0; buckets],
    };
    let mut opened_once = vec![false; cfg.upstreams];

    for t in 0..cfg.window_ms {
        let bucket = (t / 1_000) as usize;
        for _ in 0..cfg.requests_per_ms {
            report.offered[bucket] += 1;
            let deadline = t + cfg.deadline_budget_ms;
            let mut now = t;
            let mut attempts = 0u32;
            let start = rng.gen_range(0..cfg.upstreams);
            let mut served = false;
            for step in 0..cfg.upstreams {
                let upstream = (start + step) % cfg.upstreams;
                if now >= deadline {
                    report.deadline_exceeded += 1;
                    break;
                }
                let admit = breakers[upstream].admit(now);
                let probe = match admit {
                    Admit::No => continue, // breaker skip: free
                    Admit::Probe => true,
                    Admit::Yes => false,
                };
                // Every attempt after the first is a retry the shared
                // budget must fund.
                if attempts > 0 && !budget.try_withdraw() {
                    report.budget_exhausted += 1;
                    break;
                }
                attempts += 1;
                if attempts > 1 {
                    report.retries += 1;
                }
                if probe {
                    report.probes += 1;
                }
                if is_down(upstream, now) {
                    if opened_once[upstream] && !probe {
                        report.non_probe_hits_after_open += 1;
                    }
                    // The attempt times out, but never past the deadline:
                    // the propagated deadline caps the connect timeout.
                    now = deadline.min(now + cfg.connect_timeout_ms);
                    if let Some(BreakerTransition::Opened) = breakers[upstream].record_failure(now)
                    {
                        report.breaker_opens += 1;
                        opened_once[upstream] = true;
                    }
                } else {
                    now += cfg.serve_ms;
                    if now > deadline {
                        // Out of budget mid-service: the hop abandons the
                        // request instead of serving it late. Serving here
                        // would count as served_past_deadline.
                        report.deadline_exceeded += 1;
                        break;
                    }
                    if let Some(BreakerTransition::Closed) = breakers[upstream].record_success(now)
                    {
                        report.breaker_closes += 1;
                    }
                    budget.record_success();
                    report.successes += 1;
                    report.goodput[bucket] += 1;
                    served = true;
                    break;
                }
            }
            if !served {
                report.failures += 1;
            }
        }
    }
    report
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== restart storm: resilience layer under 50% upstream restart =="
        )?;
        writeln!(
            f,
            "  served {} / failed {} (deadline {}, budget-refused {})",
            self.successes, self.failures, self.deadline_exceeded, self.budget_exhausted
        )?;
        writeln!(
            f,
            "  retries {} ({:.3}x of successes); probes {}; breaker opens {} / closes {}",
            self.retries,
            self.retry_ratio(),
            self.probes,
            self.breaker_opens,
            self.breaker_closes
        )?;
        writeln!(
            f,
            "  served past deadline: {}; non-probe hits on open upstreams: {}",
            self.served_past_deadline, self.non_probe_hits_after_open
        )?;
        write!(f, "  goodput/s:")?;
        for (g, o) in self.goodput.iter().zip(&self.offered) {
            write!(f, " {:.0}%", *g as f64 / (*o).max(1) as f64 * 100.0)?;
        }
        writeln!(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_volume_stays_ratio_bounded() {
        let cfg = Config::default();
        let r = run(&cfg);
        assert!(r.successes > 0);
        // Reserve + 10% of successes is the hard bound the budget enforces;
        // the acceptance bar (≤ 1.1× successes) is far above it.
        let bound = cfg.budget.reserve_tokens as f64 + 0.1 * r.successes as f64;
        assert!(
            (r.retries as f64) <= bound,
            "retries {} exceed budget bound {bound}",
            r.retries
        );
        assert!(r.retry_ratio() <= 1.1);
    }

    #[test]
    fn nothing_is_served_past_its_deadline() {
        let r = run(&Config::default());
        assert_eq!(r.served_past_deadline, 0);
    }

    #[test]
    fn open_upstreams_see_only_probes() {
        let r = run(&Config::default());
        assert!(r.breaker_opens >= 5, "half the fleet must trip: {r:?}");
        assert_eq!(r.non_probe_hits_after_open, 0);
    }

    #[test]
    fn goodput_dips_gracefully_and_recovers() {
        let r = run(&Config::default());
        // Before the storm: full goodput.
        assert_eq!(r.goodput[0], r.offered[0]);
        // During the storm the dip is bounded: breakers open within a few
        // hundred attempts and the fleet routes around the dead half.
        assert!(
            r.min_goodput_ratio() > 0.4,
            "goodput collapsed: {:.2}",
            r.min_goodput_ratio()
        );
        // After the restart window the breakers re-close and the last
        // second is clean again.
        assert!(r.breaker_closes >= 1, "recovered upstreams must re-close");
        let last = r.goodput.len() - 1;
        assert_eq!(r.goodput[last], r.offered[last]);
    }

    #[test]
    fn same_seed_replays_identically() {
        let a = run(&Config::default());
        let b = run(&Config::default());
        assert_eq!(a.successes, b.successes);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.goodput, b.goodput);
    }

    #[test]
    fn report_prints() {
        let s = run(&Config::default()).to_string();
        assert!(s.contains("restart storm"));
    }
}

//! Fig. 3a: cluster capacity during a rolling update.
//!
//! "During the update, the cluster is persistently at less than 85%
//! capacity which corresponds to the rolling update batches which are
//! either 15% or 20% of the total number of machines" — with visible
//! blips back toward 100% in the gaps between batches.

use std::fmt;

use zdr_core::mechanism::RestartStrategy;
use zdr_core::metrics::TimeSeries;
use zdr_core::tier::Tier;

use crate::cluster::{ClusterConfig, ClusterSim};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Cluster size.
    pub machines: usize,
    /// Batch fraction (paper: 0.15 or 0.20).
    pub batch_fraction: f64,
    /// Drain period, ms.
    pub drain_ms: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            machines: 100,
            batch_fraction: 0.20,
            drain_ms: 120_000,
            seed: 31,
        }
    }
}

/// The Fig. 3a data for one strategy.
#[derive(Debug, Clone)]
pub struct StrategyRun {
    /// Capacity over time, normalized 0–1.
    pub capacity: TimeSeries,
    /// Minimum capacity seen.
    pub min_capacity: f64,
    /// Completion time, ms.
    pub completion_ms: u64,
}

/// Both strategies over the same workload/seed.
#[derive(Debug, Clone)]
pub struct Report {
    /// The parameters used.
    pub batch_fraction: f64,
    /// Traditional rolling update.
    pub hard: StrategyRun,
    /// Zero Downtime Release.
    pub zdr: StrategyRun,
}

fn run_one(cfg: &Config, strategy: RestartStrategy) -> StrategyRun {
    let mut ccfg = ClusterConfig::edge(cfg.machines, strategy, cfg.seed);
    ccfg.drain_ms = cfg.drain_ms;
    // Trim workload for speed: capacity only depends on lifecycle state.
    ccfg.workload.short_rps = 50.0;
    ccfg.workload.mqtt_tunnels_per_machine = 100;
    ccfg.workload.quic_fps = 2.0;
    let mut sim = ClusterSim::new(ccfg);
    sim.run_ticks(10);
    let completion_ms = sim.run_rolling_release(cfg.batch_fraction);
    let capacity = sim.series("capacity").expect("recorded").clone();
    let min_capacity = capacity.min().unwrap_or(0.0);
    StrategyRun {
        capacity,
        min_capacity,
        completion_ms,
    }
}

/// Runs Fig. 3a for HardRestart and ZDR.
pub fn run(cfg: &Config) -> Report {
    Report {
        batch_fraction: cfg.batch_fraction,
        hard: run_one(cfg, RestartStrategy::HardRestart),
        zdr: run_one(cfg, RestartStrategy::zero_downtime_for(Tier::EdgeProxygen)),
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Fig. 3a: cluster capacity during rolling update (batch {:.0}%) ==",
            self.batch_fraction * 100.0
        )?;
        writeln!(
            f,
            "  HardRestart: min capacity {:.1}%, completion {:.1} min",
            self.hard.min_capacity * 100.0,
            self.hard.completion_ms as f64 / 60_000.0
        )?;
        writeln!(
            f,
            "  ZeroDowntime: min capacity {:.1}%, completion {:.1} min",
            self.zdr.min_capacity * 100.0,
            self.zdr.completion_ms as f64 / 60_000.0
        )?;
        // A coarse capacity timeline (every ~10% of the run).
        writeln!(f, "  HardRestart capacity timeline:")?;
        let pts = &self.hard.capacity.points;
        let stride = (pts.len() / 12).max(1);
        for (t, v) in pts.iter().step_by(stride) {
            writeln!(
                f,
                "    t={:>6.1}min capacity={:.2}",
                *t as f64 / 60_000.0,
                v
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> Config {
        Config {
            machines: 20,
            batch_fraction: 0.20,
            drain_ms: 20_000,
            seed: 5,
        }
    }

    #[test]
    fn hard_restart_dips_to_batch_complement() {
        let r = run(&fast_cfg());
        // 20% batches → capacity floor at 80%.
        assert!(
            (r.hard.min_capacity - 0.80).abs() < 0.02,
            "{}",
            r.hard.min_capacity
        );
    }

    #[test]
    fn zdr_keeps_capacity_above_95() {
        let r = run(&fast_cfg());
        assert!(r.zdr.min_capacity > 0.95, "{}", r.zdr.min_capacity);
    }

    #[test]
    fn fifteen_percent_batches_match_paper_claim() {
        let r = run(&Config {
            batch_fraction: 0.15,
            ..fast_cfg()
        });
        // "persistently at less than 85% capacity".
        assert!(r.hard.min_capacity < 0.86, "{}", r.hard.min_capacity);
        assert!(r.hard.min_capacity > 0.80);
    }

    #[test]
    fn zdr_finishes_no_slower() {
        let r = run(&fast_cfg());
        assert!(r.zdr.completion_ms <= r.hard.completion_ms);
    }

    #[test]
    fn report_prints() {
        let s = run(&fast_cfg()).to_string();
        assert!(s.contains("Fig. 3a"));
        assert!(s.contains("timeline"));
    }
}

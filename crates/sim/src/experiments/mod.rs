//! One driver per paper figure.
//!
//! Each module exposes a `Config` (seeded), a `run(config) -> Report`, and
//! a `Display` on the report that prints the figure's rows/series. The
//! `zdr-bench` binaries are thin wrappers over these.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`releases`] | Figs. 2a–2c — release frequency, root causes, commits |
//! | [`headline`] | §1 — the three headline claims, ours vs baseline |
//! | [`misroute`] | Figs. 2d & 10 — UDP misrouting during handover |
//! | [`capacity`] | Fig. 3a — cluster capacity during a rolling update |
//! | [`blast_radius`] | §5.1 ablation — canary-gated vs ungated bad release |
//! | [`conntable`] | §5.1 ablation — LRU connection table under health flaps |
//! | [`drain_sweep`] | ablation — drain period vs disruption/completion |
//! | [`ppr_alternatives`] | §4.3 ablation — 500 / 307 / buffering / PPR costs |
//! | [`reconnect_storm`] | Fig. 3b — app-tier CPU under a reconnect storm |
//! | [`restart_storm`] | resilience ablation — breakers/budget/deadlines under a 50% upstream restart |
//! | [`idle_cpu`] | Fig. 8b — idle CPU, ZDR vs HardRestart |
//! | [`dcr`] | Fig. 9 — MQTT publish continuity with/without DCR |
//! | [`ppr`] | Fig. 11 — POST disruptions over a week of restarts |
//! | [`proxy_errors`] | Fig. 12 — proxy error ratios by class |
//! | [`timeline`] | Fig. 13 — RPS/MQTT/throughput/CPU, GR vs GNR |
//! | [`peak`] | Fig. 15 — release hour-of-day PDFs |
//! | [`peak_release`] | §6.2.2 — disruption cost of releasing at peak vs trough |
//! | [`completion`] | Fig. 16 — release completion times |
//! | [`overhead`] | Fig. 17 — system overheads during takeover |
//! | [`supervisor`] | robustness ablation — supervised releases under injected failure |
//! | [`release_train`] | §6.2 + Microreboots ablation — fleet release trains, blast radius vs completion |

pub mod blast_radius;
pub mod capacity;
pub mod completion;
pub mod conntable;
pub mod dcr;
pub mod drain_sweep;
pub mod headline;
pub mod idle_cpu;
pub mod misroute;
pub mod overhead;
pub mod peak;
pub mod peak_release;
pub mod ppr;
pub mod ppr_alternatives;
pub mod proxy_errors;
pub mod reconnect_storm;
pub mod release_train;
pub mod releases;
pub mod restart_storm;
pub mod supervisor;
pub mod timeline;

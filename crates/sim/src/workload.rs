//! Seeded workload models.
//!
//! The paper's traffic mix (§2.2, §2.5): short API requests dominate;
//! long POST uploads are rare but "at the tail (p99.9) most requests are
//! sufficiently large enough to outlive the draining period"; MQTT tunnels
//! are persistent; traffic is diurnal (§6.2.2).

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use zdr_core::drain::ConnectionKind;

/// Arrival and duration model for one cluster's offered load.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadConfig {
    /// Short API requests per machine per second at peak.
    pub short_rps: f64,
    /// Long POST starts per machine per second.
    pub post_rps: f64,
    /// Mean short-request duration, ms (exponential).
    pub short_mean_ms: f64,
    /// Long POST duration, ms (log-normal-ish heavy tail).
    pub post_median_ms: f64,
    /// Heavy-tail shape for POSTs (σ of the underlying normal).
    pub post_sigma: f64,
    /// Persistent MQTT tunnels per machine.
    pub mqtt_tunnels_per_machine: u64,
    /// MQTT publishes per tunnel per second.
    pub publish_rate: f64,
    /// QUIC flow starts per machine per second.
    pub quic_fps: f64,
    /// Mean QUIC flow duration, ms (exponential).
    pub quic_mean_ms: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            short_rps: 800.0,
            post_rps: 8.0,
            short_mean_ms: 200.0,
            post_median_ms: 20_000.0,
            post_sigma: 1.2,
            mqtt_tunnels_per_machine: 5_000,
            publish_rate: 0.05,
            quic_fps: 40.0,
            quic_mean_ms: 30_000.0,
        }
    }
}

/// The diurnal load multiplier for hour-of-day `h` (§6.2.2's pattern):
/// trough near 04:00, peak near 15:00.
pub fn diurnal_multiplier(hour: f64) -> f64 {
    // Cosine with trough at 4h, peak at 16h, swinging 0.55–1.0.
    let phase = (hour - 16.0) / 24.0 * std::f64::consts::TAU;
    0.775 + 0.225 * phase.cos()
}

/// A seeded sampler of connection arrivals and durations.
#[derive(Debug)]
pub struct WorkloadSampler {
    cfg: WorkloadConfig,
    rng: ChaCha8Rng,
}

/// One sampled connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// What kind of connection.
    pub kind: ConnectionKind,
    /// How long it needs to complete organically, ms (`u64::MAX` for
    /// persistent tunnels).
    pub duration_ms: u64,
}

impl WorkloadSampler {
    /// A sampler with the given config and seed.
    pub fn new(cfg: WorkloadConfig, seed: u64) -> Self {
        WorkloadSampler {
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The config in force.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Samples the arrivals on one machine during one 1-second tick at
    /// load multiplier `load` (from [`diurnal_multiplier`]).
    pub fn tick_arrivals(&mut self, load: f64) -> Vec<Arrival> {
        let mut out = Vec::new();
        let shorts = self.poisson(self.cfg.short_rps * load);
        for _ in 0..shorts {
            let d = self.exponential(self.cfg.short_mean_ms);
            out.push(Arrival {
                kind: ConnectionKind::ShortRequest,
                duration_ms: d,
            });
        }
        let posts = self.poisson(self.cfg.post_rps * load);
        for _ in 0..posts {
            let d = self.lognormal(self.cfg.post_median_ms, self.cfg.post_sigma);
            out.push(Arrival {
                kind: ConnectionKind::LongPost,
                duration_ms: d,
            });
        }
        let quics = self.poisson(self.cfg.quic_fps * load);
        for _ in 0..quics {
            let d = self.exponential(self.cfg.quic_mean_ms);
            out.push(Arrival {
                kind: ConnectionKind::QuicFlow,
                duration_ms: d,
            });
        }
        out
    }

    /// Poisson sample (normal approximation above λ=64 for speed).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 64.0 {
            let z = self.standard_normal();
            return (lambda + lambda.sqrt() * z).round().max(0.0) as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= self.rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Exponential sample with the given mean, ms.
    pub fn exponential(&mut self, mean_ms: f64) -> u64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        (-mean_ms * u.ln()).round() as u64
    }

    /// Log-normal sample with the given median and σ, ms.
    pub fn lognormal(&mut self, median_ms: f64, sigma: f64) -> u64 {
        let z = self.standard_normal();
        (median_ms * (sigma * z).exp()).round().min(1e12) as u64
    }

    fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Uniform helper for experiment drivers.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = WorkloadSampler::new(WorkloadConfig::default(), 42);
        let mut b = WorkloadSampler::new(WorkloadConfig::default(), 42);
        for _ in 0..5 {
            assert_eq!(a.tick_arrivals(1.0), b.tick_arrivals(1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WorkloadSampler::new(WorkloadConfig::default(), 1);
        let mut b = WorkloadSampler::new(WorkloadConfig::default(), 2);
        let av: Vec<_> = (0..3).flat_map(|_| a.tick_arrivals(1.0)).collect();
        let bv: Vec<_> = (0..3).flat_map(|_| b.tick_arrivals(1.0)).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn arrival_rates_roughly_match_config() {
        let cfg = WorkloadConfig::default();
        let mut s = WorkloadSampler::new(cfg.clone(), 7);
        let mut shorts = 0u64;
        let mut posts = 0u64;
        let ticks = 200;
        for _ in 0..ticks {
            for a in s.tick_arrivals(1.0) {
                match a.kind {
                    ConnectionKind::ShortRequest => shorts += 1,
                    ConnectionKind::LongPost => posts += 1,
                    _ => {}
                }
            }
        }
        let short_rate = shorts as f64 / ticks as f64;
        let post_rate = posts as f64 / ticks as f64;
        assert!(
            (short_rate - cfg.short_rps).abs() < cfg.short_rps * 0.1,
            "{short_rate}"
        );
        assert!(
            (post_rate - cfg.post_rps).abs() < cfg.post_rps * 0.4,
            "{post_rate}"
        );
    }

    #[test]
    fn post_durations_heavy_tailed() {
        let mut s = WorkloadSampler::new(WorkloadConfig::default(), 9);
        let samples: Vec<u64> = (0..5_000).map(|_| s.lognormal(20_000.0, 1.2)).collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let p999 = sorted[(sorted.len() as f64 * 0.999) as usize];
        assert!((15_000..25_000).contains(&median), "median {median}");
        // §2.5: the p99.9 outlives a short draining period by a lot.
        assert!(p999 > 20 * median, "p999 {p999} vs median {median}");
    }

    #[test]
    fn exponential_mean() {
        let mut s = WorkloadSampler::new(WorkloadConfig::default(), 11);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| s.exponential(200.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 200.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn diurnal_shape() {
        assert!(diurnal_multiplier(16.0) > 0.99);
        assert!(diurnal_multiplier(4.0) < 0.56);
        // Always positive, never above 1.
        for h in 0..24 {
            let m = diurnal_multiplier(h as f64);
            assert!(m > 0.0 && m <= 1.0, "hour {h}: {m}");
        }
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut s = WorkloadSampler::new(WorkloadConfig::default(), 13);
        assert_eq!(s.poisson(0.0), 0);
        assert_eq!(s.poisson(-1.0), 0);
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let mut s = WorkloadSampler::new(WorkloadConfig::default(), 17);
        let n = 2_000;
        let sum: u64 = (0..n).map(|_| s.poisson(800.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 800.0).abs() < 20.0, "mean {mean}");
    }
}

//! # zdr-sim — deterministic fleet simulator
//!
//! The paper's evaluation (§6) runs on live production clusters serving
//! billions of users. This crate is the substitute substrate: a seeded,
//! deterministic simulation of clusters, workloads and restart strategies
//! that reproduces the *shape* of every figure — who wins, by what rough
//! factor, where the lines cross — on a laptop.
//!
//! Building blocks:
//!
//! * [`cpu`] — the machine CPU model: request service cost, TLS/TCP
//!   re-handshake cost (the §2.5 "20% of CPU cycles to rebuild state"
//!   driver), parallel-instance overhead during Socket Takeover.
//! * [`workload`] — seeded arrival/duration models for the four connection
//!   kinds (short API, long POST, MQTT tunnel, QUIC flow).
//! * [`cluster`] — a time-stepped cluster of machines fed by the workload,
//!   with an L4 health view, restart orchestration from `zdr-core`, and
//!   disruption accounting.
//! * [`experiments`] — one driver per paper figure; each returns a printable
//!   report (`zdr-bench` binaries just run + print them).
//!
//! Determinism contract: every entry point takes a seed; the same seed
//! yields bit-identical reports (property-tested).

pub mod cluster;
pub mod cpu;
pub mod experiments;
pub mod workload;

/// Milliseconds per simulated second (the simulator's base tick).
pub const TICK_MS: u64 = 1_000;

/// Formats a fraction as a percentage with fixed precision (report
/// output helper used by the figure binaries).
pub fn pct(f: f64) -> String {
    format!("{:.2}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn pct_formats() {
        assert_eq!(super::pct(0.1234), "12.34%");
        assert_eq!(super::pct(1.0), "100.00%");
    }
}

//! Time-stepped cluster simulation.
//!
//! A cluster of machines serves the seeded workload while restart
//! strategies from `zdr-core` run over it. One tick = one simulated
//! second. The simulator tracks exactly the signals the paper's monitoring
//! system scrapes (§6): per-group RPS, active MQTT connections, CPU
//! utilization / idle CPU, throughput, health-check visibility, and the
//! full §2.5 disruption taxonomy.
//!
//! Modeling notes:
//!
//! * Connections are tracked as *counts bucketed by expiry tick*
//!   (`BTreeMap<tick, KindCounts>`), not as individual objects, so a
//!   100-machine cluster with ~10⁵ live connections steps in microseconds.
//! * When a release begins, a machine's live connections move to a separate
//!   `draining` ledger: under Socket Takeover the machine keeps accepting
//!   *new* connections (owned by the new process and never at risk), while
//!   only the draining ledger faces the drain-deadline fates.
//! * Error-class mapping at a hard deadline (§2.5, Fig. 12): cut idle
//!   keep-alive connections and tunnels → connection resets (plus a slice
//!   of stream aborts for requests racing the cut); cut POSTs → write
//!   timeouts; cut QUIC flows → connection resets. Saturated machines
//!   (capacity loss, reconnect storms) shed excess work as TCP timeouts
//!   and application write timeouts.
//! * Microreboots (per-service partial restarts, the PAPERS.md ablation):
//!   a machine is modeled as three independently restartable service
//!   slices ([`ServiceSlice`]). [`ClusterSim::begin_microreboot`] drains
//!   only one slice's connections while the process keeps serving, and a
//!   defective deployment marks only that slice buggy — so
//!   [`ClusterSim::buggy_fraction`] (slice-weighted) captures the smaller
//!   blast radius partial restarts buy, at the cost of one drain per
//!   slice.

use std::collections::BTreeMap;

use zdr_core::drain::{ConnectionKind, InstanceLifecycle, LifecycleEvent, Phase};
use zdr_core::mechanism::{Mechanism, RestartStrategy};
use zdr_core::metrics::{DisruptionCounters, ProxyErrorKind, TimeSeries};

use crate::cpu::{takeover_overhead_fraction, CpuMeter, CpuModel};
use crate::workload::{WorkloadConfig, WorkloadSampler};
use crate::TICK_MS;

/// Per-kind connection counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounts {
    /// Short API requests.
    pub short: u64,
    /// Long POST uploads.
    pub post: u64,
    /// QUIC flows.
    pub quic: u64,
}

/// The independently restartable services inside one proxy process — the
/// Microreboots ablation's unit of restart. `ALL` lists them in rollout
/// order: HTTP first, so a defective binary is caught by the 5xx canary
/// signal while only one slice of each machine runs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceSlice {
    /// The HTTP request path (short requests, POST uploads, keep-alives).
    Http,
    /// The MQTT tunnel relay.
    Mqtt,
    /// The QUIC flow path.
    Quic,
}

impl ServiceSlice {
    /// All slices, in partial-rollout order.
    pub const ALL: [ServiceSlice; 3] = [ServiceSlice::Http, ServiceSlice::Mqtt, ServiceSlice::Quic];

    fn index(self) -> usize {
        match self {
            ServiceSlice::Http => 0,
            ServiceSlice::Mqtt => 1,
            ServiceSlice::Quic => 2,
        }
    }
}

/// An in-flight per-service partial restart: only `slice`'s old
/// connections drain; the rest of the process keeps serving untouched.
#[derive(Debug)]
struct PartialRestart {
    slice: ServiceSlice,
    /// Tick the slice's drain hard-deadline lands on.
    deadline_tick: u64,
    /// The old service instance's connections, bucketed by completion tick.
    draining: BTreeMap<u64, KindCounts>,
}

impl KindCounts {
    fn add(&mut self, kind: ConnectionKind, n: u64) {
        match kind {
            ConnectionKind::ShortRequest => self.short += n,
            ConnectionKind::LongPost => self.post += n,
            ConnectionKind::QuicFlow => self.quic += n,
            ConnectionKind::MqttTunnel => unreachable!("tunnels tracked separately"),
        }
    }

    fn merge(&mut self, other: &KindCounts) {
        self.short += other.short;
        self.post += other.post;
        self.quic += other.quic;
    }
}

#[derive(Debug)]
struct MachineState {
    lifecycle: InstanceLifecycle,
    /// Current-process connections bucketed by completion tick.
    expiry: BTreeMap<u64, KindCounts>,
    /// Old-process connections draining toward the deadline.
    draining: BTreeMap<u64, KindCounts>,
    /// Live MQTT tunnels.
    mqtt: u64,
    /// Idle persistent keep-alive client connections.
    keepalive: u64,
    /// Tick the current takeover began, for overhead modeling.
    takeover_start: Option<u64>,
    /// Which service slices run a defective binary (the §5.1 bad-release
    /// scenario): a buggy slice serves, but errors at `buggy_error_rate`.
    /// A whole-process release flips all three at once; a microreboot
    /// flips only the restarted slice.
    buggy_slices: [bool; 3],
    /// In-flight per-service partial restart, if any.
    partial: Option<PartialRestart>,
    cpu: CpuMeter,
    /// Requests completed this tick (throughput).
    completed_this_tick: u64,
    /// Requests accepted this tick (RPS).
    accepted_this_tick: u64,
    /// HTTP (short + POST) arrivals accepted this tick, for the per-slice
    /// defect model.
    accepted_http_this_tick: u64,
}

/// Cluster simulation parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Machines in the cluster.
    pub machines: usize,
    /// Restart strategy in force.
    pub strategy: RestartStrategy,
    /// Drain period, ms.
    pub drain_ms: u64,
    /// Post-drain restart duration, ms (HardRestart downtime).
    pub restart_ms: u64,
    /// Offered workload.
    pub workload: WorkloadConfig,
    /// Idle keep-alive client connections per machine.
    pub keepalive_per_machine: u64,
    /// CPU model.
    pub cpu: CpuModel,
    /// RNG seed.
    pub seed: u64,
    /// Ticks a dropped MQTT client waits before reconnecting, mean
    /// (exponential-ish drain of the reconnect backlog).
    pub reconnect_mean_ticks: f64,
    /// HTTP 5xx rate of a machine running a defective binary (see
    /// [`ClusterSim::set_buggy_deployment`]).
    pub buggy_error_rate: f64,
}

impl ClusterConfig {
    /// A reasonable Edge-cluster default for the given strategy.
    pub fn edge(machines: usize, strategy: RestartStrategy, seed: u64) -> Self {
        ClusterConfig {
            machines,
            strategy,
            drain_ms: 20 * 60 * 1000,
            restart_ms: 30 * 1000,
            workload: WorkloadConfig::default(),
            keepalive_per_machine: 2_000,
            cpu: CpuModel::default(),
            seed,
            reconnect_mean_ticks: 5.0,
            buggy_error_rate: 0.05,
        }
    }
}

/// The running simulation.
#[derive(Debug)]
pub struct ClusterSim {
    cfg: ClusterConfig,
    machines: Vec<MachineState>,
    sampler: WorkloadSampler,
    tick: u64,
    counters: DisruptionCounters,
    /// MQTT clients waiting to reconnect (dropped tunnels).
    reconnect_backlog: u64,
    /// TCP/TLS re-handshakes owed by cut connections, drained over the
    /// next ticks onto the surviving machines (the Fig. 3b storm).
    rehandshake_pool: f64,
    series: BTreeMap<&'static str, TimeSeries>,
    /// Machines in the "restarted" group (GR) for Fig. 13-style reporting.
    group_restarted: Vec<usize>,
    /// When true, machines completing a restart come up on a defective
    /// binary (the §5.1 bad-release scenario).
    deploying_buggy_code: bool,
    /// Load multiplier applied this tick (diurnal experiments set this).
    pub load_multiplier: f64,
}

impl ClusterSim {
    /// Builds a cluster with steady-state MQTT tunnels and keep-alive
    /// connections pre-attached.
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.machines > 0);
        let sampler = WorkloadSampler::new(cfg.workload.clone(), cfg.seed);
        let machines = (0..cfg.machines)
            .map(|_| MachineState {
                lifecycle: InstanceLifecycle::new(cfg.strategy.clone()),
                expiry: BTreeMap::new(),
                draining: BTreeMap::new(),
                mqtt: cfg.workload.mqtt_tunnels_per_machine,
                keepalive: cfg.keepalive_per_machine,
                takeover_start: None,
                buggy_slices: [false; 3],
                partial: None,
                cpu: CpuMeter::default(),
                completed_this_tick: 0,
                accepted_this_tick: 0,
                accepted_http_this_tick: 0,
            })
            .collect();
        ClusterSim {
            cfg,
            machines,
            sampler,
            tick: 0,
            counters: DisruptionCounters::default(),
            reconnect_backlog: 0,
            rehandshake_pool: 0.0,
            series: BTreeMap::new(),
            group_restarted: Vec::new(),
            deploying_buggy_code: false,
            load_multiplier: 1.0,
        }
    }

    /// Current simulated time, ms.
    pub fn now_ms(&self) -> u64 {
        self.tick * TICK_MS
    }

    /// Disruption counters so far.
    pub fn counters(&self) -> &DisruptionCounters {
        &self.counters
    }

    /// A recorded series by name (see `tick()` for the names).
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// All recorded series.
    pub fn all_series(&self) -> &BTreeMap<&'static str, TimeSeries> {
        &self.series
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True when the cluster has no machines (never; constructor asserts).
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Pre-registers the GR (to-be-restarted) group so the Fig. 13 group
    /// series are meaningful from the first tick.
    pub fn set_restart_group(&mut self, indices: &[usize]) {
        for &i in indices {
            if !self.group_restarted.contains(&i) {
                self.group_restarted.push(i);
            }
        }
    }

    /// Begins a release on the given machines. MQTT tunnels are re-homed
    /// immediately under DCR (solicitation happens at restart start, §4.2);
    /// live connections move to the draining ledger.
    pub fn begin_restart(&mut self, indices: &[usize]) {
        let now = self.now_ms();
        self.set_restart_group(indices);
        for &i in indices {
            let started = self.machines[i].lifecycle.begin_release(
                now,
                self.cfg.drain_ms,
                self.cfg.restart_ms,
            );
            if !started {
                continue;
            }
            // The old process's connections drain; new arrivals (if any)
            // belong to the successor process.
            let m = &mut self.machines[i];
            let old = std::mem::take(&mut m.expiry);
            for (t, c) in old {
                m.draining.entry(t).or_default().merge(&c);
            }
            if self.cfg.strategy.stays_healthy_during_restart() {
                self.machines[i].takeover_start = Some(self.tick);
            }
            // DCR: tunnels re-home through other proxies at solicitation
            // time, with zero client impact.
            if self.cfg.strategy.uses(Mechanism::DownstreamConnectionReuse) {
                let moving = self.machines[i].mqtt;
                self.machines[i].mqtt = 0;
                self.counters.dcr_handovers += moving;
                self.distribute_mqtt(moving, indices);
            }
        }
    }

    /// Begins a per-service partial restart (microreboot) of `slice` on
    /// the given machines: the process keeps serving and answering health
    /// checks; only the slice's old connections drain (against the usual
    /// drain deadline); and the slice runs the deployed binary from this
    /// tick — so a defective deployment is visible to the canary from the
    /// first window, while only one of the machine's three slices runs it.
    ///
    /// Machines mid-takeover or already microrebooting are skipped (one
    /// restart at a time per machine).
    pub fn begin_microreboot(&mut self, indices: &[usize], slice: ServiceSlice) {
        self.set_restart_group(indices);
        let deadline_tick = self.tick + self.cfg.drain_ms.div_ceil(TICK_MS).max(1);
        for &i in indices {
            if self.machines[i].partial.is_some()
                || !self.machines[i].lifecycle.accepts_new_connections()
            {
                continue;
            }
            self.machines[i].buggy_slices[slice.index()] = self.deploying_buggy_code;
            if slice == ServiceSlice::Mqtt {
                // DCR re-homes tunnels at solicitation time; without DCR
                // the relay's tunnels storm back like a hard restart's.
                let moving = self.machines[i].mqtt;
                self.machines[i].mqtt = 0;
                if self.cfg.strategy.uses(Mechanism::DownstreamConnectionReuse) {
                    self.counters.dcr_handovers += moving;
                    self.distribute_mqtt(moving, indices);
                } else {
                    self.reconnect_backlog += moving;
                    self.counters.connections_reset += moving;
                }
            }
            let draining = split_expiry(&mut self.machines[i], slice);
            self.machines[i].partial = Some(PartialRestart {
                slice,
                deadline_tick,
                draining,
            });
        }
    }

    /// Applies the drain-deadline fates to machine `i`'s partial
    /// (per-service) drain and retires the microreboot.
    fn finish_microreboot(&mut self, i: usize) {
        let Some(partial) = self.machines[i].partial.take() else {
            return;
        };
        let mut survivors = KindCounts::default();
        for (_, c) in partial.draining.range(self.tick + 1..) {
            survivors.merge(c);
        }
        self.cut_survivors(i, survivors);
        if partial.slice == ServiceSlice::Http {
            // Keep-alives ride the HTTP slice: the old service closes them
            // gracefully after their last response, which clients absorb
            // silently except for a sliver of in-flight races.
            let racing = self.machines[i].keepalive / 100;
            for _ in 0..racing {
                self.counters
                    .record_proxy_error(ProxyErrorKind::StreamAbort);
            }
            self.counters.connections_reset += racing;
        }
    }

    /// True when no per-service partial restart is in flight.
    pub fn microreboots_settled(&self) -> bool {
        self.machines.iter().all(|m| m.partial.is_none())
    }

    /// True when machine `i`'s `slice` currently runs the defective binary.
    pub fn slice_buggy(&self, i: usize, slice: ServiceSlice) -> bool {
        self.machines[i].buggy_slices[slice.index()]
    }

    /// Indices of machines currently accepting new connections.
    fn accepting(&self) -> Vec<usize> {
        (0..self.machines.len())
            .filter(|&i| self.machines[i].lifecycle.accepts_new_connections())
            .collect()
    }

    /// Spreads re-homed or reconnecting tunnels over healthy machines not
    /// in `exclude`.
    fn distribute_mqtt(&mut self, n: u64, exclude: &[usize]) {
        let targets: Vec<usize> = (0..self.machines.len())
            .filter(|i| {
                !exclude.contains(i) && self.machines[*i].lifecycle.accepts_new_connections()
            })
            .collect();
        if targets.is_empty() {
            // Nowhere to go: clients must retry later.
            self.reconnect_backlog += n;
            return;
        }
        let per = n / targets.len() as u64;
        let mut rem = n % targets.len() as u64;
        for &t in &targets {
            let extra = if rem > 0 {
                rem -= 1;
                1
            } else {
                0
            };
            self.machines[t].mqtt += per + extra;
        }
    }

    /// Advances one tick (1 s). Records series points:
    /// `capacity`, `healthy_fraction`, `rps`, `throughput`, `cpu`,
    /// `idle_cpu`, `mqtt_conns`, `publish_delivered`, `mqtt_connect_acks`,
    /// and the Fig. 13 group series `gr_rps`/`gnr_rps`/`gr_cpu`/`gnr_cpu`/
    /// `gr_mqtt`/`gnr_mqtt`/`gr_throughput`/`gnr_throughput`.
    pub fn tick(&mut self) {
        self.tick += 1;
        let now = self.now_ms();
        let load = self.load_multiplier;

        for m in &mut self.machines {
            m.cpu.reset();
            m.completed_this_tick = 0;
            m.accepted_this_tick = 0;
            m.accepted_http_this_tick = 0;
        }

        // 1. Lifecycle transitions (drain endings, restarts completing).
        let mut drain_ended: Vec<usize> = Vec::new();
        for i in 0..self.machines.len() {
            let event = self.machines[i].lifecycle.tick(now, self.cfg.restart_ms);
            match event {
                Some(LifecycleEvent::DrainEnded) => drain_ended.push(i),
                Some(LifecycleEvent::BackInService { .. }) => {
                    self.machines[i].buggy_slices = [self.deploying_buggy_code; 3];
                    if self.machines[i].takeover_start.take().is_some() {
                        // Takeover drain over: old-process survivors face
                        // the deadline fates.
                        drain_ended.push(i);
                    } else {
                        // HardRestart back up: fresh keep-alive population
                        // accretes onto the new process.
                        self.machines[i].keepalive = self.cfg.keepalive_per_machine;
                    }
                }
                None => {}
            }
        }
        for i in drain_ended {
            self.finish_drain(i);
        }

        // 2. Connection completions (all ledgers, including any in-flight
        // microreboot's partial drain — those connections finish normally).
        for m in &mut self.machines {
            let partial_ledger = m.partial.as_mut().map(|p| &mut p.draining);
            for ledger in [Some(&mut m.expiry), Some(&mut m.draining), partial_ledger]
                .into_iter()
                .flatten()
            {
                let done: Vec<u64> = ledger.range(..=self.tick).map(|(k, _)| *k).collect();
                for k in done {
                    let c = ledger.remove(&k).expect("key exists");
                    m.completed_this_tick += c.short + c.post;
                    self.counters.requests_ok += c.short + c.post;
                }
            }
        }

        // 2b. Microreboot drains settle when empty or at their deadline.
        let micro_done: Vec<usize> = (0..self.machines.len())
            .filter(|&i| {
                self.machines[i]
                    .partial
                    .as_ref()
                    .is_some_and(|p| p.deadline_tick <= self.tick || p.draining.is_empty())
            })
            .collect();
        for i in micro_done {
            self.finish_microreboot(i);
        }

        // 3. New arrivals, spread across accepting machines (the L4LB view).
        let accepting = self.accepting();
        let total_arrivals: Vec<crate::workload::Arrival> = (0..self.machines.len())
            .flat_map(|_| self.sampler.tick_arrivals(load))
            .collect();
        if accepting.is_empty() {
            // Cluster black-holed: every arrival times out.
            for _ in &total_arrivals {
                self.counters.record_proxy_error(ProxyErrorKind::Timeout);
            }
        } else {
            for (j, arrival) in total_arrivals.iter().enumerate() {
                let i = accepting[j % accepting.len()];
                let m = &mut self.machines[i];
                let end_tick = self.tick + arrival.duration_ms.div_ceil(TICK_MS).max(1);
                m.expiry.entry(end_tick).or_default().add(arrival.kind, 1);
                m.accepted_this_tick += 1;
                if arrival.kind != ConnectionKind::QuicFlow {
                    m.accepted_http_this_tick += 1;
                }
                m.cpu.charge(self.cfg.cpu.handshake_cost_ms * 0.1); // amortized setup
                m.cpu.charge(self.cfg.cpu.request_cost_ms);
            }
        }

        // 3b. Defective binaries error on a slice of what they serve, per
        // service slice: a buggy HTTP slice 5xxes its accepted requests, a
        // buggy QUIC slice resets its accepted flows, a buggy MQTT slice
        // resets a slice of its tunnels' deliveries (modeled stateless —
        // the client reconnects to the same relay within the tick).
        if self.cfg.buggy_error_rate > 0.0 {
            let rate = self.cfg.buggy_error_rate;
            let publish = self.cfg.workload.publish_rate;
            let (mut extra_5xx, mut quic_resets, mut mqtt_resets) = (0u64, 0u64, 0u64);
            for m in &self.machines {
                let quic_accepted = m.accepted_this_tick - m.accepted_http_this_tick;
                if m.buggy_slices[ServiceSlice::Http.index()] && m.accepted_http_this_tick > 0 {
                    extra_5xx += self
                        .sampler
                        .poisson(m.accepted_http_this_tick as f64 * rate);
                }
                if m.buggy_slices[ServiceSlice::Quic.index()] && quic_accepted > 0 {
                    quic_resets += self.sampler.poisson(quic_accepted as f64 * rate);
                }
                if m.buggy_slices[ServiceSlice::Mqtt.index()] && m.mqtt > 0 {
                    mqtt_resets += self.sampler.poisson(m.mqtt as f64 * publish * rate);
                }
            }
            self.counters.http_5xx += extra_5xx;
            self.counters.connections_reset += quic_resets + mqtt_resets;
            for _ in 0..quic_resets.min(10_000) {
                self.counters.record_proxy_error(ProxyErrorKind::ConnReset);
            }
        }

        // 4. MQTT reconnect backlog drains (forced reconnect storms).
        if self.reconnect_backlog > 0 {
            let rate = 1.0 - (-1.0 / self.cfg.reconnect_mean_ticks).exp();
            let reconnecting = ((self.reconnect_backlog as f64) * rate).ceil() as u64;
            let reconnecting = reconnecting.min(self.reconnect_backlog);
            self.reconnect_backlog -= reconnecting;
            self.counters.mqtt_forced_reconnects += reconnecting;
            self.counters.rehandshakes += reconnecting;
            self.rehandshake_pool += reconnecting as f64;
            self.distribute_mqtt(reconnecting, &[]);
            self.record("mqtt_connect_acks", reconnecting as f64);
        } else {
            self.record("mqtt_connect_acks", 0.0);
        }

        // 4b. Re-handshake CPU storm lands on the accepting machines.
        if self.rehandshake_pool > 0.5 {
            let doing = self.rehandshake_pool * 0.5; // half the pool per tick
            self.rehandshake_pool -= doing;
            let accepting = self.accepting();
            if !accepting.is_empty() {
                let per = doing / accepting.len() as f64;
                for &i in &accepting {
                    self.machines[i]
                        .cpu
                        .charge(per * self.cfg.cpu.handshake_cost_ms);
                }
            }
        } else {
            self.rehandshake_pool = 0.0;
        }

        // 5. Publish traffic: deterministic expectation (the figure signal
        // is the delivered/offered ratio, not Poisson noise). Publishes to
        // clients in the reconnect backlog are lost.
        let live_tunnels: u64 = self.machines.iter().map(|m| m.mqtt).sum();
        let delivered = live_tunnels as f64 * self.cfg.workload.publish_rate * load;
        for m in &mut self.machines {
            m.cpu.charge(
                m.mqtt as f64 * self.cfg.workload.publish_rate * self.cfg.cpu.publish_cost_ms,
            );
        }
        self.record("publish_delivered", delivered);

        // 6. Takeover overhead + saturation accounting.
        let mut cpu_sum = 0.0;
        let mut idle_sum = 0.0;
        let mut overflow_events = 0u64;
        for m in &mut self.machines {
            let mut util = m.cpu.utilization(&self.cfg.cpu);
            if let Some(start) = m.takeover_start {
                util =
                    (util + takeover_overhead_fraction(&self.cfg.cpu, self.tick - start)).min(1.0);
            }
            // §6.1.2 counts cluster idle over in-rotation machines; a
            // hard-down machine's idle CPU is not usable capacity.
            let in_rotation = m.lifecycle.answers_health_checks();
            if in_rotation {
                cpu_sum += util;
                idle_sum += 1.0 - util;
            }
            if m.cpu.saturated(&self.cfg.cpu) {
                // Excess work sheds as user-visible slowness: TCP timeouts
                // and application write timeouts (§2.5's QoE degradation).
                let excess_ms = m.cpu.utilization_raw_ms() - self.cfg.cpu.capacity_ms_per_tick;
                let events = (excess_ms / self.cfg.cpu.request_cost_ms).round() as u64;
                overflow_events += events.min(10_000);
            }
        }
        for _ in 0..(overflow_events / 2) {
            self.counters.record_proxy_error(ProxyErrorKind::Timeout);
        }
        for _ in 0..(overflow_events - overflow_events / 2) {
            self.counters
                .record_proxy_error(ProxyErrorKind::WriteTimeout);
        }
        let n = self.machines.len() as f64;

        // 7. Record the tick's series.
        let capacity: f64 = self
            .machines
            .iter()
            .map(|m| m.lifecycle.capacity())
            .sum::<f64>()
            / n;
        let healthy: f64 = self
            .machines
            .iter()
            .filter(|m| m.lifecycle.answers_health_checks())
            .count() as f64
            / n;
        let rps: u64 = self.machines.iter().map(|m| m.accepted_this_tick).sum();
        let throughput: u64 = self.machines.iter().map(|m| m.completed_this_tick).sum();
        self.record("capacity", capacity);
        self.record("healthy_fraction", healthy);
        self.record("rps", rps as f64);
        self.record("throughput", throughput as f64);
        self.record("cpu", cpu_sum / n);
        self.record("idle_cpu", idle_sum / n);
        self.record("mqtt_conns", live_tunnels as f64);

        // Group series (Fig. 13): GR = registered restart group.
        let (mut gr_rps, mut gnr_rps, mut gr_cpu, mut gnr_cpu) = (0.0, 0.0, 0.0, 0.0);
        let (mut gr_mqtt, mut gnr_mqtt, mut gr_tp, mut gnr_tp) = (0.0, 0.0, 0.0, 0.0);
        let gr_n = self.group_restarted.len().max(1) as f64;
        let gnr_n = (self.machines.len() - self.group_restarted.len()).max(1) as f64;
        for (i, m) in self.machines.iter().enumerate() {
            let mut util = m.cpu.utilization(&self.cfg.cpu);
            if let Some(start) = m.takeover_start {
                util =
                    (util + takeover_overhead_fraction(&self.cfg.cpu, self.tick - start)).min(1.0);
            }
            if self.group_restarted.contains(&i) {
                gr_rps += m.accepted_this_tick as f64;
                gr_cpu += util;
                gr_mqtt += m.mqtt as f64;
                gr_tp += m.completed_this_tick as f64;
            } else {
                gnr_rps += m.accepted_this_tick as f64;
                gnr_cpu += util;
                gnr_mqtt += m.mqtt as f64;
                gnr_tp += m.completed_this_tick as f64;
            }
        }
        self.record("gr_rps", gr_rps / gr_n);
        self.record("gnr_rps", gnr_rps / gnr_n);
        self.record("gr_cpu", gr_cpu / gr_n);
        self.record("gnr_cpu", gnr_cpu / gnr_n);
        self.record("gr_mqtt", gr_mqtt / gr_n);
        self.record("gnr_mqtt", gnr_mqtt / gnr_n);
        self.record("gr_throughput", gr_tp / gr_n);
        self.record("gnr_throughput", gnr_tp / gnr_n);
    }

    fn record(&mut self, name: &'static str, v: f64) {
        let t = self.now_ms();
        self.series.entry(name).or_default().push(t, v);
    }

    /// §2.5 fates for connections still open when their process (or, for a
    /// microreboot, their service slice) hits the drain deadline.
    fn cut_survivors(&mut self, i: usize, survivors: KindCounts) {
        let strategy = self.cfg.strategy.clone();

        // Short requests cut mid-flight: stream aborts.
        for _ in 0..survivors.short {
            self.counters
                .record_proxy_error(ProxyErrorKind::StreamAbort);
        }
        self.counters.connections_reset += survivors.short;

        // Long POSTs: PPR replays them; otherwise write timeouts.
        if strategy.uses(Mechanism::PartialPostReplay) {
            self.counters.ppr_replays += survivors.post;
            // Replayed posts continue on other machines.
            let targets = self.accepting();
            if let Some(&t) = targets.iter().find(|&&t| t != i) {
                self.machines[t]
                    .expiry
                    .entry(self.tick + 10)
                    .or_default()
                    .add(ConnectionKind::LongPost, survivors.post);
            }
        } else {
            for _ in 0..survivors.post {
                self.counters
                    .record_proxy_error(ProxyErrorKind::WriteTimeout);
            }
            self.counters.posts_disrupted += survivors.post;
            self.counters.connections_reset += survivors.post;
        }

        // QUIC flows outliving the drain: connection resets.
        for _ in 0..survivors.quic {
            self.counters.record_proxy_error(ProxyErrorKind::ConnReset);
        }
        self.counters.connections_reset += survivors.quic;
        self.counters.rehandshakes += survivors.quic + survivors.short;
        self.rehandshake_pool += (survivors.quic + survivors.short) as f64;
    }

    /// Applies the drain-deadline fates to machine `i`'s draining ledger.
    fn finish_drain(&mut self, i: usize) {
        let strategy = self.cfg.strategy.clone();
        let m = &mut self.machines[i];
        let mut survivors = KindCounts::default();
        for (_, c) in m.draining.range(self.tick + 1..) {
            survivors.merge(c);
        }
        m.draining.clear();
        self.cut_survivors(i, survivors);

        let m = &mut self.machines[i];
        let graceful = strategy.stays_healthy_during_restart();

        // Idle keep-alive connections: a hard deadline RSTs them all (some
        // with a request racing the cut); a takeover drain closes them
        // after their last response, which clients absorb silently except
        // for a sliver of in-flight races.
        let ka = m.keepalive;
        if graceful {
            let racing = ka / 100;
            for _ in 0..racing {
                self.counters
                    .record_proxy_error(ProxyErrorKind::StreamAbort);
            }
            self.counters.connections_reset += racing;
            // Clients re-establish lazily; no thundering herd.
            m.keepalive = self.cfg.keepalive_per_machine;
        } else {
            for _ in 0..ka {
                self.counters.record_proxy_error(ProxyErrorKind::ConnReset);
            }
            let racing = ka / 10;
            for _ in 0..racing {
                self.counters
                    .record_proxy_error(ProxyErrorKind::StreamAbort);
            }
            self.counters.connections_reset += ka;
            self.counters.rehandshakes += ka;
            self.rehandshake_pool += ka as f64;
            m.keepalive = 0; // repopulated when the machine returns
        }

        // MQTT tunnels: without DCR they die here and the clients storm
        // back (with DCR they moved at restart start).
        if !strategy.uses(Mechanism::DownstreamConnectionReuse) {
            let dropped = m.mqtt;
            m.mqtt = 0;
            self.reconnect_backlog += dropped;
            self.counters.connections_reset += dropped;
            for _ in 0..dropped.min(100_000) {
                self.counters.record_proxy_error(ProxyErrorKind::ConnReset);
            }
        }
    }

    /// Drives a full rolling release (batches of `batch_fraction`) to
    /// completion, ticking the workload throughout. Returns the completion
    /// time in ms.
    pub fn run_rolling_release(&mut self, batch_fraction: f64) -> u64 {
        assert!(batch_fraction > 0.0 && batch_fraction <= 1.0);
        let n = self.machines.len();
        let batch = ((n as f64 * batch_fraction).ceil() as usize).max(1);
        let mut next = 0usize;
        let limit = 100_000_000 / TICK_MS; // termination guard
        while next < n
            || self
                .machines
                .iter()
                .any(|m| m.lifecycle.phase() != Phase::Serving)
        {
            // Launch the next batch when everyone is serving.
            if next < n
                && self
                    .machines
                    .iter()
                    .all(|m| m.lifecycle.phase() == Phase::Serving)
            {
                let indices: Vec<usize> = (next..(next + batch).min(n)).collect();
                next = (next + batch).min(n);
                self.begin_restart(&indices);
            }
            self.tick();
            assert!(self.tick < limit, "release failed to terminate");
        }
        self.now_ms()
    }

    /// Steps `n` ticks with no release activity (warm-up / steady state).
    pub fn run_ticks(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// The generation of machine `i` (how many releases it completed).
    pub fn generation(&self, i: usize) -> u32 {
        self.machines[i].lifecycle.generation()
    }

    /// Marks subsequent restarts as deploying a defective binary (or a
    /// fixed one, when `buggy` is false — the rollback path).
    pub fn set_buggy_deployment(&mut self, buggy: bool) {
        self.deploying_buggy_code = buggy;
    }

    /// True when any of machine `i`'s slices runs the defective binary.
    pub fn is_buggy(&self, i: usize) -> bool {
        self.machines[i].buggy_slices.iter().any(|&b| b)
    }

    /// Slice-weighted fraction of the fleet currently running the
    /// defective binary — the blast radius of a bad release. A machine
    /// whose whole process is buggy contributes 1; a machine with one
    /// buggy slice contributes 1/3.
    pub fn buggy_fraction(&self) -> f64 {
        let buggy_slices: usize = self
            .machines
            .iter()
            .map(|m| m.buggy_slices.iter().filter(|&&b| b).count())
            .sum();
        buggy_slices as f64 / (3 * self.machines.len()) as f64
    }

    /// True when every machine is back in normal service (no drains or
    /// restarts in flight).
    pub fn all_serving(&self) -> bool {
        self.machines
            .iter()
            .all(|m| m.lifecycle.phase() == Phase::Serving)
    }
}

/// Moves `slice`'s connections out of the live expiry ledger into a fresh
/// partial-drain ledger, leaving the other slices' connections live.
fn split_expiry(m: &mut MachineState, slice: ServiceSlice) -> BTreeMap<u64, KindCounts> {
    let mut draining = BTreeMap::new();
    let old = std::mem::take(&mut m.expiry);
    for (t, c) in old {
        let (drain, keep) = match slice {
            ServiceSlice::Http => (
                KindCounts {
                    short: c.short,
                    post: c.post,
                    quic: 0,
                },
                KindCounts {
                    short: 0,
                    post: 0,
                    quic: c.quic,
                },
            ),
            ServiceSlice::Quic => (
                KindCounts {
                    short: 0,
                    post: 0,
                    quic: c.quic,
                },
                KindCounts {
                    short: c.short,
                    post: c.post,
                    quic: 0,
                },
            ),
            // MQTT tunnels live outside the expiry ledger.
            ServiceSlice::Mqtt => (KindCounts::default(), c),
        };
        if drain != KindCounts::default() {
            draining
                .entry(t)
                .or_insert_with(KindCounts::default)
                .merge(&drain);
        }
        if keep != KindCounts::default() {
            m.expiry
                .entry(t)
                .or_insert_with(KindCounts::default)
                .merge(&keep);
        }
    }
    draining
}

#[cfg(test)]
mod tests {
    use super::*;
    use zdr_core::tier::Tier;

    fn small_cfg(strategy: RestartStrategy, seed: u64) -> ClusterConfig {
        ClusterConfig {
            machines: 10,
            strategy,
            drain_ms: 30_000, // 30 s drains keep tests fast
            restart_ms: 5_000,
            workload: WorkloadConfig {
                short_rps: 50.0,
                post_rps: 2.0,
                post_median_ms: 10_000.0,
                mqtt_tunnels_per_machine: 100,
                quic_fps: 5.0,
                quic_mean_ms: 8_000.0,
                ..WorkloadConfig::default()
            },
            keepalive_per_machine: 200,
            cpu: CpuModel::default(),
            seed,
            reconnect_mean_ticks: 3.0,
            buggy_error_rate: 0.05,
        }
    }

    #[test]
    fn deterministic_runs() {
        let run = |seed| {
            let mut sim = ClusterSim::new(small_cfg(RestartStrategy::HardRestart, seed));
            sim.run_ticks(5);
            sim.begin_restart(&[0, 1]);
            sim.run_ticks(60);
            (sim.counters().clone(), sim.series("rps").unwrap().clone())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, run(43).1);
    }

    #[test]
    fn steady_state_has_no_disruptions() {
        let mut sim = ClusterSim::new(small_cfg(RestartStrategy::HardRestart, 1));
        sim.run_ticks(30);
        assert_eq!(sim.counters().total_disruptions(), 0);
        assert!(sim.counters().requests_ok > 0);
        assert_eq!(sim.series("capacity").unwrap().min(), Some(1.0));
    }

    #[test]
    fn hard_restart_drops_capacity_and_disrupts() {
        let mut sim = ClusterSim::new(small_cfg(RestartStrategy::HardRestart, 2));
        sim.run_ticks(5);
        sim.begin_restart(&[0, 1]); // 20% of the cluster
        sim.run_ticks(50);
        let min_cap = sim.series("capacity").unwrap().min().unwrap();
        assert!((min_cap - 0.8).abs() < 1e-9, "min capacity {min_cap}");
        assert!(sim.series("healthy_fraction").unwrap().min().unwrap() < 0.9);
        assert!(sim.counters().total_disruptions() > 0);
        assert!(
            sim.counters().mqtt_forced_reconnects > 0,
            "tunnels must storm back"
        );
    }

    #[test]
    fn zdr_restart_keeps_capacity_and_health() {
        let strategy = RestartStrategy::zero_downtime_for(Tier::EdgeProxygen);
        let mut sim = ClusterSim::new(small_cfg(strategy, 3));
        sim.run_ticks(5);
        sim.begin_restart(&[0, 1]);
        sim.run_ticks(50);
        assert_eq!(sim.series("healthy_fraction").unwrap().min(), Some(1.0));
        let min_cap = sim.series("capacity").unwrap().min().unwrap();
        assert!(min_cap > 0.98, "min capacity {min_cap}");
        assert!(sim.counters().dcr_handovers >= 200);
        assert_eq!(sim.counters().mqtt_forced_reconnects, 0);
    }

    #[test]
    fn new_connections_survive_takeover_drain() {
        // The core correctness property: connections accepted during a
        // takeover drain belong to the new process and are never cut.
        let strategy = RestartStrategy::zero_downtime_for(Tier::EdgeProxygen);
        let mut cfg = small_cfg(strategy, 12);
        // No long-lived pre-restart load at all: any disruption would have
        // to come (incorrectly) from post-restart arrivals.
        cfg.workload.quic_fps = 0.0;
        cfg.workload.post_rps = 0.0;
        cfg.workload.mqtt_tunnels_per_machine = 0;
        cfg.keepalive_per_machine = 0;
        let mut sim = ClusterSim::new(cfg);
        sim.begin_restart(&[0, 1, 2]);
        sim.run_ticks(60); // across the 30 s drain deadline
        assert_eq!(sim.counters().total_disruptions(), 0);
        assert!(sim.counters().requests_ok > 0);
    }

    #[test]
    fn zdr_vs_hard_disruption_gap() {
        let mut hard = ClusterSim::new(small_cfg(RestartStrategy::HardRestart, 4));
        hard.run_ticks(5);
        hard.begin_restart(&[0, 1]);
        hard.run_ticks(60);

        let strategy = RestartStrategy::zero_downtime_for(Tier::EdgeProxygen);
        let mut zdr = ClusterSim::new(small_cfg(strategy, 4));
        zdr.run_ticks(5);
        zdr.begin_restart(&[0, 1]);
        zdr.run_ticks(60);

        assert!(
            hard.counters().total_disruptions() > 10 * zdr.counters().total_disruptions().max(1),
            "hard {} vs zdr {}",
            hard.counters().total_disruptions(),
            zdr.counters().total_disruptions()
        );
    }

    #[test]
    fn publish_delivery_dips_without_dcr_only() {
        let mut hard = ClusterSim::new(small_cfg(RestartStrategy::HardRestart, 5));
        hard.run_ticks(5);
        hard.begin_restart(&[0, 1, 2]);
        hard.run_ticks(60);
        let hard_min_tunnels = hard.series("mqtt_conns").unwrap().min().unwrap();

        let strategy = RestartStrategy::zero_downtime_for(Tier::OriginProxygen);
        let mut zdr = ClusterSim::new(small_cfg(strategy, 5));
        zdr.run_ticks(5);
        zdr.begin_restart(&[0, 1, 2]);
        zdr.run_ticks(60);
        let zdr_min_tunnels = zdr.series("mqtt_conns").unwrap().min().unwrap();

        assert!(
            hard_min_tunnels < 800.0,
            "hard tunnels dipped: {hard_min_tunnels}"
        );
        assert_eq!(zdr_min_tunnels, 1000.0, "DCR keeps every tunnel live");
        assert!(hard.series("mqtt_connect_acks").unwrap().max().unwrap() > 0.0);
        assert_eq!(zdr.series("mqtt_connect_acks").unwrap().max(), Some(0.0));
    }

    #[test]
    fn ppr_turns_write_timeouts_into_replays() {
        let strategy = RestartStrategy::zero_downtime_for(Tier::AppServer);
        let mut cfg = small_cfg(strategy, 6);
        cfg.drain_ms = 5_000; // app-server-style short drain
        let mut with_ppr = ClusterSim::new(cfg.clone());
        with_ppr.run_ticks(10);
        with_ppr.begin_restart(&[0]);
        with_ppr.run_ticks(30);
        assert!(with_ppr.counters().ppr_replays > 0);
        assert_eq!(with_ppr.counters().posts_disrupted, 0);

        cfg.strategy = RestartStrategy::HardRestart;
        let mut without = ClusterSim::new(cfg);
        without.run_ticks(10);
        without.begin_restart(&[0]);
        without.run_ticks(30);
        assert!(without.counters().posts_disrupted > 0);
        assert!(
            without.counters().proxy_error(ProxyErrorKind::WriteTimeout) > 0,
            "posts cut mid-upload are write timeouts"
        );
    }

    #[test]
    fn rolling_release_completes_all_machines() {
        let mut sim = ClusterSim::new(small_cfg(RestartStrategy::HardRestart, 7));
        let completion = sim.run_rolling_release(0.5);
        assert!(completion > 0);
        for i in 0..10 {
            assert_eq!(sim.generation(i), 1, "machine {i}");
        }
    }

    #[test]
    fn zdr_rolling_release_faster_than_hard() {
        let mut hard = ClusterSim::new(small_cfg(RestartStrategy::HardRestart, 8));
        let t_hard = hard.run_rolling_release(0.2);
        let strategy = RestartStrategy::zero_downtime_for(Tier::EdgeProxygen);
        let mut zdr = ClusterSim::new(small_cfg(strategy, 8));
        let t_zdr = zdr.run_rolling_release(0.2);
        assert!(t_zdr < t_hard, "zdr {t_zdr} vs hard {t_hard}");
    }

    #[test]
    fn group_series_recorded() {
        let strategy = RestartStrategy::zero_downtime_for(Tier::EdgeProxygen);
        let mut sim = ClusterSim::new(small_cfg(strategy, 9));
        sim.set_restart_group(&[0, 1]);
        sim.run_ticks(3);
        sim.begin_restart(&[0, 1]);
        sim.run_ticks(10);
        for key in [
            "gr_rps", "gnr_rps", "gr_cpu", "gnr_cpu", "gr_mqtt", "gnr_mqtt",
        ] {
            assert!(sim.series(key).is_some(), "{key} missing");
        }
        // GR carries takeover overhead: its CPU tops GNR's during drain.
        let gr_max = sim.series("gr_cpu").unwrap().max().unwrap();
        let gnr_max = sim.series("gnr_cpu").unwrap().max().unwrap();
        assert!(gr_max > gnr_max, "gr {gr_max} vs gnr {gnr_max}");
        // And GR's RPS stays near GNR's: takeover keeps accepting.
        let gr_last = sim.series("gr_rps").unwrap().points.last().unwrap().1;
        let gnr_last = sim.series("gnr_rps").unwrap().points.last().unwrap().1;
        assert!(
            (gr_last / gnr_last - 1.0).abs() < 0.5,
            "gr {gr_last} gnr {gnr_last}"
        );
    }

    #[test]
    fn all_arrivals_timeout_when_cluster_black_holed() {
        let mut cfg = small_cfg(RestartStrategy::HardRestart, 10);
        cfg.machines = 2;
        let mut sim = ClusterSim::new(cfg);
        sim.begin_restart(&[0, 1]);
        sim.run_ticks(3);
        assert!(sim.counters().proxy_error(ProxyErrorKind::Timeout) > 0);
    }

    #[test]
    fn microreboot_keeps_the_machine_serving() {
        let strategy = RestartStrategy::zero_downtime_for(Tier::EdgeProxygen);
        let mut sim = ClusterSim::new(small_cfg(strategy, 20));
        sim.run_ticks(5);
        sim.begin_microreboot(&[0, 1], ServiceSlice::Http);
        assert!(!sim.microreboots_settled());
        sim.run_ticks(40); // across the 30 s drain deadline
        assert!(sim.microreboots_settled());
        // The process never left rotation: full health and capacity.
        assert_eq!(sim.series("healthy_fraction").unwrap().min(), Some(1.0));
        assert_eq!(sim.series("capacity").unwrap().min(), Some(1.0));
        assert_eq!(sim.generation(0), 0, "lifecycle untouched");
    }

    #[test]
    fn microreboot_of_http_slice_leaves_tunnels_alone() {
        let strategy = RestartStrategy::zero_downtime_for(Tier::EdgeProxygen);
        let mut sim = ClusterSim::new(small_cfg(strategy, 21));
        sim.run_ticks(5);
        sim.begin_microreboot(&[0, 1, 2], ServiceSlice::Http);
        sim.run_ticks(40);
        assert_eq!(sim.counters().dcr_handovers, 0);
        assert_eq!(sim.counters().mqtt_forced_reconnects, 0);
        assert_eq!(sim.series("mqtt_conns").unwrap().min(), Some(1000.0));
    }

    #[test]
    fn microreboot_of_mqtt_slice_rehomes_via_dcr() {
        let strategy = RestartStrategy::zero_downtime_for(Tier::EdgeProxygen);
        let mut sim = ClusterSim::new(small_cfg(strategy, 22));
        sim.run_ticks(5);
        sim.begin_microreboot(&[0, 1], ServiceSlice::Mqtt);
        sim.run_ticks(10);
        assert!(sim.microreboots_settled());
        assert_eq!(sim.counters().dcr_handovers, 200);
        assert_eq!(sim.counters().mqtt_forced_reconnects, 0);
        assert_eq!(sim.series("mqtt_conns").unwrap().min(), Some(1000.0));
    }

    #[test]
    fn microreboot_marks_only_its_slice_buggy() {
        let strategy = RestartStrategy::zero_downtime_for(Tier::EdgeProxygen);
        let mut sim = ClusterSim::new(small_cfg(strategy, 23));
        sim.run_ticks(3);
        sim.set_buggy_deployment(true);
        sim.begin_microreboot(&[0], ServiceSlice::Http);
        assert!(sim.slice_buggy(0, ServiceSlice::Http));
        assert!(!sim.slice_buggy(0, ServiceSlice::Mqtt));
        assert!(sim.is_buggy(0));
        assert!((sim.buggy_fraction() - 1.0 / 30.0).abs() < 1e-9);
        sim.run_ticks(40);
        let before = sim.counters().http_5xx;
        sim.run_ticks(20);
        assert!(sim.counters().http_5xx > before, "buggy HTTP slice 5xxes");
        // Rollback: re-microreboot the slice on the fixed binary.
        sim.set_buggy_deployment(false);
        sim.begin_microreboot(&[0], ServiceSlice::Http);
        sim.run_ticks(40);
        assert!(!sim.is_buggy(0));
        assert_eq!(sim.buggy_fraction(), 0.0);
    }

    #[test]
    fn whole_process_restart_flips_every_slice() {
        let mut sim = ClusterSim::new(small_cfg(RestartStrategy::HardRestart, 24));
        sim.run_ticks(3);
        sim.set_buggy_deployment(true);
        sim.begin_restart(&[0]);
        while !sim.all_serving() {
            sim.tick();
        }
        for slice in ServiceSlice::ALL {
            assert!(sim.slice_buggy(0, slice), "{slice:?}");
        }
        assert!((sim.buggy_fraction() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn keepalive_cut_classes_differ_by_strategy() {
        let mut hard = ClusterSim::new(small_cfg(RestartStrategy::HardRestart, 11));
        hard.begin_restart(&[0]);
        hard.run_ticks(40);
        // 200 keep-alives RST + 100 tunnels RST at least.
        assert!(hard.counters().proxy_error(ProxyErrorKind::ConnReset) >= 300);

        let strategy = RestartStrategy::zero_downtime_for(Tier::EdgeProxygen);
        let mut zdr = ClusterSim::new(small_cfg(strategy, 11));
        zdr.begin_restart(&[0]);
        zdr.run_ticks(40);
        assert!(zdr.counters().proxy_error(ProxyErrorKind::ConnReset) < 50);
    }
}

//! Machine CPU model.
//!
//! Calibrated against the paper's observations:
//!
//! * §2.5 / Fig. 3b: when 10% of Origin Proxygens restart and their clients
//!   reconnect, the app cluster burns ~20% of its CPU rebuilding TCP/TLS
//!   state — so a re-handshake costs roughly 2× the service cost of an
//!   ordinary request at the observed request mix.
//! * §6.3 / Fig. 17: two parallel Proxygen instances during a takeover
//!   drain cost a median <5% CPU/RSS, with a 60–70 s tail spike.

use serde::{Deserialize, Serialize};

/// CPU cost model, in abstract "CPU-milliseconds per event" units on a
/// machine with `capacity_ms_per_tick` of compute per simulated second.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// CPU-ms available per 1 s tick (1000 = one core fully ours).
    pub capacity_ms_per_tick: f64,
    /// Cost of serving one short request.
    pub request_cost_ms: f64,
    /// Cost of one TCP+TLS handshake (connection setup or rebuild).
    pub handshake_cost_ms: f64,
    /// Cost of relaying one MQTT publish.
    pub publish_cost_ms: f64,
    /// Steady overhead fraction while two instances run in parallel
    /// (Socket Takeover drain window), of total capacity.
    pub parallel_instance_overhead: f64,
    /// Extra overhead fraction during the initial takeover spike.
    pub takeover_spike_overhead: f64,
    /// How long the spike lasts, ticks (§6.3: "persisting for around
    /// 60-70 seconds").
    pub takeover_spike_ticks: u64,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            capacity_ms_per_tick: 1_000.0,
            request_cost_ms: 0.5,
            handshake_cost_ms: 1.0,
            publish_cost_ms: 0.05,
            parallel_instance_overhead: 0.04,
            takeover_spike_overhead: 0.18,
            takeover_spike_ticks: 65,
        }
    }
}

/// Tracks one machine's CPU usage over a tick.
#[derive(Debug, Clone, Default)]
pub struct CpuMeter {
    used_ms: f64,
}

impl CpuMeter {
    /// Starts a fresh tick.
    pub fn reset(&mut self) {
        self.used_ms = 0.0;
    }

    /// Charges `cost_ms` of work.
    pub fn charge(&mut self, cost_ms: f64) {
        self.used_ms += cost_ms;
    }

    /// Utilization for the tick, clamped to 1.0 (saturation).
    pub fn utilization(&self, model: &CpuModel) -> f64 {
        (self.used_ms / model.capacity_ms_per_tick).min(1.0)
    }

    /// Idle fraction for the tick.
    pub fn idle(&self, model: &CpuModel) -> f64 {
        1.0 - self.utilization(model)
    }

    /// Whether the tick's work exceeded capacity (overload → queueing,
    /// tail-latency growth).
    pub fn saturated(&self, model: &CpuModel) -> bool {
        self.used_ms > model.capacity_ms_per_tick
    }

    /// Raw CPU-ms charged this tick (unclamped; used for overflow
    /// accounting when saturated).
    pub fn utilization_raw_ms(&self) -> f64 {
        self.used_ms
    }
}

/// Per-tick CPU overhead of a takeover in progress, as a fraction of
/// capacity: a spike for the first [`CpuModel::takeover_spike_ticks`],
/// then the steady parallel-instance overhead.
pub fn takeover_overhead_fraction(model: &CpuModel, ticks_since_takeover_start: u64) -> f64 {
    if ticks_since_takeover_start < model.takeover_spike_ticks {
        model.parallel_instance_overhead + model.takeover_spike_overhead
    } else {
        model.parallel_instance_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_and_resets() {
        let model = CpuModel::default();
        let mut m = CpuMeter::default();
        m.charge(250.0);
        m.charge(250.0);
        assert!((m.utilization(&model) - 0.5).abs() < 1e-9);
        assert!((m.idle(&model) - 0.5).abs() < 1e-9);
        assert!(!m.saturated(&model));
        m.reset();
        assert_eq!(m.utilization(&model), 0.0);
    }

    #[test]
    fn saturation_clamps() {
        let model = CpuModel::default();
        let mut m = CpuMeter::default();
        m.charge(5_000.0);
        assert_eq!(m.utilization(&model), 1.0);
        assert!(m.saturated(&model));
        assert_eq!(m.idle(&model), 0.0);
    }

    #[test]
    fn handshake_costs_more_than_request() {
        // The Fig. 3b premise: rebuilding state is more expensive than
        // serving a request.
        let model = CpuModel::default();
        assert!(model.handshake_cost_ms > model.request_cost_ms);
    }

    #[test]
    fn takeover_spike_then_steady() {
        let model = CpuModel::default();
        let spike = takeover_overhead_fraction(&model, 0);
        let mid = takeover_overhead_fraction(&model, 30);
        let steady = takeover_overhead_fraction(&model, 100);
        assert_eq!(spike, mid);
        assert!(spike > steady);
        assert!((steady - 0.04).abs() < 1e-9);
        // §6.3: median (steady) below 5%.
        assert!(steady < 0.05);
    }
}

//! Loom model checks for the proxy's lock-free accounting: the sharded
//! connection gauge, the forced-close tally, and the load-shed gate.
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p zdr-proxy --test loom
//! --release`; without `--cfg loom` this file compiles to nothing. These
//! models justify the all-Relaxed ordering in `conn_tracker` and
//! `LoadShedGate`: every invariant below holds under exhaustive
//! interleaving without a single Acquire/Release pair.
#![cfg(loom)]

use loom::thread;
use std::sync::Arc;

use zdr_core::drain::CloseSignal;
use zdr_proxy::conn_tracker::ConnTracker;
use zdr_proxy::resilience::{LoadShedGate, ShedConfig};

/// Runs `f` under loom with a bounded number of preemptions
/// (`LOOM_MAX_PREEMPTIONS` overrides; see crates/core/tests/loom.rs).
fn model(f: impl Fn() + Send + Sync + 'static) {
    let mut builder = loom::model::Builder::new();
    if builder.preemption_bound.is_none() {
        builder.preemption_bound = Some(3);
    }
    builder.check(f);
}

/// The active gauge never drifts: guards registered and dropped on racing
/// threads always return the gauge to its pre-race value, and a snapshot
/// taken concurrently never tears below zero (each guard decrements the
/// exact shard it incremented).
#[test]
fn gauge_no_drift() {
    model(|| {
        let tracker = ConnTracker::new();
        let held = tracker.register(); // survives the race

        let handles: Vec<_> = (0..2)
            .map(|_| {
                let tracker = Arc::clone(&tracker);
                thread::spawn(move || {
                    let guard = tracker.register();
                    // A concurrent drain snapshot: the held guard keeps the
                    // floor at 1, and a shard sum can never underflow.
                    assert!(tracker.active() >= 1);
                    drop(guard);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        assert_eq!(tracker.active(), 1);
        assert_eq!(tracker.opened(), 3);
        drop(held);
        assert_eq!(tracker.active(), 0);
    });
}

/// Graceful close vs force close never double-counts: every guard leaves
/// the gauge exactly once, and `mark_forced` tallies at most once per
/// guard no matter how the marking thread interleaves with a graceful
/// drop on another thread.
#[test]
fn no_forced_double_count() {
    model(|| {
        let tracker = ConnTracker::new();

        let forced = {
            let tracker = Arc::clone(&tracker);
            thread::spawn(move || {
                // The drain deadline path: mark, then close. The repeated
                // mark is the idempotence the tally relies on.
                let mut guard = tracker.register();
                guard.mark_forced(CloseSignal::TcpReset);
                guard.mark_forced(CloseSignal::TcpReset);
            })
        };
        let graceful = {
            let tracker = Arc::clone(&tracker);
            thread::spawn(move || {
                // A connection finishing on its own, concurrently.
                let guard = tracker.register();
                drop(guard);
            })
        };
        forced.join().unwrap();
        graceful.join().unwrap();

        assert_eq!(tracker.active(), 0);
        assert_eq!(tracker.opened(), 2);
        assert_eq!(tracker.forced_closes(), 1);
        assert_eq!(tracker.forced_by(CloseSignal::TcpReset), 1);
    });
}

/// The shed tally equals the number of `true` decisions returned, even
/// with an operator flipping the limit off mid-race: no decision is
/// counted twice and no counted decision is lost.
#[test]
fn shed_count_consistency() {
    model(|| {
        let gate = Arc::new(LoadShedGate::new(ShedConfig {
            max_active: 1,
            ..ShedConfig::default()
        }));

        let deciders: Vec<_> = (0..2)
            .map(|_| {
                let gate = Arc::clone(&gate);
                thread::spawn(move || gate.should_shed(5))
            })
            .collect();
        let operator = {
            let gate = Arc::clone(&gate);
            thread::spawn(move || gate.set_max_active(0))
        };
        let shed_decisions = deciders
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|shed| *shed)
            .count() as u64;
        operator.join().unwrap();

        assert_eq!(gate.shed_count(), shed_decisions);
    });
}

//! Live admin scrape endpoint: a loopback HTTP/1.1 listener serving the
//! instance's [`crate::stats::StatsSnapshot`] while the proxy runs —
//! including *during* a takeover, which is the whole point: §2.5's
//! disruption evidence has to be observable from outside while the
//! release is in flight, not reconstructed from logs afterwards.
//!
//! Routes:
//!
//! * `GET /stats` — the full snapshot as JSON (counters, latency
//!   histograms, release phase timeline, config section + epoch);
//! * `GET /healthz` — `200 ok` while serving, `503 draining` once the
//!   drain signal fired (mirrors the VIP's `/proxygen/health` answer);
//! * `GET /metrics` — Prometheus-style text: every scalar counter as a
//!   gauge plus `_count`/`_sum`/quantile series per histogram;
//! * `POST /config/reload` — re-reads and publishes the config file via
//!   the wired [`ReloadFn`] ([`spawn_admin_with_reload`]): `200` with
//!   `{"epoch": n}` on success, `400` listing every validation error on
//!   refusal, `404` when the binary was started without `--config`;
//! * `GET /timeline` — the release-phase [`EventRing`] as JSON, each
//!   record carrying its linked `trace_id` (`0` = unlinked);
//! * `GET /traces` — the sampled span ring as JSON
//!   (`schemas/trace.schema.json`), rendered through the exhaustive
//!   [`kind_label`] match so the `span-kind-rendered` lint can prove
//!   every recorded [`SpanKind`] is visible here. `404` until a tracer
//!   is wired ([`spawn_admin_full`]).
//!
//! [`EventRing`]: zdr_core::telemetry::EventRing
//!
//! The listener binds loopback only: this is an operator/scraper surface,
//! never a VIP. It is deliberately not wired into the takeover inventory —
//! each generation runs its own admin endpoint on its own port, so both
//! sides of a release can be scraped at once.

use std::net::{Ipv4Addr, SocketAddr};
use std::sync::Arc;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

use zdr_core::admission::{StormReason, STORM_REASONS};
use zdr_core::telemetry::HistogramSnapshot;
use zdr_core::trace::{SpanKind, TraceSnapshot};
use zdr_proto::http1::{serialize_response, Method, RequestParser, Response, StatusCode};

use crate::stats::StatsSnapshot;

/// Produces the snapshot served by `/stats` and `/metrics`. Called per
/// request, so scrapes always see live values.
pub type SnapshotFn = dyn Fn() -> StatsSnapshot + Send + Sync;

/// Answers `/healthz`: `true` → 200, `false` → 503.
pub type HealthyFn = dyn Fn() -> bool + Send + Sync;

/// Handles `POST /config/reload`: re-read the config source and publish
/// it. `Ok(epoch)` on success; `Err` carries every validation error.
pub type ReloadFn = dyn Fn() -> Result<u64, Vec<String>> + Send + Sync;

/// Produces the span-ring snapshot served by `/traces`. Separate from
/// [`SnapshotFn`] because spans are per-request records, not aggregates —
/// the tracer deliberately stays out of [`StatsSnapshot`].
pub type TracesFn = dyn Fn() -> TraceSnapshot + Send + Sync;

/// A running admin endpoint; aborting (or dropping) the handle stops it.
pub struct AdminHandle {
    /// The bound loopback address (the port was 0 in tests).
    pub addr: SocketAddr,
    task: tokio::task::JoinHandle<()>,
}

impl std::fmt::Debug for AdminHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdminHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl AdminHandle {
    /// Stops accepting admin connections.
    pub fn abort(&self) {
        self.task.abort();
    }
}

impl Drop for AdminHandle {
    fn drop(&mut self) {
        self.task.abort();
    }
}

/// Binds `127.0.0.1:port` (0 picks a free port) and serves the read-only
/// admin routes until the handle is dropped. `POST /config/reload`
/// answers 404; wire a reload with [`spawn_admin_with_reload`].
pub async fn spawn_admin(
    port: u16,
    snapshot: impl Fn() -> StatsSnapshot + Send + Sync + 'static,
    healthy: impl Fn() -> bool + Send + Sync + 'static,
) -> std::io::Result<AdminHandle> {
    spawn_admin_inner(port, Arc::new(snapshot), Arc::new(healthy), None, None).await
}

/// [`spawn_admin`] plus the mutating route: `POST /config/reload` invokes
/// `reload` (re-read file → validate → publish) and reports the outcome.
pub async fn spawn_admin_with_reload(
    port: u16,
    snapshot: impl Fn() -> StatsSnapshot + Send + Sync + 'static,
    healthy: impl Fn() -> bool + Send + Sync + 'static,
    reload: Arc<ReloadFn>,
) -> std::io::Result<AdminHandle> {
    spawn_admin_inner(port, Arc::new(snapshot), Arc::new(healthy), Some(reload), None).await
}

/// The full surface: every read-only route, the reload route when a
/// [`ReloadFn`] is wired, and `/traces` when a [`TracesFn`] is wired.
pub async fn spawn_admin_full(
    port: u16,
    snapshot: impl Fn() -> StatsSnapshot + Send + Sync + 'static,
    healthy: impl Fn() -> bool + Send + Sync + 'static,
    reload: Option<Arc<ReloadFn>>,
    traces: Option<Arc<TracesFn>>,
) -> std::io::Result<AdminHandle> {
    spawn_admin_inner(port, Arc::new(snapshot), Arc::new(healthy), reload, traces).await
}

async fn spawn_admin_inner(
    port: u16,
    snapshot: Arc<SnapshotFn>,
    healthy: Arc<HealthyFn>,
    reload: Option<Arc<ReloadFn>>,
    traces: Option<Arc<TracesFn>>,
) -> std::io::Result<AdminHandle> {
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, port)).await?;
    let addr = listener.local_addr()?;
    let task = tokio::spawn(async move {
        loop {
            let Ok((stream, _)) = listener.accept().await else {
                break;
            };
            let snapshot = Arc::clone(&snapshot);
            let healthy = Arc::clone(&healthy);
            let reload = reload.clone();
            let traces = traces.clone();
            tokio::spawn(async move {
                let _ =
                    serve_conn(stream, &snapshot, &healthy, reload.as_ref(), traces.as_ref()).await;
            });
        }
    });
    Ok(AdminHandle { addr, task })
}

/// One admin connection: keep-alive request loop until EOF or error.
async fn serve_conn(
    mut stream: TcpStream,
    snapshot: &Arc<SnapshotFn>,
    healthy: &Arc<HealthyFn>,
    reload: Option<&Arc<ReloadFn>>,
    traces: Option<&Arc<TracesFn>>,
) -> std::io::Result<()> {
    let mut buf = [0u8; 8192];
    let mut parser = RequestParser::new();
    loop {
        let n = stream.read(&mut buf).await?;
        if n == 0 {
            return Ok(());
        }
        let request = match parser.push(&buf[..n]) {
            Ok(Some(req)) => req,
            Ok(None) => continue,
            Err(_) => {
                let resp = Response::new(StatusCode::from_code(400), "bad request\n");
                stream.write_all(&serialize_response(&resp)).await?;
                return Ok(());
            }
        };
        parser.reset();
        let response = route(
            request.method,
            request.target.as_str(),
            snapshot,
            healthy,
            reload,
            traces,
        );
        stream.write_all(&serialize_response(&response)).await?;
    }
}

fn route(
    method: Method,
    target: &str,
    snapshot: &Arc<SnapshotFn>,
    healthy: &Arc<HealthyFn>,
    reload: Option<&Arc<ReloadFn>>,
    traces: Option<&Arc<TracesFn>>,
) -> Response {
    // Strip a query string; scrapers commonly append cache-busters.
    let path = target.split('?').next().unwrap_or(target);
    if path == "/config/reload" {
        // The one mutating route: POST only, so a stray scraper GET can
        // never trigger a reload.
        if method != Method::Post {
            return Response::new(StatusCode::from_code(405), "POST only\n");
        }
        let Some(reload) = reload else {
            return Response::new(
                StatusCode::from_code(404),
                "no config file wired (start with --config)\n",
            );
        };
        return match reload() {
            Ok(epoch) => {
                let mut resp = Response::ok(format!("{{\"epoch\":{epoch}}}\n"));
                resp.headers.set("content-type", "application/json");
                resp
            }
            Err(errors) => {
                let mut body = String::from("config rejected:\n");
                for e in &errors {
                    body.push_str("  ");
                    body.push_str(e);
                    body.push('\n');
                }
                Response::new(StatusCode::from_code(400), body)
            }
        };
    }
    match path {
        "/stats" => {
            let snap = snapshot();
            match serde_json::to_vec(&snap) {
                Ok(body) => {
                    let mut resp = Response::ok(body);
                    resp.headers.set("content-type", "application/json");
                    resp
                }
                Err(_) => Response::internal_error(),
            }
        }
        "/healthz" => {
            if healthy() {
                Response::ok("ok\n")
            } else {
                Response::new(StatusCode::service_unavailable(), "draining\n")
            }
        }
        "/metrics" => {
            let mut resp = Response::ok(render_prometheus(&snapshot()));
            resp.headers
                .set("content-type", "text/plain; version=0.0.4");
            resp
        }
        "/timeline" => {
            // The EventRing alone (it also rides /stats inside the full
            // snapshot): one record per release phase, each linked to its
            // trace via `trace_id` where a sampled request was involved.
            match serde_json::to_vec(&snapshot().telemetry.timeline) {
                Ok(body) => {
                    let mut resp = Response::ok(body);
                    resp.headers.set("content-type", "application/json");
                    resp
                }
                Err(_) => Response::internal_error(),
            }
        }
        "/traces" => {
            let Some(traces) = traces else {
                return Response::new(StatusCode::from_code(404), "no tracer wired\n");
            };
            match serde_json::to_vec(&render_traces(&traces())) {
                Ok(body) => {
                    let mut resp = Response::ok(body);
                    resp.headers.set("content-type", "application/json");
                    resp
                }
                Err(_) => Response::internal_error(),
            }
        }
        _ => Response::new(StatusCode::from_code(404), "not found\n"),
    }
}

/// The `/traces` body (`schemas/trace.schema.json`): ring counters plus
/// every span, each rendered through [`kind_label`].
pub fn render_traces(snap: &TraceSnapshot) -> serde_json::Value {
    serde_json::json!({
        "sample_every": snap.sample_every,
        "recorded": snap.recorded,
        "dropped": snap.dropped,
        "spans": snap
            .spans
            .iter()
            .map(|s| {
                serde_json::json!({
                    "trace_id": s.trace_id,
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    "kind": kind_label(s.kind),
                    "generation": s.generation,
                    "start_us": s.start_us,
                    "end_us": s.end_us,
                    "detail": s.detail,
                })
            })
            .collect::<Vec<_>>(),
    })
}

/// The `/traces` label for one span kind. An exhaustive match (not
/// [`SpanKind::name`]) so adding a variant breaks the build here — the
/// linter (rule `span-kind-rendered`) additionally checks that every kind
/// recorded anywhere in the workspace has its label in this file.
pub fn kind_label(kind: SpanKind) -> &'static str {
    match kind {
        SpanKind::Request => "request",
        SpanKind::Admission => "admission",
        SpanKind::Protection => "protection",
        SpanKind::Shed => "shed",
        SpanKind::BreakerAdmit => "breaker_admit",
        SpanKind::RetryAttempt => "retry_attempt",
        SpanKind::UpstreamConnect => "upstream_connect",
        SpanKind::Forward => "forward",
        SpanKind::TakeoverPause => "takeover_pause",
        SpanKind::TrunkStream => "trunk_stream",
        SpanKind::Tunnel => "tunnel",
        SpanKind::QuicDelivery => "quic_delivery",
    }
}

/// Renders a snapshot as Prometheus exposition text: every scalar counter
/// becomes `zdr_<field>`, every histogram contributes `_count`, `_sum`,
/// and p50/p90/p99/p999 quantile series.
pub fn render_prometheus(snap: &StatsSnapshot) -> String {
    let mut out = String::new();
    // The serde view *is* the counter inventory (the xtask linter keeps it
    // exhaustive), so flattening it covers every scalar without a
    // hand-maintained field list here.
    if let Ok(serde_json::Value::Object(map)) = serde_json::to_value(snap) {
        for (key, value) in &map {
            if let Some(n) = value.as_u64() {
                out.push_str("zdr_");
                out.push_str(key);
                out.push(' ');
                out.push_str(&n.to_string());
                out.push('\n');
            }
        }
    }
    // Storm-protection reason as one labelled series per variant, so a
    // scraper alerts on `zdr_protection_reason_active{reason="..."}`
    // without decoding the numeric `zdr_protection_reason` gauge. At most
    // one variant is 1 (the engaged reason); all are 0 when disarmed. The
    // repo linter (rule `protection-reason-rendered`) checks every
    // [`StormReason`] variant has its label here.
    for reason in STORM_REASONS {
        let active = snap.protection_engaged == 1 && snap.protection_reason == reason.code();
        out.push_str(&format!(
            "zdr_protection_reason_active{{reason=\"{}\"}} {}\n",
            reason_label(reason),
            u64::from(active)
        ));
    }
    let t = &snap.telemetry;
    for (name, h) in [
        ("request_latency_us", &t.request_latency_us),
        ("upstream_connect_us", &t.upstream_connect_us),
        ("takeover_pause_us", &t.takeover_pause_us),
        ("drain_duration_ms", &t.drain_duration_ms),
    ] {
        render_histogram(&mut out, name, h);
    }
    out.push_str(&format!(
        "zdr_timeline_events {}\nzdr_timeline_dropped {}\n",
        t.timeline.events.len(),
        t.timeline.dropped
    ));
    out
}

/// The `/metrics` label for one storm reason. An exhaustive match (not
/// [`StormReason::name`]) so adding a variant breaks the build here — the
/// linter additionally checks each label string appears in this file.
fn reason_label(reason: StormReason) -> &'static str {
    match reason {
        StormReason::TimeoutStorm => "timeout_storm",
        StormReason::RefusedStorm => "refused_storm",
        StormReason::ResetStorm => "reset_storm",
        StormReason::ConnectFlood => "connect_flood",
    }
}

fn render_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    out.push_str(&format!("zdr_{name}_count {}\n", h.count));
    out.push_str(&format!("zdr_{name}_sum {}\n", h.sum));
    for (p, label) in [
        (50.0, "0.5"),
        (90.0, "0.9"),
        (99.0, "0.99"),
        (99.9, "0.999"),
    ] {
        if let Some(v) = h.percentile(p) {
            out.push_str(&format!("zdr_{name}{{quantile=\"{label}\"}} {v}\n"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ProxyStats;
    use zdr_core::telemetry::ReleasePhase;
    use zdr_proto::http1::{serialize_request, Request, ResponseParser};

    async fn get(addr: SocketAddr, target: &str) -> Response {
        roundtrip(addr, Request::get(target)).await
    }

    async fn post(addr: SocketAddr, target: &str) -> Response {
        roundtrip(addr, Request::post(target, "")).await
    }

    async fn roundtrip(addr: SocketAddr, request: Request) -> Response {
        let mut stream = TcpStream::connect(addr).await.unwrap();
        stream
            .write_all(&serialize_request(&request))
            .await
            .unwrap();
        let mut parser = ResponseParser::new();
        let mut buf = [0u8; 65536];
        loop {
            let n = stream.read(&mut buf).await.unwrap();
            assert!(n > 0, "admin endpoint closed mid-response");
            if let Some(resp) = parser.push(&buf[..n]).unwrap() {
                return resp;
            }
        }
    }

    #[tokio::test]
    async fn stats_route_serves_live_snapshot_with_telemetry() {
        let stats = Arc::new(ProxyStats::default());
        stats.requests_ok.bump();
        stats.telemetry.request_latency_us.record(250);
        stats.telemetry.event(ReleasePhase::Bind, 0, "addr=test");
        let scrape_stats = Arc::clone(&stats);
        let admin = spawn_admin(0, move || scrape_stats.snapshot(), || true)
            .await
            .unwrap();

        let resp = get(admin.addr, "/stats").await;
        assert_eq!(resp.status.code, 200);
        let snap: StatsSnapshot = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(snap.requests_ok, 1);
        assert_eq!(snap.telemetry.request_latency_us.count, 1);
        assert_eq!(snap.telemetry.timeline.events.len(), 1);

        // Live: a later scrape sees later counts over the same keep-alive
        // semantics (fresh connection here for simplicity).
        stats.requests_ok.bump();
        let resp = get(admin.addr, "/stats").await;
        let snap: StatsSnapshot = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(snap.requests_ok, 2);
    }

    #[tokio::test]
    async fn healthz_flips_with_the_health_closure() {
        let healthy = Arc::new(zdr_core::sync::AtomicU64::new(1));
        let h = Arc::clone(&healthy);
        let admin = spawn_admin(
            0,
            || StatsSnapshot::default(),
            move || h.load(zdr_core::sync::Ordering::Acquire) == 1,
        )
        .await
        .unwrap();

        assert_eq!(get(admin.addr, "/healthz").await.status.code, 200);
        healthy.store(0, zdr_core::sync::Ordering::Release);
        assert_eq!(get(admin.addr, "/healthz").await.status.code, 503);
        assert_eq!(get(admin.addr, "/nope").await.status.code, 404);
    }

    #[tokio::test]
    async fn metrics_route_renders_counters_and_histogram_series() {
        let stats = Arc::new(ProxyStats::default());
        stats.requests_ok.add(7);
        for v in [100u64, 200, 300, 4000] {
            stats.telemetry.request_latency_us.record(v);
        }
        let scrape_stats = Arc::clone(&stats);
        let admin = spawn_admin(0, move || scrape_stats.snapshot(), || true)
            .await
            .unwrap();

        let resp = get(admin.addr, "/metrics").await;
        assert_eq!(resp.status.code, 200);
        let text = String::from_utf8(resp.body.to_vec()).unwrap();
        assert!(text.contains("zdr_requests_ok 7"), "{text}");
        assert!(text.contains("zdr_request_latency_us_count 4"), "{text}");
        assert!(
            text.contains("zdr_request_latency_us{quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(text.contains("zdr_timeline_events 0"), "{text}");
    }

    #[tokio::test]
    async fn metrics_route_renders_every_protection_reason_variant() {
        let stats = Arc::new(ProxyStats::default());
        stats.admit_rejected.add(3);
        let scrape_stats = Arc::clone(&stats);
        let admin = spawn_admin(0, move || scrape_stats.snapshot(), || true)
            .await
            .unwrap();

        // Disarmed: every reason label present and 0, admission counters
        // ride the generic scalar flattening.
        let text = String::from_utf8(get(admin.addr, "/metrics").await.body.to_vec()).unwrap();
        assert!(text.contains("zdr_admit_rejected 3"), "{text}");
        assert!(text.contains("zdr_protection_engaged 0"), "{text}");
        for label in [
            "timeout_storm",
            "refused_storm",
            "reset_storm",
            "connect_flood",
        ] {
            assert!(
                text.contains(&format!("zdr_protection_reason_active{{reason=\"{label}\"}} 0")),
                "{label} missing or nonzero while disarmed: {text}"
            );
        }

        // Armed: exactly the engaged reason flips to 1.
        stats
            .protection
            .observe_window(Some(StormReason::RefusedStorm), 3);
        let text = String::from_utf8(get(admin.addr, "/metrics").await.body.to_vec()).unwrap();
        assert!(text.contains("zdr_protection_engaged 1"), "{text}");
        assert!(
            text.contains("zdr_protection_reason_active{reason=\"refused_storm\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("zdr_protection_reason_active{reason=\"timeout_storm\"} 0"),
            "{text}"
        );
    }

    #[tokio::test]
    async fn traces_route_renders_spans_and_timeline_links_trace_ids() {
        let stats = Arc::new(ProxyStats::default());
        let tracer = &stats.telemetry.tracer;
        tracer.set_sample_every(1);
        let active = tracer.begin(None).expect("sampled");
        tracer.child_span(
            active,
            zdr_core::trace::SpanKind::UpstreamConnect,
            100,
            250,
            "upstream=test".into(),
        );
        tracer.root_span(
            active,
            zdr_core::trace::SpanKind::Request,
            50,
            400,
            "/ status=200".into(),
        );
        stats.telemetry.event_traced(
            ReleasePhase::FdPass,
            3,
            active.trace_id,
            "pause_us=10".into(),
        );

        let scrape = Arc::clone(&stats);
        let trace_stats = Arc::clone(&stats);
        let admin = spawn_admin_full(
            0,
            move || scrape.snapshot(),
            || true,
            None,
            Some(Arc::new(move || {
                trace_stats.telemetry.tracer.snapshot()
            })),
        )
        .await
        .unwrap();

        let resp = get(admin.addr, "/traces").await;
        assert_eq!(resp.status.code, 200);
        assert_eq!(resp.headers.get("content-type"), Some("application/json"));
        let body: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(body["recorded"], 2);
        assert_eq!(body["sample_every"], 1);
        let spans = body["spans"].as_array().unwrap();
        assert_eq!(spans.len(), 2);
        let root = spans
            .iter()
            .find(|s| s["kind"] == "request")
            .expect("request span rendered");
        assert_eq!(root["parent_id"], 0);
        let child = spans
            .iter()
            .find(|s| s["kind"] == "upstream_connect")
            .expect("upstream_connect span rendered");
        assert_eq!(child["parent_id"], root["span_id"]);
        assert_eq!(child["trace_id"], root["trace_id"]);

        // /timeline serves the EventRing with the trace link intact.
        let resp = get(admin.addr, "/timeline").await;
        assert_eq!(resp.status.code, 200);
        let tl: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        let events = tl["events"].as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0]["trace_id"], root["trace_id"]);
        assert_eq!(events[0]["phase"], "fd_pass");
    }

    #[tokio::test]
    async fn traces_route_answers_404_when_no_tracer_is_wired() {
        let admin = spawn_admin(0, StatsSnapshot::default, || true).await.unwrap();
        let resp = get(admin.addr, "/traces").await;
        assert_eq!(resp.status.code, 404);
        let body = String::from_utf8(resp.body.to_vec()).unwrap();
        assert!(body.contains("tracer"), "{body}");
        // /timeline needs only the stats closure, so it is always served.
        assert_eq!(get(admin.addr, "/timeline").await.status.code, 200);
    }

    #[tokio::test]
    async fn config_reload_answers_404_when_no_reload_is_wired() {
        let admin = spawn_admin(0, StatsSnapshot::default, || true).await.unwrap();
        let resp = post(admin.addr, "/config/reload").await;
        assert_eq!(resp.status.code, 404);
        let body = String::from_utf8(resp.body.to_vec()).unwrap();
        assert!(body.contains("--config"), "{body}");
    }

    #[tokio::test]
    async fn config_reload_reports_epoch_on_success_and_errors_on_refusal() {
        // Odd calls succeed with a bumped epoch; even calls are rejected —
        // exercises both arms over one wired ReloadFn.
        let calls = Arc::new(zdr_core::sync::AtomicU64::new(0));
        let c = Arc::clone(&calls);
        let reload: Arc<ReloadFn> = Arc::new(move || {
            let n = c.fetch_add(1, zdr_core::sync::Ordering::AcqRel);
            if n % 2 == 0 {
                Ok(n + 2)
            } else {
                Err(vec![
                    "breaker.failure_threshold: 0 out of range 1..=1048576".into(),
                    "budget.reserve_tokens: exceeds budget.max_tokens".into(),
                ])
            }
        });
        let admin = spawn_admin_with_reload(0, StatsSnapshot::default, || true, reload)
            .await
            .unwrap();

        let resp = post(admin.addr, "/config/reload").await;
        assert_eq!(resp.status.code, 200);
        assert_eq!(resp.headers.get("content-type"), Some("application/json"));
        assert_eq!(&resp.body[..], b"{\"epoch\":2}\n");

        let resp = post(admin.addr, "/config/reload").await;
        assert_eq!(resp.status.code, 400);
        let body = String::from_utf8(resp.body.to_vec()).unwrap();
        assert!(body.contains("failure_threshold"), "{body}");
        assert!(body.contains("reserve_tokens"), "{body}");

        // The mutating route is POST-only; a scraper GET can't reload.
        let resp = get(admin.addr, "/config/reload").await;
        assert_eq!(resp.status.code, 405);
        assert_eq!(calls.load(zdr_core::sync::Ordering::Acquire), 2);
    }
}

//! The Edge↔Origin trunk: multiplexed streams over one TCP connection
//! with GOAWAY graceful drain.
//!
//! §2.2: "Edge and Origin maintain long-lived HTTP/2 connections over
//! which user requests and MQTT connections are forwarded." §4.1:
//! "Leveraging GOAWAY, they are gracefully terminated over the draining
//! period and the two establish new connections to tunnel user
//! connections and requests without end-user disruption."
//!
//! This module runs the [`zdr_proto::h2`] framing over real sockets: many
//! logical streams on one TCP connection, and — the release-relevant part
//! — a drain that refuses new streams while every in-flight stream runs
//! to completion ([`TrunkHandle::goaway`] / [`TrunkHandle::drained`]).
//!
//! The trunk is a *transport*, below the unified [`crate::service`]
//! layer: services built on trunks (e.g. [`crate::mqtt_relay_trunk`])
//! drive `goaway()` from their [`crate::service::DrainState`] drain
//! signal, so GOAWAY is the H2-level close signal of the one shared
//! lifecycle rather than a private drain implementation.

use std::collections::HashMap;

use zdr_core::sync::{Arc, AtomicUsize, Ordering};

use bytes::Bytes;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;
use tokio::sync::{mpsc, oneshot, watch};

use zdr_core::clock::unix_now_ms;
use zdr_proto::deadline::Deadline;
use zdr_proto::h2::{self, ErrorCode, Frame, Multiplexer};

/// Events surfaced to a stream consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// Payload bytes from the peer.
    Data(Bytes),
    /// The peer half-closed: no more data will arrive.
    End,
    /// The stream was reset.
    Reset,
}

/// A logical stream on the trunk.
#[derive(Debug)]
pub struct TrunkStream {
    /// The h2 stream id.
    pub id: u32,
    /// Headers the stream was opened with.
    pub headers: Vec<(String, String)>,
    cmd: mpsc::Sender<Cmd>,
    events: mpsc::Receiver<StreamEvent>,
}

impl TrunkStream {
    /// Sends payload bytes on the stream.
    pub async fn send(&self, data: impl Into<Bytes>) -> Result<(), TrunkError> {
        self.cmd
            .send(Cmd::Send {
                id: self.id,
                data: data.into(),
                end: false,
            })
            .await
            .map_err(|_| TrunkError::ConnectionClosed)
    }

    /// Half-closes the stream (END_STREAM).
    pub async fn finish(&self) -> Result<(), TrunkError> {
        self.cmd
            .send(Cmd::Send {
                id: self.id,
                data: Bytes::new(),
                end: true,
            })
            .await
            .map_err(|_| TrunkError::ConnectionClosed)
    }

    /// Receives the next event; `None` when the stream (or trunk) is gone.
    pub async fn recv(&mut self) -> Option<StreamEvent> {
        self.events.recv().await
    }
}

/// Trunk-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrunkError {
    /// The peer (or we) are draining: no new streams (retry on a new
    /// trunk — exactly what Edge/Origin do during a release).
    Draining,
    /// The connection task is gone.
    ConnectionClosed,
    /// Protocol violation from the peer.
    Protocol(String),
}

impl std::fmt::Display for TrunkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrunkError::Draining => write!(f, "trunk is draining (GOAWAY)"),
            TrunkError::ConnectionClosed => write!(f, "trunk connection closed"),
            TrunkError::Protocol(m) => write!(f, "trunk protocol error: {m}"),
        }
    }
}

impl std::error::Error for TrunkError {}

enum Cmd {
    Open {
        headers: Vec<(String, String)>,
        reply: oneshot::Sender<Result<TrunkStream, TrunkError>>,
    },
    Send {
        id: u32,
        data: Bytes,
        end: bool,
    },
    GoAway,
}

/// Handle to one side of a trunk connection.
#[derive(Debug, Clone)]
pub struct TrunkHandle {
    cmd: mpsc::Sender<Cmd>,
    drained: watch::Receiver<bool>,
    peer_draining: watch::Receiver<bool>,
    active: Arc<AtomicUsize>,
}

impl TrunkHandle {
    /// Opens a new stream with the given headers.
    pub async fn open_stream(
        &self,
        headers: Vec<(String, String)>,
    ) -> Result<TrunkStream, TrunkError> {
        let (reply, rx) = oneshot::channel();
        self.cmd
            .send(Cmd::Open { headers, reply })
            .await
            .map_err(|_| TrunkError::ConnectionClosed)?;
        rx.await.map_err(|_| TrunkError::ConnectionClosed)?
    }

    /// Begins graceful drain: sends GOAWAY; the peer's new streams are
    /// refused while existing ones finish.
    pub async fn goaway(&self) -> Result<(), TrunkError> {
        self.cmd
            .send(Cmd::GoAway)
            .await
            .map_err(|_| TrunkError::ConnectionClosed)
    }

    /// Resolves when the trunk is draining and every admitted stream has
    /// completed — the zero-disruption close point.
    pub async fn drained(&self) -> bool {
        let mut rx = self.drained.clone();
        loop {
            if *rx.borrow() {
                return true;
            }
            if rx.changed().await.is_err() {
                return *rx.borrow();
            }
        }
    }

    /// Live streams on this side.
    pub fn active_streams(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// True once the peer has sent GOAWAY — the §4.2 "restart incoming"
    /// signal a relay watches to begin re-homing tunnels.
    pub fn peer_is_draining(&self) -> bool {
        *self.peer_draining.borrow()
    }

    /// A watch that flips to true when the peer sends GOAWAY.
    pub fn peer_draining_watch(&self) -> watch::Receiver<bool> {
        self.peer_draining.clone()
    }
}

/// Establishes the client (stream-initiating, e.g. Edge) side of a trunk.
/// The TCP dial is bounded by `deadline`: a black-holed Origin yields
/// `TimedOut` instead of stalling tunnel establishment indefinitely.
pub async fn connect(
    addr: std::net::SocketAddr,
    deadline: Deadline,
) -> std::io::Result<(TrunkHandle, mpsc::Receiver<TrunkStream>)> {
    let timed_out = || {
        std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "trunk connect deadline expired",
        )
    };
    let remaining = deadline.remaining(unix_now_ms()).ok_or_else(timed_out)?;
    let stream = tokio::time::timeout(remaining, TcpStream::connect(addr))
        .await
        .map_err(|_| timed_out())??;
    Ok(spawn_connection(stream, Multiplexer::client()))
}

/// Wraps an accepted TCP connection as the server side of a trunk.
pub fn accept(stream: TcpStream) -> (TrunkHandle, mpsc::Receiver<TrunkStream>) {
    spawn_connection(stream, Multiplexer::server())
}

fn spawn_connection(
    stream: TcpStream,
    mux: Multiplexer,
) -> (TrunkHandle, mpsc::Receiver<TrunkStream>) {
    let (cmd_tx, cmd_rx) = mpsc::channel(256);
    let (incoming_tx, incoming_rx) = mpsc::channel(64);
    let (drained_tx, drained_rx) = watch::channel(false);
    let (peer_draining_tx, peer_draining_rx) = watch::channel(false);
    let active = Arc::new(AtomicUsize::new(0));
    let handle = TrunkHandle {
        cmd: cmd_tx.clone(),
        drained: drained_rx,
        peer_draining: peer_draining_rx,
        active: Arc::clone(&active),
    };
    tokio::spawn(connection_task(
        stream,
        mux,
        cmd_tx,
        cmd_rx,
        incoming_tx,
        drained_tx,
        peer_draining_tx,
        active,
    ));
    (handle, incoming_rx)
}

// ALLOW: the connection task owns every channel end the handle and the
// mux need; packing them into a struct would only rename the arg list.
#[allow(clippy::too_many_arguments)]
async fn connection_task(
    stream: TcpStream,
    mut mux: Multiplexer,
    cmd_tx: mpsc::Sender<Cmd>,
    mut cmd_rx: mpsc::Receiver<Cmd>,
    incoming_tx: mpsc::Sender<TrunkStream>,
    drained_tx: watch::Sender<bool>,
    peer_draining_tx: watch::Sender<bool>,
    active: Arc<AtomicUsize>,
) {
    let (mut rd, mut wr) = stream.into_split();
    let mut streams: HashMap<u32, mpsc::Sender<StreamEvent>> = HashMap::new();
    let mut read_buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];

    let update_drained = |mux: &Multiplexer, drained_tx: &watch::Sender<bool>| {
        if mux.drained() {
            let _ = drained_tx.send(true);
        }
    };

    loop {
        tokio::select! {
            cmd = cmd_rx.recv() => {
                let Some(cmd) = cmd else { return };
                match cmd {
                    Cmd::Open { headers, reply } => {
                        match mux.open_stream() {
                            Ok(id) => {
                                let frame = Frame::Headers {
                                    stream_id: id,
                                    headers: headers.clone(),
                                    end_stream: false,
                                };
                                let Ok(wire) = h2::encode(&frame) else {
                                    let _ = reply.send(Err(TrunkError::Protocol(
                                        "unencodable headers".into(),
                                    )));
                                    continue;
                                };
                                if wr.write_all(&wire).await.is_err() {
                                    let _ = reply.send(Err(TrunkError::ConnectionClosed));
                                    return;
                                }
                                let (tx, rx) = mpsc::channel(256);
                                streams.insert(id, tx);
                                active.store(streams.len(), Ordering::Relaxed);
                                let _ = reply.send(Ok(TrunkStream {
                                    id,
                                    headers,
                                    cmd: cmd_tx.clone(),
                                    events: rx,
                                }));
                            }
                            Err(_) => {
                                let _ = reply.send(Err(TrunkError::Draining));
                            }
                        }
                    }
                    Cmd::Send { id, data, end } => {
                        // Sending on a stream the mux no longer tracks is a
                        // no-op (it was reset or orphaned by GOAWAY).
                        if mux.stream_state(id).is_none() {
                            continue;
                        }
                        if !data.is_empty() || end {
                            let frame = Frame::Data { stream_id: id, data, end_stream: end };
                            let Ok(wire) = h2::encode(&frame) else { continue };
                            if wr.write_all(&wire).await.is_err() {
                                return;
                            }
                        }
                        if end {
                            let _ = mux.local_end(id);
                            if mux.stream_state(id).is_none() {
                                streams.remove(&id);
                                active.store(streams.len(), Ordering::Relaxed);
                            }
                            update_drained(&mux, &drained_tx);
                        }
                    }
                    Cmd::GoAway => {
                        let frame = mux.send_goaway(ErrorCode::NoError);
                        if let Ok(wire) = h2::encode(&frame) {
                            let _ = wr.write_all(&wire).await;
                        }
                        update_drained(&mux, &drained_tx);
                    }
                }
            }
            read = rd.read(&mut chunk) => {
                let n = match read {
                    Ok(0) | Err(_) => {
                        // Peer gone: every stream sees Reset.
                        for (_, tx) in streams.drain() {
                            let _ = tx.try_send(StreamEvent::Reset);
                        }
                        active.store(0, Ordering::Relaxed);
                        return;
                    }
                    Ok(n) => n,
                };
                read_buf.extend_from_slice(&chunk[..n]);
                loop {
                    match h2::decode(&read_buf) {
                        Ok((frame, consumed)) => {
                            read_buf.drain(..consumed);
                            if matches!(frame, Frame::GoAway { .. }) {
                                let _ = peer_draining_tx.send(true);
                            }
                            if handle_frame(
                                frame,
                                &mut mux,
                                &mut streams,
                                &cmd_tx,
                                &incoming_tx,
                                &mut wr,
                                &active,
                            )
                            .await
                            .is_err()
                            {
                                return;
                            }
                            update_drained(&mux, &drained_tx);
                        }
                        Err(e) if e.is_incomplete() => break,
                        Err(_) => {
                            // Protocol violation: hard-close.
                            for (_, tx) in streams.drain() {
                                let _ = tx.try_send(StreamEvent::Reset);
                            }
                            return;
                        }
                    }
                }
            }
        }
    }
}

async fn handle_frame(
    frame: Frame,
    mux: &mut Multiplexer,
    streams: &mut HashMap<u32, mpsc::Sender<StreamEvent>>,
    cmd_tx: &mpsc::Sender<Cmd>,
    incoming_tx: &mpsc::Sender<TrunkStream>,
    wr: &mut tokio::net::tcp::OwnedWriteHalf,
    active: &Arc<AtomicUsize>,
) -> Result<(), ()> {
    match frame {
        Frame::Headers {
            stream_id,
            headers,
            end_stream,
        } => {
            match mux.admit_peer_stream(stream_id) {
                Ok(true) => {
                    let (tx, rx) = mpsc::channel(256);
                    streams.insert(stream_id, tx);
                    active.store(streams.len(), Ordering::Relaxed);
                    let stream = TrunkStream {
                        id: stream_id,
                        headers,
                        cmd: cmd_tx.clone(),
                        events: rx,
                    };
                    let _ = incoming_tx.send(stream).await;
                    if end_stream {
                        let _ = mux.peer_end(stream_id);
                        if let Some(tx) = streams.get(&stream_id) {
                            let _ = tx.try_send(StreamEvent::End);
                        }
                    }
                }
                Ok(false) => {
                    // Draining: refuse so the peer retries on a new trunk.
                    let rst = Frame::RstStream {
                        stream_id,
                        code: ErrorCode::RefusedStream,
                    };
                    if let Ok(wire) = h2::encode(&rst) {
                        let _ = wr.write_all(&wire).await;
                    }
                }
                Err(_) => return Err(()),
            }
        }
        Frame::Data {
            stream_id,
            data,
            end_stream,
        } => {
            if let Some(tx) = streams.get(&stream_id) {
                if !data.is_empty() {
                    let _ = tx.send(StreamEvent::Data(data)).await;
                }
                if end_stream {
                    let _ = tx.send(StreamEvent::End).await;
                }
            }
            if end_stream {
                let _ = mux.peer_end(stream_id);
                if mux.stream_state(stream_id).is_none() {
                    streams.remove(&stream_id);
                    active.store(streams.len(), Ordering::Relaxed);
                }
            }
        }
        Frame::RstStream { stream_id, .. } => {
            mux.reset_stream(stream_id);
            if let Some(tx) = streams.remove(&stream_id) {
                let _ = tx.try_send(StreamEvent::Reset);
                active.store(streams.len(), Ordering::Relaxed);
            }
        }
        Frame::GoAway { last_stream_id, .. } => {
            mux.receive_goaway(last_stream_id);
            // Orphaned streams (never processed by the peer) see Reset and
            // are safe to retry on a new trunk.
            let orphaned: Vec<u32> = streams
                .keys()
                .copied()
                .filter(|id| mux.stream_state(*id).is_none())
                .collect();
            for id in orphaned {
                if let Some(tx) = streams.remove(&id) {
                    let _ = tx.try_send(StreamEvent::Reset);
                }
            }
            active.store(streams.len(), Ordering::Relaxed);
        }
        Frame::Ping { ack: false, data } => {
            let pong = Frame::Ping { ack: true, data };
            if let Ok(wire) = h2::encode(&pong) {
                let _ = wr.write_all(&wire).await;
            }
        }
        Frame::Ping { ack: true, .. } | Frame::Settings { .. } | Frame::WindowUpdate { .. } => {}
    }
    Ok(())
}

// not(loom): these tests drive real sockets and tokio tasks.
#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::time::Duration;

    async fn trunk_pair() -> (
        TrunkHandle,
        mpsc::Receiver<TrunkStream>,
        TrunkHandle,
        mpsc::Receiver<TrunkStream>,
    ) {
        let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let server_task = tokio::spawn(async move {
            let (stream, _) = listener.accept().await.unwrap();
            accept(stream)
        });
        let (client, client_incoming) = connect(addr).await.unwrap();
        let (server, server_incoming) = server_task.await.unwrap();
        (client, client_incoming, server, server_incoming)
    }

    async fn expect_data(stream: &mut TrunkStream) -> Bytes {
        match tokio::time::timeout(Duration::from_secs(5), stream.recv())
            .await
            .expect("event timeout")
        {
            Some(StreamEvent::Data(d)) => d,
            other => panic!("expected Data, got {other:?}"),
        }
    }

    #[tokio::test]
    async fn stream_round_trip() {
        let (client, _ci, _server, mut server_incoming) = trunk_pair().await;

        let mut stream = client
            .open_stream(vec![(":path".into(), "/tunnel/1".into())])
            .await
            .unwrap();
        let mut peer = tokio::time::timeout(Duration::from_secs(5), server_incoming.recv())
            .await
            .unwrap()
            .unwrap();
        assert_eq!(peer.id, stream.id);
        assert_eq!(peer.headers[0].1, "/tunnel/1");

        stream.send(&b"hello over the trunk"[..]).await.unwrap();
        assert_eq!(&expect_data(&mut peer).await[..], b"hello over the trunk");

        peer.send(&b"reply"[..]).await.unwrap();
        assert_eq!(&expect_data(&mut stream).await[..], b"reply");

        stream.finish().await.unwrap();
        assert_eq!(
            tokio::time::timeout(Duration::from_secs(5), peer.recv())
                .await
                .unwrap(),
            Some(StreamEvent::End)
        );
    }

    #[tokio::test]
    async fn many_concurrent_streams_multiplex() {
        let (client, _ci, _server, mut server_incoming) = trunk_pair().await;

        let mut client_streams = Vec::new();
        for i in 0..20 {
            let s = client
                .open_stream(vec![("tunnel".into(), format!("t{i}"))])
                .await
                .unwrap();
            client_streams.push(s);
        }
        // Echo server over incoming streams.
        tokio::spawn(async move {
            while let Some(mut s) = server_incoming.recv().await {
                tokio::spawn(async move {
                    while let Some(ev) = s.recv().await {
                        match ev {
                            StreamEvent::Data(d) => {
                                let _ = s.send(d).await;
                            }
                            _ => break,
                        }
                    }
                });
            }
        });

        for (i, s) in client_streams.iter_mut().enumerate() {
            s.send(format!("payload-{i}").into_bytes()).await.unwrap();
        }
        for (i, s) in client_streams.iter_mut().enumerate() {
            let d = expect_data(s).await;
            assert_eq!(&d[..], format!("payload-{i}").as_bytes());
        }
    }

    #[tokio::test]
    async fn goaway_drains_without_stream_loss() {
        let (client, _ci, server, mut server_incoming) = trunk_pair().await;

        // Two live tunnels.
        let s1 = client.open_stream(vec![]).await.unwrap();
        let s2 = client.open_stream(vec![]).await.unwrap();
        let mut p1 = server_incoming.recv().await.unwrap();
        let mut p2 = server_incoming.recv().await.unwrap();

        // Origin restarts: GOAWAY on the trunk.
        server.goaway().await.unwrap();
        tokio::time::sleep(Duration::from_millis(100)).await;

        // New streams are refused — the Edge retries on a new trunk.
        let refused = client.open_stream(vec![]).await;
        // The client may not have seen the GOAWAY yet; opening then gets
        // RST(REFUSED). Either the open fails fast or the stream is reset.
        if let Ok(mut s3) = refused {
            match tokio::time::timeout(Duration::from_secs(5), s3.recv())
                .await
                .unwrap()
            {
                Some(StreamEvent::Reset) | None => {}
                other => panic!("expected refusal, got {other:?}"),
            }
        }

        // Existing streams complete with zero loss.
        s1.send(&b"drain-1"[..]).await.unwrap();
        s2.send(&b"drain-2"[..]).await.unwrap();
        assert_eq!(&expect_data(&mut p1).await[..], b"drain-1");
        assert_eq!(&expect_data(&mut p2).await[..], b"drain-2");
        for s in [&s1, &s2] {
            s.finish().await.unwrap();
        }
        for p in [&p1, &p2] {
            p.finish().await.unwrap();
        }

        // The server side reaches the drained point: safe to close.
        assert!(
            tokio::time::timeout(Duration::from_secs(5), server.drained())
                .await
                .expect("drained timeout"),
            "trunk must report drained"
        );
        assert_eq!(server.active_streams(), 0);
    }

    #[tokio::test]
    async fn peer_disconnect_resets_streams() {
        let (client, _ci, server, mut server_incoming) = trunk_pair().await;
        let mut s = client.open_stream(vec![]).await.unwrap();
        let _p = server_incoming.recv().await.unwrap();
        drop(server);
        drop(server_incoming);
        drop(_p);
        // The server handle dropping doesn't close the TCP (the task owns
        // it); send something and observe either delivery or reset — then
        // kill via goaway-less drop: simulate by aborting with a write
        // after the peer's task is gone.
        // Simpler: close from the client side and ensure recv terminates.
        s.finish().await.unwrap();
        // recv eventually returns None or Reset once the connection winds
        // down; bound it.
        let _ = tokio::time::timeout(Duration::from_secs(2), s.recv()).await;
    }

    #[tokio::test]
    async fn server_initiated_streams_work_too() {
        let (_client, mut client_incoming, server, _si) = trunk_pair().await;
        let s = server
            .open_stream(vec![("dir".into(), "origin-push".into())])
            .await
            .unwrap();
        let mut p = tokio::time::timeout(Duration::from_secs(5), client_incoming.recv())
            .await
            .unwrap()
            .unwrap();
        s.send(&b"from-origin"[..]).await.unwrap();
        assert_eq!(&expect_data(&mut p).await[..], b"from-origin");
    }
}

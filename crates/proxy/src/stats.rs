//! Per-instance counters — the real-time release-observability signals the
//! paper's auditing infrastructure scrapes (§6: RPS, HTTP status codes
//! sent, TCP RSTs, MQTT connection counts, takeover status).
//!
//! Every counter is a [`Counter`] (a relaxed `AtomicU64`); the free-function
//! helpers (`ProxyStats::bump/get/add`) are gone, so a call site can only
//! touch a counter through the struct that owns it. The merged, serializable
//! view of everything is [`StatsSnapshot`] — the `zdr --stats-json` payload.

use serde::{Deserialize, Serialize};
use zdr_core::admission::ProtectionMode;
use zdr_core::sync::{Arc, AtomicU64, Ordering};
use zdr_core::telemetry::{AuditTotals, Telemetry, TelemetrySnapshot};

/// A relaxed monotonic event counter.
///
/// Counters count events — they never go down. The live gauge of open
/// connections lives in [`crate::conn_tracker::ConnTracker`], not here.
#[derive(Debug)]
pub struct Counter(AtomicU64);

// Manual impl: the loom doubles behind the `zdr_core::sync` facade don't
// promise `Default`, and derived-Default on a field type is the kind of
// incidental API dependency that breaks only in `--cfg loom` builds.
impl Default for Counter {
    fn default() -> Self {
        Counter(AtomicU64::new(0))
    }
}

impl Counter {
    /// Adds one.
    pub fn bump(&self) {
        // Relaxed (here and below): counters are standalone monotonic
        // event tallies — nothing is published through them and snapshot
        // reads are racy by design, so no ordering beyond the atomicity of
        // fetch_add is needed.
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Relaxed read.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Live counters for one proxy instance.
#[derive(Debug, Default)]
pub struct ProxyStats {
    /// Requests proxied to a 2xx/3xx/4xx conclusion.
    pub requests_ok: Counter,
    /// 5xx responses sent to clients.
    pub responses_5xx: Counter,
    /// Gated 379 responses intercepted (PPR handoffs observed).
    pub ppr_handoffs: Counter,
    /// Requests successfully replayed to another app server.
    pub ppr_replayed_ok: Counter,
    /// Replays abandoned (budget exhausted / no upstream) → 500 to user.
    pub ppr_gave_up: Counter,
    /// Ungated 379s passed through as ordinary (erroneous) responses —
    /// the §5.2 "randomized status code" guard in action.
    pub ungated_379: Counter,
    /// MQTT tunnels relayed.
    pub mqtt_tunnels: Counter,
    /// Tunnels re-homed away from this instance by DCR.
    pub dcr_rehomed: Counter,
    /// Tunnels dropped (client must reconnect).
    pub mqtt_dropped: Counter,
    /// Connections accepted.
    pub connections_accepted: Counter,
    /// Connections torn down by our restart (RSTs under HardRestart).
    pub connections_reset: Counter,
    /// Health probes answered healthy.
    pub health_ok: Counter,
    /// Health probes answered draining/unhealthy.
    pub health_unhealthy: Counter,
    /// Takeover attempts retried after a handshake failure/timeout.
    pub takeover_retries: Counter,
    /// Releases rolled back (sockets reclaimed from an unhealthy successor).
    pub rollbacks: Counter,
    /// Faults injected by the test harness on this instance's handshakes.
    pub injected_faults: Counter,

    // Upstream resilience (crate::resilience).
    /// Circuit breakers tripped open (closed/half-open → open).
    pub breaker_opened: Counter,
    /// Circuit breakers recovered (half-open → closed).
    pub breaker_closed: Counter,
    /// Half-open probe requests sent to breaker-open upstreams.
    pub breaker_probes: Counter,
    /// Retry attempts granted by the cluster-wide retry budget.
    pub retries: Counter,
    /// Retries refused because the budget was exhausted (fail-fast).
    pub retry_budget_exhausted: Counter,
    /// Connections/requests rejected at accept by the load-shed gate.
    pub load_shed: Counter,
    /// Requests failed because their propagated deadline expired.
    pub deadline_exceeded: Counter,

    // Admission control (zdr_core::admission) — kept distinct from
    // `load_shed` so the auditor can attribute disruption correctly.
    /// Arrivals refused by the per-client admission limiter.
    pub admit_rejected: Counter,
    /// Arrivals admitted because the limiter table was full (fail-open).
    pub admit_fail_open: Counter,
    /// Storm-protection Armed edges taken.
    pub protection_armed: Counter,
    /// Storm-protection Disarmed edges taken.
    pub protection_disarmed: Counter,

    /// Storm-protection state machine for this instance. Shared (`Arc`)
    /// so the accept paths, the admin endpoint, and the snapshot all see
    /// the same machine.
    pub protection: Arc<ProtectionMode>,

    /// Latency histograms + release phase timeline for this instance.
    /// Shared (`Arc`) so the admin endpoint and the takeover choreography
    /// can record into the same bundle the snapshot reads from.
    pub telemetry: Arc<Telemetry>,
}

impl ProxyStats {
    /// Snapshot of the release-supervision counters as core metrics.
    /// `forced_closes` comes from the service layer's
    /// [`crate::conn_tracker::ConnTracker`], which owns that accounting.
    pub fn release_counters(&self, forced_closes: u64) -> zdr_core::metrics::ReleaseCounters {
        zdr_core::metrics::ReleaseCounters {
            takeover_retries: self.takeover_retries.get(),
            rollbacks: self.rollbacks.get(),
            forced_closes,
            injected_faults: self.injected_faults.get(),
            aborted_releases: 0,
        }
    }

    /// This instance's counters as a (partial) unified snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        let (protection_engaged, protection_reason) = self.protection.snapshot_codes();
        StatsSnapshot {
            requests_ok: self.requests_ok.get(),
            responses_5xx: self.responses_5xx.get(),
            ppr_handoffs: self.ppr_handoffs.get(),
            ppr_replayed_ok: self.ppr_replayed_ok.get(),
            ppr_gave_up: self.ppr_gave_up.get(),
            ungated_379: self.ungated_379.get(),
            mqtt_tunnels: self.mqtt_tunnels.get(),
            dcr_rehomed: self.dcr_rehomed.get(),
            mqtt_dropped: self.mqtt_dropped.get(),
            connections_accepted: self.connections_accepted.get(),
            connections_reset: self.connections_reset.get(),
            health_ok: self.health_ok.get(),
            health_unhealthy: self.health_unhealthy.get(),
            takeover_retries: self.takeover_retries.get(),
            rollbacks: self.rollbacks.get(),
            injected_faults: self.injected_faults.get(),
            breaker_opened: self.breaker_opened.get(),
            breaker_closed: self.breaker_closed.get(),
            breaker_probes: self.breaker_probes.get(),
            retries: self.retries.get(),
            retry_budget_exhausted: self.retry_budget_exhausted.get(),
            load_shed: self.load_shed.get(),
            deadline_exceeded: self.deadline_exceeded.get(),
            admit_rejected: self.admit_rejected.get(),
            admit_fail_open: self.admit_fail_open.get(),
            protection_armed: self.protection_armed.get(),
            protection_disarmed: self.protection_disarmed.get(),
            protection_engaged,
            protection_reason,
            telemetry: self.telemetry.snapshot(),
            ..StatsSnapshot::default()
        }
    }

    /// Live counters grouped as the auditor's §2.5 signal set — see
    /// [`StatsSnapshot::audit_totals`] for the taxonomy.
    pub fn audit_totals(&self) -> AuditTotals {
        self.snapshot().audit_totals()
    }
}

/// Edge-side Downstream Connection Reuse counters (§4.2) — owned by the
/// Edge handles in [`crate::mqtt_relay`] and [`crate::mqtt_relay_trunk`].
#[derive(Debug, Default)]
pub struct EdgeDcrStats {
    /// Tunnels successfully re-homed to another Origin.
    pub rehomed_ok: Counter,
    /// Solicitations received with no alternate Origin available.
    pub rehome_refused: Counter,
    /// Tunnels torn down because re-homing failed.
    pub dropped: Counter,
}

impl EdgeDcrStats {
    /// These counters as a (partial) unified snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            dcr_rehomed_ok: self.rehomed_ok.get(),
            dcr_rehome_refused: self.rehome_refused.get(),
            dcr_dropped: self.dropped.get(),
            ..StatsSnapshot::default()
        }
    }
}

/// One merged, serializable view across every service a process runs —
/// HTTP reverse proxy, MQTT relay (per-tunnel or trunked), QUIC, plus the
/// service layer's connection tracking. Sections a process doesn't run
/// merge as zeros, so `zdr --stats-json` always emits the same shape.
/// Container-level `serde(default)` keeps snapshots from older binaries
/// (fewer fields) deserializable by newer readers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct StatsSnapshot {
    // HTTP reverse proxy (ProxyStats).
    /// Requests proxied to a 2xx/3xx/4xx conclusion.
    pub requests_ok: u64,
    /// 5xx responses sent to clients.
    pub responses_5xx: u64,
    /// Gated 379 responses intercepted (PPR handoffs observed).
    pub ppr_handoffs: u64,
    /// Requests successfully replayed to another app server.
    pub ppr_replayed_ok: u64,
    /// Replays abandoned → 500 to user.
    pub ppr_gave_up: u64,
    /// Ungated 379s passed through untouched.
    pub ungated_379: u64,
    /// MQTT tunnels relayed.
    pub mqtt_tunnels: u64,
    /// Tunnels re-homed away from this instance by DCR.
    pub dcr_rehomed: u64,
    /// Tunnels dropped (client must reconnect).
    pub mqtt_dropped: u64,
    /// Connections accepted.
    pub connections_accepted: u64,
    /// Connections torn down by our restart.
    pub connections_reset: u64,
    /// Health probes answered healthy.
    pub health_ok: u64,
    /// Health probes answered draining/unhealthy.
    pub health_unhealthy: u64,
    /// Takeover attempts retried.
    pub takeover_retries: u64,
    /// Releases rolled back.
    pub rollbacks: u64,
    /// Faults injected by the test harness.
    pub injected_faults: u64,

    // Upstream resilience (crate::resilience).
    /// Circuit breakers tripped open.
    pub breaker_opened: u64,
    /// Circuit breakers recovered to closed.
    pub breaker_closed: u64,
    /// Half-open probes sent to tripped upstreams.
    pub breaker_probes: u64,
    /// Retries granted by the retry budget.
    pub retries: u64,
    /// Retries refused (budget exhausted).
    pub retry_budget_exhausted: u64,
    /// Accepts rejected by the load-shed gate.
    pub load_shed: u64,
    /// Requests failed on an expired propagated deadline.
    pub deadline_exceeded: u64,

    // Admission control (zdr_core::admission).
    /// Arrivals refused by the per-client admission limiter.
    pub admit_rejected: u64,
    /// Arrivals admitted because the limiter table was full (fail-open).
    pub admit_fail_open: u64,
    /// Storm-protection Armed edges taken.
    pub protection_armed: u64,
    /// Storm-protection Disarmed edges taken.
    pub protection_disarmed: u64,
    /// Gauge: 1 while storm protection is engaged (Armed or Cooling).
    pub protection_engaged: u64,
    /// Gauge: the active [`zdr_core::admission::StormReason`] code
    /// (0 = none).
    pub protection_reason: u64,

    // Edge-side DCR (EdgeDcrStats).
    /// Tunnels the Edge re-homed successfully.
    pub dcr_rehomed_ok: u64,
    /// Solicitations refused for lack of an alternate Origin.
    pub dcr_rehome_refused: u64,
    /// Tunnels the Edge dropped after a failed re-home.
    pub dcr_dropped: u64,

    // QUIC (QuicStats).
    /// QUIC flows opened (Initial packets accepted).
    pub quic_flows_opened: u64,
    /// QUIC datagrams served on known flows.
    pub quic_served: u64,
    /// QUIC datagrams for unknown flows (dropped).
    pub quic_unknown_flow: u64,

    // Service layer (ConnTracker).
    /// Connections currently open across the process's services.
    pub active_connections: u64,
    /// Connections ever registered with the tracker.
    pub connections_tracked: u64,
    /// Forced closes delivered as plain TCP resets.
    pub forced_tcp_resets: u64,
    /// Forced closes delivered as H2 GOAWAY.
    pub forced_h2_goaways: u64,
    /// Forced closes delivered as MQTT DISCONNECT.
    pub forced_mqtt_disconnects: u64,
    /// Forced closes delivered as QUIC CONNECTION_CLOSE.
    pub forced_quic_closes: u64,

    // Config plane (zdr_core::config).
    /// Gauge: the config epoch in force (1 = boot config, +1 per applied
    /// reload). Rendered as `zdr_config_epoch` in `/metrics`.
    pub config_epoch: u64,

    /// The config fields in force, `section.key → value` (the `/stats`
    /// config section the `config-coverage` lint points at). Stamped by
    /// the binary from its `ConfigStore`; empty when no store is wired
    /// (bare library users, old snapshots).
    #[serde(default)]
    pub config: std::collections::BTreeMap<String, String>,

    /// Histograms + release phase timeline. `serde(default)` keeps old
    /// snapshot JSON (pre-telemetry) deserializable.
    #[serde(default)]
    pub telemetry: TelemetrySnapshot,
}

impl StatsSnapshot {
    /// Total connections force-closed at a drain hard deadline, across all
    /// close signals.
    pub fn forced_closes(&self) -> u64 {
        self.forced_tcp_resets
            + self.forced_h2_goaways
            + self.forced_mqtt_disconnects
            + self.forced_quic_closes
    }

    /// This snapshot's counters as the auditor's §2.5 signal set. The
    /// groupings mirror the paper's taxonomy: HTTP errors, proxy errors
    /// (gave-up replays, expired deadlines, shed load), connection
    /// terminations (RSTs, whether organic or forced), and MQTT drops
    /// (relay-, DCR-, or force-close-induced).
    pub fn audit_totals(&self) -> AuditTotals {
        AuditTotals {
            requests: self.requests_ok + self.responses_5xx,
            http_5xx: self.responses_5xx,
            proxy_errors: self.ppr_gave_up + self.deadline_exceeded + self.load_shed,
            conn_resets: self.connections_reset + self.forced_tcp_resets,
            mqtt_drops: self.mqtt_dropped + self.dcr_dropped + self.forced_mqtt_disconnects,
            // Admission rejects are their own signal — NOT folded into
            // proxy_errors — so the auditor can tell "admission refused
            // the storm" apart from "upstreams fell over".
            admit_rejects: self.admit_rejected,
        }
    }

    /// Folds another snapshot into this one field-by-field. Snapshots from
    /// the services of one process are disjoint, so addition is the merge.
    pub fn merge(&mut self, other: &StatsSnapshot) {
        self.requests_ok += other.requests_ok;
        self.responses_5xx += other.responses_5xx;
        self.ppr_handoffs += other.ppr_handoffs;
        self.ppr_replayed_ok += other.ppr_replayed_ok;
        self.ppr_gave_up += other.ppr_gave_up;
        self.ungated_379 += other.ungated_379;
        self.mqtt_tunnels += other.mqtt_tunnels;
        self.dcr_rehomed += other.dcr_rehomed;
        self.mqtt_dropped += other.mqtt_dropped;
        self.connections_accepted += other.connections_accepted;
        self.connections_reset += other.connections_reset;
        self.health_ok += other.health_ok;
        self.health_unhealthy += other.health_unhealthy;
        self.takeover_retries += other.takeover_retries;
        self.rollbacks += other.rollbacks;
        self.injected_faults += other.injected_faults;
        self.breaker_opened += other.breaker_opened;
        self.breaker_closed += other.breaker_closed;
        self.breaker_probes += other.breaker_probes;
        self.retries += other.retries;
        self.retry_budget_exhausted += other.retry_budget_exhausted;
        self.load_shed += other.load_shed;
        self.deadline_exceeded += other.deadline_exceeded;
        self.admit_rejected += other.admit_rejected;
        self.admit_fail_open += other.admit_fail_open;
        self.protection_armed += other.protection_armed;
        self.protection_disarmed += other.protection_disarmed;
        // Gauges, not counters: a merged process view is "engaged" if any
        // section is, and carries whichever reason code is set.
        self.protection_engaged = self.protection_engaged.max(other.protection_engaged);
        if self.protection_reason == 0 {
            self.protection_reason = other.protection_reason;
        }
        self.dcr_rehomed_ok += other.dcr_rehomed_ok;
        self.dcr_rehome_refused += other.dcr_rehome_refused;
        self.dcr_dropped += other.dcr_dropped;
        self.quic_flows_opened += other.quic_flows_opened;
        self.quic_served += other.quic_served;
        self.quic_unknown_flow += other.quic_unknown_flow;
        self.active_connections += other.active_connections;
        self.connections_tracked += other.connections_tracked;
        self.forced_tcp_resets += other.forced_tcp_resets;
        self.forced_h2_goaways += other.forced_h2_goaways;
        self.forced_mqtt_disconnects += other.forced_mqtt_disconnects;
        self.forced_quic_closes += other.forced_quic_closes;
        // Gauge: every section of one process shares one store, so any
        // stamped epoch is THE epoch; max() also tolerates merging across
        // a reload race.
        self.config_epoch = self.config_epoch.max(other.config_epoch);
        // One process, one config: keep the first stamped section.
        if self.config.is_empty() {
            self.config = other.config.clone();
        }
        self.telemetry.merge(&other.telemetry);
    }

    /// Merges by value (builder style): `a.merged(&b).merged(&c)`.
    pub fn merged(mut self, other: &StatsSnapshot) -> StatsSnapshot {
        self.merge(other);
        self
    }
}

// not(loom): loom atomics panic outside a loom::model run.
#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn counter_bump_add_get() {
        let c = Counter::default();
        c.bump();
        c.bump();
        c.add(3);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn release_counter_snapshot() {
        let s = ProxyStats::default();
        s.takeover_retries.bump();
        s.rollbacks.bump();
        s.injected_faults.add(2);
        let c = s.release_counters(4);
        assert_eq!(c.takeover_retries, 1);
        assert_eq!(c.rollbacks, 1);
        assert_eq!(c.forced_closes, 4);
        assert_eq!(c.injected_faults, 2);
        assert_eq!(c.failed_releases(), 1);
    }

    #[test]
    fn config_epoch_and_section_merge_as_gauges() {
        let mut a = StatsSnapshot {
            config_epoch: 3,
            ..Default::default()
        };
        a.config.insert("shed.max_active".into(), "10".into());
        let mut b = StatsSnapshot {
            config_epoch: 2,
            ..Default::default()
        };
        b.config.insert("shed.max_active".into(), "999".into());
        let merged = a.clone().merged(&b);
        assert_eq!(merged.config_epoch, 3, "max, not sum");
        assert_eq!(merged.config["shed.max_active"], "10", "first stamp wins");
        // An unstamped snapshot adopts the stamped section.
        let plain = StatsSnapshot::default().merged(&a);
        assert_eq!(plain.config_epoch, 3);
        assert_eq!(plain.config["shed.max_active"], "10");
    }

    #[test]
    fn snapshot_merge_is_fieldwise_sum() {
        let p = ProxyStats::default();
        p.requests_ok.add(10);
        p.takeover_retries.bump();
        let d = EdgeDcrStats::default();
        d.rehomed_ok.add(3);
        let merged = p.snapshot().merged(&d.snapshot());
        assert_eq!(merged.requests_ok, 10);
        assert_eq!(merged.takeover_retries, 1);
        assert_eq!(merged.dcr_rehomed_ok, 3);
        assert_eq!(merged.quic_flows_opened, 0);
        assert_eq!(merged.forced_closes(), 0);
    }

    #[test]
    fn snapshot_serializes_round_trip() {
        let p = ProxyStats::default();
        p.requests_ok.add(7);
        let snap = p.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.requests_ok, 7);
    }

    #[test]
    fn snapshot_carries_and_merges_telemetry() {
        let p = ProxyStats::default();
        p.telemetry.request_latency_us.record(250);
        p.telemetry
            .event(zdr_core::telemetry::ReleasePhase::Bind, 1, "");
        let snap = p.snapshot();
        assert_eq!(snap.telemetry.request_latency_us.count, 1);
        assert_eq!(snap.telemetry.timeline.events.len(), 1);

        let q = ProxyStats::default();
        q.telemetry.request_latency_us.record(500);
        let merged = snap.merged(&q.snapshot());
        assert_eq!(merged.telemetry.request_latency_us.count, 2);

        // Pre-telemetry JSON still deserializes (serde default).
        let old: StatsSnapshot = serde_json::from_str("{\"requests_ok\":3}").unwrap();
        assert_eq!(old.requests_ok, 3);
        assert!(old.telemetry.is_empty());
    }

    #[test]
    fn audit_totals_groups_the_signal_set() {
        let mut s = StatsSnapshot::default();
        s.requests_ok = 900;
        s.responses_5xx = 100;
        s.ppr_gave_up = 5;
        s.deadline_exceeded = 3;
        s.load_shed = 2;
        s.connections_reset = 7;
        s.forced_tcp_resets = 1;
        s.mqtt_dropped = 4;
        s.dcr_dropped = 2;
        s.forced_mqtt_disconnects = 6;
        s.admit_rejected = 9;
        let t = s.audit_totals();
        assert_eq!(t.requests, 1_000);
        assert_eq!(t.http_5xx, 100);
        assert_eq!(t.proxy_errors, 10, "admit rejects must NOT fold in");
        assert_eq!(t.conn_resets, 8);
        assert_eq!(t.mqtt_drops, 12);
        assert_eq!(t.admit_rejects, 9);
    }

    #[test]
    fn protection_state_rides_the_snapshot() {
        use zdr_core::admission::StormReason;
        let p = ProxyStats::default();
        p.admit_rejected.add(5);
        p.admit_fail_open.bump();
        let snap = p.snapshot();
        assert_eq!(snap.admit_rejected, 5);
        assert_eq!(snap.admit_fail_open, 1);
        assert_eq!((snap.protection_engaged, snap.protection_reason), (0, 0));

        p.protection
            .observe_window(Some(StormReason::RefusedStorm), 3);
        p.protection_armed.bump();
        let snap = p.snapshot();
        assert_eq!(snap.protection_engaged, 1);
        assert_eq!(snap.protection_reason, StormReason::RefusedStorm.code());
        assert_eq!(snap.protection_armed, 1);

        // Merge semantics: counters add, gauges carry the engaged side.
        let calm = ProxyStats::default().snapshot();
        let merged = calm.merged(&snap);
        assert_eq!(merged.protection_engaged, 1);
        assert_eq!(merged.protection_reason, StormReason::RefusedStorm.code());
        assert_eq!(merged.admit_rejected, 5);

        // JSON carries the new fields.
        let json = serde_json::to_string(&snap).unwrap();
        for field in [
            "admit_rejected",
            "admit_fail_open",
            "protection_armed",
            "protection_disarmed",
            "protection_engaged",
            "protection_reason",
        ] {
            assert!(json.contains(field), "snapshot JSON missing {field}");
        }
    }
}

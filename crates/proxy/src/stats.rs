//! Per-instance counters — the real-time release-observability signals the
//! paper's auditing infrastructure scrapes (§6: RPS, HTTP status codes
//! sent, TCP RSTs, MQTT connection counts, takeover status).

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters for one proxy instance.
#[derive(Debug, Default)]
pub struct ProxyStats {
    /// Requests proxied to a 2xx/3xx/4xx conclusion.
    pub requests_ok: AtomicU64,
    /// 5xx responses sent to clients.
    pub responses_5xx: AtomicU64,
    /// Gated 379 responses intercepted (PPR handoffs observed).
    pub ppr_handoffs: AtomicU64,
    /// Requests successfully replayed to another app server.
    pub ppr_replayed_ok: AtomicU64,
    /// Replays abandoned (budget exhausted / no upstream) → 500 to user.
    pub ppr_gave_up: AtomicU64,
    /// Ungated 379s passed through as ordinary (erroneous) responses —
    /// the §5.2 "randomized status code" guard in action.
    pub ungated_379: AtomicU64,
    /// MQTT tunnels currently relayed.
    pub mqtt_tunnels: AtomicU64,
    /// Tunnels re-homed away from this instance by DCR.
    pub dcr_rehomed: AtomicU64,
    /// Tunnels dropped (client must reconnect).
    pub mqtt_dropped: AtomicU64,
    /// Connections accepted.
    pub connections_accepted: AtomicU64,
    /// Connections torn down by our restart (RSTs under HardRestart).
    pub connections_reset: AtomicU64,
    /// Health probes answered healthy.
    pub health_ok: AtomicU64,
    /// Health probes answered draining/unhealthy.
    pub health_unhealthy: AtomicU64,
    /// Takeover attempts retried after a handshake failure/timeout.
    pub takeover_retries: AtomicU64,
    /// Releases rolled back (sockets reclaimed from an unhealthy successor).
    pub rollbacks: AtomicU64,
    /// Connections force-closed at the drain hard deadline.
    pub forced_closes: AtomicU64,
    /// Faults injected by the test harness on this instance's handshakes.
    pub injected_faults: AtomicU64,
}

impl ProxyStats {
    /// Convenience: relaxed add.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Relaxed add of `n`.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot of the release-supervision counters as core metrics.
    pub fn release_counters(&self) -> zdr_core::metrics::ReleaseCounters {
        zdr_core::metrics::ReleaseCounters {
            takeover_retries: Self::get(&self.takeover_retries),
            rollbacks: Self::get(&self.rollbacks),
            forced_closes: Self::get(&self.forced_closes),
            injected_faults: Self::get(&self.injected_faults),
            aborted_releases: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get() {
        let s = ProxyStats::default();
        ProxyStats::bump(&s.requests_ok);
        ProxyStats::bump(&s.requests_ok);
        assert_eq!(ProxyStats::get(&s.requests_ok), 2);
        assert_eq!(ProxyStats::get(&s.responses_5xx), 0);
    }

    #[test]
    fn release_counter_snapshot() {
        let s = ProxyStats::default();
        ProxyStats::bump(&s.takeover_retries);
        ProxyStats::bump(&s.rollbacks);
        ProxyStats::add(&s.forced_closes, 4);
        ProxyStats::add(&s.injected_faults, 2);
        let c = s.release_counters();
        assert_eq!(c.takeover_retries, 1);
        assert_eq!(c.rollbacks, 1);
        assert_eq!(c.forced_closes, 4);
        assert_eq!(c.injected_faults, 2);
        assert_eq!(c.failed_releases(), 1);
    }
}

//! Per-instance counters — the real-time release-observability signals the
//! paper's auditing infrastructure scrapes (§6: RPS, HTTP status codes
//! sent, TCP RSTs, MQTT connection counts, takeover status).

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters for one proxy instance.
#[derive(Debug, Default)]
pub struct ProxyStats {
    /// Requests proxied to a 2xx/3xx/4xx conclusion.
    pub requests_ok: AtomicU64,
    /// 5xx responses sent to clients.
    pub responses_5xx: AtomicU64,
    /// Gated 379 responses intercepted (PPR handoffs observed).
    pub ppr_handoffs: AtomicU64,
    /// Requests successfully replayed to another app server.
    pub ppr_replayed_ok: AtomicU64,
    /// Replays abandoned (budget exhausted / no upstream) → 500 to user.
    pub ppr_gave_up: AtomicU64,
    /// Ungated 379s passed through as ordinary (erroneous) responses —
    /// the §5.2 "randomized status code" guard in action.
    pub ungated_379: AtomicU64,
    /// MQTT tunnels currently relayed.
    pub mqtt_tunnels: AtomicU64,
    /// Tunnels re-homed away from this instance by DCR.
    pub dcr_rehomed: AtomicU64,
    /// Tunnels dropped (client must reconnect).
    pub mqtt_dropped: AtomicU64,
    /// Connections accepted.
    pub connections_accepted: AtomicU64,
    /// Connections torn down by our restart (RSTs under HardRestart).
    pub connections_reset: AtomicU64,
    /// Health probes answered healthy.
    pub health_ok: AtomicU64,
    /// Health probes answered draining/unhealthy.
    pub health_unhealthy: AtomicU64,
}

impl ProxyStats {
    /// Convenience: relaxed add.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get() {
        let s = ProxyStats::default();
        ProxyStats::bump(&s.requests_ok);
        ProxyStats::bump(&s.requests_ok);
        assert_eq!(ProxyStats::get(&s.requests_ok), 2);
        assert_eq!(ProxyStats::get(&s.responses_5xx), 0);
    }
}

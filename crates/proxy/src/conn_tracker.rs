//! Sharded connection tracking for the unified service layer.
//!
//! Every service (HTTP reverse proxy, MQTT relays, QUIC) registers each
//! accepted connection with a [`ConnTracker`] and holds the returned
//! [`ConnGuard`] for the connection's lifetime. The tracker owns the two
//! pieces of accounting the drain machinery needs:
//!
//! * the **active-connection gauge** — "how many connections is this
//!   instance still serving?" is the question the paper's drain phase asks
//!   continuously (§4.3: the old process keeps serving until existing
//!   connections finish or the hard deadline fires);
//! * the **forced-close tally** — at the hard deadline, each surviving
//!   connection is closed with a protocol-appropriate signal and recorded
//!   per [`CloseSignal`] kind (Table 3's disruption classes).
//!
//! The gauge is sharded across cache-line-padded atomics, with the shard
//! picked from the current worker thread's id — accepts on different tokio
//! workers never contend on one cache line and there is no Mutex anywhere
//! on the accept path. Reads sum the shards; they are O(shards) and only
//! run on the (cold) observability/drain paths.

use zdr_core::drain::{CloseSignal, ForcedCloseTally};
use zdr_core::sync::{Arc, AtomicU64, Ordering};

use crate::stats::StatsSnapshot;

/// Number of gauge shards. A small power of two comfortably above the
/// worker-thread counts we run with; collisions only cost a shared cache
/// line, never correctness.
const SHARDS: usize = 16;

/// One cache-line-padded shard of the gauge.
#[repr(align(64))]
#[derive(Debug)]
struct Shard {
    /// Connections currently open that registered via this shard's worker.
    active: AtomicU64,
    /// Connections ever registered via this shard's worker.
    opened: AtomicU64,
}

// Manual impl: the loom doubles behind the facade don't promise `Default`.
impl Default for Shard {
    fn default() -> Self {
        Shard {
            active: AtomicU64::new(0),
            opened: AtomicU64::new(0),
        }
    }
}

/// Per-service connection accounting: active gauge + forced-close tally.
#[derive(Debug)]
pub struct ConnTracker {
    shards: Vec<Shard>,
    /// Forced closes indexed by close-signal kind (see [`signal_index`]).
    forced: [AtomicU64; 4],
}

/// Stable index of a close signal into [`ConnTracker::forced`].
fn signal_index(signal: CloseSignal) -> usize {
    match signal {
        CloseSignal::TcpReset => 0,
        CloseSignal::H2Goaway => 1,
        CloseSignal::MqttDisconnect => 2,
        CloseSignal::QuicConnectionClose => 3,
    }
}

/// Picks this thread's shard. Hashing the thread id spreads tokio workers
/// across shards without any registry or thread-local setup.
fn shard_index() -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    (h.finish() as usize) % SHARDS
}

impl Default for ConnTracker {
    fn default() -> Self {
        ConnTracker {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
            forced: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ConnTracker {
    /// A fresh tracker (all zeros).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Registers one accepted connection; the connection stays in the
    /// active gauge until the returned guard drops.
    pub fn register(self: &Arc<Self>) -> ConnGuard {
        let shard = shard_index();
        let s = &self.shards[shard];
        // Relaxed: the gauge publishes no other data — each shard counter
        // is independently consistent via its own modification order, and
        // the only cross-shard operation (active()) is an inherently racy
        // sum. Loom's gauge_no_drift model passes with Relaxed because the
        // guard's fetch_sub targets the same atomic it incremented.
        s.active.fetch_add(1, Ordering::Relaxed);
        s.opened.fetch_add(1, Ordering::Relaxed);
        ConnGuard {
            tracker: Arc::clone(self),
            shard,
            forced: false,
        }
    }

    /// Connections currently open.
    pub fn active(&self) -> u64 {
        // Relaxed: a sharded sum is a racy snapshot by construction; once
        // registrations quiesce it is exact (each guard decrements the
        // shard it incremented, so shards never go negative or drift).
        self.shards
            .iter()
            .map(|s| s.active.load(Ordering::Relaxed))
            .sum()
    }

    /// Connections ever registered.
    pub fn opened(&self) -> u64 {
        // Relaxed: monotonic counter sum, reporting only.
        self.shards
            .iter()
            .map(|s| s.opened.load(Ordering::Relaxed))
            .sum()
    }

    /// Total connections force-closed at a drain hard deadline.
    pub fn forced_closes(&self) -> u64 {
        // Relaxed: monotonic counter sum, reporting only.
        self.forced.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Forced closes for one specific signal kind.
    pub fn forced_by(&self, signal: CloseSignal) -> u64 {
        // Relaxed: monotonic counter read, reporting only.
        self.forced[signal_index(signal)].load(Ordering::Relaxed)
    }

    /// The forced-close accounting as the core tally type.
    pub fn forced_tally(&self) -> ForcedCloseTally {
        ForcedCloseTally {
            tcp_resets: self.forced_by(CloseSignal::TcpReset),
            h2_goaways: self.forced_by(CloseSignal::H2Goaway),
            mqtt_disconnects: self.forced_by(CloseSignal::MqttDisconnect),
            quic_closes: self.forced_by(CloseSignal::QuicConnectionClose),
        }
    }

    /// The tracker's view as a (partial) unified snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            active_connections: self.active(),
            connections_tracked: self.opened(),
            forced_tcp_resets: self.forced_by(CloseSignal::TcpReset),
            forced_h2_goaways: self.forced_by(CloseSignal::H2Goaway),
            forced_mqtt_disconnects: self.forced_by(CloseSignal::MqttDisconnect),
            forced_quic_closes: self.forced_by(CloseSignal::QuicConnectionClose),
            ..StatsSnapshot::default()
        }
    }
}

/// RAII registration of one connection. Dropping it removes the connection
/// from the active gauge; [`ConnGuard::mark_forced`] additionally records
/// that the connection was killed by the drain deadline rather than
/// finishing on its own.
#[derive(Debug)]
pub struct ConnGuard {
    tracker: Arc<ConnTracker>,
    shard: usize,
    forced: bool,
}

impl ConnGuard {
    /// Records this connection as force-closed with `signal`. Idempotent.
    pub fn mark_forced(&mut self, signal: CloseSignal) {
        if !self.forced {
            self.forced = true;
            // Relaxed: the `forced` bool is &mut-owned by one task, so the
            // tally can never double-count a guard (loom: no_forced_double_
            // count); the counter itself is reporting-only.
            self.tracker.forced[signal_index(signal)].fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        // Relaxed: decrements the exact shard register() incremented, so
        // each guard is a matched +1/-1 pair on one atomic — the gauge
        // cannot drift regardless of which thread drops the guard.
        self.tracker.shards[self.shard]
            .active
            .fetch_sub(1, Ordering::Relaxed);
    }
}

// not(loom): loom atomics panic outside a loom::model run; the loom suite
// for the tracker lives in tests/loom.rs.
#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn gauge_tracks_guard_lifetimes() {
        let t = ConnTracker::new();
        assert_eq!(t.active(), 0);
        let a = t.register();
        let b = t.register();
        assert_eq!(t.active(), 2);
        assert_eq!(t.opened(), 2);
        drop(a);
        assert_eq!(t.active(), 1);
        drop(b);
        assert_eq!(t.active(), 0);
        assert_eq!(t.opened(), 2);
    }

    #[test]
    fn forced_close_accounting_by_signal() {
        let t = ConnTracker::new();
        let mut a = t.register();
        let mut b = t.register();
        let mut c = t.register();
        a.mark_forced(CloseSignal::TcpReset);
        a.mark_forced(CloseSignal::TcpReset); // idempotent
        b.mark_forced(CloseSignal::MqttDisconnect);
        c.mark_forced(CloseSignal::QuicConnectionClose);
        drop((a, b, c));
        assert_eq!(t.forced_closes(), 3);
        assert_eq!(t.forced_by(CloseSignal::TcpReset), 1);
        let tally = t.forced_tally();
        assert_eq!(tally.mqtt_disconnects, 1);
        assert_eq!(tally.quic_closes, 1);
        assert_eq!(tally.h2_goaways, 0);
        assert_eq!(tally.total(), 3);
        assert_eq!(t.active(), 0);
    }

    #[test]
    fn gauge_sums_across_threads() {
        let t = ConnTracker::new();
        let guards: Vec<_> = (0..8)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || t.register())
            })
            .map(|h| h.join().unwrap())
            .collect();
        assert_eq!(t.active(), 8);
        drop(guards);
        assert_eq!(t.active(), 0);
        assert_eq!(t.opened(), 8);
    }

    #[test]
    fn snapshot_reflects_tracker_state() {
        let t = ConnTracker::new();
        let _g = t.register();
        let mut g2 = t.register();
        g2.mark_forced(CloseSignal::H2Goaway);
        drop(g2);
        let snap = t.snapshot();
        assert_eq!(snap.active_connections, 1);
        assert_eq!(snap.connections_tracked, 2);
        assert_eq!(snap.forced_h2_goaways, 1);
        assert_eq!(snap.forced_closes(), 1);
    }
}

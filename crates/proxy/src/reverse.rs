//! The HTTP reverse proxy with the Partial Post Replay client side.
//!
//! Request path: terminate the client's HTTP/1.1, pick a healthy app
//! server, forward, relay the response. The release-relevant part is the
//! 379 interception (§4.3):
//!
//! * a **gated** 379 (`Partial POST Replay` status message) is never
//!   relayed; the proxy rebuilds the original request and replays it to a
//!   different app server — up to [`zdr_proto::ppr::DEFAULT_REPLAY_BUDGET`]
//!   attempts, then a standard 500;
//! * an **ungated** 379 (the §5.2 "buggy upstream with randomized status
//!   codes" case) is treated as an ordinary response and relayed verbatim.
//!
//! Design note (recorded in DESIGN.md): this proxy holds the in-flight
//! request it is forwarding, so a replay rebuilds from its own copy and
//! uses the 379's echoed body as a consistency check. This retains one
//! request per active stream — unlike the paper's rejected option (iii),
//! which buffered *every* POST at the Origin for the request's entire
//! lifetime regardless of restarts.
//!
//! Lifecycle (drain, hard deadline, forced-close accounting) comes from
//! the unified [`crate::service`] layer; HTTP's close signal is the bare
//! TCP close itself. Every upstream hop additionally goes through the
//! [`crate::resilience`] layer: per-upstream circuit breakers pick where
//! to send, the cluster-wide retry budget decides whether a second
//! attempt is funded at all, the propagated `x-zdr-deadline` bounds how
//! long any attempt may run (clamped to the drain hard deadline), and
//! the accept loop sheds with a pre-rendered 503 when the instance is
//! overloaded.

use std::net::SocketAddr;
use std::ops::Deref;
use std::sync::Arc;
use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

use zdr_core::clock::unix_now_ms;
use zdr_core::telemetry::Telemetry;
use zdr_core::trace::{ActiveTrace, SpanKind};
use zdr_net::fault::{FaultAction, FaultInjector, FaultPoint, NoFaults};
use zdr_proto::deadline::{Deadline, DEADLINE_HEADER};
use zdr_proto::trace::{TraceContext, TRACE_HEADER};
use zdr_proto::http1::{
    serialize_request, serialize_response, Request, RequestParser, Response, StatusCode,
};
use zdr_proto::ppr::{decode_379, is_partial_post, ReplayBudget, ReplayDecision};

use crate::conn_tracker::ConnGuard;
use crate::resilience::{Resilience, ResilienceConfig, HTTP_429_ADMIT, HTTP_503_SHED};
use crate::service::{DrainState, HttpCloseSignal, ServiceHandle};
use crate::stats::ProxyStats;
use crate::upstream::UpstreamPool;

/// Reverse-proxy tuning.
#[derive(Clone)]
pub struct ReverseProxyConfig {
    /// App-server addresses.
    pub upstreams: Vec<SocketAddr>,
    /// Replay budget per request (production: 10).
    pub ppr_budget: u32,
    /// PPR client side on/off (off = relay 500s like the baseline).
    pub ppr_enabled: bool,
    /// Per-upstream connect/read timeout; also the default per-request
    /// deadline when the client sends no `x-zdr-deadline`.
    pub upstream_timeout: Duration,
    /// Breaker / retry-budget / load-shed tunables.
    pub resilience: ResilienceConfig,
    /// Fault injector consulted before each upstream connect
    /// ([`FaultPoint::UpstreamConnect`]); production is [`NoFaults`].
    pub faults: Arc<dyn FaultInjector>,
}

impl std::fmt::Debug for ReverseProxyConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReverseProxyConfig")
            .field("upstreams", &self.upstreams)
            .field("ppr_budget", &self.ppr_budget)
            .field("ppr_enabled", &self.ppr_enabled)
            .field("upstream_timeout", &self.upstream_timeout)
            .field("resilience", &self.resilience)
            .finish_non_exhaustive()
    }
}

impl Default for ReverseProxyConfig {
    fn default() -> Self {
        ReverseProxyConfig {
            upstreams: Vec::new(),
            ppr_budget: zdr_proto::ppr::DEFAULT_REPLAY_BUDGET,
            ppr_enabled: true,
            upstream_timeout: Duration::from_secs(10),
            resilience: ResilienceConfig::default(),
            faults: Arc::new(NoFaults),
        }
    }
}

/// Handle to a running reverse proxy. Derefs to [`ServiceHandle`] for the
/// unified lifecycle: `drain()` stops accepting (in-flight requests finish
/// and the health endpoint reports unhealthy), `drain_with_deadline()`
/// additionally force-closes survivors at the hard deadline.
#[derive(Debug)]
pub struct ReverseProxyHandle {
    /// The unified service lifecycle (addr, drain, deadline, tracking).
    pub service: ServiceHandle,
    /// Live counters.
    pub stats: Arc<ProxyStats>,
    /// Upstream pool (health-markable by callers).
    pub pool: Arc<UpstreamPool>,
}

impl ReverseProxyHandle {
    /// The resilience layer (breakers, retry budget, shed gate) backing
    /// this proxy's upstream pool.
    pub fn resilience(&self) -> &Arc<Resilience> {
        self.pool.resilience()
    }
}

impl Deref for ReverseProxyHandle {
    type Target = ServiceHandle;
    fn deref(&self) -> &ServiceHandle {
        &self.service
    }
}

/// Binds and spawns a reverse proxy.
pub async fn spawn_reverse_proxy(
    addr: SocketAddr,
    config: ReverseProxyConfig,
) -> std::io::Result<ReverseProxyHandle> {
    let listener = TcpListener::bind(addr).await?;
    let addr = listener.local_addr()?;
    let handle = serve_on_listener(listener, config)?;
    debug_assert_eq!(handle.addr, addr);
    Ok(handle)
}

/// Spawns a reverse proxy on an already-bound listener — the entry point
/// the Socket Takeover path uses with a reclaimed listener FD.
pub fn serve_on_listener(
    listener: TcpListener,
    config: ReverseProxyConfig,
) -> std::io::Result<ReverseProxyHandle> {
    let addr = listener.local_addr()?;
    let stats = Arc::new(ProxyStats::default());
    let resilience = Arc::new(Resilience::new(config.resilience));
    let pool = Arc::new(UpstreamPool::with_resilience(
        config.upstreams.clone(),
        Arc::clone(&resilience),
    ));
    let state = DrainState::new(HttpCloseSignal);
    let config = Arc::new(config);

    let accept_stats = Arc::clone(&stats);
    let accept_pool = Arc::clone(&pool);
    let accept_state = Arc::clone(&state);
    let accept_resilience = Arc::clone(&resilience);
    let accept_task = tokio::spawn(async move {
        while let Ok((mut stream, peer)) = listener.accept().await {
            accept_stats.connections_accepted.bump();
            // Per-client admission, ahead of the shed gate: an abusive
            // client (or a storm with protection armed) is refused with a
            // 429 before any per-connection state exists.
            if !accept_resilience.admit_client(peer, accept_state.is_draining(), &accept_stats) {
                // Refusals happen before a request exists, so the verdict
                // span is a locally sampled root (no incoming context).
                let tracer = &accept_stats.telemetry.tracer;
                if let Some(active) = tracer.begin(None) {
                    let now_us = accept_stats.telemetry.clock().now_us();
                    let (engaged, reason) = accept_stats.protection.snapshot_codes();
                    if engaged != 0 {
                        tracer.child_span(
                            active,
                            SpanKind::Protection,
                            now_us,
                            now_us,
                            format!("engaged reason_code={reason}"),
                        );
                    }
                    tracer.root_span(
                        active,
                        SpanKind::Admission,
                        now_us,
                        now_us,
                        format!("refused peer={peer}"),
                    );
                }
                tokio::spawn(async move {
                    let _ = stream.write_all(HTTP_429_ADMIT).await;
                    let _ = stream.shutdown().await;
                });
                continue;
            }
            // Overload gate, before any per-connection state exists:
            // rejection is one pre-rendered write.
            let active = accept_state.tracker().active();
            if accept_resilience.shed().should_shed(active) {
                accept_stats.load_shed.bump();
                let tracer = &accept_stats.telemetry.tracer;
                if let Some(active_trace) = tracer.begin(None) {
                    let now_us = accept_stats.telemetry.clock().now_us();
                    tracer.root_span(
                        active_trace,
                        SpanKind::Shed,
                        now_us,
                        now_us,
                        format!("active={active}"),
                    );
                }
                tokio::spawn(async move {
                    let _ = stream.write_all(HTTP_503_SHED).await;
                    let _ = stream.shutdown().await;
                });
                continue;
            }
            // Stamped off the resilience clock (not `Instant::now()`) so
            // tests can drive the queue-delay signal deterministically with
            // `Clock::mock` — the repo linter flags inline `now` calls.
            let accepted_at_us = accept_resilience.clock().now_us();
            let stats = Arc::clone(&accept_stats);
            let pool = Arc::clone(&accept_pool);
            let config = Arc::clone(&config);
            let state = Arc::clone(&accept_state);
            let resilience = Arc::clone(&accept_resilience);
            let guard = state.register();
            tokio::spawn(async move {
                // How long the connection sat between accept and service —
                // the queue-delay signal the shed gate smooths.
                let waited_us = resilience.clock().now_us().saturating_sub(accepted_at_us);
                resilience
                    .shed()
                    .observe_queue_delay(Duration::from_micros(waited_us));
                let _ = handle_client(stream, config, pool, stats, state, guard).await;
            });
        }
    });

    Ok(ReverseProxyHandle {
        service: ServiceHandle::new(addr, state, vec![accept_task])
            .with_telemetry(Arc::clone(&stats.telemetry), 0),
        stats,
        pool,
    })
}

async fn handle_client(
    mut stream: TcpStream,
    config: Arc<ReverseProxyConfig>,
    pool: Arc<UpstreamPool>,
    stats: Arc<ProxyStats>,
    state: Arc<DrainState>,
    mut guard: ConnGuard,
) -> std::io::Result<()> {
    let drain = state.drain_watch();
    let mut force = state.force_watch();
    let mut buf = [0u8; 16 * 1024];
    loop {
        let mut parser = RequestParser::new();
        let request = loop {
            let n = tokio::select! {
                r = stream.read(&mut buf) => match r {
                    Ok(0) | Err(_) => return Ok(()),
                    Ok(n) => n,
                },
                _ = DrainState::force_signal(&mut force) => {
                    // Drain hard deadline: close out from under the client.
                    // HTTP's close signal is the TCP close itself.
                    if let Some(frame) = state.close_frame() {
                        let _ = stream.write_all(&frame).await;
                    }
                    guard.mark_forced(state.close_kind());
                    return Ok(());
                }
            };
            match parser.push(&buf[..n]) {
                Ok(Some(req)) => break req,
                Ok(None) => {}
                Err(_) => {
                    let resp = Response::new(StatusCode::from_code(400), &b"bad request"[..]);
                    stream.write_all(&serialize_response(&resp)).await?;
                    return Ok(());
                }
            }
        };

        // Service time starts at the parsed request, so keep-alive idle
        // gaps between requests don't pollute the latency histogram.
        let req_start_us = stats.telemetry.clock().now_us();

        // Trace context: adopt the client's sampled x-zdr-trace (the
        // deadline pattern carrying causality) or let the local sampler
        // decide; the root span id is allocated up front so child spans
        // and the propagated context parent correctly.
        let trace = stats.telemetry.tracer.begin(
            request
                .headers
                .get(TRACE_HEADER)
                .and_then(TraceContext::parse)
                .filter(|c| c.sampled)
                .map(|c| (c.trace_id, c.span_id)),
        );
        let target = request.target.clone();

        let client_wants_close = request
            .headers
            .wants_close(request.version == zdr_proto::http1::Version::Http10);

        // L4LB health probe answered locally (Fig. 5 step F: whoever owns
        // the listener owns the probe).
        let response = if request.target == "/proxygen/health" {
            if *drain.borrow() {
                stats.health_unhealthy.bump();
                Response::new(StatusCode::service_unavailable(), &b"draining"[..])
            } else {
                stats.health_ok.bump();
                Response::ok(&b"ok"[..])
            }
        } else {
            // Effective deadline for this request: the client's propagated
            // x-zdr-deadline (if any) ∧ our own timeout budget ∧ the drain
            // hard deadline — never schedule work past the moment the
            // connection will be force-closed anyway.
            let now = unix_now_ms();
            let mut deadline = Deadline::after(now, config.upstream_timeout);
            if let Some(d) = request
                .headers
                .get(DEADLINE_HEADER)
                .and_then(Deadline::parse)
            {
                deadline = deadline.clamp_to(d);
            }
            if let Some(d) = state.force_deadline() {
                deadline = deadline.clamp_to(d);
            }
            if deadline.is_expired(now) {
                stats.deadline_exceeded.bump();
                Response::new(StatusCode::from_code(504), &b"deadline exceeded"[..])
            } else {
                proxy_with_replay(request, deadline, trace, &config, &pool, &stats).await
            }
        };

        if response.status.is_server_error() {
            stats.responses_5xx.bump();
        } else {
            stats.requests_ok.bump();
        }
        stream.write_all(&serialize_response(&response)).await?;
        let req_end_us = stats.telemetry.clock().now_us();
        stats
            .telemetry
            .request_latency_us
            .record(req_end_us.saturating_sub(req_start_us));
        if let Some(active) = trace {
            stats.telemetry.tracer.root_span(
                active,
                SpanKind::Request,
                req_start_us,
                req_end_us,
                format!("{target} status={}", response.status.code),
            );
        }

        if client_wants_close {
            return Ok(());
        }
        if *drain.borrow() {
            // Finish this request, then let the connection close.
            return Ok(());
        }
    }
}

/// Forwards `request`, replaying on gated 379s and connect failures.
///
/// Resilience contract on every iteration: the upstream comes from
/// [`UpstreamPool::pick_admit`] (breaker-gated — an open upstream gets at
/// most one half-open probe), any attempt after the first must be funded
/// by the cluster-wide retry budget, every outcome is reported back to
/// the breaker, and the whole loop stops at `deadline`.
async fn proxy_with_replay(
    request: Request,
    deadline: Deadline,
    trace: Option<ActiveTrace>,
    config: &ReverseProxyConfig,
    pool: &UpstreamPool,
    stats: &ProxyStats,
) -> Response {
    let mut exclude: Vec<SocketAddr> = Vec::new();
    let mut budget = ReplayBudget::new(config.ppr_budget);
    let mut current = request;
    // Hop hygiene: a chunked request may have arrived with a (stale or
    // smuggling-shaped) Content-Length next to Transfer-Encoding; we
    // re-frame on the upstream hop, so drop the conflicting length.
    if current.chunked {
        current.headers.remove("content-length");
    }
    // Propagate the absolute deadline: downstream hops subtract their own
    // elapsed time implicitly by reading the same wall clock.
    current
        .headers
        .set(DEADLINE_HEADER, deadline.header_value());
    // Propagate the trace context the same way: the next hop parents its
    // spans under this hop's root span.
    if let Some(active) = trace {
        current.headers.set(
            TRACE_HEADER,
            TraceContext::sampled(active.trace_id, active.span_id).header_value(),
        );
    }

    let resilience = pool.resilience();
    let tracer = &stats.telemetry.tracer;
    let mut first_attempt = true;
    loop {
        if deadline.is_expired(unix_now_ms()) {
            stats.deadline_exceeded.bump();
            return Response::new(StatusCode::from_code(504), &b"deadline exceeded"[..]);
        }
        // Any attempt after the first is a retry and must be funded, no
        // matter why the previous attempt failed (connect error or 379).
        if !first_attempt {
            if !resilience.try_retry(stats) {
                stats.ppr_gave_up.bump();
                return Response::internal_error();
            }
            if let Some(active) = trace {
                let now_us = stats.telemetry.clock().now_us();
                tracer.child_span(
                    active,
                    SpanKind::RetryAttempt,
                    now_us,
                    now_us,
                    format!("funded excluded={}", exclude.len()),
                );
            }
        }
        let picked = pool.pick_admit(&exclude, stats);
        if let Some(active) = trace {
            let now_us = stats.telemetry.clock().now_us();
            tracer.child_span(
                active,
                SpanKind::BreakerAdmit,
                now_us,
                now_us,
                match &picked {
                    Some((upstream, _)) => format!("admitted upstream={upstream}"),
                    None => "no upstream admitted".to_string(),
                },
            );
        }
        let Some((upstream, _admit)) = picked else {
            // §4.3 caveat: no replay target → standard 500.
            stats.ppr_gave_up.bump();
            return Response::internal_error();
        };
        first_attempt = false;

        match forward_once(
            upstream,
            &current,
            deadline,
            trace,
            config.faults.as_ref(),
            &stats.telemetry,
        )
        .await
        {
            Ok(resp) if resp.status.code == zdr_proto::ppr::STATUS_PARTIAL_POST => {
                // The server answered: its breaker sees a success even
                // though the request itself must be replayed elsewhere.
                pool.report(upstream, true, stats);
                if !is_partial_post(&resp) {
                    // §5.2: 379 without the exact status message is NOT a
                    // PPR — relay it like any other response.
                    stats.ungated_379.bump();
                    return resp;
                }
                if !config.ppr_enabled {
                    // Ablation/baseline: behave like a proxy that doesn't
                    // implement PPR — the user sees a 500.
                    return Response::internal_error();
                }
                stats.ppr_handoffs.bump();
                // Consistency check: the server's echoed partial body must
                // be a prefix of what we forwarded ("trust the app server,
                // but always double-check", §5.2).
                match decode_379(&resp) {
                    Ok(partial)
                        if current.body.starts_with(&partial.body_received)
                            || partial.body_received.starts_with(&current.body) =>
                    {
                        exclude.push(upstream);
                        match budget.decide() {
                            ReplayDecision::Retry { .. } => continue,
                            ReplayDecision::GiveUp => {
                                stats.ppr_gave_up.bump();
                                return Response::internal_error();
                            }
                        }
                    }
                    _ => {
                        // Echo inconsistent with our copy: do not replay
                        // corrupted state.
                        stats.ppr_gave_up.bump();
                        return Response::internal_error();
                    }
                }
            }
            Ok(resp) => {
                pool.report(upstream, true, stats);
                if budget.used() > 0 {
                    stats.ppr_replayed_ok.bump();
                }
                return resp;
            }
            Err(_) => {
                // Connect/read failure: feed the breaker and try another
                // (still bounded by the same per-request replay budget).
                pool.report(upstream, false, stats);
                exclude.push(upstream);
                match budget.decide() {
                    ReplayDecision::Retry { .. } => continue,
                    ReplayDecision::GiveUp => {
                        stats.ppr_gave_up.bump();
                        return Response::internal_error();
                    }
                }
            }
        }
    }
}

async fn forward_once(
    upstream: SocketAddr,
    request: &Request,
    deadline: Deadline,
    trace: Option<ActiveTrace>,
    faults: &dyn FaultInjector,
    telemetry: &Telemetry,
) -> std::io::Result<Response> {
    // The per-attempt timeout is whatever is left of the deadline.
    let Some(timeout) = deadline.remaining(unix_now_ms()) else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "deadline already expired",
        ));
    };
    let io = async {
        match faults.decide_upstream(
            Resilience::upstream_key(upstream),
            FaultPoint::UpstreamConnect,
        ) {
            FaultAction::Proceed => {}
            // A slow upstream: stall, then proceed.
            FaultAction::Delay(d) => tokio::time::sleep(d).await,
            // A black hole: the connect hangs until the deadline fires.
            FaultAction::Drop => std::future::pending::<()>().await,
            // A dead upstream: immediate refusal.
            FaultAction::Die | FaultAction::Truncate => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    "injected upstream failure",
                ));
            }
        }
        let connect_start_us = telemetry.clock().now_us();
        // DEADLINE-OK: this whole async block runs under the caller's
        // remaining-deadline timeout, which bounds the connect too.
        let mut conn = TcpStream::connect(upstream).await?;
        let connect_end_us = telemetry.clock().now_us();
        telemetry
            .upstream_connect_us
            .record(connect_end_us.saturating_sub(connect_start_us));
        if let Some(active) = trace {
            telemetry.tracer.child_span(
                active,
                SpanKind::UpstreamConnect,
                connect_start_us,
                connect_end_us,
                format!("upstream={upstream}"),
            );
        }
        conn.write_all(&serialize_request(request)).await?;
        let mut parser = zdr_proto::http1::ResponseParser::new();
        let mut buf = [0u8; 16 * 1024];
        loop {
            let n = conn.read(&mut buf).await?;
            if n == 0 {
                if let Some(resp) = parser
                    .peer_closed()
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
                {
                    return Ok(resp);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "upstream closed mid-response",
                ));
            }
            if let Some(resp) = parser
                .push(&buf[..n])
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
            {
                // Interim responses (100 Continue, …) are hop-internal:
                // keep reading for the final response.
                if resp.status.code / 100 == 1 {
                    parser.reset();
                    continue;
                }
                return Ok(resp);
            }
        }
    };
    let forward_start_us = telemetry.clock().now_us();
    let result = match tokio::time::timeout(timeout, io).await {
        Ok(r) => r,
        Err(_) => Err(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "upstream timeout",
        )),
    };
    if let Some(active) = trace {
        telemetry.tracer.child_span(
            active,
            SpanKind::Forward,
            forward_start_us,
            telemetry.clock().now_us(),
            match &result {
                Ok(resp) => format!("upstream={upstream} status={}", resp.status.code),
                Err(e) => format!("upstream={upstream} error={}", e.kind()),
            },
        );
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use zdr_appserver::{AppServerConfig, RestartBehavior};
    use zdr_proto::http1::ResponseParser;

    async fn app(name: &str) -> zdr_appserver::AppServerHandle {
        zdr_appserver::spawn(
            "127.0.0.1:0".parse().unwrap(),
            AppServerConfig {
                drain_ms: 100,
                restart_behavior: RestartBehavior::PartialPostReplay,
                server_name: name.into(),
                read_delay_ms: 0,
            },
        )
        .await
        .unwrap()
    }

    async fn proxy(upstreams: Vec<SocketAddr>) -> ReverseProxyHandle {
        spawn_reverse_proxy(
            "127.0.0.1:0".parse().unwrap(),
            ReverseProxyConfig {
                upstreams,
                upstream_timeout: Duration::from_secs(5),
                ..Default::default()
            },
        )
        .await
        .unwrap()
    }

    async fn send(addr: SocketAddr, req: &Request) -> Response {
        let mut stream = TcpStream::connect(addr).await.unwrap();
        stream.write_all(&serialize_request(req)).await.unwrap();
        let mut parser = ResponseParser::new();
        let mut buf = [0u8; 16 * 1024];
        loop {
            let n = tokio::time::timeout(Duration::from_secs(10), stream.read(&mut buf))
                .await
                .expect("response timeout")
                .unwrap();
            assert!(n > 0, "closed before response");
            if let Some(resp) = parser.push(&buf[..n]).unwrap() {
                return resp;
            }
        }
    }

    #[tokio::test]
    async fn proxies_get_to_app_server() {
        let a = app("app-A").await;
        let p = proxy(vec![a.addr]).await;
        let resp = send(p.addr, &Request::get("/feed")).await;
        assert_eq!(resp.status.code, 200);
        assert_eq!(resp.headers.get("x-served-by"), Some("app-A"));
        assert_eq!(p.stats.requests_ok.get(), 1);
    }

    #[tokio::test]
    async fn proxies_post() {
        let a = app("app-A").await;
        let p = proxy(vec![a.addr]).await;
        let resp = send(p.addr, &Request::post("/upload", vec![7u8; 5000])).await;
        assert_eq!(resp.status.code, 200);
        assert_eq!(&resp.body[..], b"received=5000");
    }

    #[tokio::test]
    async fn health_endpoint_flips_on_drain() {
        let p = proxy(vec![]).await;
        let resp = send(p.addr, &Request::get("/proxygen/health")).await;
        assert_eq!(resp.status.code, 200);
        p.drain();
        // Draining closes the listener; an existing connection would see
        // 503 — verify via counters on a fresh spawn instead.
        assert!(p.is_draining());
        assert_eq!(p.stats.health_ok.get(), 1);
    }

    #[tokio::test]
    async fn idle_connection_force_closed_at_drain_deadline() {
        let a = app("app-H").await;
        let p = proxy(vec![a.addr]).await;

        // Warm a keep-alive connection with one request, then go idle.
        let mut stream = TcpStream::connect(p.addr).await.unwrap();
        stream
            .write_all(&serialize_request(&Request::get("/warm")))
            .await
            .unwrap();
        let mut parser = ResponseParser::new();
        let mut buf = [0u8; 8192];
        loop {
            let n = stream.read(&mut buf).await.unwrap();
            assert!(n > 0);
            if parser.push(&buf[..n]).unwrap().is_some() {
                break;
            }
        }
        assert_eq!(p.active_connections(), 1);

        // An idle client outliving the drain must be force-closed at the
        // deadline, not left dangling.
        let start = std::time::Instant::now();
        p.drain_with_deadline(Duration::from_millis(200));
        let n = tokio::time::timeout(Duration::from_secs(5), stream.read(&mut buf))
            .await
            .expect("connection outlived the drain hard deadline")
            .unwrap_or(0);
        assert_eq!(n, 0, "expected EOF from the forced close");
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(150),
            "closed before the deadline: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_secs(2),
            "outlived the deadline by more than a tick: {elapsed:?}"
        );
        assert_eq!(p.forced_closes(), 1);
        assert_eq!(
            p.tracker().forced_tally().tcp_resets,
            1,
            "HTTP forced closes are accounted as TCP resets"
        );
        tokio::time::timeout(Duration::from_secs(2), p.drained())
            .await
            .expect("drained() must resolve after the forced close");
    }

    #[tokio::test]
    async fn drain_without_deadline_leaves_idle_connection_open() {
        let a = app("app-I").await;
        let p = proxy(vec![a.addr]).await;
        let mut stream = TcpStream::connect(p.addr).await.unwrap();
        stream
            .write_all(&serialize_request(&Request::get("/warm")))
            .await
            .unwrap();
        let mut parser = ResponseParser::new();
        let mut buf = [0u8; 8192];
        loop {
            let n = stream.read(&mut buf).await.unwrap();
            assert!(n > 0);
            if parser.push(&buf[..n]).unwrap().is_some() {
                break;
            }
        }
        p.drain();
        // No deadline armed: the idle connection stays open.
        let read = tokio::time::timeout(Duration::from_millis(300), stream.read(&mut buf)).await;
        assert!(read.is_err(), "plain drain must not force-close");
        assert_eq!(p.forced_closes(), 0);
        assert_eq!(p.active_connections(), 1);
    }

    #[tokio::test]
    async fn connect_failure_fails_over_to_healthy_upstream() {
        let a = app("app-B").await;
        // First upstream is a dead port.
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let p = proxy(vec![dead, a.addr]).await;
        for _ in 0..3 {
            let resp = send(p.addr, &Request::get("/x")).await;
            assert_eq!(resp.status.code, 200);
        }
        assert!(p.pool.healthy().contains(&a.addr));
    }

    #[tokio::test]
    async fn no_upstreams_yields_500() {
        let p = proxy(vec![]).await;
        let resp = send(p.addr, &Request::get("/x")).await;
        assert_eq!(resp.status.code, 500);
        assert_eq!(p.stats.responses_5xx.get(), 1);
    }

    #[tokio::test]
    async fn ungated_379_relayed_verbatim() {
        // A fake upstream that answers 379 with the WRONG status message —
        // the §5.2 buggy-upstream scenario.
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            loop {
                let Ok((mut s, _)) = listener.accept().await else {
                    break;
                };
                tokio::spawn(async move {
                    let mut buf = [0u8; 4096];
                    let _ = s.read(&mut buf).await;
                    let _ = s
                        .write_all(b"HTTP/1.1 379 Something Else\r\ncontent-length: 3\r\n\r\nodd")
                        .await;
                });
            }
        });
        let p = proxy(vec![addr]).await;
        let resp = send(p.addr, &Request::get("/x")).await;
        assert_eq!(resp.status.code, 379);
        assert_eq!(resp.status.reason, "Something Else");
        assert_eq!(p.stats.ungated_379.get(), 1);
        assert_eq!(p.stats.ppr_handoffs.get(), 0);
    }

    #[tokio::test]
    async fn chunked_request_forwarded_without_stale_content_length() {
        let a = app("app-G").await;
        let p = proxy(vec![a.addr]).await;
        // Smuggling-shaped input: chunked TE plus a bogus Content-Length.
        let mut stream = TcpStream::connect(p.addr).await.unwrap();
        stream
            .write_all(
                b"POST /u HTTP/1.1\r\ncontent-length: 3\r\ntransfer-encoding: chunked\r\n\r\n\
                  5\r\nhello\r\n0\r\n\r\n",
            )
            .await
            .unwrap();
        let mut parser = zdr_proto::http1::ResponseParser::new();
        let mut buf = [0u8; 8192];
        let resp = loop {
            let n = tokio::time::timeout(Duration::from_secs(5), stream.read(&mut buf))
                .await
                .expect("timeout")
                .unwrap();
            assert!(n > 0);
            if let Some(r) = parser.push(&buf[..n]).unwrap() {
                break r;
            }
        };
        assert_eq!(resp.status.code, 200);
        assert_eq!(
            &resp.body[..],
            b"received=5",
            "chunked framing governed end to end"
        );
    }

    #[tokio::test]
    async fn interim_100_continue_from_upstream_is_skipped() {
        // The app server answers the forwarded Expect with an interim 100
        // before the final 200; the proxy must relay only the final.
        let a = app("app-E").await;
        let p = proxy(vec![a.addr]).await;
        let mut req = Request::post("/upload", &b"body!"[..]);
        req.headers.append("expect", "100-continue");
        let resp = send(p.addr, &req).await;
        assert_eq!(resp.status.code, 200);
        assert_eq!(&resp.body[..], b"received=5");
    }

    /// An upstream that accepts connections and then never answers —
    /// the black-hole shape deadline propagation must bound.
    async fn black_hole_upstream() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            let mut held = Vec::new();
            while let Ok((s, _)) = listener.accept().await {
                held.push(s);
            }
        });
        addr
    }

    #[tokio::test]
    async fn expired_client_deadline_yields_504_without_upstream_work() {
        let a = app("app-D").await;
        let p = proxy(vec![a.addr]).await;
        let mut req = Request::get("/feed");
        // A deadline firmly in the past: the proxy must not even try.
        req.headers.set(DEADLINE_HEADER, "1");
        let resp = send(p.addr, &req).await;
        assert_eq!(resp.status.code, 504);
        assert_eq!(p.stats.deadline_exceeded.get(), 1);
        assert_eq!(a.stats.snapshot().0, 0, "no upstream attempt");
    }

    #[tokio::test]
    async fn drain_hard_deadline_caps_in_flight_request_deadline() {
        // Satellite fix: a request computed while the force-close timer is
        // armed must not outlive it, even against a black-hole upstream
        // with a much longer configured timeout.
        let dead = black_hole_upstream().await;
        let p = proxy(vec![dead]).await;
        p.arm_force_close(Duration::from_millis(200));
        // Give the deadline store a moment to be visible.
        tokio::time::sleep(Duration::from_millis(20)).await;
        let start = std::time::Instant::now();
        let resp = send(p.addr, &Request::get("/slow")).await;
        assert_eq!(resp.status.code, 504);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "request outlived the drain hard deadline: {:?}",
            start.elapsed()
        );
        assert!(p.stats.deadline_exceeded.get() >= 1);
    }

    #[tokio::test]
    async fn shed_gate_rejects_with_503_at_accept() {
        let a = app("app-S").await;
        let p = spawn_reverse_proxy(
            "127.0.0.1:0".parse().unwrap(),
            ReverseProxyConfig {
                upstreams: vec![a.addr],
                upstream_timeout: Duration::from_secs(5),
                resilience: ResilienceConfig {
                    shed: crate::resilience::ShedConfig {
                        max_active: 1,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .await
        .unwrap();

        // First connection occupies the only admitted slot.
        let mut held = TcpStream::connect(p.addr).await.unwrap();
        held.write_all(&serialize_request(&Request::get("/warm")))
            .await
            .unwrap();
        let mut parser = ResponseParser::new();
        let mut buf = [0u8; 8192];
        loop {
            let n = held.read(&mut buf).await.unwrap();
            assert!(n > 0);
            if parser.push(&buf[..n]).unwrap().is_some() {
                break;
            }
        }
        assert_eq!(p.active_connections(), 1);

        // The next connection is shed with the pre-rendered 503.
        let resp = send(p.addr, &Request::get("/feed")).await;
        assert_eq!(resp.status.code, 503);
        assert_eq!(resp.headers.get("retry-after"), Some("1"));
        assert_eq!(p.stats.load_shed.get(), 1);
        assert_eq!(p.resilience().shed().shed_count(), 1);
        assert_eq!(
            a.stats.snapshot().0,
            1,
            "shed connection must never reach the upstream"
        );
    }

    #[tokio::test]
    async fn deadline_header_propagates_to_upstream_hop() {
        // The app server echoes request headers? It does not — instead
        // verify propagation with a hand-rolled upstream that captures the
        // forwarded request head.
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = tokio::sync::oneshot::channel::<Vec<u8>>();
        tokio::spawn(async move {
            let (mut s, _) = listener.accept().await.unwrap();
            let mut buf = [0u8; 8192];
            let n = s.read(&mut buf).await.unwrap();
            let _ = tx.send(buf[..n].to_vec());
            let _ = s
                .write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok")
                .await;
        });
        let p = proxy(vec![addr]).await;
        let resp = send(p.addr, &Request::get("/x")).await;
        assert_eq!(resp.status.code, 200);
        let head = rx.await.unwrap();
        let head = String::from_utf8_lossy(&head).to_lowercase();
        assert!(
            head.contains(&format!("{DEADLINE_HEADER}:")),
            "forwarded request must carry the absolute deadline: {head}"
        );
    }

    /// Polls the tracer until `pred` holds (the root span is recorded
    /// just after the response bytes are written, so a client that has
    /// already parsed the response may race it).
    async fn wait_for_spans(
        handle: &ReverseProxyHandle,
        pred: impl Fn(&zdr_core::trace::TraceSnapshot) -> bool,
    ) -> zdr_core::trace::TraceSnapshot {
        for _ in 0..200 {
            let snap = handle.stats.telemetry.tracer.snapshot();
            if pred(&snap) {
                return snap;
            }
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
        panic!(
            "spans never matched: {:?}",
            handle.stats.telemetry.tracer.snapshot()
        );
    }

    #[tokio::test]
    async fn sampled_request_yields_connected_tree_and_propagates_context() {
        // A hand-rolled upstream that captures the forwarded head, so we
        // can assert the x-zdr-trace header rides the upstream hop.
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = tokio::sync::oneshot::channel::<Vec<u8>>();
        tokio::spawn(async move {
            let (mut s, _) = listener.accept().await.unwrap();
            let mut buf = [0u8; 8192];
            let n = s.read(&mut buf).await.unwrap();
            let _ = tx.send(buf[..n].to_vec());
            let _ = s
                .write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok")
                .await;
        });
        let p = proxy(vec![addr]).await;
        p.stats.telemetry.tracer.set_sample_every(1);
        let resp = send(p.addr, &Request::get("/traced")).await;
        assert_eq!(resp.status.code, 200);

        let head = String::from_utf8_lossy(&rx.await.unwrap()).to_lowercase();
        assert!(
            head.contains(&format!("{TRACE_HEADER}:")),
            "forwarded request must carry the trace context: {head}"
        );

        let snap = wait_for_spans(&p, |s| {
            s.spans.iter().any(|sp| sp.kind == SpanKind::Request)
        })
        .await;
        let root = snap
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Request)
            .unwrap();
        assert_eq!(root.parent_id, 0, "locally sampled request is the root");
        assert!(snap.is_connected(root.trace_id), "parent links intact");
        for kind in [
            SpanKind::BreakerAdmit,
            SpanKind::UpstreamConnect,
            SpanKind::Forward,
        ] {
            let child = snap
                .spans
                .iter()
                .find(|s| s.kind == kind)
                .unwrap_or_else(|| panic!("missing {kind:?} span: {snap:?}"));
            assert_eq!(child.trace_id, root.trace_id);
            assert_eq!(child.parent_id, root.span_id);
        }
        // The propagated context names this root span as the parent.
        let wire = head
            .lines()
            .find(|l| l.starts_with(TRACE_HEADER))
            .and_then(|l| l.split_once(':'))
            .and_then(|(_, v)| TraceContext::parse(v))
            .expect("parsable propagated context");
        assert_eq!(wire.trace_id, root.trace_id);
        assert_eq!(wire.span_id, root.span_id);
        assert!(wire.sampled);
    }

    #[tokio::test]
    async fn sampling_off_records_no_spans() {
        let a = app("app-T0").await;
        let p = proxy(vec![a.addr]).await;
        for _ in 0..3 {
            let resp = send(p.addr, &Request::get("/x")).await;
            assert_eq!(resp.status.code, 200);
        }
        let snap = p.stats.telemetry.tracer.snapshot();
        assert!(snap.is_empty(), "sampling off must record nothing: {snap:?}");
    }

    #[tokio::test]
    async fn client_supplied_trace_context_is_adopted_even_with_sampling_off() {
        let a = app("app-T1").await;
        let p = proxy(vec![a.addr]).await;
        let mut req = Request::get("/x");
        req.headers
            .set(TRACE_HEADER, "00000000deadbeef-0000000000000005-1");
        let resp = send(p.addr, &req).await;
        assert_eq!(resp.status.code, 200);
        let snap = wait_for_spans(&p, |s| {
            s.spans.iter().any(|sp| sp.kind == SpanKind::Request)
        })
        .await;
        let root = snap
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Request)
            .unwrap();
        assert_eq!(root.trace_id, 0xdead_beef, "adopted the client's tree");
        assert_eq!(root.parent_id, 5, "parented under the client's span");
    }

    #[tokio::test]
    async fn budget_exhaustion_fails_fast_instead_of_retrying() {
        // Zero reserve and zero deposits: the first attempt is free, every
        // retry is refused.
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let a = app("app-R").await;
        let p = spawn_reverse_proxy(
            "127.0.0.1:0".parse().unwrap(),
            ReverseProxyConfig {
                upstreams: vec![dead, a.addr],
                upstream_timeout: Duration::from_secs(5),
                resilience: ResilienceConfig {
                    budget: zdr_core::resilience::RetryBudgetConfig {
                        reserve_tokens: 0,
                        deposit_permille: 0,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .await
        .unwrap();
        // Issue requests until one lands on the dead upstream first; that
        // one must fail fast (500) without a funded retry.
        let mut saw_fail_fast = false;
        for _ in 0..4 {
            let resp = send(p.addr, &Request::get("/x")).await;
            if resp.status.code == 500 {
                saw_fail_fast = true;
                break;
            }
        }
        assert!(saw_fail_fast, "round-robin must hit the dead upstream");
        assert!(p.stats.retry_budget_exhausted.get() >= 1);
        assert_eq!(p.stats.retries.get(), 0);
    }

    #[tokio::test]
    async fn connection_close_honored() {
        let a = app("app-F").await;
        let p = proxy(vec![a.addr]).await;
        let mut stream = TcpStream::connect(p.addr).await.unwrap();
        let mut req = Request::get("/once");
        req.headers.set("connection", "close");
        stream.write_all(&serialize_request(&req)).await.unwrap();

        // Read the response, then expect EOF — the proxy must close.
        let mut parser = zdr_proto::http1::ResponseParser::new();
        let mut buf = [0u8; 8192];
        let mut got_response = false;
        loop {
            let n = tokio::time::timeout(Duration::from_secs(5), stream.read(&mut buf))
                .await
                .expect("timeout")
                .unwrap();
            if n == 0 {
                break;
            }
            if let Some(resp) = parser.push(&buf[..n]).unwrap() {
                assert_eq!(resp.status.code, 200);
                got_response = true;
            }
        }
        assert!(got_response, "response must arrive before the close");
    }
}

//! Socket Takeover integration: restarting a proxy instance with zero
//! downtime (§4.1, Fig. 5).
//!
//! A [`ProxyInstance`] owns its VIP listener twice over: a tokio clone that
//! the reverse proxy serves on, and a pristine `std` clone kept in a
//! [`zdr_net::inventory::ListenerInventory`] for the next handover (both
//! clones share one kernel socket, so accepting on either is equivalent).
//!
//! Restart choreography:
//!
//! 1. The running instance parks a [`zdr_net::takeover::TakeoverServer`]
//!    on the well-known UNIX-socket path (step A).
//! 2. The successor calls [`ProxyInstance::takeover_from`]: it receives
//!    the listener FDs (step B), starts serving on them — including the
//!    `/proxygen/health` probe (steps C, F) — and confirms (step D).
//! 3. [`ProxyInstance::serve_one_takeover`] returns [`Drained`], the old
//!    instance stops accepting and finishes its in-flight connections
//!    (step E).
//!
//! At no instant is the listening socket closed, so no SYN is ever
//! refused: that is the "zero downtime" in the name.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use zdr_core::clock::Clock;
use zdr_core::config::ZdrConfig;
use zdr_core::supervisor::BackoffSchedule;
use zdr_core::sync::{AtomicU64, Ordering};
use zdr_core::telemetry::{ReleasePhase, Telemetry};
use zdr_core::trace::SpanKind;
use zdr_net::fault::FaultInjector;
use zdr_net::inventory::ListenerInventory;
use zdr_net::takeover::{
    request_takeover, HandoffInfo, ReleaseChannel, ServeOutcome, TakeoverServer,
};

use crate::resilience::{Resilience, ResilienceConfig};
use crate::reverse::{serve_on_listener, ReverseProxyConfig, ReverseProxyHandle};
use crate::stats::ProxyStats;
use crate::upstream::UpstreamPool;

/// Configuration for a takeover-capable proxy instance.
#[derive(Debug, Clone)]
pub struct ProxyInstanceConfig {
    /// Reverse-proxy settings (upstreams, PPR budget, …).
    pub reverse: ReverseProxyConfig,
    /// UNIX-socket path where takeover is served/requested.
    pub takeover_path: PathBuf,
    /// Drain period the old instance advertises.
    pub drain_ms: u64,
}

/// A live, takeover-capable proxy instance.
#[derive(Debug)]
pub struct ProxyInstance {
    /// This instance's takeover generation (0 = first boot).
    pub generation: u32,
    /// The serving reverse proxy.
    pub reverse: ReverseProxyHandle,
    /// VIP address.
    pub addr: SocketAddr,
    config: ProxyInstanceConfig,
    /// Hot drain deadline: starts at `config.drain_ms`, rewritable by a
    /// config reload ([`ProxyInstance::apply_config`]) without restarting.
    /// Shared with the applier closure, which outlives the instance move
    /// into [`ProxyInstance::serve_one_takeover`].
    drain_ms: Arc<AtomicU64>,
    /// Pristine listener clone reserved for the next handover.
    handover_listener: std::net::TcpListener,
}

/// The old instance after a successful handover: draining, still usable
/// for inspecting stats.
#[derive(Debug)]
pub struct Drained {
    /// The draining reverse proxy (stops accepting; in-flight finish).
    pub reverse: ReverseProxyHandle,
    /// Generation that just retired.
    pub generation: u32,
}

/// Tuning for [`ProxyInstance::serve_one_takeover_supervised`].
#[derive(Debug, Clone)]
pub struct SupervisorOptions {
    /// Bound on each handshake step of one takeover attempt.
    pub attempt_timeout: Duration,
    /// Post-confirm window in which the successor must report healthy.
    pub watch: Duration,
    /// Retry policy for failed attempts.
    pub backoff: BackoffSchedule,
    /// Seed for the backoff jitter (deterministic schedules in tests).
    pub seed: u64,
}

impl Default for SupervisorOptions {
    fn default() -> Self {
        SupervisorOptions {
            attempt_timeout: Duration::from_secs(30),
            watch: Duration::from_secs(10),
            backoff: BackoffSchedule::default(),
            seed: 0,
        }
    }
}

/// How a supervised release ended.
#[derive(Debug)]
pub enum SupervisedOutcome {
    /// The successor proved healthy; the old instance is draining with its
    /// hard deadline armed.
    Completed(Drained),
    /// Post-confirm failure: the old process reclaimed the sockets and
    /// serves the VIP again at its original generation.
    RolledBack {
        /// The rebuilt old instance, accepting again.
        instance: ProxyInstance,
        /// What went wrong.
        reason: String,
    },
    /// The retry budget ran out pre-confirm: the old process never stopped
    /// serving.
    AbortedKeepOld {
        /// The old instance, untouched.
        instance: ProxyInstance,
        /// The last attempt's failure.
        reason: String,
    },
}

/// Folds a blocking-pool join failure (the spawned closure panicked or was
/// cancelled) into the release error channel: a takeover helper that dies
/// must surface as a retryable/abortable handshake failure, never as a
/// panic unwinding through the serving task.
pub(crate) fn join_err(stage: &str, e: tokio::task::JoinError) -> zdr_net::NetError {
    zdr_net::NetError::Handshake(format!("{stage} task panicked: {e}"))
}

/// Records the FD-pass pause as a span. The pause is ambient — it has no
/// single owning request — so it parents under the most recent sampled
/// context any handler adopted (a request alive across the handoff),
/// falling back to the local sampler. Returns the trace id for the
/// timeline link, `0` when the pause went untraced.
fn record_pause_span(telemetry: &Telemetry, pause_us: u64) -> u64 {
    let tracer = &telemetry.tracer;
    let Some(active) = tracer.begin(tracer.last_seen()) else {
        return 0;
    };
    let end_us = telemetry.clock().now_us();
    tracer.root_span(
        active,
        SpanKind::TakeoverPause,
        end_us.saturating_sub(pause_us),
        end_us,
        format!("pause_us={pause_us}"),
    );
    active.trace_id
}

/// Binds the takeover path, retrying briefly: with strict stale-socket
/// handling a just-retired predecessor may still hold the path (and its
/// live server refuses replacement) for a beat while it tears down.
fn bind_with_retry(path: &Path) -> zdr_net::Result<TakeoverServer> {
    let mut last = match TakeoverServer::bind(path) {
        Ok(server) => return Ok(server),
        Err(e) => e,
    };
    for _ in 0..49 {
        std::thread::sleep(Duration::from_millis(100));
        match TakeoverServer::bind(path) {
            Ok(server) => return Ok(server),
            Err(e) => last = e,
        }
    }
    Err(last)
}

impl ProxyInstance {
    /// First boot: bind the VIP fresh (no predecessor).
    pub async fn bind_fresh(
        addr: SocketAddr,
        config: ProxyInstanceConfig,
    ) -> zdr_net::Result<ProxyInstance> {
        let std_listener = std::net::TcpListener::bind(addr)?;
        let instance = Self::from_std_listener(std_listener, 0, config)?;
        instance.reverse.stats.telemetry.event(
            ReleasePhase::Bind,
            0,
            format!("addr={} fresh", instance.addr),
        );
        Ok(instance)
    }

    fn from_std_listener(
        std_listener: std::net::TcpListener,
        generation: u32,
        config: ProxyInstanceConfig,
    ) -> zdr_net::Result<ProxyInstance> {
        let addr = std_listener.local_addr()?;
        let handover_listener = std_listener.try_clone()?;
        std_listener.set_nonblocking(true)?;
        let tokio_listener = tokio::net::TcpListener::from_std(std_listener)?;
        let mut reverse = serve_on_listener(tokio_listener, config.reverse.clone())?;
        reverse.service.set_generation(u64::from(generation));
        let drain_ms = Arc::new(AtomicU64::new(config.drain_ms));
        Ok(ProxyInstance {
            generation,
            reverse,
            addr,
            config,
            drain_ms,
            handover_listener,
        })
    }

    /// Journals the successor's half of the handshake into its own
    /// telemetry. The stats bundle is only born with the serving instance,
    /// so the events are recorded post-construction and their timestamps
    /// collapse to "handshake end" — the pause itself is preserved in the
    /// `FdPass` detail and the `takeover_pause_us` histogram.
    fn journal_successor_handshake(&self, pause_us: u64) {
        let t = &self.reverse.stats.telemetry;
        let generation = u64::from(self.generation);
        t.event(
            ReleasePhase::TakeoverRequest,
            generation,
            format!("path={}", self.config.takeover_path.display()),
        );
        t.event(
            ReleasePhase::FdPass,
            generation,
            format!("pause_us={pause_us}"),
        );
        t.event(ReleasePhase::Confirm, generation, "handshake complete");
        t.event(ReleasePhase::Bind, generation, format!("addr={}", self.addr));
        t.takeover_pause_us.record(pause_us);
    }

    /// Successor boot: receive the sockets from the instance at
    /// `config.takeover_path` and start serving at `predecessor + 1`.
    pub async fn takeover_from(config: ProxyInstanceConfig) -> zdr_net::Result<ProxyInstance> {
        let clock = Clock::system();
        let handshake_start_us = clock.now_us();
        let (pending, vip_addr, info) = Self::request_and_claim(&config).await?;
        let mut result = tokio::task::spawn_blocking(move || pending.confirm())
            .await
            .map_err(|e| join_err("confirm", e))??;
        let pause_us = clock.now_us().saturating_sub(handshake_start_us);
        let listener = result.inventory.claim_tcp(vip_addr)?;
        result.inventory.finish()?;

        let instance = Self::from_std_listener(listener, info.generation + 1, config)?;
        instance.journal_successor_handshake(pause_us);
        Ok(instance)
    }

    /// Like [`ProxyInstance::takeover_from`], but keeps the handshake
    /// stream open as a [`ReleaseChannel`]: the successor must report its
    /// health on it and obey a reclaim verdict (the supervised-release
    /// protocol driven by [`ProxyInstance::serve_one_takeover_supervised`]
    /// on the predecessor side).
    pub async fn takeover_from_watched(
        config: ProxyInstanceConfig,
    ) -> zdr_net::Result<(ProxyInstance, ReleaseChannel)> {
        let clock = Clock::system();
        let handshake_start_us = clock.now_us();
        let (pending, vip_addr, info) = Self::request_and_claim(&config).await?;
        let (mut result, release) = tokio::task::spawn_blocking(move || pending.confirm_watched())
            .await
            .map_err(|e| join_err("confirm", e))??;
        let pause_us = clock.now_us().saturating_sub(handshake_start_us);
        let listener = result.inventory.claim_tcp(vip_addr)?;
        result.inventory.finish()?;

        let instance = Self::from_std_listener(listener, info.generation + 1, config)?;
        instance.journal_successor_handshake(pause_us);
        Ok((instance, release))
    }

    async fn request_and_claim(
        config: &ProxyInstanceConfig,
    ) -> zdr_net::Result<(zdr_net::takeover::PendingTakeover, SocketAddr, HandoffInfo)> {
        let path = config.takeover_path.clone();
        let pending =
            tokio::task::spawn_blocking(move || request_takeover(&path, Duration::from_secs(30)))
                .await
                .map_err(|e| join_err("takeover request", e))??;

        let info = pending.result.info.clone();
        let vips = pending.result.inventory.unclaimed();
        // This instance serves exactly one TCP VIP; claim it, then confirm.
        let [vip] = vips.as_slice() else {
            pending.abort("expected exactly one VIP")?;
            return Err(zdr_net::NetError::Inventory(format!(
                "expected one VIP, predecessor offered {}",
                vips.len()
            )));
        };
        let vip_addr = vip.addr;
        Ok((pending, vip_addr, info))
    }

    fn handoff_info(&self) -> HandoffInfo {
        HandoffInfo {
            generation: self.generation,
            udp_router_addr: None,
            drain_deadline_ms: self.drain_ms(),
        }
    }

    /// The drain hard deadline currently in force (hot-reloadable).
    pub fn drain_ms(&self) -> u64 {
        // Relaxed: the deadline is advisory tuning; any read sees either
        // the old or the new value, both of which are valid deadlines.
        self.drain_ms.load(Ordering::Relaxed)
    }

    /// Applies a hot config snapshot to this running instance: swaps the
    /// upstream set, re-arms the resilience layer (shed / admission /
    /// storm-protection / retry-budget knobs in place, breakers only
    /// rebuilt if their config actually changed), and moves the drain
    /// hard deadline — all without touching a single established
    /// connection. Boot-only drift was already rejected by
    /// [`zdr_core::config::ConfigStore::publish`].
    pub fn apply_config(&self, cfg: &ZdrConfig, epoch: u64) {
        apply_config_parts(
            &self.reverse.pool,
            self.reverse.resilience(),
            &self.drain_ms,
            &self.reverse.stats.telemetry,
            u64::from(self.generation),
            cfg,
            epoch,
        );
    }

    /// A subscriber for [`zdr_core::config::ConfigStore::subscribe`] that
    /// keeps applying snapshots to this instance's live handles even after
    /// the instance itself moves into
    /// [`ProxyInstance::serve_one_takeover`] — it captures the shared
    /// pool/resilience/deadline handles, not `self`.
    pub fn config_applier(&self) -> Arc<dyn Fn(&ZdrConfig, u64) + Send + Sync> {
        let pool = Arc::clone(&self.reverse.pool);
        let resilience = Arc::clone(self.reverse.resilience());
        let drain_ms = Arc::clone(&self.drain_ms);
        let telemetry = Arc::clone(&self.reverse.stats.telemetry);
        let generation = u64::from(self.generation);
        Arc::new(move |cfg, epoch| {
            apply_config_parts(
                &pool, &resilience, &drain_ms, &telemetry, generation, cfg, epoch,
            );
        })
    }

    /// Parks a takeover server and serves one handover; on success the
    /// instance flips to draining — with the hard deadline armed, so
    /// connections surviving `drain_ms` are force-closed — and is returned
    /// as [`Drained`].
    ///
    /// Blocking steps run on the blocking pool; await this from wherever
    /// the instance's release logic lives.
    pub async fn serve_one_takeover(self) -> zdr_net::Result<Drained> {
        let path = self.config.takeover_path.clone();
        let info = self.handoff_info();
        let mut inventory = ListenerInventory::new();
        inventory.add_tcp(self.addr, self.handover_listener);
        let telemetry = Arc::clone(&self.reverse.stats.telemetry);
        let generation = u64::from(self.generation);
        let outcome = tokio::task::spawn_blocking(move || {
            let mut server = bind_with_retry(&path)?;
            server.on_fd_pass_pause(move |pause_us| {
                telemetry.takeover_pause_us.record(pause_us);
                let trace_id = record_pause_span(&telemetry, pause_us);
                telemetry.event_traced(
                    ReleasePhase::FdPass,
                    generation,
                    trace_id,
                    format!("pause_us={pause_us}"),
                );
            });
            server.serve_once(&inventory, info, Duration::from_secs(60))
        })
        .await
        .map_err(|e| join_err("takeover server", e))??;
        debug_assert_eq!(outcome, ServeOutcome::DrainNow);
        self.reverse.stats.telemetry.event(
            ReleasePhase::Confirm,
            generation,
            "successor confirmed",
        );

        // Step E: stop accepting, drain in-flight connections, force-close
        // whatever survives the deadline. Field load, not the getter:
        // `handover_listener` moved into the inventory above, so whole-self
        // borrows are gone — and it re-reads the atomic so a reload that
        // landed mid-handshake still governs this drain.
        self.reverse
            .drain_with_deadline(Duration::from_millis(self.drain_ms.load(Ordering::Relaxed)));
        Ok(Drained {
            reverse: self.reverse,
            generation: self.generation,
        })
    }

    /// Serves one **supervised** handover: retry failed takeover attempts
    /// under `opts.backoff`, then hold the post-confirm watch window and
    /// roll the release back — reclaiming the sockets over the reverse
    /// handshake — if the successor reports unhealthy, stays silent, or
    /// dies. `faults` is consulted at the protocol's send sites (tests and
    /// `zdr-sim` inject there; production passes
    /// [`zdr_net::fault::NoFaults`]).
    ///
    /// On rollback/abort the returned [`ProxyInstance`] serves the same
    /// VIP at the same generation (with fresh [`ProxyStats`] — the
    /// pre-release counters live on in whatever handle the caller kept).
    pub async fn serve_one_takeover_supervised(
        self,
        opts: SupervisorOptions,
        faults: Arc<dyn FaultInjector>,
    ) -> zdr_net::Result<SupervisedOutcome> {
        let stats = self.stats();
        let generation = u64::from(self.generation);
        let mut attempt = 1u32;
        let watch = loop {
            let path = self.config.takeover_path.clone();
            let listener = self.handover_listener.try_clone()?;
            let addr = self.addr;
            let info = self.handoff_info();
            let attempt_timeout = opts.attempt_timeout;
            let attempt_faults = Arc::clone(&faults);
            let attempt_telemetry = Arc::clone(&stats.telemetry);
            let result = tokio::task::spawn_blocking(move || {
                let mut server = bind_with_retry(&path)?;
                server.on_fd_pass_pause(move |pause_us| {
                    attempt_telemetry.takeover_pause_us.record(pause_us);
                    let trace_id = record_pause_span(&attempt_telemetry, pause_us);
                    attempt_telemetry.event_traced(
                        ReleasePhase::FdPass,
                        generation,
                        trace_id,
                        format!("pause_us={pause_us}"),
                    );
                });
                let mut inventory = ListenerInventory::new();
                inventory.add_tcp(addr, listener);
                server.serve_once_watched(&inventory, info, attempt_timeout, &*attempt_faults)
            })
            .await
            // A panicked attempt is just a failed attempt: fold the join
            // error into the retry/abort path below.
            .unwrap_or_else(|e| Err(join_err("takeover server", e)));

            match result {
                Ok(watch) => break watch,
                Err(e) if attempt >= opts.backoff.max_attempts => {
                    stats.injected_faults.add(faults.injected());
                    stats.telemetry.event(
                        ReleasePhase::Aborted,
                        generation,
                        format!("attempt {attempt} failed: {e}"),
                    );
                    return Ok(SupervisedOutcome::AbortedKeepOld {
                        reason: format!("takeover attempt {attempt} failed: {e}"),
                        instance: self,
                    });
                }
                Err(_) => {
                    stats.takeover_retries.bump();
                    let delay = opts.backoff.delay_ms(attempt, opts.seed);
                    stats.telemetry.event(
                        ReleasePhase::RetryBackoff,
                        generation,
                        format!("attempt={attempt} delay_ms={delay}"),
                    );
                    tokio::time::sleep(Duration::from_millis(delay)).await;
                    attempt += 1;
                }
            }
        };
        stats.injected_faults.add(faults.injected());
        stats
            .telemetry
            .event(ReleasePhase::Confirm, generation, "successor confirmed");

        // Confirmed: the successor owns the accepts now; stop our own and
        // supervise its first health verdict before committing.
        self.reverse.drain();
        let watch_window = opts.watch;
        let (watch, health) = tokio::task::spawn_blocking(move || {
            let mut watch = watch;
            let health = watch.await_health(watch_window);
            (watch, health)
        })
        .await
        .map_err(|e| join_err("watch", e))?;

        match health {
            Ok(true) => {
                stats
                    .telemetry
                    .event(ReleasePhase::HealthReport, generation, "ok=true");
                let _ = tokio::task::spawn_blocking(move || watch.release()).await;
                self.reverse
                    .arm_force_close(Duration::from_millis(self.drain_ms()));
                stats.telemetry.event(
                    ReleasePhase::Released,
                    generation,
                    "successor healthy; release stands",
                );
                Ok(SupervisedOutcome::Completed(Drained {
                    reverse: self.reverse,
                    generation: self.generation,
                }))
            }
            outcome => {
                let reason = match outcome {
                    Ok(_) => {
                        stats
                            .telemetry
                            .event(ReleasePhase::HealthReport, generation, "ok=false");
                        "successor reported unhealthy".to_string()
                    }
                    Err(e) => format!("watch channel failed: {e}"),
                };
                stats.rollbacks.bump();
                stats
                    .telemetry
                    .event(ReleasePhase::Rollback, generation, reason.clone());
                // Reverse takeover. Best-effort: if the successor already
                // died there is nobody to hand the FDs back — but our
                // retained clone shares the kernel socket, so rebuilding
                // from it resumes accepts either way, and SYNs that arrived
                // meanwhile are still queued in the backlog.
                // The reclaim itself is already best-effort; a panicked
                // reclaim task only loses the hand-back, which the shared
                // kernel socket below tolerates. Record it and move on.
                if let Err(e) =
                    tokio::task::spawn_blocking(move || watch.reclaim(Duration::from_secs(5))).await
                {
                    stats.telemetry.event(
                        ReleasePhase::Rollback,
                        generation,
                        format!("reclaim task panicked: {e}"),
                    );
                }
                let listener = self.handover_listener.try_clone()?;
                let instance =
                    Self::from_std_listener(listener, self.generation, self.config.clone())?;
                stats.telemetry.event(
                    ReleasePhase::Reclaimed,
                    generation,
                    "old instance accepting again",
                );
                Ok(SupervisedOutcome::RolledBack { instance, reason })
            }
        }
    }

    /// Successor side of a rollback: answers the predecessor's reclaim by
    /// sending the listeners back over the reverse handshake, then drains
    /// this instance (hard deadline armed).
    pub async fn serve_reclaim(self, release: ReleaseChannel) -> zdr_net::Result<Drained> {
        let info = self.handoff_info();
        let mut inventory = ListenerInventory::new();
        inventory.add_tcp(self.addr, self.handover_listener);
        tokio::task::spawn_blocking(move || release.serve_reclaim(&inventory, info))
            .await
            .map_err(|e| join_err("reclaim", e))??;
        self.reverse.stats.telemetry.event(
            ReleasePhase::Reclaimed,
            u64::from(self.generation),
            "sockets handed back to predecessor",
        );
        // Field load (not the getter): `handover_listener` moved into the
        // inventory above, so whole-self borrows are gone.
        self.reverse
            .drain_with_deadline(Duration::from_millis(self.drain_ms.load(Ordering::Relaxed)));
        Ok(Drained {
            reverse: self.reverse,
            generation: self.generation,
        })
    }

    /// Shared stats handle.
    pub fn stats(&self) -> Arc<ProxyStats> {
        Arc::clone(&self.reverse.stats)
    }

    /// This instance's counters plus connection tracking as one merged
    /// [`crate::stats::StatsSnapshot`].
    pub fn stats_snapshot(&self) -> crate::stats::StatsSnapshot {
        self.reverse
            .stats
            .snapshot()
            .merged(&self.reverse.tracker().snapshot())
    }
}

/// Shared body of [`ProxyInstance::apply_config`] and the detached applier
/// closure from [`ProxyInstance::config_applier`].
fn apply_config_parts(
    pool: &UpstreamPool,
    resilience: &Resilience,
    drain_ms: &AtomicU64,
    telemetry: &Telemetry,
    generation: u64,
    cfg: &ZdrConfig,
    epoch: u64,
) {
    // Only touch the pool when the set actually changed: `replace`
    // force-closes breakers for the incoming set, which would erase live
    // breaker state on every unrelated reload.
    if pool.addrs() != cfg.routing.upstreams {
        pool.replace(cfg.routing.upstreams.clone());
    }
    resilience.apply(ResilienceConfig::from_zdr(cfg));
    // Relaxed: the deadline is advisory tuning (see ProxyInstance::drain_ms).
    drain_ms.store(cfg.drain.drain_ms, Ordering::Relaxed);
    telemetry.event(
        ReleasePhase::ConfigApplied,
        generation,
        format!("epoch={epoch}"),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokio::io::{AsyncReadExt, AsyncWriteExt};
    use tokio::net::TcpStream;
    use zdr_proto::http1::{serialize_request, Request, Response, ResponseParser};

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "zdr-proxy-takeover-{tag}-{}-{:x}.sock",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ))
    }

    async fn app() -> zdr_appserver::AppServerHandle {
        zdr_appserver::spawn(
            "127.0.0.1:0".parse().unwrap(),
            zdr_appserver::AppServerConfig::default(),
        )
        .await
        .unwrap()
    }

    async fn send(addr: SocketAddr, req: &Request) -> Response {
        let mut stream = TcpStream::connect(addr).await.unwrap();
        stream.write_all(&serialize_request(req)).await.unwrap();
        let mut parser = ResponseParser::new();
        let mut buf = [0u8; 8192];
        loop {
            let n = tokio::time::timeout(Duration::from_secs(10), stream.read(&mut buf))
                .await
                .expect("timeout")
                .unwrap();
            assert!(n > 0);
            if let Some(resp) = parser.push(&buf[..n]).unwrap() {
                return resp;
            }
        }
    }

    fn config(upstream: SocketAddr, path: PathBuf) -> ProxyInstanceConfig {
        ProxyInstanceConfig {
            reverse: ReverseProxyConfig {
                upstreams: vec![upstream],
                upstream_timeout: Duration::from_secs(5),
                ..Default::default()
            },
            takeover_path: path,
            drain_ms: 1_000,
        }
    }

    #[tokio::test]
    async fn zero_downtime_restart_under_load() {
        let a = app().await;
        let path = tmp_path("load");
        let cfg = config(a.addr, path.clone());

        let old = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
            .await
            .unwrap();
        let vip = old.addr;
        assert_eq!(old.generation, 0);

        // Continuous client load across the restart.
        let load = tokio::spawn(async move {
            let mut failures = 0u32;
            let mut successes = 0u32;
            for _ in 0..200 {
                match tokio::time::timeout(
                    Duration::from_secs(5),
                    send_checked(vip, &Request::get("/feed")),
                )
                .await
                {
                    Ok(true) => successes += 1,
                    _ => failures += 1,
                }
                tokio::time::sleep(Duration::from_millis(2)).await;
            }
            (successes, failures)
        });

        // Old instance parks the takeover server…
        let old_task = tokio::spawn(old.serve_one_takeover());
        tokio::time::sleep(Duration::from_millis(50)).await;
        // …new instance takes over.
        let new = ProxyInstance::takeover_from(cfg).await.unwrap();
        assert_eq!(new.generation, 1);
        assert_eq!(new.addr, vip, "same VIP, same socket");

        let drained = old_task.await.unwrap().unwrap();
        assert!(drained.reverse.is_draining());

        let (successes, failures) = load.await.unwrap();
        assert_eq!(failures, 0, "zero downtime means zero failed requests");
        assert_eq!(successes, 200);

        // The new instance is really the one serving now.
        let before = new.reverse.stats.requests_ok.get();
        let resp = send(vip, &Request::get("/x")).await;
        assert_eq!(resp.status.code, 200);
        assert!(new.reverse.stats.requests_ok.get() > before.saturating_sub(1));
    }

    async fn send_checked(addr: SocketAddr, req: &Request) -> bool {
        let Ok(mut stream) = TcpStream::connect(addr).await else {
            return false;
        };
        if stream.write_all(&serialize_request(req)).await.is_err() {
            return false;
        }
        let mut parser = ResponseParser::new();
        let mut buf = [0u8; 8192];
        loop {
            match stream.read(&mut buf).await {
                Ok(0) | Err(_) => return false,
                Ok(n) => match parser.push(&buf[..n]) {
                    Ok(Some(resp)) => return resp.status.code == 200,
                    Ok(None) => {}
                    Err(_) => return false,
                },
            }
        }
    }

    #[tokio::test]
    async fn takeover_journals_phase_timeline_on_both_sides() {
        let a = app().await;
        let path = tmp_path("timeline");
        let cfg = config(a.addr, path.clone());
        let old = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
            .await
            .unwrap();
        let old_stats = old.stats();

        let old_task = tokio::spawn(old.serve_one_takeover());
        tokio::time::sleep(Duration::from_millis(50)).await;
        let new = ProxyInstance::takeover_from(cfg).await.unwrap();
        let _drained = old_task.await.unwrap().unwrap();

        // Predecessor: bound fresh, passed FDs, saw the confirm, flipped
        // health, started draining.
        let old_tl = old_stats.telemetry.timeline.snapshot();
        assert!(
            old_tl.contains_sequence(&[
                ReleasePhase::Bind,
                ReleasePhase::FdPass,
                ReleasePhase::Confirm,
                ReleasePhase::HealthFlip,
                ReleasePhase::DrainStart,
            ]),
            "{old_tl:?}"
        );
        assert_eq!(old_stats.telemetry.takeover_pause_us.count(), 1);

        // Successor: requested, received FDs, confirmed, bound (in that
        // journal order), at generation 1.
        let new_tl = new.reverse.stats.telemetry.timeline.snapshot();
        assert!(
            new_tl.contains_sequence(&[
                ReleasePhase::TakeoverRequest,
                ReleasePhase::FdPass,
                ReleasePhase::Confirm,
                ReleasePhase::Bind,
            ]),
            "{new_tl:?}"
        );
        assert!(new_tl.events.iter().all(|e| e.generation == 1), "{new_tl:?}");
        assert_eq!(new.reverse.stats.telemetry.takeover_pause_us.count(), 1);
    }

    #[tokio::test]
    async fn supervised_release_completes_on_healthy_successor() {
        use zdr_net::fault::NoFaults;
        use zdr_net::takeover::ReclaimVerdict;

        let a = app().await;
        let path = tmp_path("sup-ok");
        let cfg = config(a.addr, path.clone());
        let old = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
            .await
            .unwrap();
        let vip = old.addr;

        let old_task = tokio::spawn(
            old.serve_one_takeover_supervised(SupervisorOptions::default(), Arc::new(NoFaults)),
        );
        tokio::time::sleep(Duration::from_millis(50)).await;

        let (new, release) = ProxyInstance::takeover_from_watched(cfg).await.unwrap();
        assert_eq!(new.generation, 1);
        tokio::task::spawn_blocking(move || {
            let mut release = release;
            release.report_health(true).unwrap();
            assert_eq!(
                release.await_verdict(Duration::from_secs(5)).unwrap(),
                ReclaimVerdict::Released
            );
        })
        .await
        .unwrap();

        let outcome = old_task.await.unwrap().unwrap();
        let SupervisedOutcome::Completed(drained) = outcome else {
            panic!("expected completion");
        };
        assert!(drained.reverse.is_draining());

        let resp = send(vip, &Request::get("/after")).await;
        assert_eq!(resp.status.code, 200);
        assert_eq!(new.reverse.stats.requests_ok.get(), 1);
    }

    #[tokio::test]
    async fn supervised_release_rolls_back_on_unhealthy_successor() {
        use zdr_net::fault::NoFaults;
        use zdr_net::takeover::ReclaimVerdict;

        let a = app().await;
        let path = tmp_path("sup-rollback");
        let cfg = config(a.addr, path.clone());
        let old = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
            .await
            .unwrap();
        let vip = old.addr;
        let old_stats = old.stats();

        let old_task = tokio::spawn(
            old.serve_one_takeover_supervised(SupervisorOptions::default(), Arc::new(NoFaults)),
        );
        tokio::time::sleep(Duration::from_millis(50)).await;

        let (new, release) = ProxyInstance::takeover_from_watched(cfg).await.unwrap();
        let release = tokio::task::spawn_blocking(move || {
            let mut release = release;
            release.report_health(false).unwrap();
            assert_eq!(
                release.await_verdict(Duration::from_secs(5)).unwrap(),
                ReclaimVerdict::Reclaimed
            );
            release
        })
        .await
        .unwrap();
        let drained_new = new.serve_reclaim(release).await.unwrap();
        assert!(drained_new.reverse.is_draining());

        let outcome = old_task.await.unwrap().unwrap();
        let SupervisedOutcome::RolledBack { instance, reason } = outcome else {
            panic!("expected rollback");
        };
        assert!(reason.contains("unhealthy"), "{reason}");
        assert_eq!(instance.generation, 0, "rollback keeps the old generation");
        assert_eq!(old_stats.rollbacks.get(), 1);

        // The rebuilt old instance serves the same VIP — same kernel
        // socket, so nothing was ever refused.
        let resp = send(vip, &Request::get("/rolled-back")).await;
        assert_eq!(resp.status.code, 200);
        assert_eq!(instance.reverse.stats.requests_ok.get(), 1);
    }

    #[tokio::test]
    async fn supervised_release_aborts_after_exhausted_retries() {
        use zdr_core::supervisor::BackoffSchedule;
        use zdr_net::fault::{FaultAction, FaultPoint, FaultRule, ScriptedFaults};

        let a = app().await;
        let path = tmp_path("sup-abort");
        let cfg = config(a.addr, path.clone());
        let old = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
            .await
            .unwrap();
        let old_stats = old.stats();

        // Every offer the old process sends dies mid-frame.
        let faults = Arc::new(ScriptedFaults::new(
            7,
            vec![
                FaultRule {
                    point: FaultPoint::SendOffer,
                    nth: 1,
                    action: FaultAction::Die,
                },
                FaultRule {
                    point: FaultPoint::SendOffer,
                    nth: 2,
                    action: FaultAction::Die,
                },
            ],
        ));
        let opts = SupervisorOptions {
            backoff: BackoffSchedule {
                base_ms: 50,
                cap_ms: 100,
                multiplier: 2.0,
                jitter_frac: 0.0,
                max_attempts: 2,
            },
            ..Default::default()
        };
        let old_task = tokio::spawn(old.serve_one_takeover_supervised(opts, faults));

        // Successor keeps trying; every attempt fails at the injected
        // fault until the supervisor gives up.
        for _ in 0..20 {
            tokio::time::sleep(Duration::from_millis(100)).await;
            if old_task.is_finished() {
                break;
            }
            assert!(
                ProxyInstance::takeover_from(cfg.clone()).await.is_err(),
                "handshake must fail at the injected fault"
            );
        }

        let outcome = old_task.await.unwrap().unwrap();
        let SupervisedOutcome::AbortedKeepOld { instance, reason } = outcome else {
            panic!("expected abort-and-keep-old");
        };
        assert!(reason.contains("failed"), "{reason}");
        assert_eq!(old_stats.takeover_retries.get(), 1);
        assert_eq!(old_stats.injected_faults.get(), 2);

        // Old never stopped serving.
        let resp = send(instance.addr, &Request::get("/still-here")).await;
        assert_eq!(resp.status.code, 200);
    }

    #[tokio::test]
    async fn health_checks_answered_throughout_restart() {
        let a = app().await;
        let path = tmp_path("health");
        let cfg = config(a.addr, path.clone());
        let old = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
            .await
            .unwrap();
        let vip = old.addr;

        // Probe before, during, after.
        assert_eq!(
            send(vip, &Request::get("/proxygen/health"))
                .await
                .status
                .code,
            200
        );

        let old_task = tokio::spawn(old.serve_one_takeover());
        tokio::time::sleep(Duration::from_millis(50)).await;
        let new = ProxyInstance::takeover_from(cfg).await.unwrap();
        let _drained = old_task.await.unwrap().unwrap();

        // Fig. 5 step F: the NEW instance answers probes; Katran never saw
        // a failure.
        let resp = send(vip, &Request::get("/proxygen/health")).await;
        assert_eq!(resp.status.code, 200);
        assert!(new.reverse.stats.health_ok.get() >= 1);
    }

    #[tokio::test]
    async fn apply_config_rearms_live_instance_without_touching_connections() {
        let a = app().await;
        let b = app().await;
        let path = tmp_path("hot-config");
        let instance = ProxyInstance::bind_fresh(
            "127.0.0.1:0".parse().unwrap(),
            config(a.addr, path.clone()),
        )
        .await
        .unwrap();
        let vip = instance.addr;
        assert_eq!(instance.drain_ms(), 1_000);

        // Warm one keep-alive connection; it must survive the reload.
        let mut held = TcpStream::connect(vip).await.unwrap();
        held.write_all(&serialize_request(&Request::get("/warm")))
            .await
            .unwrap();
        let mut parser = ResponseParser::new();
        let mut buf = [0u8; 8192];
        loop {
            let n = held.read(&mut buf).await.unwrap();
            assert!(n > 0);
            if parser.push(&buf[..n]).unwrap().is_some() {
                break;
            }
        }

        // Reroute to upstream B, move the drain deadline — via the
        // detached applier, the shape the ConfigStore subscriber uses.
        let applier = instance.config_applier();
        let mut cfg = zdr_core::config::ZdrConfig::default();
        cfg.routing.upstreams = vec![b.addr];
        cfg.drain.drain_ms = 5_000;
        applier(&cfg, 2);

        assert_eq!(instance.drain_ms(), 5_000);
        assert_eq!(instance.reverse.pool.addrs(), vec![b.addr]);
        let before_b = b.stats.snapshot().0;
        let resp = send(vip, &Request::get("/rerouted")).await;
        assert_eq!(resp.status.code, 200);
        assert!(b.stats.snapshot().0 > before_b, "new upstream takes over");

        // The established connection was never churned: it still answers.
        held.write_all(&serialize_request(&Request::get("/still-warm")))
            .await
            .unwrap();
        parser.reset();
        loop {
            let n = held.read(&mut buf).await.unwrap();
            assert!(n > 0, "reload must not close established connections");
            if let Some(resp) = parser.push(&buf[..n]).unwrap() {
                assert_eq!(resp.status.code, 200);
                break;
            }
        }
        assert_eq!(instance.reverse.forced_closes(), 0);

        // The reload is journalled on the release timeline.
        let tl = instance.reverse.stats.telemetry.timeline.snapshot();
        assert!(
            tl.events
                .iter()
                .any(|e| e.phase == ReleasePhase::ConfigApplied && e.detail.contains("epoch=2")),
            "{tl:?}"
        );
    }

    #[tokio::test]
    async fn generations_chain_across_multiple_takeovers() {
        let a = app().await;
        let path = tmp_path("chain");
        let cfg = config(a.addr, path.clone());
        let g0 = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
            .await
            .unwrap();
        let vip = g0.addr;

        let t0 = tokio::spawn(g0.serve_one_takeover());
        tokio::time::sleep(Duration::from_millis(50)).await;
        let g1 = ProxyInstance::takeover_from(cfg.clone()).await.unwrap();
        t0.await.unwrap().unwrap();
        assert_eq!(g1.generation, 1);

        let t1 = tokio::spawn(g1.serve_one_takeover());
        tokio::time::sleep(Duration::from_millis(50)).await;
        let g2 = ProxyInstance::takeover_from(cfg).await.unwrap();
        t1.await.unwrap().unwrap();
        assert_eq!(g2.generation, 2);

        let resp = send(vip, &Request::get("/still-serving")).await;
        assert_eq!(resp.status.code, 200);
    }
}

//! Socket Takeover integration: restarting a proxy instance with zero
//! downtime (§4.1, Fig. 5).
//!
//! A [`ProxyInstance`] owns its VIP listener twice over: a tokio clone that
//! the reverse proxy serves on, and a pristine `std` clone kept in a
//! [`zdr_net::inventory::ListenerInventory`] for the next handover (both
//! clones share one kernel socket, so accepting on either is equivalent).
//!
//! Restart choreography:
//!
//! 1. The running instance parks a [`zdr_net::takeover::TakeoverServer`]
//!    on the well-known UNIX-socket path (step A).
//! 2. The successor calls [`ProxyInstance::takeover_from`]: it receives
//!    the listener FDs (step B), starts serving on them — including the
//!    `/proxygen/health` probe (steps C, F) — and confirms (step D).
//! 3. [`ProxyInstance::serve_one_takeover`] returns [`Drained`], the old
//!    instance stops accepting and finishes its in-flight connections
//!    (step E).
//!
//! At no instant is the listening socket closed, so no SYN is ever
//! refused: that is the "zero downtime" in the name.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use zdr_net::inventory::ListenerInventory;
use zdr_net::takeover::{request_takeover, HandoffInfo, ServeOutcome, TakeoverServer};

use crate::reverse::{serve_on_listener, ReverseProxyConfig, ReverseProxyHandle};

/// Configuration for a takeover-capable proxy instance.
#[derive(Debug, Clone)]
pub struct ProxyInstanceConfig {
    /// Reverse-proxy settings (upstreams, PPR budget, …).
    pub reverse: ReverseProxyConfig,
    /// UNIX-socket path where takeover is served/requested.
    pub takeover_path: PathBuf,
    /// Drain period the old instance advertises.
    pub drain_ms: u64,
}

/// A live, takeover-capable proxy instance.
#[derive(Debug)]
pub struct ProxyInstance {
    /// This instance's takeover generation (0 = first boot).
    pub generation: u32,
    /// The serving reverse proxy.
    pub reverse: ReverseProxyHandle,
    /// VIP address.
    pub addr: SocketAddr,
    config: ProxyInstanceConfig,
    /// Pristine listener clone reserved for the next handover.
    handover_listener: std::net::TcpListener,
}

/// The old instance after a successful handover: draining, still usable
/// for inspecting stats.
#[derive(Debug)]
pub struct Drained {
    /// The draining reverse proxy (stops accepting; in-flight finish).
    pub reverse: ReverseProxyHandle,
    /// Generation that just retired.
    pub generation: u32,
}

impl ProxyInstance {
    /// First boot: bind the VIP fresh (no predecessor).
    pub async fn bind_fresh(
        addr: SocketAddr,
        config: ProxyInstanceConfig,
    ) -> zdr_net::Result<ProxyInstance> {
        let std_listener = std::net::TcpListener::bind(addr)?;
        Self::from_std_listener(std_listener, 0, config)
    }

    fn from_std_listener(
        std_listener: std::net::TcpListener,
        generation: u32,
        config: ProxyInstanceConfig,
    ) -> zdr_net::Result<ProxyInstance> {
        let addr = std_listener.local_addr()?;
        let handover_listener = std_listener.try_clone()?;
        std_listener.set_nonblocking(true)?;
        let tokio_listener = tokio::net::TcpListener::from_std(std_listener)?;
        let reverse = serve_on_listener(tokio_listener, config.reverse.clone())?;
        Ok(ProxyInstance {
            generation,
            reverse,
            addr,
            config,
            handover_listener,
        })
    }

    /// Successor boot: receive the sockets from the instance at
    /// `config.takeover_path` and start serving at `predecessor + 1`.
    pub async fn takeover_from(config: ProxyInstanceConfig) -> zdr_net::Result<ProxyInstance> {
        let path = config.takeover_path.clone();
        let pending =
            tokio::task::spawn_blocking(move || request_takeover(&path, Duration::from_secs(30)))
                .await
                .expect("takeover task panicked")?;

        let info = pending.result.info.clone();
        let vips = pending.result.inventory.unclaimed();
        // This instance serves exactly one TCP VIP; claim it, then confirm.
        let [vip] = vips.as_slice() else {
            pending.abort("expected exactly one VIP")?;
            return Err(zdr_net::NetError::Inventory(format!(
                "expected one VIP, predecessor offered {}",
                vips.len()
            )));
        };
        let vip_addr = vip.addr;
        let mut result = tokio::task::spawn_blocking(move || pending.confirm())
            .await
            .expect("confirm task panicked")?;
        let listener = result.inventory.claim_tcp(vip_addr)?;
        result.inventory.finish()?;

        Self::from_std_listener(listener, info.generation + 1, config)
    }

    /// Parks a takeover server and serves one handover; on success the
    /// instance flips to draining and is returned as [`Drained`].
    ///
    /// Blocking steps run on the blocking pool; await this from wherever
    /// the instance's release logic lives.
    pub async fn serve_one_takeover(self) -> zdr_net::Result<Drained> {
        let server = TakeoverServer::bind(&self.config.takeover_path)?;
        let mut inventory = ListenerInventory::new();
        inventory.add_tcp(self.addr, self.handover_listener);
        let info = HandoffInfo {
            generation: self.generation,
            udp_router_addr: None,
            drain_deadline_ms: self.config.drain_ms,
        };
        let outcome = tokio::task::spawn_blocking(move || {
            server.serve_once(&inventory, info, Duration::from_secs(60))
        })
        .await
        .expect("takeover server task panicked")?;
        debug_assert_eq!(outcome, ServeOutcome::DrainNow);

        // Step E: stop accepting, drain in-flight connections.
        self.reverse.drain();
        Ok(Drained {
            reverse: self.reverse,
            generation: self.generation,
        })
    }

    /// Shared stats handle.
    pub fn stats(&self) -> Arc<crate::stats::ProxyStats> {
        Arc::clone(&self.reverse.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ProxyStats;
    use tokio::io::{AsyncReadExt, AsyncWriteExt};
    use tokio::net::TcpStream;
    use zdr_proto::http1::{serialize_request, Request, Response, ResponseParser};

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "zdr-proxy-takeover-{tag}-{}-{:x}.sock",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ))
    }

    async fn app() -> zdr_appserver::AppServerHandle {
        zdr_appserver::spawn(
            "127.0.0.1:0".parse().unwrap(),
            zdr_appserver::AppServerConfig::default(),
        )
        .await
        .unwrap()
    }

    async fn send(addr: SocketAddr, req: &Request) -> Response {
        let mut stream = TcpStream::connect(addr).await.unwrap();
        stream.write_all(&serialize_request(req)).await.unwrap();
        let mut parser = ResponseParser::new();
        let mut buf = [0u8; 8192];
        loop {
            let n = tokio::time::timeout(Duration::from_secs(10), stream.read(&mut buf))
                .await
                .expect("timeout")
                .unwrap();
            assert!(n > 0);
            if let Some(resp) = parser.push(&buf[..n]).unwrap() {
                return resp;
            }
        }
    }

    fn config(upstream: SocketAddr, path: PathBuf) -> ProxyInstanceConfig {
        ProxyInstanceConfig {
            reverse: ReverseProxyConfig {
                upstreams: vec![upstream],
                upstream_timeout: Duration::from_secs(5),
                ..Default::default()
            },
            takeover_path: path,
            drain_ms: 1_000,
        }
    }

    #[tokio::test]
    async fn zero_downtime_restart_under_load() {
        let a = app().await;
        let path = tmp_path("load");
        let cfg = config(a.addr, path.clone());

        let old = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
            .await
            .unwrap();
        let vip = old.addr;
        assert_eq!(old.generation, 0);

        // Continuous client load across the restart.
        let load = tokio::spawn(async move {
            let mut failures = 0u32;
            let mut successes = 0u32;
            for _ in 0..200 {
                match tokio::time::timeout(
                    Duration::from_secs(5),
                    send_checked(vip, &Request::get("/feed")),
                )
                .await
                {
                    Ok(true) => successes += 1,
                    _ => failures += 1,
                }
                tokio::time::sleep(Duration::from_millis(2)).await;
            }
            (successes, failures)
        });

        // Old instance parks the takeover server…
        let old_task = tokio::spawn(old.serve_one_takeover());
        tokio::time::sleep(Duration::from_millis(50)).await;
        // …new instance takes over.
        let new = ProxyInstance::takeover_from(cfg).await.unwrap();
        assert_eq!(new.generation, 1);
        assert_eq!(new.addr, vip, "same VIP, same socket");

        let drained = old_task.await.unwrap().unwrap();
        assert!(drained.reverse.is_draining());

        let (successes, failures) = load.await.unwrap();
        assert_eq!(failures, 0, "zero downtime means zero failed requests");
        assert_eq!(successes, 200);

        // The new instance is really the one serving now.
        let before = ProxyStats::get(&new.reverse.stats.requests_ok);
        let resp = send(vip, &Request::get("/x")).await;
        assert_eq!(resp.status.code, 200);
        assert!(ProxyStats::get(&new.reverse.stats.requests_ok) > before.saturating_sub(1));
    }

    async fn send_checked(addr: SocketAddr, req: &Request) -> bool {
        let Ok(mut stream) = TcpStream::connect(addr).await else {
            return false;
        };
        if stream.write_all(&serialize_request(req)).await.is_err() {
            return false;
        }
        let mut parser = ResponseParser::new();
        let mut buf = [0u8; 8192];
        loop {
            match stream.read(&mut buf).await {
                Ok(0) | Err(_) => return false,
                Ok(n) => match parser.push(&buf[..n]) {
                    Ok(Some(resp)) => return resp.status.code == 200,
                    Ok(None) => {}
                    Err(_) => return false,
                },
            }
        }
    }

    #[tokio::test]
    async fn health_checks_answered_throughout_restart() {
        let a = app().await;
        let path = tmp_path("health");
        let cfg = config(a.addr, path.clone());
        let old = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
            .await
            .unwrap();
        let vip = old.addr;

        // Probe before, during, after.
        assert_eq!(
            send(vip, &Request::get("/proxygen/health"))
                .await
                .status
                .code,
            200
        );

        let old_task = tokio::spawn(old.serve_one_takeover());
        tokio::time::sleep(Duration::from_millis(50)).await;
        let new = ProxyInstance::takeover_from(cfg).await.unwrap();
        let _drained = old_task.await.unwrap().unwrap();

        // Fig. 5 step F: the NEW instance answers probes; Katran never saw
        // a failure.
        let resp = send(vip, &Request::get("/proxygen/health")).await;
        assert_eq!(resp.status.code, 200);
        assert!(ProxyStats::get(&new.reverse.stats.health_ok) >= 1);
    }

    #[tokio::test]
    async fn generations_chain_across_multiple_takeovers() {
        let a = app().await;
        let path = tmp_path("chain");
        let cfg = config(a.addr, path.clone());
        let g0 = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
            .await
            .unwrap();
        let vip = g0.addr;

        let t0 = tokio::spawn(g0.serve_one_takeover());
        tokio::time::sleep(Duration::from_millis(50)).await;
        let g1 = ProxyInstance::takeover_from(cfg.clone()).await.unwrap();
        t0.await.unwrap().unwrap();
        assert_eq!(g1.generation, 1);

        let t1 = tokio::spawn(g1.serve_one_takeover());
        tokio::time::sleep(Duration::from_millis(50)).await;
        let g2 = ProxyInstance::takeover_from(cfg).await.unwrap();
        t1.await.unwrap().unwrap();
        assert_eq!(g2.generation, 2);

        let resp = send(vip, &Request::get("/still-serving")).await;
        assert_eq!(resp.status.code, 200);
    }
}

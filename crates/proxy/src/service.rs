//! The unified proxy service layer: one listener/drain/stats lifecycle
//! shared by every protocol this Proxygen-like proxy serves.
//!
//! The paper applies a single release lifecycle to every service (§4.1,
//! §4.3): stop accepting, announce the drain, keep serving existing
//! connections, and at a hard deadline force-close the survivors with a
//! protocol-appropriate signal. This module is that lifecycle as a reusable
//! component:
//!
//! * [`DrainState`] — the shared drain/force watch channels plus the
//!   [`ConnTracker`] and the protocol's [`CloseSignal`] impl. Connection
//!   tasks hold an `Arc<DrainState>` and select on its signals.
//! * [`ServiceHandle`] — what a spawned service returns to its owner: a
//!   sync `drain()` that stops the accept tasks and flips the drain signal,
//!   `drain_with_deadline()` that also arms the force-close timer, and an
//!   awaitable [`ServiceHandle::drained`] that resolves once the active
//!   gauge hits zero.
//! * [`CloseSignal`] — how a protocol says "this connection is being
//!   killed": kind (for accounting) + optional close frame (bytes written
//!   to the peer before the close). HTTP is a bare TCP close; MQTT writes
//!   a DISCONNECT packet; the trunk's GOAWAY rides the mux; QUIC sends a
//!   CONNECTION_CLOSE datagram per flow.
//!
//! Service modules differ only in their accept loops and per-connection
//! I/O; everything lifecycle-shaped lives here.

use std::time::Duration;

use bytes::Bytes;
use tokio::sync::watch;
use tokio::task::JoinHandle;

use zdr_core::clock::unix_now_ms;
use zdr_core::sync::{Arc, AtomicU64, Ordering};
use zdr_core::telemetry::{ReleasePhase, Telemetry};
use zdr_proto::deadline::Deadline;
use zdr_proto::mqtt;

use crate::conn_tracker::{ConnGuard, ConnTracker};

/// How a protocol closes a connection at the drain hard deadline.
///
/// Implementations are tiny: a close-signal *kind* (what the accounting
/// records, `zdr_core::drain::CloseSignal`) and optionally a close *frame*
/// (bytes written to the peer before the transport closes). A new protocol
/// plugs into the service layer by implementing this trait and passing it
/// to [`DrainState::new`].
pub trait CloseSignal: Send + Sync + std::fmt::Debug + 'static {
    /// The accounting kind of this protocol's forced close.
    fn kind(&self) -> zdr_core::drain::CloseSignal;

    /// The close frame written to the peer before closing, if the protocol
    /// has one. `None` means close the transport silently (plain TCP).
    fn close_frame(&self) -> Option<Bytes> {
        None
    }
}

/// Plain HTTP/TCP: no close frame, the reset itself is the signal.
#[derive(Debug, Clone, Copy, Default)]
pub struct HttpCloseSignal;

impl CloseSignal for HttpCloseSignal {
    fn kind(&self) -> zdr_core::drain::CloseSignal {
        zdr_core::drain::CloseSignal::TcpReset
    }
}

/// MQTT: write a DISCONNECT packet so the client knows to reconnect now
/// instead of discovering a dead tunnel on its next publish.
#[derive(Debug, Clone, Copy, Default)]
pub struct MqttCloseSignal;

impl CloseSignal for MqttCloseSignal {
    fn kind(&self) -> zdr_core::drain::CloseSignal {
        zdr_core::drain::CloseSignal::MqttDisconnect
    }

    fn close_frame(&self) -> Option<Bytes> {
        // Encoding a DISCONNECT is infallible (fixed two-byte packet).
        mqtt::encode(&mqtt::Packet::Disconnect).ok()
    }
}

/// Trunked streams: the GOAWAY rides the HTTP/2-like mux (sent by the
/// trunk layer itself), so there is no per-connection frame here — only
/// the accounting kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrunkCloseSignal;

impl CloseSignal for TrunkCloseSignal {
    fn kind(&self) -> zdr_core::drain::CloseSignal {
        zdr_core::drain::CloseSignal::H2Goaway
    }
}

/// QUIC: each surviving flow gets a CONNECTION_CLOSE datagram, built per
/// flow by [`quic_close_datagram`] since it must carry the flow's CID.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuicCloseSignal;

impl CloseSignal for QuicCloseSignal {
    fn kind(&self) -> zdr_core::drain::CloseSignal {
        zdr_core::drain::CloseSignal::QuicConnectionClose
    }
}

/// Builds the CONNECTION_CLOSE datagram for one QUIC flow.
pub fn quic_close_datagram(cid: zdr_proto::quic::ConnectionId) -> Bytes {
    // PANIC-OK: CONNECTION_CLOSE is a fixed-shape datagram well under the
    // length limits; encoding it cannot fail.
    zdr_proto::quic::encode(&zdr_proto::quic::Datagram::connection_close(cid))
        .expect("close datagram encoding is infallible")
}

/// Shared drain machinery for one service: the drain and force-close watch
/// signals, the connection tracker, and the protocol's close signal.
#[derive(Debug)]
pub struct DrainState {
    drain_tx: watch::Sender<bool>,
    force_tx: watch::Sender<bool>,
    tracker: Arc<ConnTracker>,
    close: Arc<dyn CloseSignal>,
    /// Absolute unix-ms of the armed force-close, 0 while unarmed. Request
    /// paths clamp their per-request deadlines to this so no work is
    /// scheduled past the moment the connection will be killed anyway.
    force_deadline_ms: AtomicU64,
}

impl DrainState {
    /// Fresh, not-draining state for a service speaking `close`'s protocol.
    pub fn new(close: impl CloseSignal) -> Arc<Self> {
        let (drain_tx, _) = watch::channel(false);
        let (force_tx, _) = watch::channel(false);
        Arc::new(DrainState {
            drain_tx,
            force_tx,
            tracker: ConnTracker::new(),
            close: Arc::new(close),
            force_deadline_ms: AtomicU64::new(0),
        })
    }

    /// Flips the drain signal. Idempotent; never blocks.
    pub fn drain(&self) {
        let _ = self.drain_tx.send(true);
    }

    /// Has the drain signal fired?
    pub fn is_draining(&self) -> bool {
        *self.drain_tx.borrow()
    }

    /// A receiver for the drain signal.
    pub fn drain_watch(&self) -> watch::Receiver<bool> {
        self.drain_tx.subscribe()
    }

    /// A receiver for the force-close signal.
    pub fn force_watch(&self) -> watch::Receiver<bool> {
        self.force_tx.subscribe()
    }

    /// Fires the force-close signal `after` the given delay (the hard
    /// deadline of §4.3). Connection tasks observe it via
    /// [`DrainState::force_signal`].
    pub fn arm_force_close(self: &Arc<Self>, after: Duration) {
        let at = unix_now_ms().saturating_add(after.as_millis().min(u64::MAX as u128) as u64);
        // Re-arming keeps the *earliest* deadline: in-flight requests must
        // never believe they have longer than the soonest armed kill.
        // AcqRel/Acquire: the min-fold must read the latest armed value so
        // concurrent re-arms converge on the true minimum; the matching
        // Acquire load is in force_deadline().
        let _ = self
            .force_deadline_ms
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                Some(if cur == 0 { at } else { cur.min(at) })
            });
        let state = Arc::clone(self);
        tokio::spawn(async move {
            tokio::time::sleep(after).await;
            let _ = state.force_tx.send(true);
        });
    }

    /// The armed force-close moment, if any. Request paths use this to cap
    /// per-request deadlines during a drain.
    pub fn force_deadline(&self) -> Option<Deadline> {
        // Acquire: pairs with arm_force_close()'s AcqRel fetch_update so a
        // request admitted after arming sees the tightened deadline.
        match self.force_deadline_ms.load(Ordering::Acquire) {
            0 => None,
            ms => Some(Deadline::at_unix_ms(ms)),
        }
    }

    /// Resolves when the force-close deadline fires. If the service handle
    /// is dropped (sender gone), pends forever: an abandoned handle must
    /// not read as "force-close everything".
    pub async fn force_signal(rx: &mut watch::Receiver<bool>) {
        loop {
            if *rx.borrow() {
                return;
            }
            if rx.changed().await.is_err() {
                std::future::pending::<()>().await;
            }
        }
    }

    /// Registers a connection with the tracker.
    pub fn register(self: &Arc<Self>) -> ConnGuard {
        self.tracker.register()
    }

    /// The service's connection tracker.
    pub fn tracker(&self) -> &Arc<ConnTracker> {
        &self.tracker
    }

    /// The accounting kind of this service's forced closes.
    pub fn close_kind(&self) -> zdr_core::drain::CloseSignal {
        self.close.kind()
    }

    /// The protocol's close frame, if it has one.
    pub fn close_frame(&self) -> Option<Bytes> {
        self.close.close_frame()
    }
}

/// Handle to one running service: address, lifecycle controls, accounting.
///
/// Per-service handle types (`ReverseProxyHandle`, `OriginHandle`, …) embed
/// one of these and `Deref` to it, so `handle.drain()`,
/// `handle.is_draining()`, `handle.drain_with_deadline()`,
/// `handle.drained().await` behave identically across HTTP, MQTT (plain and
/// trunked), and QUIC.
#[derive(Debug)]
pub struct ServiceHandle {
    /// Address the service listens on.
    pub addr: std::net::SocketAddr,
    state: Arc<DrainState>,
    accept_tasks: Vec<JoinHandle<()>>,
    /// Telemetry bundle drain-phase events and durations are recorded
    /// into, when the owning service carries one.
    telemetry: Option<Arc<Telemetry>>,
    /// Instance generation stamped on recorded phase events.
    generation: u64,
    /// `Clock::now_us` at drain start (never 0 once started); swapped back
    /// to 0 by [`ServiceHandle::drained`] so the duration records once.
    drain_started_us: AtomicU64,
}

impl ServiceHandle {
    /// Wraps a spawned service: its listen address, drain state, and the
    /// accept/router tasks that must stop when the drain begins.
    pub fn new(
        addr: std::net::SocketAddr,
        state: Arc<DrainState>,
        accept_tasks: Vec<JoinHandle<()>>,
    ) -> Self {
        ServiceHandle {
            addr,
            state,
            accept_tasks,
            telemetry: None,
            generation: 0,
            drain_started_us: AtomicU64::new(0),
        }
    }

    /// Attaches a telemetry bundle (builder style): drain transitions are
    /// journaled and the drain duration is recorded at `generation`.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>, generation: u64) -> Self {
        telemetry.tracer.set_generation(generation);
        self.telemetry = Some(telemetry);
        self.generation = generation;
        self
    }

    /// Updates the generation stamped on future phase events and spans (a
    /// successor learns its generation only after the FD-pass handshake).
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
        if let Some(t) = &self.telemetry {
            t.tracer.set_generation(generation);
        }
    }

    /// The attached telemetry bundle, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Begins draining: stops the accept tasks and flips the drain signal.
    /// Sync and idempotent — the signal is the drain, observation is
    /// [`ServiceHandle::drained`].
    pub fn drain(&self) {
        let fresh = !self.state.is_draining();
        for t in &self.accept_tasks {
            t.abort();
        }
        self.state.drain();
        if !fresh {
            return;
        }
        if let Some(t) = &self.telemetry {
            // `.max(1)` keeps the 0 sentinel unambiguous on a mock clock
            // still sitting at its epoch.
            let now = t.clock().now_us().max(1);
            let _ = self.drain_started_us.compare_exchange(
                0,
                now,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
            t.event(
                ReleasePhase::HealthFlip,
                self.generation,
                "health answer now draining",
            );
            t.event(
                ReleasePhase::DrainStart,
                self.generation,
                format!("active={}", self.state.tracker().active()),
            );
        }
    }

    /// Has the drain begun?
    pub fn is_draining(&self) -> bool {
        self.state.is_draining()
    }

    /// Arms the hard deadline: `after` from now, surviving connections are
    /// force-closed with the protocol's close signal.
    pub fn arm_force_close(&self, after: Duration) {
        self.state.arm_force_close(after);
        if let Some(t) = &self.telemetry {
            t.event(
                ReleasePhase::ForceCloseArmed,
                self.generation,
                format!("after_ms={}", after.as_millis()),
            );
        }
    }

    /// Drain with a hard deadline — the §4.3 shape: stop accepting now,
    /// force-close whatever is still open after `deadline`.
    pub fn drain_with_deadline(&self, deadline: Duration) {
        self.drain();
        self.arm_force_close(deadline);
    }

    /// Resolves once the service is draining *and* its active-connection
    /// gauge has reached zero.
    pub async fn drained(&self) {
        let mut rx = self.state.drain_watch();
        loop {
            if *rx.borrow() {
                break;
            }
            if rx.changed().await.is_err() {
                break;
            }
        }
        while self.state.tracker().active() > 0 {
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
        // Record the drain outcome exactly once, no matter how many tasks
        // await drained(): the swap hands the start stamp to one caller.
        let started = self.drain_started_us.swap(0, Ordering::AcqRel);
        if started == 0 {
            return;
        }
        if let Some(t) = &self.telemetry {
            let duration_ms = t.clock().now_us().saturating_sub(started) / 1_000;
            t.drain_duration_ms.record(duration_ms);
            let forced = self.state.tracker().forced_closes();
            if forced > 0 {
                t.event(
                    ReleasePhase::ForcedClose,
                    self.generation,
                    format!("forced={forced}"),
                );
            }
            t.event(
                ReleasePhase::Drained,
                self.generation,
                format!("duration_ms={duration_ms}"),
            );
        }
    }

    /// Connections currently open on this service.
    pub fn active_connections(&self) -> u64 {
        self.state.tracker().active()
    }

    /// Connections force-closed at the hard deadline so far.
    pub fn forced_closes(&self) -> u64 {
        self.state.tracker().forced_closes()
    }

    /// The shared drain state (for connection tasks and tests).
    pub fn state(&self) -> &Arc<DrainState> {
        &self.state
    }

    /// The service's connection tracker.
    pub fn tracker(&self) -> &Arc<ConnTracker> {
        self.state.tracker()
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        for t in &self.accept_tasks {
            t.abort();
        }
    }
}

// not(loom): these tests drive real tokio timers; the drain/force-close
// race is model-checked in tests/loom.rs instead.
#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn handle(state: &Arc<DrainState>) -> ServiceHandle {
        ServiceHandle::new(
            "127.0.0.1:0".parse().unwrap(),
            Arc::clone(state),
            Vec::new(),
        )
    }

    #[tokio::test]
    async fn drain_is_sync_idempotent_and_observable() {
        let state = DrainState::new(HttpCloseSignal);
        let h = handle(&state);
        assert!(!h.is_draining());
        h.drain();
        h.drain();
        assert!(h.is_draining());
        // drained() resolves immediately: draining and gauge is zero.
        tokio::time::timeout(Duration::from_secs(1), h.drained())
            .await
            .expect("drained should resolve");
    }

    #[tokio::test]
    async fn drained_waits_for_active_connections() {
        let state = DrainState::new(HttpCloseSignal);
        let h = handle(&state);
        let guard = state.register();
        h.drain();
        assert_eq!(h.active_connections(), 1);
        let state2 = Arc::clone(&state);
        tokio::spawn(async move {
            tokio::time::sleep(Duration::from_millis(30)).await;
            drop(guard);
            drop(state2);
        });
        tokio::time::timeout(Duration::from_secs(2), h.drained())
            .await
            .expect("drained should resolve once the guard drops");
        assert_eq!(h.active_connections(), 0);
    }

    #[tokio::test]
    async fn force_signal_fires_after_deadline() {
        let state = DrainState::new(MqttCloseSignal);
        let mut rx = state.force_watch();
        state.arm_force_close(Duration::from_millis(20));
        tokio::time::timeout(Duration::from_secs(2), DrainState::force_signal(&mut rx))
            .await
            .expect("force signal should fire");
    }

    #[tokio::test]
    async fn force_deadline_exposed_and_keeps_earliest_on_rearm() {
        let state = DrainState::new(HttpCloseSignal);
        assert!(state.force_deadline().is_none(), "unarmed state has none");
        state.arm_force_close(Duration::from_secs(60));
        let first = state.force_deadline().expect("armed");
        // Re-arming with a *later* deadline must not extend the first.
        state.arm_force_close(Duration::from_secs(600));
        let second = state.force_deadline().expect("still armed");
        assert_eq!(second, first, "re-arm must keep the earliest deadline");
        // Re-arming sooner tightens it.
        state.arm_force_close(Duration::from_millis(10));
        assert!(state.force_deadline().unwrap() < first);
    }

    #[tokio::test]
    async fn dropped_state_never_reads_as_force_close() {
        let state = DrainState::new(HttpCloseSignal);
        let mut rx = state.force_watch();
        drop(state);
        let fired = tokio::time::timeout(Duration::from_millis(50), async {
            DrainState::force_signal(&mut rx).await
        })
        .await;
        assert!(fired.is_err(), "dropped sender must pend, not fire");
    }

    #[tokio::test]
    async fn drain_lifecycle_journals_phases_and_duration() {
        let telemetry = Telemetry::new();
        let state = DrainState::new(HttpCloseSignal);
        let h = handle(&state).with_telemetry(Arc::clone(&telemetry), 3);
        h.drain_with_deadline(Duration::from_secs(30));
        h.drain(); // idempotent: no duplicate phase events
        tokio::time::timeout(Duration::from_secs(1), h.drained())
            .await
            .expect("drained should resolve");
        h.drained().await; // second await must not re-record
        let snap = telemetry.snapshot();
        assert!(snap.timeline.contains_sequence(&[
            ReleasePhase::HealthFlip,
            ReleasePhase::DrainStart,
            ReleasePhase::ForceCloseArmed,
            ReleasePhase::Drained,
        ]));
        assert_eq!(
            snap.timeline
                .events
                .iter()
                .filter(|e| e.phase == ReleasePhase::DrainStart)
                .count(),
            1
        );
        assert!(snap.timeline.events.iter().all(|e| e.generation == 3));
        assert_eq!(snap.drain_duration_ms.count, 1);
    }

    #[test]
    fn close_signals_are_protocol_appropriate() {
        assert_eq!(
            HttpCloseSignal.kind(),
            zdr_core::drain::CloseSignal::TcpReset
        );
        assert!(HttpCloseSignal.close_frame().is_none());

        assert_eq!(
            MqttCloseSignal.kind(),
            zdr_core::drain::CloseSignal::MqttDisconnect
        );
        let frame = MqttCloseSignal.close_frame().expect("disconnect frame");
        let (pkt, used) = mqtt::decode(&frame).unwrap();
        assert_eq!(pkt, mqtt::Packet::Disconnect);
        assert_eq!(used, frame.len());

        assert_eq!(
            TrunkCloseSignal.kind(),
            zdr_core::drain::CloseSignal::H2Goaway
        );

        assert_eq!(
            QuicCloseSignal.kind(),
            zdr_core::drain::CloseSignal::QuicConnectionClose
        );
        let cid = zdr_proto::quic::ConnectionId::new(3, 77);
        let wire = quic_close_datagram(cid);
        let d = zdr_proto::quic::decode(&wire).unwrap();
        assert_eq!(d.packet_type, zdr_proto::quic::PacketType::Close);
        assert_eq!(d.cid, cid);
    }
}

//! MQTT relaying over the multiplexed HTTP/2-like trunk — the paper's
//! actual Edge↔Origin architecture.
//!
//! §2.2: MQTT connections are tunneled Edge→Origin over long-lived HTTP/2
//! connections; each tunnel is one stream. §4.2's closing observation is
//! implemented literally here: *"DCR is possible due to the design choice
//! of tunneling MQTT over HTTP/2, that has in-built graceful shutdown
//! (GOAWAYs)"* — a restarting Origin sends **GOAWAY on the trunk**, which
//! is the reconnect solicitation: the Edge re-homes every tunnel riding
//! that trunk through another Origin (DCR `re_connect` per user), while
//! the draining trunk keeps relaying until each tunnel has moved.
//!
//! Stream conventions:
//!
//! * fresh tunnel: headers `[("user-id", "<n>")]`, data = raw MQTT bytes;
//! * re-home: headers `[("dcr", "re_connect"), ("user-id", "<n>")]`; the
//!   Origin forwards the `re_connect` to the user's broker and relays the
//!   broker's 9-byte DCR verdict as the stream's first data frame; on
//!   `connect_ack` the stream becomes the tunnel's new transport.
//!
//! Lifecycle comes from the unified [`crate::service`] layer. The Origin's
//! close signal is the trunk GOAWAY itself: a drain-watcher task sends it
//! on every trunk the moment [`ServiceHandle::drain`] flips the signal, so
//! `drain()` is sync here like everywhere else.

use std::net::SocketAddr;
use std::ops::Deref;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

use zdr_core::clock::unix_now_ms;
use zdr_core::config::ZdrConfig;
use zdr_core::telemetry::ReleasePhase;
use zdr_core::trace::{ActiveTrace, SpanKind};
use zdr_proto::dcr::{self, DcrMessage, UserId};
use zdr_proto::deadline::{Deadline, DEADLINE_HEADER};
use zdr_proto::mqtt::{Packet, StreamDecoder};
use zdr_proto::trace::{TraceContext, TRACE_HEADER};

use crate::conn_tracker::ConnGuard;
use crate::mqtt_common::{connect_ranked_broker, TUNNEL_CONNECT_BUDGET};
use crate::resilience::{Resilience, ResilienceConfig};
use crate::service::{DrainState, MqttCloseSignal, ServiceHandle, TrunkCloseSignal};
use crate::stats::{EdgeDcrStats, ProxyStats};
use crate::trunk::{self, StreamEvent, TrunkHandle, TrunkStream};

// ---------------------------------------------------------------------
// Origin side
// ---------------------------------------------------------------------

/// A running trunk-based Origin relay. Derefs to [`ServiceHandle`];
/// [`ServiceHandle::drain`] begins the restart flow — GOAWAY on every
/// trunk (the §4.2 solicitation), existing streams keep relaying while
/// the Edge re-homes them.
#[derive(Debug)]
pub struct OriginTrunkHandle {
    /// The unified service lifecycle (addr, drain, deadline, tracking).
    pub service: ServiceHandle,
    /// Live counters.
    pub stats: Arc<ProxyStats>,
    /// Broker-side resilience: per-broker breakers + shared retry budget.
    pub resilience: Arc<Resilience>,
}

impl Deref for OriginTrunkHandle {
    type Target = ServiceHandle;
    fn deref(&self) -> &ServiceHandle {
        &self.service
    }
}

impl OriginTrunkHandle {
    /// Streams still relaying across all trunks.
    pub fn active_streams(&self) -> usize {
        self.tracker().active() as usize
    }

    /// Applies a hot config snapshot: re-arms the broker-side resilience
    /// layer in place. The trunk protocol announces drain via GOAWAY, so
    /// there is no advertised deadline to rewrite here.
    pub fn apply_config(&self, cfg: &ZdrConfig, epoch: u64) {
        self.resilience.apply(ResilienceConfig::from_zdr(cfg));
        self.stats
            .telemetry
            .event(ReleasePhase::ConfigApplied, 0, format!("epoch={epoch}"));
    }

    /// A subscriber closure for [`zdr_core::config::ConfigStore`] that
    /// outlives this handle (captures the shared parts, not `self`).
    pub fn config_applier(&self) -> Arc<dyn Fn(&ZdrConfig, u64) + Send + Sync> {
        let resilience = Arc::clone(&self.resilience);
        let telemetry = Arc::clone(&self.stats.telemetry);
        Arc::new(move |cfg, epoch| {
            resilience.apply(ResilienceConfig::from_zdr(cfg));
            telemetry.event(ReleasePhase::ConfigApplied, 0, format!("epoch={epoch}"));
        })
    }
}

/// Spawns a trunk-based Origin relay fronting `brokers`.
pub async fn spawn_origin_trunk(
    addr: SocketAddr,
    brokers: Vec<SocketAddr>,
) -> std::io::Result<OriginTrunkHandle> {
    spawn_origin_trunk_with(addr, brokers, ResilienceConfig::default()).await
}

/// Spawns a trunk-based Origin relay with explicit resilience tunables:
/// broker connects go through per-broker circuit breakers with ranked
/// fallback, clamped to the deadline the Edge stamped on the stream.
pub async fn spawn_origin_trunk_with(
    addr: SocketAddr,
    brokers: Vec<SocketAddr>,
    resilience: ResilienceConfig,
) -> std::io::Result<OriginTrunkHandle> {
    let listener = TcpListener::bind(addr).await?;
    let addr = listener.local_addr()?;
    let stats = Arc::new(ProxyStats::default());
    let trunks: Arc<Mutex<Vec<TrunkHandle>>> = Arc::new(Mutex::new(Vec::new()));
    let brokers = Arc::new(brokers);
    let state = DrainState::new(TrunkCloseSignal);
    let resilience = Arc::new(Resilience::new(resilience));

    let loop_stats = Arc::clone(&stats);
    let loop_trunks = Arc::clone(&trunks);
    let loop_state = Arc::clone(&state);
    let loop_resilience = Arc::clone(&resilience);
    let accept_task = tokio::spawn(async move {
        while let Ok((stream, _)) = listener.accept().await {
            let (handle, mut incoming) = trunk::accept(stream);
            loop_trunks.lock().push(handle);
            let stats = Arc::clone(&loop_stats);
            let brokers = Arc::clone(&brokers);
            let state = Arc::clone(&loop_state);
            let resilience = Arc::clone(&loop_resilience);
            tokio::spawn(async move {
                while let Some(s) = incoming.recv().await {
                    let stats = Arc::clone(&stats);
                    let brokers = Arc::clone(&brokers);
                    let state = Arc::clone(&state);
                    let resilience = Arc::clone(&resilience);
                    let guard = state.register();
                    tokio::spawn(async move {
                        let _ = origin_stream(s, &brokers, resilience, stats, state, guard).await;
                    });
                }
            });
        }
    });

    // The trunk protocol's drain announcement is GOAWAY on the mux: this
    // watcher fires it the instant the (sync) drain signal flips, keeping
    // drain() itself free of protocol knowledge.
    let goaway_trunks = Arc::clone(&trunks);
    let mut drain_rx = state.drain_watch();
    tokio::spawn(async move {
        loop {
            if *drain_rx.borrow() {
                break;
            }
            if drain_rx.changed().await.is_err() {
                return; // service dropped before any drain
            }
        }
        let trunks: Vec<TrunkHandle> = goaway_trunks.lock().clone();
        for t in trunks {
            let _ = t.goaway().await;
        }
    });

    Ok(OriginTrunkHandle {
        service: ServiceHandle::new(addr, state, vec![accept_task])
            .with_telemetry(Arc::clone(&stats.telemetry), 0),
        stats,
        resilience,
    })
}

fn header<'a>(s: &'a TrunkStream, name: &str) -> Option<&'a str> {
    s.headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Handles one tunnel stream on the Origin side.
async fn origin_stream(
    mut stream: TrunkStream,
    brokers: &[SocketAddr],
    resilience: Arc<Resilience>,
    stats: Arc<ProxyStats>,
    state: Arc<DrainState>,
    mut guard: ConnGuard,
) -> std::io::Result<()> {
    let mut force = state.force_watch();
    let stream_start_us = stats.telemetry.clock().now_us();
    let Some(user) = header(&stream, "user-id").and_then(|v| v.parse().ok().map(UserId)) else {
        let _ = stream.finish().await;
        return Ok(());
    };
    let mode = if header(&stream, "dcr") == Some("re_connect") {
        "re_connect"
    } else {
        "connect"
    };

    // Trace context propagates over the trunk exactly like the deadline: a
    // stream header. The Origin's spans parent under the Edge's stream span.
    let trace = stats.telemetry.tracer.begin(
        header(&stream, TRACE_HEADER)
            .and_then(TraceContext::parse)
            .filter(|c| c.sampled)
            .map(|c| (c.trace_id, c.span_id)),
    );
    // Closes out this hop's span on every establishment outcome so the
    // tree stays connected even when the broker refuses.
    let record_stream = |detail: String| {
        if let Some(active) = trace {
            stats.telemetry.tracer.root_span(
                active,
                SpanKind::TrunkStream,
                stream_start_us,
                stats.telemetry.clock().now_us(),
                detail,
            );
        }
    };

    // Deadline propagation over the trunk is a stream header (the HTTP/2
    // analogue of the per-tunnel relay's DCR frame): the hop budget is the
    // local default clamped by whatever the Edge stamped and by our own
    // drain hard deadline.
    let mut deadline = Deadline::after(unix_now_ms(), TUNNEL_CONNECT_BUDGET);
    if let Some(d) = header(&stream, DEADLINE_HEADER).and_then(Deadline::parse) {
        deadline = deadline.clamp_to(d);
    }
    if let Some(d) = state.force_deadline() {
        deadline = deadline.clamp_to(d);
    }

    let connect_start_us = stats.telemetry.clock().now_us();
    let connected = connect_ranked_broker(user, brokers, &resilience, &stats, deadline).await;
    if let Some(active) = trace {
        stats.telemetry.tracer.child_span(
            active,
            SpanKind::UpstreamConnect,
            connect_start_us,
            stats.telemetry.clock().now_us(),
            format!("broker connected={}", connected.is_some()),
        );
    }
    let Some((mut broker_conn, _broker_addr)) = connected else {
        record_stream(format!("mode={mode} no_broker"));
        let _ = stream.finish().await;
        return Ok(());
    };

    if mode == "re_connect" {
        // Fig. 6 steps B2/C1–C2 over the trunk.
        broker_conn
            .write_all(&dcr::encode(&DcrMessage::ReConnect { user_id: user }))
            .await?;
        let mut reply = [0u8; dcr::MESSAGE_LEN];
        broker_conn.read_exact(&mut reply).await?;
        let accepted = matches!(dcr::decode(&reply), Ok((DcrMessage::ConnectAck { .. }, _)));
        let _ = stream.send(reply.to_vec()).await;
        if !accepted {
            record_stream("mode=re_connect refused".to_string());
            let _ = stream.finish().await;
            return Ok(());
        }
        stats.dcr_rehomed.bump();
    }

    record_stream(format!("mode={mode}"));
    stats.mqtt_tunnels.bump();
    // Steady-state relay: stream ↔ broker.
    let mut broker_buf = [0u8; 16 * 1024];
    loop {
        tokio::select! {
            _ = DrainState::force_signal(&mut force) => {
                // Hard deadline: the GOAWAY already announced the drain;
                // surviving streams are finished and accounted to it.
                let _ = stream.finish().await;
                guard.mark_forced(state.close_kind());
                stats.mqtt_dropped.bump();
                return Ok(());
            }
            event = stream.recv() => {
                match event {
                    Some(StreamEvent::Data(d)) => {
                        if broker_conn.write_all(&d).await.is_err() {
                            let _ = stream.finish().await;
                            return Ok(());
                        }
                    }
                    Some(StreamEvent::End) | Some(StreamEvent::Reset) | None => {
                        // Edge closed the tunnel (re-homed or client gone).
                        return Ok(());
                    }
                }
            }
            read = broker_conn.read(&mut broker_buf) => {
                match read {
                    Ok(0) | Err(_) => {
                        let _ = stream.finish().await;
                        return Ok(());
                    }
                    Ok(n) => {
                        if stream.send(broker_buf[..n].to_vec()).await.is_err() {
                            return Ok(());
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Edge side
// ---------------------------------------------------------------------

/// A running trunk-based Edge relay. Derefs to [`ServiceHandle`]; at the
/// drain hard deadline surviving clients get an MQTT DISCONNECT.
#[derive(Debug)]
pub struct EdgeTrunkHandle {
    /// The unified service lifecycle (addr, drain, deadline, tracking).
    pub service: ServiceHandle,
    /// Live counters.
    pub stats: Arc<ProxyStats>,
    /// DCR counters (shared shape with the per-tunnel-TCP relay).
    pub dcr_stats: Arc<EdgeDcrStats>,
    /// Trunk-side resilience: per-origin breakers, retry budget, shed gate.
    pub resilience: Arc<Resilience>,
}

impl Deref for EdgeTrunkHandle {
    type Target = ServiceHandle;
    fn deref(&self) -> &ServiceHandle {
        &self.service
    }
}

impl EdgeTrunkHandle {
    /// Applies a hot config snapshot: resilience knobs only (the Origin
    /// set comes from `--origin` flags, not `routing.upstreams`).
    pub fn apply_config(&self, cfg: &ZdrConfig, epoch: u64) {
        self.resilience.apply(ResilienceConfig::from_zdr(cfg));
        self.stats
            .telemetry
            .event(ReleasePhase::ConfigApplied, 0, format!("epoch={epoch}"));
    }

    /// A subscriber closure for [`zdr_core::config::ConfigStore`] that
    /// outlives this handle (captures the shared parts, not `self`).
    pub fn config_applier(&self) -> Arc<dyn Fn(&ZdrConfig, u64) + Send + Sync> {
        let resilience = Arc::clone(&self.resilience);
        let telemetry = Arc::clone(&self.stats.telemetry);
        Arc::new(move |cfg, epoch| {
            resilience.apply(ResilienceConfig::from_zdr(cfg));
            telemetry.event(ReleasePhase::ConfigApplied, 0, format!("epoch={epoch}"));
        })
    }
}

/// Lazily-connected trunks to each Origin, gated by per-origin circuit
/// breakers: a dead Origin is probed on the breaker's schedule instead of
/// paying a connect timeout on every tunnel.
#[derive(Debug)]
struct TrunkPool {
    origins: Vec<SocketAddr>,
    trunks: Mutex<Vec<Option<TrunkHandle>>>,
    resilience: Arc<Resilience>,
    stats: Arc<ProxyStats>,
}

impl TrunkPool {
    fn new(origins: Vec<SocketAddr>, resilience: Arc<Resilience>, stats: Arc<ProxyStats>) -> Self {
        let n = origins.len();
        TrunkPool {
            origins,
            trunks: Mutex::new(vec![None; n]),
            resilience,
            stats,
        }
    }

    /// A healthy (non-draining, breaker-admitted) trunk, excluding index
    /// `exclude`. Establishes connections on demand.
    async fn pick(&self, exclude: Option<usize>) -> Option<(usize, TrunkHandle)> {
        for i in 0..self.origins.len() {
            if Some(i) == exclude {
                continue;
            }
            if !self
                .resilience
                .admit(self.origins[i], &self.stats)
                .allowed()
            {
                continue;
            }
            if let Some(h) = self.get(i).await {
                if !h.peer_is_draining() {
                    return Some((i, h));
                }
            }
        }
        None
    }

    async fn get(&self, i: usize) -> Option<TrunkHandle> {
        if let Some(h) = self.trunks.lock()[i].clone() {
            return Some(h);
        }
        let connect_start_us = self.stats.telemetry.clock().now_us();
        let deadline = Deadline::after(unix_now_ms(), TUNNEL_CONNECT_BUDGET);
        match trunk::connect(self.origins[i], deadline).await {
            Ok((handle, _incoming)) => {
                self.stats.telemetry.upstream_connect_us.record(
                    self.stats
                        .telemetry
                        .clock()
                        .now_us()
                        .saturating_sub(connect_start_us),
                );
                // Edge-initiated trunks carry no Origin-initiated streams;
                // dropping the incoming half is fine.
                self.resilience.on_success(self.origins[i], &self.stats);
                self.trunks.lock()[i] = Some(handle.clone());
                Some(handle)
            }
            Err(_) => {
                self.resilience.on_failure(self.origins[i], &self.stats);
                None
            }
        }
    }
}

/// Spawns a trunk-based Edge relay fronting `origins`.
pub async fn spawn_edge_trunk(
    addr: SocketAddr,
    origins: Vec<SocketAddr>,
) -> std::io::Result<EdgeTrunkHandle> {
    spawn_edge_trunk_with(addr, origins, ResilienceConfig::default()).await
}

/// Spawns a trunk-based Edge relay with explicit resilience tunables. An
/// overloaded Edge sheds new clients at accept with an MQTT CONNACK
/// refuse (`ServerUnavailable`), before the connection counts as active.
pub async fn spawn_edge_trunk_with(
    addr: SocketAddr,
    origins: Vec<SocketAddr>,
    resilience: ResilienceConfig,
) -> std::io::Result<EdgeTrunkHandle> {
    let listener = TcpListener::bind(addr).await?;
    let addr = listener.local_addr()?;
    let stats = Arc::new(ProxyStats::default());
    let dcr_stats = Arc::new(EdgeDcrStats::default());
    let resilience = Arc::new(Resilience::new(resilience));
    let pool = Arc::new(TrunkPool::new(
        origins,
        Arc::clone(&resilience),
        Arc::clone(&stats),
    ));
    let state = DrainState::new(MqttCloseSignal);

    let loop_stats = Arc::clone(&stats);
    let loop_dcr = Arc::clone(&dcr_stats);
    let loop_state = Arc::clone(&state);
    let loop_resilience = Arc::clone(&resilience);
    let accept_task = tokio::spawn(async move {
        while let Ok((mut client, peer)) = listener.accept().await {
            loop_stats.connections_accepted.bump();
            // Per-client admission ahead of the shed gate; the refusal is
            // the same protocol-native CONNACK the gate uses.
            let admitted =
                loop_resilience.admit_client(peer, loop_state.is_draining(), &loop_stats);
            let active = loop_state.tracker().active();
            if !admitted || loop_resilience.shed().should_shed(active) {
                if admitted {
                    loop_stats.load_shed.bump();
                }
                // A sampled refusal leaves a one-span trace, same as the
                // HTTP accept path.
                if let Some(t) = loop_stats.telemetry.tracer.begin(None) {
                    let now_us = loop_stats.telemetry.clock().now_us();
                    let (kind, detail) = if admitted {
                        (SpanKind::Shed, format!("active={active}"))
                    } else {
                        (SpanKind::Admission, format!("refused peer={peer}"))
                    };
                    loop_stats
                        .telemetry
                        .tracer
                        .root_span(t, kind, now_us, now_us, detail);
                }
                tokio::spawn(async move {
                    if let Ok(refuse) = zdr_proto::mqtt::encode(&Packet::ConnAck {
                        session_present: false,
                        code: zdr_proto::mqtt::ConnectReturnCode::ServerUnavailable,
                    }) {
                        let _ = client.write_all(&refuse).await;
                    }
                    let _ = client.shutdown().await;
                });
                continue;
            }
            let stats = Arc::clone(&loop_stats);
            let dcr_stats = Arc::clone(&loop_dcr);
            let pool = Arc::clone(&pool);
            let state = Arc::clone(&loop_state);
            let guard = state.register();
            tokio::spawn(async move {
                let _ = edge_client(client, pool, stats, dcr_stats, state, guard).await;
            });
        }
    });

    Ok(EdgeTrunkHandle {
        service: ServiceHandle::new(addr, state, vec![accept_task])
            .with_telemetry(Arc::clone(&stats.telemetry), 0),
        stats,
        dcr_stats,
        resilience,
    })
}

/// Handles one end-user client on the Edge side.
async fn edge_client(
    mut client: TcpStream,
    pool: Arc<TrunkPool>,
    stats: Arc<ProxyStats>,
    dcr_stats: Arc<EdgeDcrStats>,
    state: Arc<DrainState>,
    mut guard: ConnGuard,
) -> std::io::Result<()> {
    let mut force = state.force_watch();
    // Read until the CONNECT parses so we know the user id (needed for the
    // stream headers and any later re-home).
    let mut sniffer = StreamDecoder::new();
    let mut initial = Vec::new();
    let mut buf = [0u8; 8 * 1024];
    let user = loop {
        let n = client.read(&mut buf).await?;
        if n == 0 {
            return Ok(());
        }
        initial.extend_from_slice(&buf[..n]);
        sniffer.extend(&buf[..n]);
        match sniffer.next_packet() {
            Ok(Some(Packet::Connect { ref client_id, .. })) => {
                match UserId::from_client_id(client_id) {
                    Some(u) => break u,
                    None => return Ok(()),
                }
            }
            Ok(Some(_)) | Err(_) => return Ok(()), // first packet must be CONNECT
            Ok(None) => continue,
        }
    };

    // The Edge is the trace root for trunk MQTT: the client speaks raw
    // MQTT, so sampling decides here and the context rides the stream
    // headers, exactly like the deadline.
    let trace = stats.telemetry.tracer.begin(None);

    // Open the tunnel stream on a healthy trunk. The Edge stamps the
    // tunnel-establishment deadline as a stream header so the Origin's
    // broker connect spends only the remaining budget.
    let connect_start_us = stats.telemetry.clock().now_us();
    let Some((mut origin_idx, handle)) = pool.pick(None).await else {
        if let Some(active) = trace {
            let now_us = stats.telemetry.clock().now_us();
            stats.telemetry.tracer.root_span(
                active,
                SpanKind::TrunkStream,
                connect_start_us,
                now_us,
                "no origin admitted".to_string(),
            );
        }
        stats.mqtt_dropped.bump();
        return Ok(());
    };
    if let Some(active) = trace {
        stats.telemetry.tracer.child_span(
            active,
            SpanKind::UpstreamConnect,
            connect_start_us,
            stats.telemetry.clock().now_us(),
            format!("origin={}", pool.origins[origin_idx]),
        );
    }
    let mut headers = vec![
        ("user-id".into(), user.0.to_string()),
        (
            DEADLINE_HEADER.into(),
            tunnel_deadline(&state).header_value(),
        ),
    ];
    if let Some(active) = trace {
        headers.push((
            TRACE_HEADER.into(),
            TraceContext::sampled(active.trace_id, active.span_id).header_value(),
        ));
    }
    let Ok(mut stream) = handle.open_stream(headers).await else {
        stats.mqtt_dropped.bump();
        return Ok(());
    };
    if stream.send(initial).await.is_err() {
        stats.mqtt_dropped.bump();
        return Ok(());
    }
    if let Some(active) = trace {
        stats.telemetry.tracer.root_span(
            active,
            SpanKind::TrunkStream,
            connect_start_us,
            stats.telemetry.clock().now_us(),
            format!("established origin={}", pool.origins[origin_idx]),
        );
    }
    stats.mqtt_tunnels.bump();
    let mut draining = handle.peer_draining_watch();

    loop {
        tokio::select! {
            _ = DrainState::force_signal(&mut force) => {
                // Hard deadline on the Edge itself: DISCONNECT the client,
                // finish the tunnel stream, account the forced close.
                if let Some(frame) = state.close_frame() {
                    let _ = client.write_all(&frame).await;
                }
                let _ = stream.finish().await;
                guard.mark_forced(state.close_kind());
                stats.mqtt_dropped.bump();
                return Ok(());
            }
            changed = draining.changed() => {
                if changed.is_err() || !*draining.borrow() {
                    continue;
                }
                // GOAWAY from the Origin: re-home this tunnel (§4.2).
                match rehome(&pool, origin_idx, user, &state, trace).await {
                    Some((idx, new_stream, new_watch)) => {
                        // Old stream closes once we stop using it; the new
                        // one carries the tunnel from here.
                        let _ = stream.finish().await;
                        stream = new_stream;
                        origin_idx = idx;
                        draining = new_watch;
                        dcr_stats.rehomed_ok.bump();
                        stats.dcr_rehomed.bump();
                    }
                    None => {
                        dcr_stats.rehome_refused.bump();
                        stats.mqtt_dropped.bump();
                        return Ok(()); // client reconnects organically
                    }
                }
            }
            read = client.read(&mut buf) => {
                match read {
                    Ok(0) | Err(_) => {
                        let _ = stream.finish().await;
                        stats.mqtt_dropped.bump();
                        return Ok(());
                    }
                    Ok(n) => {
                        if stream.send(buf[..n].to_vec()).await.is_err() {
                            return Ok(());
                        }
                    }
                }
            }
            event = stream.recv() => {
                match event {
                    Some(StreamEvent::Data(d)) => {
                        if client.write_all(&d).await.is_err() {
                            return Ok(());
                        }
                    }
                    Some(StreamEvent::End) | Some(StreamEvent::Reset) | None => {
                        // Tunnel gone without a re-home: drop the client.
                        stats.mqtt_dropped.bump();
                        return Ok(());
                    }
                }
            }
        }
    }
}

/// The deadline the Edge stamps on a tunnel stream: the local connect
/// budget, capped by the Edge's own drain hard deadline.
fn tunnel_deadline(state: &DrainState) -> Deadline {
    let mut deadline = Deadline::after(unix_now_ms(), TUNNEL_CONNECT_BUDGET);
    if let Some(d) = state.force_deadline() {
        deadline = deadline.clamp_to(d);
    }
    deadline
}

/// Re-homes a tunnel through another Origin: opens a `re_connect` stream
/// and waits for the broker's verdict. A re-home is a retry of the
/// tunnel's transport, so it must be funded by the retry budget — during
/// a mass restart this caps the solicitation-driven reconnect amplification
/// just like PPR replays on the HTTP side.
async fn rehome(
    pool: &TrunkPool,
    exclude: usize,
    user: UserId,
    state: &DrainState,
    trace: Option<ActiveTrace>,
) -> Option<(usize, TrunkStream, tokio::sync::watch::Receiver<bool>)> {
    if !pool.resilience.try_retry(&pool.stats) {
        return None;
    }
    if let Some(active) = trace {
        let now_us = pool.stats.telemetry.clock().now_us();
        pool.stats.telemetry.tracer.child_span(
            active,
            SpanKind::RetryAttempt,
            now_us,
            now_us,
            format!("rehome funded exclude={}", pool.origins[exclude]),
        );
    }
    let connect_start_us = pool.stats.telemetry.clock().now_us();
    let (idx, handle) = pool.pick(Some(exclude)).await?;
    if let Some(active) = trace {
        pool.stats.telemetry.tracer.child_span(
            active,
            SpanKind::UpstreamConnect,
            connect_start_us,
            pool.stats.telemetry.clock().now_us(),
            format!("origin={}", pool.origins[idx]),
        );
    }
    let mut headers = vec![
        ("dcr".into(), "re_connect".into()),
        ("user-id".into(), user.0.to_string()),
        (
            DEADLINE_HEADER.into(),
            tunnel_deadline(state).header_value(),
        ),
    ];
    if let Some(active) = trace {
        headers.push((
            TRACE_HEADER.into(),
            TraceContext::sampled(active.trace_id, active.span_id).header_value(),
        ));
    }
    let mut stream = handle.open_stream(headers).await.ok()?;
    // First data frame is the broker's DCR verdict.
    let verdict: Bytes = loop {
        match stream.recv().await? {
            StreamEvent::Data(d) => break d,
            StreamEvent::End | StreamEvent::Reset => return None,
        }
    };
    match dcr::decode(&verdict) {
        Ok((DcrMessage::ConnectAck { .. }, _)) => Some((idx, stream, handle.peer_draining_watch())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use zdr_proto::mqtt::{self, ConnectReturnCode, QoS};

    struct Client {
        stream: TcpStream,
        decoder: StreamDecoder,
    }

    impl Client {
        async fn connect(edge: SocketAddr, user: UserId) -> Client {
            let mut stream = TcpStream::connect(edge).await.unwrap();
            let pkt = Packet::Connect {
                client_id: user.client_id(),
                keep_alive: 60,
                clean_session: true,
            };
            stream
                .write_all(&mqtt::encode(&pkt).unwrap())
                .await
                .unwrap();
            let mut c = Client {
                stream,
                decoder: StreamDecoder::new(),
            };
            match c.recv().await {
                Packet::ConnAck {
                    code: ConnectReturnCode::Accepted,
                    ..
                } => c,
                other => panic!("expected CONNACK, got {other:?}"),
            }
        }

        async fn send(&mut self, pkt: &Packet) {
            self.stream
                .write_all(&mqtt::encode(pkt).unwrap())
                .await
                .unwrap();
        }

        async fn recv(&mut self) -> Packet {
            let mut buf = [0u8; 8192];
            loop {
                if let Some(p) = self.decoder.next_packet().unwrap() {
                    return p;
                }
                let n = tokio::time::timeout(Duration::from_secs(10), self.stream.read(&mut buf))
                    .await
                    .expect("recv timeout")
                    .unwrap();
                assert!(n > 0, "peer closed");
                self.decoder.extend(&buf[..n]);
            }
        }
    }

    async fn stack() -> (
        zdr_broker::server::BrokerHandle,
        OriginTrunkHandle,
        OriginTrunkHandle,
        EdgeTrunkHandle,
    ) {
        let broker = zdr_broker::server::spawn("127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let o1 = spawn_origin_trunk("127.0.0.1:0".parse().unwrap(), vec![broker.addr])
            .await
            .unwrap();
        let o2 = spawn_origin_trunk("127.0.0.1:0".parse().unwrap(), vec![broker.addr])
            .await
            .unwrap();
        let edge = spawn_edge_trunk("127.0.0.1:0".parse().unwrap(), vec![o1.addr, o2.addr])
            .await
            .unwrap();
        (broker, o1, o2, edge)
    }

    #[tokio::test]
    async fn publish_round_trip_over_trunk() {
        let (_broker, _o1, _o2, edge) = stack().await;
        let mut sub = Client::connect(edge.addr, UserId(1)).await;
        sub.send(&Packet::Subscribe {
            packet_id: 1,
            filters: vec![("t/1".into(), QoS::AtMostOnce)],
        })
        .await;
        match sub.recv().await {
            Packet::SubAck { .. } => {}
            other => panic!("{other:?}"),
        }

        let mut publisher = Client::connect(edge.addr, UserId(2)).await;
        publisher
            .send(&Packet::Publish {
                topic: "t/1".into(),
                packet_id: None,
                payload: Bytes::from_static(b"over-the-trunk"),
                qos: QoS::AtMostOnce,
                retain: false,
                dup: false,
            })
            .await;
        match sub.recv().await {
            Packet::Publish { payload, .. } => assert_eq!(&payload[..], b"over-the-trunk"),
            other => panic!("{other:?}"),
        }
    }

    #[tokio::test]
    async fn many_tunnels_share_one_trunk() {
        let (_broker, o1, _o2, edge) = stack().await;
        let mut clients = Vec::new();
        for u in 0..10u64 {
            clients.push(Client::connect(edge.addr, UserId(u)).await);
        }
        // All ten tunnels multiplex on o1's single trunk (Edge picks the
        // first healthy origin).
        assert_eq!(o1.active_streams(), 10);
        for c in clients.iter_mut() {
            c.send(&Packet::PingReq).await;
            assert_eq!(c.recv().await, Packet::PingResp);
        }
    }

    #[tokio::test]
    async fn goaway_rehomes_tunnels_without_client_disruption() {
        let (broker, o1, o2, edge) = stack().await;
        let mut c = Client::connect(edge.addr, UserId(7)).await;
        c.send(&Packet::Subscribe {
            packet_id: 1,
            filters: vec![("t/7".into(), QoS::AtMostOnce)],
        })
        .await;
        c.recv().await; // SUBACK
        assert_eq!(o1.active_streams(), 1);

        // Origin 1 restarts: GOAWAY is the solicitation. drain() is sync —
        // the drain-watcher task fires the GOAWAYs.
        o1.drain();
        tokio::time::sleep(Duration::from_millis(300)).await;
        assert_eq!(
            edge.dcr_stats.rehomed_ok.get(),
            1,
            "tunnel must re-home to origin 2"
        );
        assert_eq!(broker.core.stats().dcr_accepted, 1);
        assert_eq!(o2.active_streams(), 1, "tunnel now rides origin 2's trunk");

        // Same client connection keeps delivering.
        broker.core.publish("t/7", b"post-goaway", QoS::AtMostOnce);
        match c.recv().await {
            Packet::Publish { payload, .. } => assert_eq!(&payload[..], b"post-goaway"),
            other => panic!("{other:?}"),
        }

        // And liveness still works end to end.
        c.send(&Packet::PingReq).await;
        assert_eq!(c.recv().await, Packet::PingResp);

        // The drained origin's gauge empties once its streams move away.
        tokio::time::timeout(Duration::from_secs(2), o1.drained())
            .await
            .expect("origin 1 must fully drain");
    }

    #[tokio::test]
    async fn rehome_refused_without_alternate_origin_drops_client() {
        let broker = zdr_broker::server::spawn("127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let o1 = spawn_origin_trunk("127.0.0.1:0".parse().unwrap(), vec![broker.addr])
            .await
            .unwrap();
        let edge = spawn_edge_trunk("127.0.0.1:0".parse().unwrap(), vec![o1.addr])
            .await
            .unwrap();
        let mut c = Client::connect(edge.addr, UserId(9)).await;

        o1.drain();
        tokio::time::sleep(Duration::from_millis(300)).await;
        assert_eq!(edge.dcr_stats.rehome_refused.get(), 1);
        // Client connection torn down → organic reconnect path.
        let mut buf = [0u8; 16];
        let n = tokio::time::timeout(Duration::from_secs(5), c.stream.read(&mut buf))
            .await
            .expect("expected EOF")
            .unwrap_or(0);
        assert_eq!(n, 0);
    }

    #[tokio::test]
    async fn twenty_tunnels_rehome_concurrently_over_trunks() {
        let (broker, o1, o2, edge) = stack().await;
        let mut clients = Vec::new();
        for u in 0..20u64 {
            let mut c = Client::connect(edge.addr, UserId(u)).await;
            c.send(&Packet::Subscribe {
                packet_id: 1,
                filters: vec![(format!("u/{u}"), QoS::AtMostOnce)],
            })
            .await;
            c.recv().await;
            clients.push(c);
        }
        assert_eq!(o1.active_streams(), 20);

        o1.drain();
        tokio::time::sleep(Duration::from_millis(500)).await;
        assert_eq!(edge.dcr_stats.rehomed_ok.get(), 20);
        assert_eq!(o2.active_streams(), 20);
        assert_eq!(broker.core.stats().dcr_accepted, 20);

        for (u, c) in clients.iter_mut().enumerate() {
            broker
                .core
                .publish(&format!("u/{u}"), b"alive", QoS::AtMostOnce);
            match c.recv().await {
                Packet::Publish { payload, .. } => assert_eq!(&payload[..], b"alive"),
                other => panic!("user {u}: {other:?}"),
            }
        }
    }

    #[tokio::test]
    async fn overloaded_edge_trunk_refuses_with_connack_server_unavailable() {
        let broker = zdr_broker::server::spawn("127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let o1 = spawn_origin_trunk("127.0.0.1:0".parse().unwrap(), vec![broker.addr])
            .await
            .unwrap();
        let edge = spawn_edge_trunk_with(
            "127.0.0.1:0".parse().unwrap(),
            vec![o1.addr],
            ResilienceConfig {
                shed: crate::resilience::ShedConfig {
                    max_active: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .await
        .unwrap();

        // First client occupies the only admitted slot.
        let _c = Client::connect(edge.addr, UserId(31)).await;
        assert_eq!(edge.tracker().active(), 1);

        // The next client is refused at accept, before any trunk work.
        let mut stream = TcpStream::connect(edge.addr).await.unwrap();
        let mut decoder = StreamDecoder::new();
        let mut buf = [0u8; 1024];
        let code = loop {
            if let Some(Packet::ConnAck { code, .. }) = decoder.next_packet().unwrap() {
                break code;
            }
            let n = tokio::time::timeout(Duration::from_secs(5), stream.read(&mut buf))
                .await
                .expect("refusal timeout")
                .unwrap();
            assert!(n > 0, "closed before CONNACK");
            decoder.extend(&buf[..n]);
        };
        assert_eq!(code, ConnectReturnCode::ServerUnavailable);
        assert_eq!(edge.stats.load_shed.get(), 1);
        assert_eq!(edge.tracker().active(), 1, "shed client never admitted");
    }

    #[tokio::test]
    async fn origin_trunk_honors_expired_stream_deadline() {
        let broker = zdr_broker::server::spawn("127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let o = spawn_origin_trunk("127.0.0.1:0".parse().unwrap(), vec![broker.addr])
            .await
            .unwrap();

        // A tunnel stream whose propagated deadline is already in the past
        // must be refused without any broker work.
        let (handle, _incoming) = trunk::connect(
            o.addr,
            Deadline::after(unix_now_ms(), TUNNEL_CONNECT_BUDGET),
        )
        .await
        .unwrap();
        let mut stream = handle
            .open_stream(vec![
                ("user-id".into(), "5".into()),
                (DEADLINE_HEADER.into(), "1".into()),
            ])
            .await
            .unwrap();
        match tokio::time::timeout(Duration::from_secs(5), stream.recv())
            .await
            .expect("origin must answer")
        {
            Some(StreamEvent::End) | Some(StreamEvent::Reset) | None => {}
            Some(StreamEvent::Data(d)) => panic!("unexpected data on expired tunnel: {d:?}"),
        }
        assert_eq!(o.stats.deadline_exceeded.get(), 1);
        assert_eq!(o.stats.mqtt_tunnels.get(), 0, "no tunnel established");
    }

    #[tokio::test]
    async fn sampled_stream_yields_connected_tree_across_edge_and_origin() {
        let (_broker, o1, _o2, edge) = stack().await;
        edge.stats.telemetry.tracer.set_sample_every(1);

        // The Origin records its stream span before relaying the CONNACK,
        // so every span exists by the time the client sees it.
        let mut c = Client::connect(edge.addr, UserId(51)).await;
        c.send(&Packet::PingReq).await;
        assert_eq!(c.recv().await, Packet::PingResp);

        let mut merged = edge.stats.telemetry.tracer.snapshot();
        merged.merge(&o1.stats.telemetry.tracer.snapshot());

        let root = merged
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::TrunkStream && s.parent_id == 0)
            .expect("edge stream root span");
        assert!(root.detail.contains("established"), "{root:?}");
        assert!(merged.is_connected(root.trace_id), "{merged:?}");

        // The Origin adopted the x-zdr-trace stream header: its leg
        // parents under the Edge's span, broker connect beneath it.
        let origin_leg = merged
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::TrunkStream && s.parent_id == root.span_id)
            .expect("origin stream span parented under the edge root");
        assert_eq!(origin_leg.trace_id, root.trace_id);
        assert!(origin_leg.detail.contains("mode=connect"), "{origin_leg:?}");
        assert!(merged
            .spans
            .iter()
            .any(|s| s.kind == SpanKind::UpstreamConnect && s.parent_id == origin_leg.span_id));
    }

    #[tokio::test]
    async fn dead_origin_trips_breaker_and_trunk_pool_skips_it() {
        let broker = zdr_broker::server::spawn("127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let live = spawn_origin_trunk("127.0.0.1:0".parse().unwrap(), vec![broker.addr])
            .await
            .unwrap();
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let edge = spawn_edge_trunk("127.0.0.1:0".parse().unwrap(), vec![dead, live.addr])
            .await
            .unwrap();

        // Early clients each pay one failed connect to the dead origin and
        // fall through to the live one; the default threshold (3 failures)
        // then opens the breaker, and later clients skip the dead origin
        // without attempting a connect at all.
        for u in 0..5u64 {
            let mut c = Client::connect(edge.addr, UserId(u)).await;
            c.send(&Packet::PingReq).await;
            assert_eq!(c.recv().await, Packet::PingResp);
        }
        assert_eq!(edge.stats.breaker_opened.get(), 1);
        assert_eq!(live.active_streams(), 5, "all tunnels ride the live origin");
    }
}

//! Helpers shared by the two MQTT relay implementations
//! ([`crate::mqtt_relay`] per-tunnel-TCP and [`crate::mqtt_relay_trunk`]
//! multiplexed): tunnel framing, broker selection, and CONNECT sniffing.
//! One copy, one behavior — the DCR workflow must pick the same broker for
//! a user no matter which relay flavor carried the tunnel.

use std::net::SocketAddr;
use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

use zdr_core::clock::unix_now_ms;
use zdr_proto::dcr::UserId;
use zdr_proto::deadline::Deadline;
use zdr_proto::mqtt::{Packet, StreamDecoder};

use crate::resilience::Resilience;
use crate::stats::ProxyStats;

/// Default budget for establishing a tunnel (edge→origin→broker) when no
/// deadline was propagated; the Edge stamps this on every fresh tunnel.
pub(crate) const TUNNEL_CONNECT_BUDGET: Duration = Duration::from_secs(5);

/// Tunnel frame kind: opaque MQTT bytes.
pub(crate) const KIND_DATA: u8 = 0;
/// Tunnel frame kind: DCR control message.
pub(crate) const KIND_DCR: u8 = 1;

/// Maximum tunnel frame payload.
pub(crate) const MAX_FRAME: usize = 1 << 20;

/// Writes one `[kind:u8][len:u32][payload]` tunnel frame.
pub(crate) async fn write_frame<W: tokio::io::AsyncWrite + Unpin>(
    w: &mut W,
    kind: u8,
    payload: &[u8],
) -> std::io::Result<()> {
    let mut head = [0u8; 5];
    head[0] = kind;
    head[1..5].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&head).await?;
    w.write_all(payload).await
}

/// Reads one tunnel frame; `None` on clean EOF at a frame boundary.
pub(crate) async fn read_frame<R: tokio::io::AsyncRead + Unpin>(
    r: &mut R,
) -> std::io::Result<Option<(u8, Vec<u8>)>> {
    let mut head = [0u8; 5];
    match r.read_exact(&mut head).await {
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes([head[1], head[2], head[3], head[4]]) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "tunnel frame too large",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).await?;
    Ok(Some((head[0], payload)))
}

/// Locates the broker for a user by consistent hashing (§4.2: "Consistent
/// hashing is used to keep these mappings consistent at scale").
pub fn broker_for_user(user: UserId, brokers: &[SocketAddr]) -> Option<SocketAddr> {
    brokers_ranked_for_user(user, brokers).into_iter().next()
}

/// The full rendezvous ranking for a user: every broker ordered by
/// descending hash weight. Element 0 is [`broker_for_user`]'s answer; the
/// rest are the deterministic next-replica fallbacks a relay walks when
/// the preferred broker's circuit breaker is open. Rendezvous hashing
/// keeps the *whole order* stable under broker-set changes, so two relays
/// always agree on the fallback sequence too.
pub fn brokers_ranked_for_user(user: UserId, brokers: &[SocketAddr]) -> Vec<SocketAddr> {
    let mut ranked: Vec<SocketAddr> = brokers.to_vec();
    ranked.sort_by_key(|b| {
        std::cmp::Reverse(zdr_l4lb::hash::fnv1a(
            format!("{}|{}", user.0, b).as_bytes(),
        ))
    });
    ranked
}

/// Connects to the best available broker for `user`: the rendezvous-ranked
/// list is walked in order, skipping brokers whose breaker rejects; the
/// first connect attempt is free, every fallback attempt must be funded by
/// the retry budget; the whole walk stops at `deadline`. This is §4.2's
/// consistent-hash placement made breaker-aware: when the hashed broker is
/// down, every relay deterministically agrees on the same next replica.
pub(crate) async fn connect_ranked_broker(
    user: UserId,
    brokers: &[SocketAddr],
    resilience: &Resilience,
    stats: &ProxyStats,
    deadline: Deadline,
) -> Option<(TcpStream, SocketAddr)> {
    let mut attempted = false;
    for addr in brokers_ranked_for_user(user, brokers) {
        let Some(remaining) = deadline.remaining(unix_now_ms()) else {
            stats.deadline_exceeded.bump();
            return None;
        };
        if !resilience.admit(addr, stats).allowed() {
            continue;
        }
        if attempted && !resilience.try_retry(stats) {
            return None;
        }
        attempted = true;
        let connect_start_us = stats.telemetry.clock().now_us();
        match tokio::time::timeout(remaining, TcpStream::connect(addr)).await {
            Ok(Ok(conn)) => {
                stats.telemetry.upstream_connect_us.record(
                    stats
                        .telemetry
                        .clock()
                        .now_us()
                        .saturating_sub(connect_start_us),
                );
                resilience.on_success(addr, stats);
                return Some((conn, addr));
            }
            _ => resilience.on_failure(addr, stats),
        }
    }
    None
}

/// Feeds `bytes` to the sniffer and, if a complete CONNECT has arrived,
/// extracts the user id from its client id. `None` until then (or if the
/// first packet is not a parseable CONNECT).
pub(crate) fn sniff_connect_user(sniffer: &mut StreamDecoder, bytes: &[u8]) -> Option<UserId> {
    sniffer.extend(bytes);
    match sniffer.next_packet() {
        Ok(Some(Packet::Connect { ref client_id, .. })) => UserId::from_client_id(client_id),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broker_selection_is_consistent_and_spread() {
        let brokers: Vec<SocketAddr> = (0..4)
            .map(|i| format!("10.0.0.{}:1883", i + 1).parse().unwrap())
            .collect();
        // Deterministic.
        for u in 0..100 {
            assert_eq!(
                broker_for_user(UserId(u), &brokers),
                broker_for_user(UserId(u), &brokers)
            );
        }
        // Spread across brokers.
        let mut seen = std::collections::HashSet::new();
        for u in 0..100 {
            seen.insert(broker_for_user(UserId(u), &brokers).unwrap());
        }
        assert_eq!(seen.len(), 4);
        // Stable under unrelated broker removal (consistent hashing).
        let removed = &brokers[..3];
        let mut moved = 0;
        for u in 0..1000 {
            let before = broker_for_user(UserId(u), &brokers).unwrap();
            let after = broker_for_user(UserId(u), removed).unwrap();
            if before != brokers[3] && before != after {
                moved += 1;
            }
        }
        assert_eq!(
            moved, 0,
            "rendezvous hashing must not move unaffected users"
        );
        assert!(broker_for_user(UserId(1), &[]).is_none());
    }

    #[test]
    fn ranked_order_is_stable_and_headed_by_primary() {
        let brokers: Vec<SocketAddr> = (0..5)
            .map(|i| format!("10.0.1.{}:1883", i + 1).parse().unwrap())
            .collect();
        for u in 0..200 {
            let ranked = brokers_ranked_for_user(UserId(u), &brokers);
            assert_eq!(ranked.len(), brokers.len());
            assert_eq!(Some(ranked[0]), broker_for_user(UserId(u), &brokers));
            // Removing the primary promotes exactly the second choice: the
            // fallback order is itself consistent-hashing stable.
            let without: Vec<_> = brokers
                .iter()
                .copied()
                .filter(|b| *b != ranked[0])
                .collect();
            assert_eq!(broker_for_user(UserId(u), &without), Some(ranked[1]));
        }
    }

    #[tokio::test]
    async fn frame_round_trip() {
        let (mut a, mut b) = tokio::io::duplex(1024);
        write_frame(&mut a, KIND_DCR, b"hello").await.unwrap();
        let (kind, payload) = read_frame(&mut b).await.unwrap().unwrap();
        assert_eq!(kind, KIND_DCR);
        assert_eq!(payload, b"hello");
        drop(a);
        assert!(read_frame(&mut b).await.unwrap().is_none());
    }

    #[test]
    fn sniffs_user_from_connect_bytes() {
        let pkt = Packet::Connect {
            client_id: "user-42".into(),
            keep_alive: 60,
            clean_session: true,
        };
        let wire = zdr_proto::mqtt::encode(&pkt).unwrap();
        let mut sniffer = StreamDecoder::new();
        // Partial bytes: no verdict yet.
        assert_eq!(sniff_connect_user(&mut sniffer, &wire[..3]), None);
        // Rest arrives: user extracted.
        assert_eq!(
            sniff_connect_user(&mut sniffer, &wire[3..]),
            Some(UserId(42))
        );
    }
}

//! Helpers shared by the two MQTT relay implementations
//! ([`crate::mqtt_relay`] per-tunnel-TCP and [`crate::mqtt_relay_trunk`]
//! multiplexed): tunnel framing, broker selection, and CONNECT sniffing.
//! One copy, one behavior — the DCR workflow must pick the same broker for
//! a user no matter which relay flavor carried the tunnel.

use std::net::SocketAddr;

use tokio::io::{AsyncReadExt, AsyncWriteExt};

use zdr_proto::dcr::UserId;
use zdr_proto::mqtt::{Packet, StreamDecoder};

/// Tunnel frame kind: opaque MQTT bytes.
pub(crate) const KIND_DATA: u8 = 0;
/// Tunnel frame kind: DCR control message.
pub(crate) const KIND_DCR: u8 = 1;

/// Maximum tunnel frame payload.
pub(crate) const MAX_FRAME: usize = 1 << 20;

/// Writes one `[kind:u8][len:u32][payload]` tunnel frame.
pub(crate) async fn write_frame<W: tokio::io::AsyncWrite + Unpin>(
    w: &mut W,
    kind: u8,
    payload: &[u8],
) -> std::io::Result<()> {
    let mut head = [0u8; 5];
    head[0] = kind;
    head[1..5].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&head).await?;
    w.write_all(payload).await
}

/// Reads one tunnel frame; `None` on clean EOF at a frame boundary.
pub(crate) async fn read_frame<R: tokio::io::AsyncRead + Unpin>(
    r: &mut R,
) -> std::io::Result<Option<(u8, Vec<u8>)>> {
    let mut head = [0u8; 5];
    match r.read_exact(&mut head).await {
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes([head[1], head[2], head[3], head[4]]) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "tunnel frame too large",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).await?;
    Ok(Some((head[0], payload)))
}

/// Locates the broker for a user by consistent hashing (§4.2: "Consistent
/// hashing is used to keep these mappings consistent at scale").
pub fn broker_for_user(user: UserId, brokers: &[SocketAddr]) -> Option<SocketAddr> {
    if brokers.is_empty() {
        return None;
    }
    // Rendezvous (highest-random-weight) hashing: stable under broker-set
    // changes, deterministic across relays.
    brokers
        .iter()
        .max_by_key(|b| zdr_l4lb::hash::fnv1a(format!("{}|{}", user.0, b).as_bytes()))
        .copied()
}

/// Feeds `bytes` to the sniffer and, if a complete CONNECT has arrived,
/// extracts the user id from its client id. `None` until then (or if the
/// first packet is not a parseable CONNECT).
pub(crate) fn sniff_connect_user(sniffer: &mut StreamDecoder, bytes: &[u8]) -> Option<UserId> {
    sniffer.extend(bytes);
    match sniffer.next_packet() {
        Ok(Some(Packet::Connect { ref client_id, .. })) => UserId::from_client_id(client_id),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broker_selection_is_consistent_and_spread() {
        let brokers: Vec<SocketAddr> = (0..4)
            .map(|i| format!("10.0.0.{}:1883", i + 1).parse().unwrap())
            .collect();
        // Deterministic.
        for u in 0..100 {
            assert_eq!(
                broker_for_user(UserId(u), &brokers),
                broker_for_user(UserId(u), &brokers)
            );
        }
        // Spread across brokers.
        let mut seen = std::collections::HashSet::new();
        for u in 0..100 {
            seen.insert(broker_for_user(UserId(u), &brokers).unwrap());
        }
        assert_eq!(seen.len(), 4);
        // Stable under unrelated broker removal (consistent hashing).
        let removed = &brokers[..3];
        let mut moved = 0;
        for u in 0..1000 {
            let before = broker_for_user(UserId(u), &brokers).unwrap();
            let after = broker_for_user(UserId(u), removed).unwrap();
            if before != brokers[3] && before != after {
                moved += 1;
            }
        }
        assert_eq!(
            moved, 0,
            "rendezvous hashing must not move unaffected users"
        );
        assert!(broker_for_user(UserId(1), &[]).is_none());
    }

    #[tokio::test]
    async fn frame_round_trip() {
        let (mut a, mut b) = tokio::io::duplex(1024);
        write_frame(&mut a, KIND_DCR, b"hello").await.unwrap();
        let (kind, payload) = read_frame(&mut b).await.unwrap().unwrap();
        assert_eq!(kind, KIND_DCR);
        assert_eq!(payload, b"hello");
        drop(a);
        assert!(read_frame(&mut b).await.unwrap().is_none());
    }

    #[test]
    fn sniffs_user_from_connect_bytes() {
        let pkt = Packet::Connect {
            client_id: "user-42".into(),
            keep_alive: 60,
            clean_session: true,
        };
        let wire = zdr_proto::mqtt::encode(&pkt).unwrap();
        let mut sniffer = StreamDecoder::new();
        // Partial bytes: no verdict yet.
        assert_eq!(sniff_connect_user(&mut sniffer, &wire[..3]), None);
        // Rest arrives: user extracted.
        assert_eq!(
            sniff_connect_user(&mut sniffer, &wire[3..]),
            Some(UserId(42))
        );
    }
}

//! # zdr-proxy — a Proxygen-like L7 load balancer
//!
//! "Proxygen is the heart of traffic management" (§2.1): it terminates
//! client connections, reverse-proxies HTTP to the app-server tier, relays
//! MQTT tunnels to the pub/sub brokers, answers the L4LB's health checks,
//! and — for this paper — orchestrates every Zero Downtime Release
//! mechanism:
//!
//! * [`takeover`] — Socket Takeover integration: a [`takeover::ProxyInstance`]
//!   hands its listening sockets to a successor process/instance via
//!   `zdr-net`, keeps draining its accepted connections, and the successor
//!   answers health checks from its first instant (Fig. 5).
//! * [`reverse`] — the streaming HTTP reverse proxy with the **Partial Post
//!   Replay client side**: a gated 379 from a restarting app server is never
//!   forwarded; the proxy rebuilds the original request and replays it to
//!   another healthy server, up to 10 attempts (§4.3, §4.4).
//! * [`mqtt_relay`] — Edge/Origin MQTT relaying with **Downstream
//!   Connection Reuse**: a restarting Origin solicits the Edge to re-home
//!   each tunnel through another Origin to the same broker (§4.2).
//! * [`mqtt_relay_trunk`] — the same DCR workflow over the multiplexed
//!   HTTP/2-like trunk, where **GOAWAY is the solicitation** (§4.2's
//!   "in-built graceful shutdown").
//! * [`quic_service`] — a QUIC-like UDP service whose SO_REUSEPORT socket
//!   group crosses the takeover with connection-ID user-space routing, so
//!   draining flows keep being served by the old instance (§4.1's UDP
//!   mechanism end to end).
//! * [`trunk`] — the long-lived Edge↔Origin trunk: streams multiplexed
//!   over one TCP connection with GOAWAY graceful drain (§2.2, §4.1).
//! * [`upstream`] — healthy-upstream selection shared by the above.
//! * [`resilience`] — the shared upstream-resilience layer every
//!   proxy→backend hop goes through: per-upstream circuit breakers,
//!   a cluster-wide retry budget, deadline propagation, and overload
//!   shedding at accept ([`resilience::LoadShedGate`]).
//! * [`stats`] — per-instance disruption counters (the §6 monitoring
//!   signals) and the unified [`stats::StatsSnapshot`] merged view.
//! * [`admin`] — the loopback admin scrape endpoint (`/stats`, `/healthz`,
//!   `/metrics`), live throughout a release.
//!
//! All four services share one lifecycle, the **unified service layer**:
//!
//! * [`service`] — [`service::ServiceHandle`] / [`service::DrainState`]:
//!   the drain signal, the hard-deadline force-close timer, and the
//!   per-protocol close signal ([`service::CloseSignal`]: TCP reset,
//!   H2 GOAWAY, MQTT DISCONNECT, QUIC CONNECTION_CLOSE) behave
//!   identically whether the bytes are HTTP, MQTT, or QUIC.
//! * [`conn_tracker`] — the sharded active-connection gauge and
//!   forced-close accounting every service registers with.
//! * [`mqtt_common`] — broker selection and tunnel framing shared by the
//!   two MQTT relay flavors.

pub mod admin;
pub mod conn_tracker;
pub mod mqtt_common;
pub mod mqtt_relay;
pub mod mqtt_relay_trunk;
pub mod quic_service;
pub mod resilience;
pub mod reverse;
pub mod service;
pub mod stats;
pub mod takeover;
pub mod trunk;
pub mod upstream;

pub use admin::{spawn_admin, AdminHandle};
pub use conn_tracker::{ConnGuard, ConnTracker};
pub use mqtt_common::{broker_for_user, brokers_ranked_for_user};
pub use resilience::{LoadShedGate, Resilience, ResilienceConfig, ShedConfig};
pub use reverse::{spawn_reverse_proxy, ReverseProxyConfig, ReverseProxyHandle};
pub use service::{CloseSignal, DrainState, ServiceHandle};
pub use stats::{Counter, EdgeDcrStats, ProxyStats, StatsSnapshot};
pub use upstream::UpstreamPool;

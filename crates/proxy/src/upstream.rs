//! Upstream (app server / broker / peer-origin) selection.
//!
//! A small round-robin pool with failure marking and exclusion — enough to
//! express the §4.4 retry rule: *"it is possible that the next HHVM server
//! is also restarting ... In such a case, the downstream Proxygen retries
//! the request with a different HHVM server"*.

use std::collections::HashSet;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::RwLock;

/// A shared pool of upstream addresses.
#[derive(Debug)]
pub struct UpstreamPool {
    addrs: RwLock<Vec<SocketAddr>>,
    unhealthy: RwLock<HashSet<SocketAddr>>,
    cursor: AtomicUsize,
}

impl UpstreamPool {
    /// A pool over `addrs`, all initially healthy.
    pub fn new(addrs: Vec<SocketAddr>) -> Self {
        UpstreamPool {
            addrs: RwLock::new(addrs),
            unhealthy: RwLock::new(HashSet::new()),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Number of configured upstreams.
    pub fn len(&self) -> usize {
        self.addrs.read().len()
    }

    /// True when no upstreams are configured.
    pub fn is_empty(&self) -> bool {
        self.addrs.read().is_empty()
    }

    /// Picks the next healthy upstream (round-robin), skipping any in
    /// `exclude`. Returns `None` when nothing qualifies.
    pub fn pick(&self, exclude: &[SocketAddr]) -> Option<SocketAddr> {
        let addrs = self.addrs.read();
        if addrs.is_empty() {
            return None;
        }
        let unhealthy = self.unhealthy.read();
        let n = addrs.len();
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for i in 0..n {
            let a = addrs[(start + i) % n];
            if !exclude.contains(&a) && !unhealthy.contains(&a) {
                return Some(a);
            }
        }
        // Every healthy upstream is excluded — allow an unhealthy,
        // non-excluded one as a last resort? No: the §4.4 contract is to
        // fail with 500 when no active server exists.
        None
    }

    /// Marks an upstream unhealthy (connect failure / restart observed).
    pub fn mark_unhealthy(&self, addr: SocketAddr) {
        self.unhealthy.write().insert(addr);
    }

    /// Marks an upstream healthy again.
    pub fn mark_healthy(&self, addr: SocketAddr) {
        self.unhealthy.write().remove(&addr);
    }

    /// Currently healthy upstreams.
    pub fn healthy(&self) -> Vec<SocketAddr> {
        let unhealthy = self.unhealthy.read();
        self.addrs
            .read()
            .iter()
            .copied()
            .filter(|a| !unhealthy.contains(a))
            .collect()
    }

    /// Replaces the address set (config update).
    pub fn replace(&self, addrs: Vec<SocketAddr>) {
        *self.addrs.write() = addrs;
        self.unhealthy.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(p: u16) -> SocketAddr {
        format!("127.0.0.1:{p}").parse().unwrap()
    }

    #[test]
    fn round_robin_cycles() {
        let pool = UpstreamPool::new(vec![addr(1), addr(2), addr(3)]);
        let picks: Vec<_> = (0..6).map(|_| pool.pick(&[]).unwrap()).collect();
        assert_eq!(picks[0..3], picks[3..6]);
        let distinct: HashSet<_> = picks[0..3].iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn exclusion_skips() {
        let pool = UpstreamPool::new(vec![addr(1), addr(2)]);
        for _ in 0..4 {
            assert_eq!(pool.pick(&[addr(1)]), Some(addr(2)));
        }
    }

    #[test]
    fn unhealthy_skipped_until_recovered() {
        let pool = UpstreamPool::new(vec![addr(1), addr(2)]);
        pool.mark_unhealthy(addr(2));
        for _ in 0..4 {
            assert_eq!(pool.pick(&[]), Some(addr(1)));
        }
        assert_eq!(pool.healthy(), vec![addr(1)]);
        pool.mark_healthy(addr(2));
        assert_eq!(pool.healthy().len(), 2);
    }

    #[test]
    fn exhausted_pool_returns_none() {
        let pool = UpstreamPool::new(vec![addr(1), addr(2)]);
        assert_eq!(pool.pick(&[addr(1), addr(2)]), None);
        pool.mark_unhealthy(addr(1));
        pool.mark_unhealthy(addr(2));
        assert_eq!(pool.pick(&[]), None);
        let empty = UpstreamPool::new(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.pick(&[]), None);
    }

    #[test]
    fn replace_resets() {
        let pool = UpstreamPool::new(vec![addr(1)]);
        pool.mark_unhealthy(addr(1));
        pool.replace(vec![addr(1), addr(9)]);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.healthy().len(), 2);
    }
}

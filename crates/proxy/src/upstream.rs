//! Upstream (app server / broker / peer-origin) selection.
//!
//! A round-robin pool expressing the §4.4 retry rule: *"it is possible
//! that the next HHVM server is also restarting ... In such a case, the
//! downstream Proxygen retries the request with a different HHVM
//! server"*. Health is delegated to the per-upstream circuit breakers in
//! [`crate::resilience`]: an upstream that fails trips its breaker open
//! and is skipped, then automatically re-admitted via half-open probes
//! when its (jittered, exponential) open window elapses.
//!
//! The legacy `mark_unhealthy` exists for callers that observe failures
//! out-of-band; it force-opens the breaker, so even that path recovers on
//! a TTL (the open window) instead of excluding the upstream forever.

use std::net::SocketAddr;

use parking_lot::RwLock;

use zdr_core::sync::{Arc, AtomicUsize, Ordering};

use zdr_core::resilience::Admit;

use crate::resilience::{Resilience, ResilienceConfig};
use crate::stats::ProxyStats;

/// A shared pool of upstream addresses guarded by circuit breakers.
#[derive(Debug)]
pub struct UpstreamPool {
    addrs: RwLock<Vec<SocketAddr>>,
    resilience: Arc<Resilience>,
    cursor: AtomicUsize,
}

impl UpstreamPool {
    /// A pool over `addrs` with its own default resilience layer.
    pub fn new(addrs: Vec<SocketAddr>) -> Self {
        Self::with_resilience(
            addrs,
            Arc::new(Resilience::new(ResilienceConfig::default())),
        )
    }

    /// A pool sharing an existing resilience layer (so pool picks, retry
    /// budget, and service-level stats all see the same breakers).
    pub fn with_resilience(addrs: Vec<SocketAddr>, resilience: Arc<Resilience>) -> Self {
        UpstreamPool {
            addrs: RwLock::new(addrs),
            resilience,
            cursor: AtomicUsize::new(0),
        }
    }

    /// The resilience layer backing this pool.
    pub fn resilience(&self) -> &Arc<Resilience> {
        &self.resilience
    }

    /// Number of configured upstreams.
    pub fn len(&self) -> usize {
        self.addrs.read().len()
    }

    /// True when no upstreams are configured.
    pub fn is_empty(&self) -> bool {
        self.addrs.read().is_empty()
    }

    /// Picks the next admitting upstream (round-robin), skipping any in
    /// `exclude` and any whose breaker rejects. Returns `None` when
    /// nothing qualifies — the §4.4 contract is to fail with 500 when no
    /// active server exists, never to dogpile a known-bad one.
    ///
    /// Non-consuming: this does not claim half-open probe slots, so it is
    /// safe for health views and legacy callers. The request path should
    /// prefer [`UpstreamPool::pick_admit`].
    pub fn pick(&self, exclude: &[SocketAddr]) -> Option<SocketAddr> {
        let addrs = self.addrs.read();
        if addrs.is_empty() {
            return None;
        }
        let now = self.resilience.now_ms();
        let n = addrs.len();
        // Relaxed: the cursor only spreads load; any interleaving of
        // increments still yields a valid starting index.
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for i in 0..n {
            let a = addrs[(start + i) % n];
            if !exclude.contains(&a) && self.resilience.breaker(a).would_admit(now) {
                return Some(a);
            }
        }
        None
    }

    /// Picks the next upstream for a real attempt, consuming admission:
    /// a closed breaker admits normally ([`Admit::Yes`]); a tripped
    /// breaker whose window has elapsed grants at most one in-flight
    /// half-open probe ([`Admit::Probe`], counted in
    /// `stats.breaker_probes`) — so recovering upstreams are rediscovered
    /// organically by the rotation, one bounded probe at a time, while
    /// breaker-open upstreams receive nothing else.
    pub fn pick_admit(
        &self,
        exclude: &[SocketAddr],
        stats: &ProxyStats,
    ) -> Option<(SocketAddr, Admit)> {
        let addrs = self.addrs.read().clone();
        if addrs.is_empty() {
            return None;
        }
        let n = addrs.len();
        // Relaxed: the cursor only spreads load; any interleaving of
        // increments still yields a valid starting index.
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for i in 0..n {
            let a = addrs[(start + i) % n];
            if exclude.contains(&a) {
                continue;
            }
            match self.resilience.admit(a, stats) {
                Admit::No => continue,
                admit => return Some((a, admit)),
            }
        }
        None
    }

    /// Reports an attempt outcome for `addr`, feeding its breaker (and on
    /// success, the retry budget).
    pub fn report(&self, addr: SocketAddr, ok: bool, stats: &ProxyStats) {
        if ok {
            self.resilience.on_success(addr, stats);
        } else {
            self.resilience.on_failure(addr, stats);
        }
    }

    /// Marks an upstream unhealthy (out-of-band failure observation):
    /// force-opens its breaker. Unlike the old permanent unhealthy set,
    /// the upstream is automatically re-admitted for a probe when the
    /// breaker's open window (the re-admission TTL) elapses.
    pub fn mark_unhealthy(&self, addr: SocketAddr) {
        self.resilience
            .breaker(addr)
            .force_open(self.resilience.now_ms());
    }

    /// Marks an upstream healthy again immediately.
    pub fn mark_healthy(&self, addr: SocketAddr) {
        self.resilience.breaker(addr).force_close();
    }

    /// Upstreams currently admitting traffic (breaker closed, or open
    /// with an elapsed window — i.e. probe-eligible counts as healthy).
    pub fn healthy(&self) -> Vec<SocketAddr> {
        let addrs = self.addrs.read();
        self.resilience.admitting(addrs.iter())
    }

    /// The configured address set, in rotation order.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.addrs.read().clone()
    }

    /// Replaces the address set (config update); new entries start with
    /// fresh (closed) breakers.
    pub fn replace(&self, addrs: Vec<SocketAddr>) {
        for a in &addrs {
            self.resilience.breaker(*a).force_close();
        }
        *self.addrs.write() = addrs;
    }
}

// not(loom): loom atomics panic outside a loom::model run.
#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use zdr_core::resilience::BreakerConfig;

    fn addr(p: u16) -> SocketAddr {
        format!("127.0.0.1:{p}").parse().unwrap()
    }

    /// A pool whose breakers re-admit after ~`ttl_ms` (no exponent, no
    /// meaningful jitter spread beyond ±50%).
    fn pool_with_ttl(addrs: Vec<SocketAddr>, ttl_ms: u64) -> UpstreamPool {
        UpstreamPool::with_resilience(
            addrs,
            Arc::new(Resilience::new(ResilienceConfig {
                breaker: BreakerConfig {
                    failure_threshold: 1,
                    open_base_ms: ttl_ms,
                    open_max_ms: ttl_ms,
                    ..Default::default()
                },
                ..Default::default()
            })),
        )
    }

    #[test]
    fn round_robin_cycles() {
        let pool = UpstreamPool::new(vec![addr(1), addr(2), addr(3)]);
        let picks: Vec<_> = (0..6).map(|_| pool.pick(&[]).unwrap()).collect();
        assert_eq!(picks[0..3], picks[3..6]);
        let distinct: HashSet<_> = picks[0..3].iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn exclusion_skips() {
        let pool = UpstreamPool::new(vec![addr(1), addr(2)]);
        for _ in 0..4 {
            assert_eq!(pool.pick(&[addr(1)]), Some(addr(2)));
        }
    }

    #[test]
    fn unhealthy_skipped_until_recovered() {
        let pool = UpstreamPool::new(vec![addr(1), addr(2)]);
        pool.mark_unhealthy(addr(2));
        for _ in 0..4 {
            assert_eq!(pool.pick(&[]), Some(addr(1)));
        }
        assert_eq!(pool.healthy(), vec![addr(1)]);
        pool.mark_healthy(addr(2));
        assert_eq!(pool.healthy().len(), 2);
    }

    #[test]
    fn exhausted_pool_returns_none() {
        let pool = UpstreamPool::new(vec![addr(1), addr(2)]);
        assert_eq!(pool.pick(&[addr(1), addr(2)]), None);
        pool.mark_unhealthy(addr(1));
        pool.mark_unhealthy(addr(2));
        assert_eq!(pool.pick(&[]), None);
        let empty = UpstreamPool::new(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.pick(&[]), None);
        assert!(empty.pick_admit(&[], &ProxyStats::default()).is_none());
    }

    #[test]
    fn replace_resets() {
        let pool = UpstreamPool::new(vec![addr(1)]);
        pool.mark_unhealthy(addr(1));
        pool.replace(vec![addr(1), addr(9)]);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.healthy().len(), 2);
    }

    #[test]
    fn marked_unhealthy_upstream_readmits_after_ttl() {
        // The satellite fix: `mark_unhealthy` no longer excludes forever.
        let pool = pool_with_ttl(vec![addr(1), addr(2)], 20);
        pool.mark_unhealthy(addr(2));
        assert_eq!(pool.healthy(), vec![addr(1)]);
        // Jitter is ±50%, so 2× the TTL is always past the window.
        std::thread::sleep(std::time::Duration::from_millis(45));
        assert_eq!(pool.healthy().len(), 2, "TTL re-admission failed");
        let stats = ProxyStats::default();
        let picked: HashSet<_> = (0..4)
            .filter_map(|_| pool.pick_admit(&[], &stats).map(|(a, _)| a))
            .collect();
        assert!(
            picked.contains(&addr(2)),
            "re-admitted upstream never picked"
        );
    }

    #[test]
    fn failures_trip_breaker_and_probe_grants_once() {
        let pool = pool_with_ttl(vec![addr(1), addr(2)], 20);
        let stats = ProxyStats::default();
        pool.report(addr(2), false, &stats);
        assert_eq!(stats.breaker_opened.get(), 1);
        // Only addr(1) is picked while 2's breaker is open.
        for _ in 0..4 {
            assert_eq!(pool.pick_admit(&[], &stats).map(|(a, _)| a), Some(addr(1)));
        }
        std::thread::sleep(std::time::Duration::from_millis(45));
        // With addr(1) excluded, the tripped upstream is offered as a
        // probe — exactly once until the probe resolves.
        let (a, admit) = pool.pick_admit(&[addr(1)], &stats).unwrap();
        assert_eq!((a, admit), (addr(2), Admit::Probe));
        assert_eq!(stats.breaker_probes.get(), 1);
        assert!(pool.pick_admit(&[addr(1)], &stats).is_none());
        // Probe succeeds twice (default success_threshold) -> closed again.
        pool.report(addr(2), true, &stats);
        let (a, admit) = pool.pick_admit(&[addr(1)], &stats).unwrap();
        assert_eq!((a, admit), (addr(2), Admit::Probe));
        pool.report(addr(2), true, &stats);
        assert_eq!(stats.breaker_closed.get(), 1);
        assert_eq!(pool.pick_admit(&[addr(1)], &stats).unwrap().1, Admit::Yes);
    }
}

//! A QUIC-like UDP service with Socket Takeover — the §4.1 UDP story end
//! to end on real sockets.
//!
//! A [`QuicInstance`] owns a UDP VIP as an `SO_REUSEPORT` socket group and
//! serves a trivial flow-stateful application (an echo service that only
//! answers flows whose state it holds — exactly the property that makes
//! misrouting fatal for QUIC). On release:
//!
//! 1. the successor receives the **same socket group** via `SCM_RIGHTS`
//!    (kernel ring untouched — no flux, no misrouting);
//! 2. the successor's [`zdr_net::udp_router::UdpRouter`]s classify every
//!    datagram by the connection ID's generation: its own flows are served
//!    locally, the predecessor's flows are forwarded to the predecessor's
//!    host-local drain address;
//! 3. the predecessor keeps serving its flows from the drain socket until
//!    the drain hard deadline (from the unified [`crate::service`] layer),
//!    then sends each surviving flow a CONNECTION_CLOSE and exits.
//!
//! The flow-state table is per-instance and never migrated — the paper's
//! point is precisely that you don't have to migrate it.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use tokio::net::UdpSocket;

use zdr_core::admission::{
    client_key, AdmissionConfig, AdmitDecision, ProtectionConfig, ProtectionMode,
    ProtectionTransition, SlidingWindowLimiter, StormDetector, StormSignals,
};
use zdr_core::config::ZdrConfig;
use zdr_core::sync::{AtomicU64, Ordering};
use zdr_core::telemetry::{ReleasePhase, Telemetry};
use zdr_core::trace::SpanKind;
use zdr_proto::trace::TraceContext;
use zdr_net::inventory::{bind_udp_reuseport_group, ListenerInventory};
use zdr_net::takeover::{request_takeover, HandoffInfo, TakeoverServer};
use zdr_net::udp_router::{Delivery, UdpRouter};
use zdr_proto::quic::{self, ConnectionId, Datagram, PacketType};

use crate::conn_tracker::ConnGuard;
use crate::resilience::{LoadShedGate, ShedConfig};
use crate::service::{quic_close_datagram, DrainState, QuicCloseSignal, ServiceHandle};
use crate::stats::{Counter, StatsSnapshot};
use crate::takeover::join_err;

/// Configuration for a takeover-capable QUIC service instance.
#[derive(Debug, Clone)]
pub struct QuicInstanceConfig {
    /// UNIX-socket path for the takeover handshake.
    pub takeover_path: PathBuf,
    /// SO_REUSEPORT sockets in the VIP group.
    pub sockets: usize,
    /// How long the draining instance keeps serving its flows.
    pub drain_ms: u64,
    /// Accept-side load shedding: an overloaded instance refuses new flows
    /// at Initial with a CONNECTION_CLOSE (the datagram analogue of the
    /// HTTP 503 / MQTT CONNACK refuse). Default fails open.
    pub shed: ShedConfig,
    /// Per-client admission control, checked at Initial ahead of the shed
    /// gate (same CONNECTION_CLOSE refusal, distinct counter). Default
    /// fails open.
    pub admission: AdmissionConfig,
    /// Storm protection: arm thresholds for the self-tripping
    /// [`ProtectionMode`] fed by this instance's counters.
    pub protection: ProtectionConfig,
}

/// Counters for one instance's flow service.
#[derive(Debug, Default)]
pub struct QuicStats {
    /// Flows opened on this instance.
    pub flows_opened: Counter,
    /// Datagrams served from local flow state.
    pub served: Counter,
    /// Datagrams for unknown flows (the misrouting signal — must stay 0
    /// under Zero Downtime Release).
    pub unknown_flow: Counter,
    /// New flows refused at Initial by the overload gate.
    pub load_shed: Counter,
    /// New flows refused at Initial by per-client admission control
    /// (distinct from `load_shed` so the auditor attributes disruption
    /// to the right gate).
    pub admit_rejected: Counter,
    /// Admission checks that failed open under table pressure.
    pub admit_fail_open: Counter,
    /// Times storm protection armed on this instance.
    pub protection_armed: Counter,
    /// Times storm protection disarmed after stable probe windows.
    pub protection_disarmed: Counter,
    /// The self-tripping storm-protection state machine for this instance.
    pub protection: Arc<ProtectionMode>,
    /// Datagram service-time histogram + phase timeline for this instance.
    pub telemetry: Arc<Telemetry>,
}

impl QuicStats {
    /// These counters as a (partial) unified snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        let (protection_engaged, protection_reason) = self.protection.snapshot_codes();
        StatsSnapshot {
            quic_flows_opened: self.flows_opened.get(),
            quic_served: self.served.get(),
            quic_unknown_flow: self.unknown_flow.get(),
            load_shed: self.load_shed.get(),
            admit_rejected: self.admit_rejected.get(),
            admit_fail_open: self.admit_fail_open.get(),
            protection_armed: self.protection_armed.get(),
            protection_disarmed: self.protection_disarmed.get(),
            protection_engaged,
            protection_reason,
            telemetry: self.telemetry.snapshot(),
            ..StatsSnapshot::default()
        }
    }
}

/// One detector window tick off this instance's cumulative counters.
/// QUIC has no upstream timeouts/resets to watch, so the signal set is
/// connect volume and refusals — a connect flood arms [`ProtectionMode`]
/// via `ConnectFlood`, a refusal spike via `RefusedStorm`.
fn protection_tick(detector: &StormDetector, stats: &QuicStats, generation: u32) {
    let refusals = stats.load_shed.get() + stats.admit_rejected.get();
    let totals = StormSignals {
        connects: stats.flows_opened.get() + refusals,
        timeouts: 0,
        refusals,
        resets: 0,
    };
    let now_ms = stats.telemetry.clock().now_ms();
    match detector.observe(totals, now_ms, &stats.protection) {
        Some(ProtectionTransition::Armed(reason)) => {
            stats.protection_armed.bump();
            stats
                .telemetry
                .event(ReleasePhase::ProtectionArmed, generation as u64, reason.name());
        }
        Some(ProtectionTransition::Disarmed) => {
            stats.protection_disarmed.bump();
            stats.telemetry.event(
                ReleasePhase::ProtectionDisarmed,
                generation as u64,
                "stable windows reached",
            );
        }
        Some(ProtectionTransition::Cooling) | None => {}
    }
}

/// Per-flow state: packets seen, the client's last address (the close
/// datagram's destination at the deadline), and the flow's registration
/// with the service layer's connection tracker.
#[derive(Debug)]
struct FlowEntry {
    seen: u64,
    from: SocketAddr,
    guard: ConnGuard,
}

/// The echo application: per-flow state keyed by connection ID.
#[derive(Debug, Default)]
struct FlowTable {
    flows: Mutex<HashMap<ConnectionId, FlowEntry>>,
}

impl FlowTable {
    fn open(&self, cid: ConnectionId, from: SocketAddr, guard: ConnGuard) {
        self.flows.lock().insert(
            cid,
            FlowEntry {
                seen: 0,
                from,
                guard,
            },
        );
    }

    fn touch(&self, cid: ConnectionId, from: SocketAddr) -> Option<u64> {
        let mut flows = self.flows.lock();
        let entry = flows.get_mut(&cid)?;
        entry.seen += 1;
        entry.from = from;
        Some(entry.seen)
    }

    /// Takes every surviving flow out of the table (for the deadline
    /// close-out).
    fn drain_all(&self) -> Vec<(ConnectionId, SocketAddr, ConnGuard)> {
        self.flows
            .lock()
            .drain()
            .map(|(cid, e)| (cid, e.from, e.guard))
            .collect()
    }
}

/// QUIC has no header channel, so trace context is *echoed*: a payload
/// opening with `trace:<wire-context>` carries the client's sampled
/// context, the echo reply returns it verbatim, and the instance records
/// a [`SpanKind::QuicDelivery`] span under it — tagged with this
/// instance's generation, so a flow served across a takeover shows both.
fn payload_trace(payload: &[u8]) -> Option<(u64, u64)> {
    let text = std::str::from_utf8(payload).ok()?;
    let wire = text.strip_prefix("trace:")?.split_whitespace().next()?;
    let ctx = TraceContext::parse(wire)?;
    ctx.sampled.then_some((ctx.trace_id, ctx.span_id))
}

/// Records the delivery span for one served datagram (shared by the VIP
/// serve path and the post-takeover drain path).
fn record_delivery(stats: &QuicStats, payload: &[u8], start_us: u64, detail: String) {
    let Some(active) = stats.telemetry.tracer.begin(payload_trace(payload)) else {
        return;
    };
    stats.telemetry.tracer.root_span(
        active,
        SpanKind::QuicDelivery,
        start_us,
        stats.telemetry.clock().now_us(),
        detail,
    );
}

async fn serve_deliveries(
    socket: Arc<UdpSocket>,
    mut rx: tokio::sync::mpsc::Receiver<Delivery>,
    table: Arc<FlowTable>,
    stats: Arc<QuicStats>,
    state: Arc<DrainState>,
    shed: Arc<LoadShedGate>,
    admission: Arc<SlidingWindowLimiter>,
    detector: Arc<StormDetector>,
    generation: u32,
) {
    while let Some(d) = rx.recv().await {
        let start_us = stats.telemetry.clock().now_us();
        let cid = d.datagram.cid;
        if d.datagram.packet_type == PacketType::Initial {
            // Admission runs ahead of the shed gate: a single client
            // hammering Initials is refused per-client before the
            // instance-wide overload gate even looks. Same wire refusal
            // (CONNECTION_CLOSE on the client's own CID), distinct
            // counter so the auditor attributes the disruption.
            protection_tick(&detector, &stats, generation);
            let tightened = state.is_draining() || stats.protection.engaged();
            let now_ms = stats.telemetry.clock().now_ms();
            match admission.check(client_key(&d.from.ip()), now_ms, tightened) {
                AdmitDecision::Admitted => {}
                AdmitDecision::FailOpen => {
                    stats.admit_fail_open.bump();
                }
                AdmitDecision::Rejected => {
                    stats.admit_rejected.bump();
                    let _ = socket.send_to(&quic_close_datagram(cid), d.from).await;
                    continue;
                }
            }
            // Overload gate: refuse the flow before any state is created.
            // The CONNECTION_CLOSE echoes the client's own CID, so the
            // client gives up immediately instead of retransmitting.
            if shed.should_shed(state.tracker().active()) {
                stats.load_shed.bump();
                let _ = socket.send_to(&quic_close_datagram(cid), d.from).await;
                continue;
            }
            // New flows always belong to the serving instance; re-mint the
            // CID at our generation so subsequent packets route to us.
            let local_cid = ConnectionId::new(generation, cid.random);
            table.open(local_cid, d.from, state.register());
            stats.flows_opened.bump();
            let reply = Datagram::one_rtt(local_cid, 0, d.datagram.payload.clone());
            if let Ok(wire) = quic::encode(&reply) {
                let _ = socket.send_to(&wire, d.from).await;
            }
            record_delivery(
                &stats,
                &d.datagram.payload,
                start_us,
                format!("initial gen={generation}"),
            );
            stats
                .telemetry
                .request_latency_us
                .record(stats.telemetry.clock().now_us().saturating_sub(start_us));
            continue;
        }
        match table.touch(cid, d.from) {
            Some(seen) => {
                stats.served.bump();
                let mut payload = b"echo:".to_vec();
                payload.extend_from_slice(&d.datagram.payload);
                let reply = Datagram::one_rtt(cid, seen, payload);
                if let Ok(wire) = quic::encode(&reply) {
                    let _ = socket.send_to(&wire, d.from).await;
                }
                record_delivery(
                    &stats,
                    &d.datagram.payload,
                    start_us,
                    format!("gen={generation} seen={seen}"),
                );
                stats
                    .telemetry
                    .request_latency_us
                    .record(stats.telemetry.clock().now_us().saturating_sub(start_us));
            }
            None => {
                // A datagram for a flow we don't know: the §4.1 disruption.
                stats.unknown_flow.bump();
            }
        }
    }
}

/// A live QUIC-service instance. Derefs to [`ServiceHandle`], so flows
/// are tracked and drained by the same machinery as every TCP service.
#[derive(Debug)]
pub struct QuicInstance {
    /// The unified service lifecycle (addr = VIP, drain, tracking).
    pub service: ServiceHandle,
    /// This instance's takeover generation.
    pub generation: u32,
    /// The UDP VIP.
    pub vip: SocketAddr,
    /// Flow-service counters.
    pub stats: Arc<QuicStats>,
    config: QuicInstanceConfig,
    table: Arc<FlowTable>,
    /// Hot drain deadline: starts at `config.drain_ms`, rewritable by a
    /// config reload without restarting.
    drain_ms: Arc<AtomicU64>,
    /// Shared gate handles (also captured by the per-socket serve tasks),
    /// kept on the instance so a config reload can re-arm them in place.
    shed: Arc<LoadShedGate>,
    admission: Arc<SlidingWindowLimiter>,
    detector: Arc<StormDetector>,
    /// Pristine socket clones reserved for the next handover.
    handover_sockets: Vec<std::net::UdpSocket>,
}

impl std::ops::Deref for QuicInstance {
    type Target = ServiceHandle;
    fn deref(&self) -> &ServiceHandle {
        &self.service
    }
}

impl QuicInstance {
    /// First boot: bind the VIP group fresh at generation 0.
    pub async fn bind_fresh(
        addr: SocketAddr,
        config: QuicInstanceConfig,
    ) -> zdr_net::Result<QuicInstance> {
        let group = bind_udp_reuseport_group(addr, config.sockets)?;
        Self::from_sockets(group, 0, None, config)
    }

    /// Successor boot: receive the socket group from the running instance.
    pub async fn takeover_from(config: QuicInstanceConfig) -> zdr_net::Result<QuicInstance> {
        let path = config.takeover_path.clone();
        let pending =
            tokio::task::spawn_blocking(move || request_takeover(&path, Duration::from_secs(30)))
                .await
                .map_err(|e| join_err("takeover request", e))??;
        let info = pending.result.info.clone();
        let vips = pending.result.inventory.unclaimed();
        let [vip] = vips.as_slice() else {
            pending.abort("expected exactly one UDP VIP")?;
            return Err(zdr_net::NetError::Inventory(format!(
                "expected one VIP, got {}",
                vips.len()
            )));
        };
        let vip_addr = vip.addr;
        let mut result = tokio::task::spawn_blocking(move || pending.confirm())
            .await
            .map_err(|e| join_err("confirm", e))??;
        let group = result.inventory.claim_udp_group(vip_addr)?;
        result.inventory.finish()?;
        Self::from_sockets(group, info.generation + 1, info.udp_router_addr, config)
    }

    fn from_sockets(
        group: Vec<std::net::UdpSocket>,
        generation: u32,
        old_process_addr: Option<SocketAddr>,
        config: QuicInstanceConfig,
    ) -> zdr_net::Result<QuicInstance> {
        let vip = group[0].local_addr()?;
        let stats = Arc::new(QuicStats::default());
        let table = Arc::new(FlowTable::default());
        let state = DrainState::new(QuicCloseSignal);
        let shed = Arc::new(LoadShedGate::new(config.shed));
        let admission = Arc::new(SlidingWindowLimiter::new(config.admission));
        let detector = Arc::new(StormDetector::new(config.protection));
        let mut handover_sockets = Vec::with_capacity(group.len());
        let mut tasks = Vec::new();

        for sock in group {
            handover_sockets.push(sock.try_clone()?);
            sock.set_nonblocking(true)?;
            let router = UdpRouter::new(UdpSocket::from_std(sock)?, generation, old_process_addr);
            let socket = router.socket();
            let (tx, rx) = tokio::sync::mpsc::channel(1024);
            tasks.push(tokio::spawn(async move {
                let _ = router.run(tx).await;
            }));
            tasks.push(tokio::spawn(serve_deliveries(
                socket,
                rx,
                Arc::clone(&table),
                Arc::clone(&stats),
                Arc::clone(&state),
                Arc::clone(&shed),
                Arc::clone(&admission),
                Arc::clone(&detector),
                generation,
            )));
        }

        let drain_ms = Arc::new(AtomicU64::new(config.drain_ms));
        Ok(QuicInstance {
            service: ServiceHandle::new(vip, state, tasks)
                .with_telemetry(Arc::clone(&stats.telemetry), generation as u64),
            generation,
            vip,
            stats,
            config,
            table,
            drain_ms,
            shed,
            admission,
            detector,
            handover_sockets,
        })
    }

    /// The drain hard deadline currently in force (hot-reloadable).
    pub fn drain_ms(&self) -> u64 {
        // Relaxed: advisory tuning; old or new value are both valid.
        self.drain_ms.load(Ordering::Relaxed)
    }

    /// Applies a hot config snapshot: re-arms the shed / admission /
    /// storm-protection gates in place and moves the drain deadline,
    /// without dropping a single flow.
    pub fn apply_config(&self, cfg: &ZdrConfig, epoch: u64) {
        apply_quic_config_parts(
            &self.shed,
            &self.admission,
            &self.detector,
            &self.drain_ms,
            &self.stats.telemetry,
            u64::from(self.generation),
            cfg,
            epoch,
        );
    }

    /// A subscriber for [`zdr_core::config::ConfigStore::subscribe`] that
    /// keeps applying snapshots to this instance's live gates even after
    /// the instance moves into [`QuicInstance::serve_one_takeover`].
    pub fn config_applier(&self) -> Arc<dyn Fn(&ZdrConfig, u64) + Send + Sync> {
        let shed = Arc::clone(&self.shed);
        let admission = Arc::clone(&self.admission);
        let detector = Arc::clone(&self.detector);
        let drain_ms = Arc::clone(&self.drain_ms);
        let telemetry = Arc::clone(&self.stats.telemetry);
        let generation = u64::from(self.generation);
        Arc::new(move |cfg, epoch| {
            apply_quic_config_parts(
                &shed, &admission, &detector, &drain_ms, &telemetry, generation, cfg, epoch,
            );
        })
    }

    /// This instance's counters plus flow tracking as one merged snapshot.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot().merged(&self.tracker().snapshot())
    }

    /// Parks a takeover server, serves one handover, then keeps serving
    /// this instance's flows from a host-local drain socket until the
    /// drain hard deadline; at the deadline every surviving flow gets a
    /// CONNECTION_CLOSE. Resolves when draining completes.
    pub async fn serve_one_takeover(mut self) -> zdr_net::Result<DrainedQuic> {
        // The drain socket must exist before the offer so its address can
        // ride in the HandoffInfo.
        let drain_socket = UdpSocket::bind("127.0.0.1:0")
            .await
            .map_err(zdr_net::NetError::Io)?;
        let drain_addr = drain_socket.local_addr()?;

        let server = TakeoverServer::bind(&self.config.takeover_path)?;
        let mut inventory = ListenerInventory::new();
        inventory.add_udp_group(self.vip, std::mem::take(&mut self.handover_sockets));
        let info = HandoffInfo {
            generation: self.generation,
            udp_router_addr: Some(drain_addr),
            drain_deadline_ms: self.drain_ms(),
        };
        tokio::task::spawn_blocking(move || {
            server.serve_once(&inventory, info, Duration::from_secs(60))
        })
        .await
        .map_err(|e| join_err("takeover server", e))??;

        // Successor owns the VIP; our routers now see no packets (the
        // kernel still delivers to the shared ring, but the successor's
        // reads win). Enter the unified drain: VIP tasks stop, the force
        // timer arms the hard deadline.
        let mut force = self.service.state().force_watch();
        // Re-read the hot deadline at drain time: a reload that landed
        // mid-handshake still governs this drain.
        self.service
            .drain_with_deadline(Duration::from_millis(self.drain_ms()));

        // Serve forwarded packets from the drain socket until the deadline.
        let socket = Arc::new(drain_socket);
        let mut buf = vec![0u8; 64 * 1024];
        let mut served_during_drain = 0u64;
        loop {
            tokio::select! {
                _ = DrainState::force_signal(&mut force) => break,
                recv = socket.recv_from(&mut buf) => {
                    let Ok((n, _)) = recv else { break };
                    // Forwards arrive encapsulated with the true client
                    // address (the UDP source is the successor's VIP
                    // socket).
                    let Some((from, inner)) = zdr_net::udp_router::decapsulate(&buf[..n]) else {
                        continue;
                    };
                    let Ok(datagram) = quic::decode(inner) else {
                        continue;
                    };
                    if let Some(seen) = self.table.touch(datagram.cid, from) {
                        let start_us = self.stats.telemetry.clock().now_us();
                        self.stats.served.bump();
                        served_during_drain += 1;
                        let mut payload = b"echo:".to_vec();
                        payload.extend_from_slice(&datagram.payload);
                        let reply = Datagram::one_rtt(datagram.cid, seen, payload);
                        if let Ok(wire) = quic::encode(&reply) {
                            let _ = socket.send_to(&wire, from).await;
                        }
                        record_delivery(
                            &self.stats,
                            &datagram.payload,
                            start_us,
                            format!("drain gen={} seen={seen}", self.generation),
                        );
                    } else {
                        self.stats.unknown_flow.bump();
                    }
                }
            }
        }

        // Hard deadline: QUIC's close signal is a CONNECTION_CLOSE per
        // surviving flow, sent to the flow's last known address.
        let kind = self.service.state().close_kind();
        for (cid, from, mut guard) in self.table.drain_all() {
            let _ = socket.send_to(&quic_close_datagram(cid), from).await;
            guard.mark_forced(kind);
        }

        Ok(DrainedQuic {
            generation: self.generation,
            stats: Arc::clone(&self.stats),
            served_during_drain,
            snapshot: self.stats_snapshot(),
        })
    }
}

/// Shared body of [`QuicInstance::apply_config`] and the detached applier
/// closure from [`QuicInstance::config_applier`].
fn apply_quic_config_parts(
    shed: &LoadShedGate,
    admission: &SlidingWindowLimiter,
    detector: &StormDetector,
    drain_ms: &AtomicU64,
    telemetry: &Telemetry,
    generation: u64,
    cfg: &ZdrConfig,
    epoch: u64,
) {
    shed.set_max_active(cfg.shed.max_active);
    shed.set_queue_delay_max(Duration::from_millis(cfg.shed.queue_delay_max_ms));
    admission.apply(&cfg.admission);
    detector.apply(&cfg.protection);
    // Relaxed: advisory tuning (see QuicInstance::drain_ms).
    drain_ms.store(cfg.drain.drain_ms, Ordering::Relaxed);
    telemetry.event(
        ReleasePhase::ConfigApplied,
        generation,
        format!("epoch={epoch}"),
    );
}

/// The retired instance after its drain completed.
#[derive(Debug)]
pub struct DrainedQuic {
    /// Generation that retired.
    pub generation: u32,
    /// Its final counters.
    pub stats: Arc<QuicStats>,
    /// Datagrams it served via user-space routing while draining.
    pub served_during_drain: u64,
    /// Final merged counters + flow-tracking view.
    pub snapshot: StatsSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "zdr-quic-{tag}-{}-{:x}.sock",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ))
    }

    fn config(tag: &str) -> QuicInstanceConfig {
        QuicInstanceConfig {
            takeover_path: tmp_path(tag),
            sockets: 2,
            drain_ms: 1_500,
            shed: ShedConfig::default(),
            admission: AdmissionConfig::default(),
            protection: ProtectionConfig::default(),
        }
    }

    /// A client flow: opens with Initial, remembers the server-minted CID.
    struct FlowClient {
        socket: UdpSocket,
        cid: ConnectionId,
        next_pn: u64,
    }

    impl FlowClient {
        async fn open(vip: SocketAddr, random: u64) -> FlowClient {
            let socket = UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let hello = Datagram::initial(ConnectionId::new(0, random), &b"hello"[..]);
            socket
                .send_to(&quic::encode(&hello).unwrap(), vip)
                .await
                .unwrap();
            let mut buf = [0u8; 2048];
            let (n, _) = tokio::time::timeout(Duration::from_secs(5), socket.recv_from(&mut buf))
                .await
                .expect("open timeout")
                .unwrap();
            let reply = quic::decode(&buf[..n]).unwrap();
            FlowClient {
                socket,
                cid: reply.cid,
                next_pn: 1,
            }
        }

        async fn echo(&mut self, vip: SocketAddr, payload: &[u8]) -> Option<Vec<u8>> {
            let d = Datagram::one_rtt(self.cid, self.next_pn, payload.to_vec());
            self.next_pn += 1;
            self.socket
                .send_to(&quic::encode(&d).unwrap(), vip)
                .await
                .unwrap();
            let mut buf = [0u8; 2048];
            let (n, _) =
                tokio::time::timeout(Duration::from_secs(5), self.socket.recv_from(&mut buf))
                    .await
                    .ok()?
                    .ok()?;
            Some(quic::decode(&buf[..n]).unwrap().payload.to_vec())
        }

        /// Receives one datagram (e.g. an expected CONNECTION_CLOSE).
        async fn recv(&mut self) -> Datagram {
            let mut buf = [0u8; 2048];
            let (n, _) =
                tokio::time::timeout(Duration::from_secs(5), self.socket.recv_from(&mut buf))
                    .await
                    .expect("recv timeout")
                    .unwrap();
            quic::decode(&buf[..n]).unwrap()
        }
    }

    #[tokio::test]
    async fn echo_service_works_fresh() {
        let instance = QuicInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), config("fresh"))
            .await
            .unwrap();
        let vip = instance.vip;
        let mut flow = FlowClient::open(vip, 7).await;
        assert_eq!(flow.cid.generation, 0);
        let reply = flow.echo(vip, b"ping").await.expect("echo");
        assert_eq!(reply, b"echo:ping");
        assert_eq!(instance.stats.unknown_flow.get(), 0);
        // The flow is tracked by the unified service layer.
        assert_eq!(instance.active_connections(), 1);
    }

    #[tokio::test]
    async fn flows_survive_takeover_via_user_space_routing() {
        let cfg = config("survive");
        let old = QuicInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
            .await
            .unwrap();
        let vip = old.vip;

        // Establish two generation-0 flows.
        let mut flow_a = FlowClient::open(vip, 1).await;
        let mut flow_b = FlowClient::open(vip, 2).await;
        assert_eq!(flow_a.echo(vip, b"pre").await.unwrap(), b"echo:pre");

        // Release: successor takes the socket group over.
        let old_task = tokio::spawn(old.serve_one_takeover());
        tokio::time::sleep(Duration::from_millis(50)).await;
        let new = QuicInstance::takeover_from(cfg).await.unwrap();
        assert_eq!(new.generation, 1);
        assert_eq!(new.vip, vip);

        // Old flows keep working THROUGH the new process (user-space
        // routed to the draining instance).
        assert_eq!(flow_a.echo(vip, b"mid").await.unwrap(), b"echo:mid");
        assert_eq!(flow_b.echo(vip, b"mid2").await.unwrap(), b"echo:mid2");

        // New flows land on the new instance at generation 1.
        let mut flow_c = FlowClient::open(vip, 3).await;
        assert_eq!(flow_c.cid.generation, 1);
        assert_eq!(flow_c.echo(vip, b"new").await.unwrap(), b"echo:new");

        let drained = old_task.await.unwrap().unwrap();
        assert!(
            drained.served_during_drain >= 2,
            "old flows served while draining"
        );
        assert_eq!(drained.stats.unknown_flow.get(), 0);
        assert_eq!(new.stats.unknown_flow.get(), 0, "zero misrouting");
        // The retired generation's snapshot accounts its flows: both
        // outlived the drain and were force-closed with CONNECTION_CLOSE.
        assert_eq!(drained.snapshot.quic_flows_opened, 2);
        assert_eq!(drained.snapshot.forced_quic_closes, 2);
        assert_eq!(drained.snapshot.active_connections, 0);
    }

    #[tokio::test]
    async fn old_flows_get_connection_close_at_drain_deadline() {
        let cfg = QuicInstanceConfig {
            drain_ms: 300,
            ..config("deadline")
        };
        let old = QuicInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
            .await
            .unwrap();
        let vip = old.vip;
        let mut flow = FlowClient::open(vip, 9).await;

        let old_task = tokio::spawn(old.serve_one_takeover());
        tokio::time::sleep(Duration::from_millis(50)).await;
        let _new = QuicInstance::takeover_from(cfg).await.unwrap();
        let drained = old_task.await.unwrap().unwrap();

        // The drain window has passed; the surviving flow was told
        // explicitly with a CONNECTION_CLOSE (so the client reconnects
        // instead of retransmitting into silence)…
        let close = flow.recv().await;
        assert_eq!(close.packet_type, PacketType::Close);
        assert_eq!(close.cid, flow.cid);
        assert_eq!(drained.snapshot.forced_quic_closes, 1);

        // …and the old process is gone: further echoes get no reply — the
        // bounded residual disruption the paper accepts for flows
        // outliving the drain.
        assert_eq!(flow.echo(vip, b"too-late").await, None);
    }

    #[tokio::test]
    async fn overloaded_instance_sheds_new_flows_with_connection_close() {
        let cfg = QuicInstanceConfig {
            shed: ShedConfig {
                max_active: 1,
                ..Default::default()
            },
            ..config("shed")
        };
        let instance = QuicInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg)
            .await
            .unwrap();
        let vip = instance.vip;

        // First flow occupies the only admitted slot.
        let mut flow = FlowClient::open(vip, 1).await;
        assert_eq!(instance.active_connections(), 1);

        // A second Initial is refused with CONNECTION_CLOSE on the
        // client's own CID, before any flow state is created.
        let socket = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let cid = ConnectionId::new(0, 2);
        let hello = Datagram::initial(cid, &b"hello"[..]);
        socket
            .send_to(&quic::encode(&hello).unwrap(), vip)
            .await
            .unwrap();
        let mut buf = [0u8; 2048];
        let (n, _) = tokio::time::timeout(Duration::from_secs(5), socket.recv_from(&mut buf))
            .await
            .expect("shed reply timeout")
            .unwrap();
        let reply = quic::decode(&buf[..n]).unwrap();
        assert_eq!(reply.packet_type, PacketType::Close);
        assert_eq!(reply.cid, cid);
        assert_eq!(instance.stats.load_shed.get(), 1);
        assert_eq!(instance.active_connections(), 1, "no state for shed flow");

        // The admitted flow is unaffected.
        assert_eq!(flow.echo(vip, b"still").await.unwrap(), b"echo:still");
    }

    #[tokio::test]
    async fn apply_config_rearms_gates_without_dropping_flows() {
        let instance = QuicInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), config("hot"))
            .await
            .unwrap();
        let vip = instance.vip;
        assert_eq!(instance.drain_ms(), 1_500);

        // One admitted flow under the boot config (shed disabled).
        let mut flow = FlowClient::open(vip, 1).await;
        assert_eq!(instance.active_connections(), 1);

        // Hot reload: cap active flows at 1, shorten the drain window —
        // via the detached applier, the shape the ConfigStore subscriber
        // uses.
        let applier = instance.config_applier();
        let mut cfg = ZdrConfig::default();
        cfg.shed.max_active = 1;
        cfg.drain.drain_ms = 250;
        applier(&cfg, 3);
        assert_eq!(instance.drain_ms(), 250);

        // The very next Initial is refused by the reloaded shed limit.
        let socket = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let cid = ConnectionId::new(0, 2);
        let hello = Datagram::initial(cid, &b"hello"[..]);
        socket
            .send_to(&quic::encode(&hello).unwrap(), vip)
            .await
            .unwrap();
        let mut buf = [0u8; 2048];
        let (n, _) = tokio::time::timeout(Duration::from_secs(5), socket.recv_from(&mut buf))
            .await
            .expect("shed reply timeout")
            .unwrap();
        let reply = quic::decode(&buf[..n]).unwrap();
        assert_eq!(reply.packet_type, PacketType::Close);
        assert_eq!(instance.stats.load_shed.get(), 1);

        // The established flow never noticed the reload.
        assert_eq!(flow.echo(vip, b"still").await.unwrap(), b"echo:still");
        assert_eq!(instance.forced_closes(), 0);

        let tl = instance.stats.telemetry.timeline.snapshot();
        assert!(
            tl.events
                .iter()
                .any(|e| e.phase == ReleasePhase::ConfigApplied && e.detail.contains("epoch=3")),
            "{tl:?}"
        );
    }

    #[tokio::test]
    async fn trace_context_in_payload_is_echoed_and_recorded() {
        let instance = QuicInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), config("trace"))
            .await
            .unwrap();
        let vip = instance.vip;
        let mut flow = FlowClient::open(vip, 4).await;

        // Sampling is off (the default): only the client's own context
        // produces spans, exactly like an adopted x-zdr-trace header.
        let wire = TraceContext::sampled(0xABCD, 0x17).header_value();
        let payload = format!("trace:{wire} hello");
        let reply = flow.echo(vip, payload.as_bytes()).await.expect("echo");
        // The context is echoed back to the client verbatim.
        assert_eq!(reply, format!("echo:{payload}").as_bytes());

        let snap = instance.stats.telemetry.tracer.snapshot();
        let span = snap
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::QuicDelivery)
            .expect("delivery span");
        assert_eq!(span.trace_id, 0xABCD);
        assert_eq!(span.parent_id, 0x17, "parented under the client's span");
        assert_eq!(span.generation, 0);

        // A plain payload with sampling off records nothing further.
        flow.echo(vip, b"plain").await.expect("echo");
        assert_eq!(instance.stats.telemetry.tracer.snapshot().spans.len(), 1);
    }

    #[tokio::test]
    async fn admission_refuses_per_client_floods_ahead_of_shed_gate() {
        let cfg = QuicInstanceConfig {
            admission: AdmissionConfig {
                rate_per_window: 1,
                window_ms: 60_000,
                ..AdmissionConfig::default()
            },
            ..config("admit")
        };
        let instance = QuicInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg)
            .await
            .unwrap();
        let vip = instance.vip;

        // First Initial from this client IP consumes the window budget.
        let mut flow = FlowClient::open(vip, 1).await;

        // The second Initial (same IP — all test clients are 127.0.0.1)
        // is refused by admission: CONNECTION_CLOSE on the client's own
        // CID, and the refusal lands on admit_rejected, NOT load_shed.
        let socket = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let cid = ConnectionId::new(0, 2);
        let hello = Datagram::initial(cid, &b"hello"[..]);
        socket
            .send_to(&quic::encode(&hello).unwrap(), vip)
            .await
            .unwrap();
        let mut buf = [0u8; 2048];
        let (n, _) = tokio::time::timeout(Duration::from_secs(5), socket.recv_from(&mut buf))
            .await
            .expect("admit reply timeout")
            .unwrap();
        let reply = quic::decode(&buf[..n]).unwrap();
        assert_eq!(reply.packet_type, PacketType::Close);
        assert_eq!(reply.cid, cid);
        assert_eq!(instance.stats.admit_rejected.get(), 1);
        assert_eq!(instance.stats.load_shed.get(), 0, "distinct attribution");
        assert_eq!(instance.active_connections(), 1, "no state for refused flow");

        // The admitted flow is unaffected, and the refusal rides the
        // unified snapshot.
        assert_eq!(flow.echo(vip, b"still").await.unwrap(), b"echo:still");
        assert_eq!(instance.stats.snapshot().admit_rejected, 1);
    }
}

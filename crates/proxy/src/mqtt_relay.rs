//! MQTT relaying through Edge and Origin, with Downstream Connection Reuse.
//!
//! Topology (§2.2): `client ↔ Edge ↔ Origin ↔ broker`. The Edge terminates
//! the user's TCP; Edge↔Origin tunnels ride the long-lived trunk; the
//! Origin merely relays bytes between the tunnel and the user's broker —
//! *"as long as the two are connected, it does not matter which Proxygen
//! relayed the packets"* (§4.2).
//!
//! Trunk framing: we carry each tunnel on its own TCP connection with
//! `[kind:u8][len:u32][payload]` frames — `kind 0` is opaque MQTT bytes,
//! `kind 1` is a DCR control message (shared helpers in
//! [`crate::mqtt_common`]). (The production system multiplexes tunnels
//! over HTTP/2; per-tunnel framed TCP preserves the same control surface —
//! in-band DCR signaling plus graceful teardown — without the mux.
//! DESIGN.md records the substitution.)
//!
//! The DCR workflow (Fig. 6) as implemented:
//!
//! 1. Origin enters draining → sends `reconnect_solicitation` on every
//!    tunnel (step A), then **keeps relaying**.
//! 2. Edge picks a *different* healthy Origin, opens a new tunnel, and
//!    sends `re_connect(user-id)` (step B1).
//! 3. The new Origin locates the user's broker by consistent-hashing the
//!    user-id and forwards the `re_connect` (step B2).
//! 4. The broker matches its session context and answers `connect_ack`
//!    (steps C1–C2); the new Origin relays the verdict to the Edge.
//! 5. On ack, the Edge atomically swaps the tunnel; the end-user
//!    connection is never touched. On refuse, the Edge drops the client,
//!    which reconnects organically.
//!
//! Lifecycle (drain signal, hard deadline, forced-close accounting) comes
//! from the unified [`crate::service`] layer; at the deadline both relays
//! deliver the MQTT close signal — a DISCONNECT packet — before closing.

use std::net::SocketAddr;
use std::ops::Deref;
use std::sync::Arc;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

use zdr_core::clock::unix_now_ms;
use zdr_core::config::ZdrConfig;
use zdr_core::sync::{AtomicU64, Ordering};
use zdr_core::telemetry::ReleasePhase;
use zdr_core::trace::{ActiveTrace, SpanKind};
use zdr_proto::dcr::{self, DcrMessage, UserId};
use zdr_proto::deadline::Deadline;
use zdr_proto::mqtt::StreamDecoder;

use crate::conn_tracker::ConnGuard;
use crate::mqtt_common::{
    connect_ranked_broker, read_frame, sniff_connect_user, write_frame, KIND_DATA, KIND_DCR,
    TUNNEL_CONNECT_BUDGET,
};
use crate::resilience::{Resilience, ResilienceConfig};
use crate::service::{DrainState, MqttCloseSignal, ServiceHandle};
use crate::stats::ProxyStats;

pub use crate::mqtt_common::broker_for_user;
pub use crate::stats::EdgeDcrStats;

// ---------------------------------------------------------------------
// Origin relay
// ---------------------------------------------------------------------

/// Handle to a running Origin relay. Derefs to [`ServiceHandle`] for the
/// unified lifecycle: [`ServiceHandle::drain`] begins the DCR restart flow
/// (solicit every tunnel to re-home, stop accepting, keep relaying).
#[derive(Debug)]
pub struct OriginHandle {
    /// The unified service lifecycle (addr, drain, deadline, tracking).
    pub service: ServiceHandle,
    /// Instance id carried in solicitations.
    pub origin_id: u32,
    /// Live counters.
    pub stats: Arc<ProxyStats>,
    /// Broker-side resilience: per-broker breakers + shared retry budget.
    pub resilience: Arc<Resilience>,
    /// Hot drain deadline advertised in DCR solicitations, rewritable by
    /// a config reload without restarting the relay.
    drain_deadline: Arc<AtomicU64>,
}

impl Deref for OriginHandle {
    type Target = ServiceHandle;
    fn deref(&self) -> &ServiceHandle {
        &self.service
    }
}

impl OriginHandle {
    /// The drain deadline (ms) currently advertised to Edges.
    pub fn drain_deadline_ms(&self) -> u64 {
        // Relaxed: advisory tuning; old or new value are both valid.
        self.drain_deadline.load(Ordering::Relaxed)
    }

    /// Applies a hot config snapshot: re-arms the broker-side resilience
    /// layer in place and moves the advertised drain deadline, without
    /// touching any live tunnel.
    pub fn apply_config(&self, cfg: &ZdrConfig, epoch: u64) {
        self.resilience.apply(ResilienceConfig::from_zdr(cfg));
        self.drain_deadline
            .store(cfg.drain.drain_ms, Ordering::Relaxed);
        self.stats.telemetry.event(
            ReleasePhase::ConfigApplied,
            u64::from(self.origin_id),
            format!("epoch={epoch}"),
        );
    }

    /// A subscriber for [`zdr_core::config::ConfigStore::subscribe`]
    /// applying snapshots to this relay's live handles.
    pub fn config_applier(&self) -> Arc<dyn Fn(&ZdrConfig, u64) + Send + Sync> {
        let resilience = Arc::clone(&self.resilience);
        let drain_deadline = Arc::clone(&self.drain_deadline);
        let telemetry = Arc::clone(&self.stats.telemetry);
        let origin_id = u64::from(self.origin_id);
        Arc::new(move |cfg: &ZdrConfig, epoch: u64| {
            resilience.apply(ResilienceConfig::from_zdr(cfg));
            drain_deadline.store(cfg.drain.drain_ms, Ordering::Relaxed);
            telemetry.event(
                ReleasePhase::ConfigApplied,
                origin_id,
                format!("epoch={epoch}"),
            );
        })
    }
}

/// Spawns an Origin relay fronting `brokers` with default resilience.
pub async fn spawn_origin(
    addr: SocketAddr,
    origin_id: u32,
    brokers: Vec<SocketAddr>,
    drain_deadline_ms: u32,
) -> std::io::Result<OriginHandle> {
    spawn_origin_with(
        addr,
        origin_id,
        brokers,
        drain_deadline_ms,
        ResilienceConfig::default(),
    )
    .await
}

/// Spawns an Origin relay with explicit resilience tunables.
pub async fn spawn_origin_with(
    addr: SocketAddr,
    origin_id: u32,
    brokers: Vec<SocketAddr>,
    drain_deadline_ms: u32,
    resilience: ResilienceConfig,
) -> std::io::Result<OriginHandle> {
    let listener = TcpListener::bind(addr).await?;
    let addr = listener.local_addr()?;
    let stats = Arc::new(ProxyStats::default());
    let state = DrainState::new(MqttCloseSignal);
    let brokers = Arc::new(brokers);
    let resilience = Arc::new(Resilience::new(resilience));
    let drain_deadline = Arc::new(AtomicU64::new(u64::from(drain_deadline_ms)));

    let loop_stats = Arc::clone(&stats);
    let loop_state = Arc::clone(&state);
    let loop_resilience = Arc::clone(&resilience);
    let loop_deadline = Arc::clone(&drain_deadline);
    let accept_task = tokio::spawn(async move {
        while let Ok((stream, _)) = listener.accept().await {
            let stats = Arc::clone(&loop_stats);
            let brokers = Arc::clone(&brokers);
            let state = Arc::clone(&loop_state);
            let resilience = Arc::clone(&loop_resilience);
            // Loaded per accept so a hot reload governs every tunnel
            // established after it. Saturating: the wire field is u32.
            let drain_deadline_ms =
                u32::try_from(loop_deadline.load(Ordering::Relaxed)).unwrap_or(u32::MAX);
            let guard = state.register();
            tokio::spawn(async move {
                let _ = origin_tunnel(
                    stream,
                    origin_id,
                    &brokers,
                    &resilience,
                    stats,
                    state,
                    guard,
                    drain_deadline_ms,
                )
                .await;
            });
        }
    });

    Ok(OriginHandle {
        service: ServiceHandle::new(addr, state, vec![accept_task])
            .with_telemetry(Arc::clone(&stats.telemetry), u64::from(origin_id)),
        origin_id,
        stats,
        resilience,
        drain_deadline,
    })
}

/// Handles one Edge↔Origin tunnel on the Origin side.
// ALLOW: the tunnel needs the whole per-origin context (broker set,
// breaker, stats, drain state, conn guard); bundling it into a struct
// would be a one-caller indirection.
#[allow(clippy::too_many_arguments)]
async fn origin_tunnel(
    mut edge: TcpStream,
    origin_id: u32,
    brokers: &[SocketAddr],
    resilience: &Resilience,
    stats: Arc<ProxyStats>,
    state: Arc<DrainState>,
    mut guard: ConnGuard,
    drain_deadline_ms: u32,
) -> std::io::Result<()> {
    let mut drain = state.drain_watch();
    let mut force = state.force_watch();

    // Establishment deadline: the Edge's propagated deadline (a DCR
    // `deadline` control frame, when present) ∧ our own budget ∧ any armed
    // drain hard deadline.
    let mut deadline = Deadline::after(unix_now_ms(), TUNNEL_CONNECT_BUDGET);
    if let Some(d) = state.force_deadline() {
        deadline = deadline.clamp_to(d);
    }

    // First frame decides the mode: data (fresh tunnel, starts with the
    // client's CONNECT) or DCR re_connect (re-homing an existing session).
    // A DCR preamble — `deadline` and/or `trace` frames, in either order —
    // may precede either, exactly mirroring the HTTP headers.
    let tunnel_start_us = stats.telemetry.clock().now_us();
    let mut incoming: Option<(u64, u64)> = None;
    let Some((mut kind, mut payload)) = read_frame(&mut edge).await? else {
        return Ok(());
    };
    while kind == KIND_DCR {
        match dcr::decode(&payload) {
            Ok((DcrMessage::Deadline { unix_ms }, _)) => {
                deadline = deadline.clamp_to(Deadline::at_unix_ms(unix_ms));
            }
            Ok((
                DcrMessage::Trace {
                    trace_id,
                    span_id,
                    sampled,
                },
                _,
            )) => {
                if sampled {
                    incoming = Some((trace_id, span_id));
                }
            }
            _ => break, // the mode frame (re_connect) — handled below
        }
        let Some((k, p)) = read_frame(&mut edge).await? else {
            return Ok(());
        };
        kind = k;
        payload = p;
    }
    let trace = stats.telemetry.tracer.begin(incoming);
    // Closes out this hop's span (parented under the Edge's tunnel span
    // when one rode the preamble) on every establishment outcome, so the
    // tree stays connected even when the broker refuses.
    let record_tunnel = |detail: String| {
        if let Some(active) = trace {
            stats.telemetry.tracer.root_span(
                active,
                SpanKind::Tunnel,
                tunnel_start_us,
                stats.telemetry.clock().now_us(),
                detail,
            );
        }
    };

    let mut broker_conn: TcpStream;
    let mode;

    match kind {
        KIND_DCR => {
            let Ok((DcrMessage::ReConnect { user_id }, _)) = dcr::decode(&payload) else {
                return Ok(());
            };
            mode = "re_connect";
            let connect_start_us = stats.telemetry.clock().now_us();
            let connected =
                connect_ranked_broker(user_id, brokers, resilience, &stats, deadline).await;
            if let Some(active) = trace {
                stats.telemetry.tracer.child_span(
                    active,
                    SpanKind::UpstreamConnect,
                    connect_start_us,
                    stats.telemetry.clock().now_us(),
                    format!("broker connected={}", connected.is_some()),
                );
            }
            let Some((conn, _)) = connected else {
                record_tunnel(format!("origin={origin_id} mode=re_connect no_broker"));
                let refuse = dcr::encode(&DcrMessage::ConnectRefuse { user_id });
                return write_frame(&mut edge, KIND_DCR, &refuse).await;
            };
            broker_conn = conn;
            // Forward the re_connect to the broker (its 0x02 path).
            broker_conn
                .write_all(&dcr::encode(&DcrMessage::ReConnect { user_id }))
                .await?;
            let mut reply = [0u8; dcr::MESSAGE_LEN];
            broker_conn.read_exact(&mut reply).await?;
            // Relay the verdict to the Edge.
            write_frame(&mut edge, KIND_DCR, &reply).await?;
            match dcr::decode(&reply) {
                Ok((DcrMessage::ConnectAck { .. }, _)) => {
                    stats.mqtt_tunnels.bump();
                }
                _ => {
                    // Refused; tunnel dies here.
                    record_tunnel(format!("origin={origin_id} mode=re_connect refused"));
                    return Ok(());
                }
            }
        }
        KIND_DATA => {
            // Sniff the user's CONNECT to locate the broker.
            let mut sniff = StreamDecoder::new();
            let Some(user) = sniff_connect_user(&mut sniff, &payload) else {
                return Ok(()); // first bytes must be a parseable CONNECT
            };
            mode = "connect";
            let connect_start_us = stats.telemetry.clock().now_us();
            let connected =
                connect_ranked_broker(user, brokers, resilience, &stats, deadline).await;
            if let Some(active) = trace {
                stats.telemetry.tracer.child_span(
                    active,
                    SpanKind::UpstreamConnect,
                    connect_start_us,
                    stats.telemetry.clock().now_us(),
                    format!("broker connected={}", connected.is_some()),
                );
            }
            let Some((conn, _)) = connected else {
                record_tunnel(format!("origin={origin_id} mode=connect no_broker"));
                return Ok(());
            };
            broker_conn = conn;
            stats.mqtt_tunnels.bump();
            // Forward the CONNECT bytes.
            broker_conn.write_all(&payload).await?;
        }
        _ => return Ok(()),
    }

    record_tunnel(format!("origin={origin_id} mode={mode}"));

    // Steady-state relay loop.
    let mut solicited = false;
    let mut broker_buf = [0u8; 16 * 1024];
    loop {
        tokio::select! {
            changed = drain.changed(), if !solicited => {
                if changed.is_ok() && *drain.borrow() {
                    solicited = true;
                    stats.dcr_rehomed.bump();
                    let frame = dcr::encode(&DcrMessage::ReconnectSolicitation {
                        origin_id,
                        draining_deadline_ms: drain_deadline_ms,
                    });
                    if write_frame(&mut edge, KIND_DCR, &frame).await.is_err() {
                        return Ok(());
                    }
                }
            }
            _ = DrainState::force_signal(&mut force) => {
                // Hard deadline: deliver the MQTT close signal down the
                // tunnel (the Edge relays it to the client) and close.
                if let Some(frame) = state.close_frame() {
                    let _ = write_frame(&mut edge, KIND_DATA, &frame).await;
                }
                guard.mark_forced(state.close_kind());
                stats.mqtt_dropped.bump();
                return Ok(());
            }
            frame = read_frame(&mut edge) => {
                match frame? {
                    None => return Ok(()), // Edge closed (re-homed or client gone)
                    Some((KIND_DATA, payload)) => {
                        if broker_conn.write_all(&payload).await.is_err() {
                            return Ok(());
                        }
                    }
                    Some(_) => return Ok(()), // unexpected control frame
                }
            }
            read = broker_conn.read(&mut broker_buf) => {
                match read {
                    Ok(0) | Err(_) => return Ok(()),
                    Ok(n) => {
                        if write_frame(&mut edge, KIND_DATA, &broker_buf[..n]).await.is_err() {
                            return Ok(());
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Edge relay
// ---------------------------------------------------------------------

/// Handle to a running Edge relay. Derefs to [`ServiceHandle`], so the
/// Edge drains exactly like every other service: stop accepting, existing
/// clients keep flowing, survivors get a DISCONNECT at the hard deadline.
#[derive(Debug)]
pub struct EdgeHandle {
    /// The unified service lifecycle (addr, drain, deadline, tracking).
    pub service: ServiceHandle,
    /// General proxy counters.
    pub stats: Arc<ProxyStats>,
    /// DCR-specific counters.
    pub dcr_stats: Arc<EdgeDcrStats>,
    /// Origin-side resilience: per-origin breakers + accept-side shed gate.
    pub resilience: Arc<Resilience>,
    origins: Arc<parking_lot::RwLock<Vec<SocketAddr>>>,
}

impl Deref for EdgeHandle {
    type Target = ServiceHandle;
    fn deref(&self) -> &ServiceHandle {
        &self.service
    }
}

impl EdgeHandle {
    /// Updates the set of Origin relays (e.g. after an Origin finishes
    /// restarting on a new port in tests).
    pub fn set_origins(&self, origins: Vec<SocketAddr>) {
        *self.origins.write() = origins;
    }

    /// Applies a hot config snapshot: resilience knobs (breakers, retry
    /// budget, shed gate, admission, storm detector). The Origin set is
    /// deliberately *not* touched — Edge backends come from `--origin`
    /// flags, not `routing.upstreams`, and are managed by DCR/takeover.
    pub fn apply_config(&self, cfg: &ZdrConfig, epoch: u64) {
        self.resilience.apply(ResilienceConfig::from_zdr(cfg));
        self.stats
            .telemetry
            .event(ReleasePhase::ConfigApplied, 0, format!("epoch={epoch}"));
    }

    /// A subscriber closure for [`zdr_core::config::ConfigStore`] that
    /// outlives this handle (captures the shared parts, not `self`).
    pub fn config_applier(&self) -> Arc<dyn Fn(&ZdrConfig, u64) + Send + Sync> {
        let resilience = Arc::clone(&self.resilience);
        let telemetry = Arc::clone(&self.stats.telemetry);
        Arc::new(move |cfg, epoch| {
            resilience.apply(ResilienceConfig::from_zdr(cfg));
            telemetry.event(ReleasePhase::ConfigApplied, 0, format!("epoch={epoch}"));
        })
    }
}

/// Spawns an Edge relay fronting `origins` with default resilience.
pub async fn spawn_edge(addr: SocketAddr, origins: Vec<SocketAddr>) -> std::io::Result<EdgeHandle> {
    spawn_edge_with(addr, origins, ResilienceConfig::default()).await
}

/// Spawns an Edge relay with explicit resilience tunables. An overloaded
/// Edge sheds new clients at accept with an MQTT CONNACK refuse
/// (`ServerUnavailable`) — the protocol-native analogue of HTTP's 503.
pub async fn spawn_edge_with(
    addr: SocketAddr,
    origins: Vec<SocketAddr>,
    resilience: ResilienceConfig,
) -> std::io::Result<EdgeHandle> {
    let listener = TcpListener::bind(addr).await?;
    let addr = listener.local_addr()?;
    let stats = Arc::new(ProxyStats::default());
    let dcr_stats = Arc::new(EdgeDcrStats::default());
    let origins = Arc::new(parking_lot::RwLock::new(origins));
    let state = DrainState::new(MqttCloseSignal);
    let resilience = Arc::new(Resilience::new(resilience));

    let loop_stats = Arc::clone(&stats);
    let loop_dcr = Arc::clone(&dcr_stats);
    let loop_origins = Arc::clone(&origins);
    let loop_state = Arc::clone(&state);
    let loop_resilience = Arc::clone(&resilience);
    let accept_task = tokio::spawn(async move {
        while let Ok((mut stream, peer)) = listener.accept().await {
            loop_stats.connections_accepted.bump();
            // Per-client admission ahead of the shed gate; the refusal is
            // the same protocol-native CONNACK the gate uses.
            let admitted =
                loop_resilience.admit_client(peer, loop_state.is_draining(), &loop_stats);
            let active = loop_state.tracker().active();
            if !admitted || loop_resilience.shed().should_shed(active) {
                if admitted {
                    loop_stats.load_shed.bump();
                }
                // A sampled refusal leaves a one-span trace, same as the
                // HTTP accept path: admission refusals and sheds are the
                // first verdicts a request can hit.
                if let Some(t) = loop_stats.telemetry.tracer.begin(None) {
                    let now_us = loop_stats.telemetry.clock().now_us();
                    let (kind, detail) = if admitted {
                        (SpanKind::Shed, format!("active={active}"))
                    } else {
                        (SpanKind::Admission, format!("refused peer={peer}"))
                    };
                    loop_stats
                        .telemetry
                        .tracer
                        .root_span(t, kind, now_us, now_us, detail);
                }
                tokio::spawn(async move {
                    if let Ok(refuse) = zdr_proto::mqtt::encode(&zdr_proto::mqtt::Packet::ConnAck {
                        session_present: false,
                        code: zdr_proto::mqtt::ConnectReturnCode::ServerUnavailable,
                    }) {
                        let _ = stream.write_all(&refuse).await;
                    }
                    let _ = stream.shutdown().await;
                });
                continue;
            }
            let stats = Arc::clone(&loop_stats);
            let dcr_stats = Arc::clone(&loop_dcr);
            let origins = Arc::clone(&loop_origins);
            let state = Arc::clone(&loop_state);
            let resilience = Arc::clone(&loop_resilience);
            let guard = state.register();
            tokio::spawn(async move {
                let _ =
                    edge_tunnel(stream, origins, resilience, stats, dcr_stats, state, guard).await;
            });
        }
    });

    Ok(EdgeHandle {
        service: ServiceHandle::new(addr, state, vec![accept_task])
            .with_telemetry(Arc::clone(&stats.telemetry), 0),
        stats,
        dcr_stats,
        resilience,
        origins,
    })
}

fn candidate_origins(
    origins: &parking_lot::RwLock<Vec<SocketAddr>>,
    exclude: Option<SocketAddr>,
) -> Vec<SocketAddr> {
    origins
        .read()
        .iter()
        .copied()
        .filter(|o| Some(*o) != exclude)
        .collect()
}

/// Tunnel-establishment deadline on the Edge side: our own connect
/// budget ∧ any armed drain hard deadline. The same instant bounds the
/// local Origin dial and rides the first DCR frame so the Origin can
/// bound its broker connect.
fn establish_deadline(state: &DrainState) -> Deadline {
    let mut deadline = Deadline::after(unix_now_ms(), TUNNEL_CONNECT_BUDGET);
    if let Some(d) = state.force_deadline() {
        deadline = deadline.clamp_to(d);
    }
    deadline
}

/// Connects to the first admitting Origin (a draining Origin no longer
/// accepts new tunnels, so connect failures are expected mid-release).
/// Each Origin's breaker gates the attempt and absorbs the outcome, so a
/// crashed Origin stops being dialed after a few failures instead of
/// adding a connect timeout to every tunnel establishment. No budget
/// gating here: the walk is bounded by the configured origin count, and
/// the whole walk by `deadline` — a black-holed Origin cannot stall
/// establishment past it.
async fn connect_origin(
    origins: &parking_lot::RwLock<Vec<SocketAddr>>,
    exclude: Option<SocketAddr>,
    resilience: &Resilience,
    stats: &ProxyStats,
    deadline: Deadline,
) -> Option<(TcpStream, SocketAddr)> {
    for addr in candidate_origins(origins, exclude) {
        if !resilience.admit(addr, stats).allowed() {
            continue;
        }
        let Some(remaining) = deadline.remaining(unix_now_ms()) else {
            stats.deadline_exceeded.bump();
            return None;
        };
        let connect_start_us = stats.telemetry.clock().now_us();
        match tokio::time::timeout(remaining, TcpStream::connect(addr)).await {
            Ok(Ok(conn)) => {
                stats.telemetry.upstream_connect_us.record(
                    stats
                        .telemetry
                        .clock()
                        .now_us()
                        .saturating_sub(connect_start_us),
                );
                resilience.on_success(addr, stats);
                return Some((conn, addr));
            }
            _ => resilience.on_failure(addr, stats),
        }
    }
    None
}

/// Stamps the tunnel-establishment deadline as the first (DCR) frame of a
/// new Edge→Origin tunnel.
async fn send_tunnel_deadline(origin: &mut TcpStream, deadline: Deadline) -> std::io::Result<()> {
    let frame = dcr::encode(&DcrMessage::Deadline {
        unix_ms: deadline.unix_ms(),
    });
    write_frame(origin, KIND_DCR, &frame).await
}

/// Stamps the active trace context as a DCR preamble frame, the tunnel
/// analogue of the `x-zdr-trace` HTTP header: the Origin's spans parent
/// under this Edge's tunnel span.
async fn send_tunnel_trace(origin: &mut TcpStream, active: ActiveTrace) -> std::io::Result<()> {
    let frame = dcr::encode(&DcrMessage::Trace {
        trace_id: active.trace_id,
        span_id: active.span_id,
        sampled: true,
    });
    write_frame(origin, KIND_DCR, &frame).await
}

/// Handles one client connection on the Edge side.
async fn edge_tunnel(
    mut client: TcpStream,
    origins: Arc<parking_lot::RwLock<Vec<SocketAddr>>>,
    resilience: Arc<Resilience>,
    stats: Arc<ProxyStats>,
    dcr_stats: Arc<EdgeDcrStats>,
    state: Arc<DrainState>,
    mut guard: ConnGuard,
) -> std::io::Result<()> {
    let mut force = state.force_watch();
    let deadline = establish_deadline(&state);
    // The Edge is the trace root for MQTT: clients speak raw MQTT with no
    // room for a context header, so sampling decides here and the context
    // rides the tunnel preamble as a DCR frame.
    let trace = stats.telemetry.tracer.begin(None);
    let connect_start_us = stats.telemetry.clock().now_us();
    let Some((mut origin, mut current_origin)) =
        connect_origin(&origins, None, &resilience, &stats, deadline).await
    else {
        if let Some(active) = trace {
            let now_us = stats.telemetry.clock().now_us();
            stats.telemetry.tracer.root_span(
                active,
                SpanKind::Tunnel,
                connect_start_us,
                now_us,
                "no origin admitted".to_string(),
            );
        }
        return Ok(());
    };
    if let Some(active) = trace {
        stats.telemetry.tracer.child_span(
            active,
            SpanKind::UpstreamConnect,
            connect_start_us,
            stats.telemetry.clock().now_us(),
            format!("origin={current_origin}"),
        );
    }
    // Every tunnel opens with its establishment deadline so the Origin can
    // bound its broker connect, then the trace context when one is active.
    if send_tunnel_deadline(&mut origin, deadline).await.is_err() {
        return Ok(());
    }
    if let Some(active) = trace {
        if send_tunnel_trace(&mut origin, active).await.is_err() {
            return Ok(());
        }
        stats.telemetry.tracer.root_span(
            active,
            SpanKind::Tunnel,
            connect_start_us,
            stats.telemetry.clock().now_us(),
            format!("established origin={current_origin}"),
        );
    }
    stats.mqtt_tunnels.bump();

    // Sniff the user id from the client's CONNECT as bytes flow.
    let mut sniffer = StreamDecoder::new();
    let mut user: Option<UserId> = None;

    let mut client_buf = [0u8; 16 * 1024];
    loop {
        tokio::select! {
            _ = DrainState::force_signal(&mut force) => {
                // Hard deadline on the Edge itself: tell the client with a
                // DISCONNECT, then close.
                if let Some(frame) = state.close_frame() {
                    let _ = client.write_all(&frame).await;
                }
                guard.mark_forced(state.close_kind());
                stats.mqtt_dropped.bump();
                return Ok(());
            }
            read = client.read(&mut client_buf) => {
                match read {
                    Ok(0) | Err(_) => {
                        stats.mqtt_dropped.bump();
                        return Ok(());
                    }
                    Ok(n) => {
                        if user.is_none() {
                            user = sniff_connect_user(&mut sniffer, &client_buf[..n]);
                        }
                        if write_frame(&mut origin, KIND_DATA, &client_buf[..n]).await.is_err() {
                            stats.mqtt_dropped.bump();
                            return Ok(());
                        }
                    }
                }
            }
            frame = read_frame(&mut origin) => {
                match frame? {
                    None => {
                        // Origin vanished without soliciting (crash, not a
                        // graceful release): the client must reconnect.
                        stats.mqtt_dropped.bump();
                        return Ok(());
                    }
                    Some((KIND_DATA, payload)) => {
                        if client.write_all(&payload).await.is_err() {
                            return Ok(());
                        }
                    }
                    Some((KIND_DCR, payload)) => {
                        if let Ok((DcrMessage::ReconnectSolicitation { .. }, _)) =
                            dcr::decode(&payload)
                        {
                            // Fig. 6 steps B1→C2: re-home through another
                            // Origin, keeping the old tunnel live meanwhile.
                            match rehome(
                                &origins,
                                current_origin,
                                user,
                                &resilience,
                                &stats,
                                &state,
                                trace,
                            )
                            .await
                            {
                                Some((new_conn, new_addr)) => {
                                    origin = new_conn;
                                    current_origin = new_addr;
                                    dcr_stats.rehomed_ok.bump();
                                    stats.dcr_rehomed.bump();
                                }
                                None => {
                                    // Refused or no alternate Origin: drop;
                                    // the client reconnects the normal way.
                                    dcr_stats.rehome_refused.bump();
                                    stats.mqtt_dropped.bump();
                                    return Ok(());
                                }
                            }
                        }
                    }
                    Some(_) => return Ok(()),
                }
            }
        }
    }
}

/// Opens a tunnel to an alternate Origin and re-attaches `user`'s session.
async fn rehome(
    origins: &parking_lot::RwLock<Vec<SocketAddr>>,
    exclude: SocketAddr,
    user: Option<UserId>,
    resilience: &Resilience,
    stats: &ProxyStats,
    state: &DrainState,
    trace: Option<ActiveTrace>,
) -> Option<(TcpStream, SocketAddr)> {
    let user = user?;
    // The re-home is itself a retry of tunnel establishment: it must be
    // funded by the shared budget before any connection work happens, and
    // it propagates a deadline like any fresh tunnel.
    if !resilience.try_retry(stats) {
        return None;
    }
    if let Some(active) = trace {
        let now_us = stats.telemetry.clock().now_us();
        stats.telemetry.tracer.child_span(
            active,
            SpanKind::RetryAttempt,
            now_us,
            now_us,
            format!("rehome funded exclude={exclude}"),
        );
    }
    let deadline = establish_deadline(state);
    let connect_start_us = stats.telemetry.clock().now_us();
    let (mut conn, new_addr) =
        connect_origin(origins, Some(exclude), resilience, stats, deadline).await?;
    if let Some(active) = trace {
        stats.telemetry.tracer.child_span(
            active,
            SpanKind::UpstreamConnect,
            connect_start_us,
            stats.telemetry.clock().now_us(),
            format!("origin={new_addr}"),
        );
    }
    send_tunnel_deadline(&mut conn, deadline).await.ok()?;
    if let Some(active) = trace {
        send_tunnel_trace(&mut conn, active).await.ok()?;
    }
    let msg = dcr::encode(&DcrMessage::ReConnect { user_id: user });
    write_frame(&mut conn, KIND_DCR, &msg).await.ok()?;
    let (kind, payload) = read_frame(&mut conn).await.ok()??;
    if kind != KIND_DCR {
        return None;
    }
    match dcr::decode(&payload) {
        Ok((DcrMessage::ConnectAck { .. }, _)) => Some((conn, new_addr)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use zdr_proto::mqtt::{self, ConnectReturnCode, Packet, QoS};

    struct Client {
        stream: TcpStream,
        decoder: StreamDecoder,
    }

    impl Client {
        async fn connect(edge: SocketAddr, user: UserId) -> Client {
            let mut stream = TcpStream::connect(edge).await.unwrap();
            let pkt = Packet::Connect {
                client_id: zdr_broker::server::client_id_for(user),
                keep_alive: 60,
                clean_session: true,
            };
            stream
                .write_all(&mqtt::encode(&pkt).unwrap())
                .await
                .unwrap();
            let mut c = Client {
                stream,
                decoder: StreamDecoder::new(),
            };
            match c.recv().await {
                Packet::ConnAck {
                    code: ConnectReturnCode::Accepted,
                    ..
                } => c,
                other => panic!("expected CONNACK, got {other:?}"),
            }
        }

        async fn send(&mut self, pkt: &Packet) {
            self.stream
                .write_all(&mqtt::encode(pkt).unwrap())
                .await
                .unwrap();
        }

        async fn recv(&mut self) -> Packet {
            let mut buf = [0u8; 8192];
            loop {
                if let Some(p) = self.decoder.next_packet().unwrap() {
                    return p;
                }
                let n = tokio::time::timeout(Duration::from_secs(10), self.stream.read(&mut buf))
                    .await
                    .expect("recv timeout")
                    .unwrap();
                assert!(n > 0, "peer closed");
                self.decoder.extend(&buf[..n]);
            }
        }
    }

    async fn stack() -> (
        zdr_broker::server::BrokerHandle,
        OriginHandle,
        OriginHandle,
        EdgeHandle,
    ) {
        let broker = zdr_broker::server::spawn("127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let o1 = spawn_origin("127.0.0.1:0".parse().unwrap(), 1, vec![broker.addr], 5_000)
            .await
            .unwrap();
        let o2 = spawn_origin("127.0.0.1:0".parse().unwrap(), 2, vec![broker.addr], 5_000)
            .await
            .unwrap();
        let edge = spawn_edge("127.0.0.1:0".parse().unwrap(), vec![o1.addr, o2.addr])
            .await
            .unwrap();
        (broker, o1, o2, edge)
    }

    #[tokio::test]
    async fn end_to_end_publish_through_relays() {
        let (broker, _o1, _o2, edge) = stack().await;

        let mut sub = Client::connect(edge.addr, UserId(1)).await;
        sub.send(&Packet::Subscribe {
            packet_id: 1,
            filters: vec![("notif/user-1".into(), QoS::AtMostOnce)],
        })
        .await;
        match sub.recv().await {
            Packet::SubAck { .. } => {}
            other => panic!("{other:?}"),
        }

        let mut publisher = Client::connect(edge.addr, UserId(2)).await;
        publisher
            .send(&Packet::Publish {
                topic: "notif/user-1".into(),
                packet_id: None,
                payload: bytes::Bytes::from_static(b"via-tunnel"),
                qos: QoS::AtMostOnce,
                retain: false,
                dup: false,
            })
            .await;

        match sub.recv().await {
            Packet::Publish { payload, .. } => assert_eq!(&payload[..], b"via-tunnel"),
            other => panic!("{other:?}"),
        }
        assert!(broker.core.stats().sessions >= 2);
    }

    #[tokio::test]
    async fn ping_through_tunnel() {
        let (_broker, _o1, _o2, edge) = stack().await;
        let mut c = Client::connect(edge.addr, UserId(5)).await;
        c.send(&Packet::PingReq).await;
        assert_eq!(c.recv().await, Packet::PingResp);
    }

    #[tokio::test]
    async fn apply_config_rearms_relays_without_dropping_tunnels() {
        let (_broker, o1, _o2, edge) = stack().await;
        let mut c = Client::connect(edge.addr, UserId(21)).await;

        // Hot snapshot: single-slot shed gate, shorter drain deadline.
        let mut cfg = ZdrConfig::default();
        cfg.shed.max_active = 1;
        cfg.drain.drain_ms = 750;
        (edge.config_applier())(&cfg, 5);
        o1.apply_config(&cfg, 5);

        assert_eq!(o1.drain_deadline_ms(), 750);

        // The gate is full (one live tunnel), so the next client is
        // refused protocol-natively — no restart, no takeover.
        let mut stream = TcpStream::connect(edge.addr).await.unwrap();
        stream
            .write_all(
                &mqtt::encode(&Packet::Connect {
                    client_id: zdr_broker::server::client_id_for(UserId(22)),
                    keep_alive: 60,
                    clean_session: true,
                })
                .unwrap(),
            )
            .await
            .unwrap();
        let mut shed = Client {
            stream,
            decoder: StreamDecoder::new(),
        };
        match shed.recv().await {
            Packet::ConnAck {
                code: ConnectReturnCode::ServerUnavailable,
                ..
            } => {}
            other => panic!("expected shed CONNACK, got {other:?}"),
        }
        assert_eq!(edge.stats.load_shed.get(), 1);

        // The established tunnel is untouched by the reload.
        c.send(&Packet::PingReq).await;
        assert_eq!(c.recv().await, Packet::PingResp);
        assert_eq!(edge.forced_closes(), 0);

        // Both relays journalled the apply.
        for (stats, who) in [(&edge.stats, "edge"), (&o1.stats, "origin")] {
            let tl = stats.telemetry.timeline.snapshot();
            assert!(
                tl.events
                    .iter()
                    .any(|e| e.phase == ReleasePhase::ConfigApplied
                        && e.detail.contains("epoch=5")),
                "{who}: {tl:?}"
            );
        }
    }

    #[tokio::test]
    async fn origin_drain_rehomes_tunnel_without_client_disruption() {
        let (broker, o1, o2, edge) = stack().await;

        // Force the client's tunnel through o1 only.
        edge.set_origins(vec![o1.addr, o2.addr]);
        let mut c = Client::connect(edge.addr, UserId(7)).await;
        c.send(&Packet::Subscribe {
            packet_id: 1,
            filters: vec![("t/7".into(), QoS::AtMostOnce)],
        })
        .await;
        c.recv().await; // SubAck

        // Origin 1 enters the DCR restart flow.
        o1.drain();
        // Give the re-home a moment to complete.
        tokio::time::sleep(Duration::from_millis(300)).await;

        assert_eq!(
            edge.dcr_stats.rehomed_ok.get(),
            1,
            "tunnel must re-home via origin 2"
        );

        // The SAME client connection keeps working: publish and receive.
        let mut publisher = Client::connect(edge.addr, UserId(8)).await;
        publisher
            .send(&Packet::Publish {
                topic: "t/7".into(),
                packet_id: None,
                payload: bytes::Bytes::from_static(b"post-restart"),
                qos: QoS::AtMostOnce,
                retain: false,
                dup: false,
            })
            .await;
        match c.recv().await {
            Packet::Publish { payload, .. } => assert_eq!(&payload[..], b"post-restart"),
            other => panic!("{other:?}"),
        }

        // Broker saw exactly one DCR re-attach and zero new user connects
        // beyond the original two.
        let stats = broker.core.stats();
        assert_eq!(stats.dcr_accepted, 1);
    }

    #[tokio::test]
    async fn rehome_refused_when_no_alternate_origin() {
        let broker = zdr_broker::server::spawn("127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let o1 = spawn_origin("127.0.0.1:0".parse().unwrap(), 1, vec![broker.addr], 1_000)
            .await
            .unwrap();
        // Edge knows only the draining origin.
        let edge = spawn_edge("127.0.0.1:0".parse().unwrap(), vec![o1.addr])
            .await
            .unwrap();

        let mut c = Client::connect(edge.addr, UserId(9)).await;
        o1.drain();
        tokio::time::sleep(Duration::from_millis(300)).await;

        assert_eq!(edge.dcr_stats.rehome_refused.get(), 1);
        // The client connection is dropped — the organic-reconnect path.
        let mut buf = [0u8; 16];
        let n = tokio::time::timeout(Duration::from_secs(5), c.stream.read(&mut buf))
            .await
            .expect("expected EOF")
            .unwrap_or(0);
        assert_eq!(n, 0);
    }

    #[tokio::test]
    async fn broker_refusal_drops_client() {
        // Session context destroyed before the re-home: broker refuses.
        let (broker, o1, _o2, edge) = stack().await;
        let mut _c = Client::connect(edge.addr, UserId(11)).await;
        // Destroy the context behind the relay's back.
        broker.core.disconnect(UserId(11));
        o1.drain();
        tokio::time::sleep(Duration::from_millis(300)).await;
        assert_eq!(edge.dcr_stats.rehome_refused.get(), 1);
        assert_eq!(broker.core.stats().dcr_refused, 1);
    }

    #[tokio::test]
    async fn overloaded_edge_refuses_with_connack_server_unavailable() {
        let (_broker, o1, o2, _edge) = stack().await;
        let edge = spawn_edge_with(
            "127.0.0.1:0".parse().unwrap(),
            vec![o1.addr, o2.addr],
            ResilienceConfig {
                shed: crate::resilience::ShedConfig {
                    max_active: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .await
        .unwrap();

        // First client occupies the only admitted slot.
        let _c = Client::connect(edge.addr, UserId(21)).await;
        assert_eq!(edge.active_connections(), 1);

        // The next client is refused at accept, before any tunnel work.
        let mut stream = TcpStream::connect(edge.addr).await.unwrap();
        let pkt = Packet::Connect {
            client_id: zdr_broker::server::client_id_for(UserId(22)),
            keep_alive: 60,
            clean_session: true,
        };
        stream
            .write_all(&mqtt::encode(&pkt).unwrap())
            .await
            .unwrap();
        let mut decoder = StreamDecoder::new();
        let mut buf = [0u8; 1024];
        let code = loop {
            if let Some(Packet::ConnAck { code, .. }) = decoder.next_packet().unwrap() {
                break code;
            }
            let n = tokio::time::timeout(Duration::from_secs(5), stream.read(&mut buf))
                .await
                .expect("refusal timeout")
                .unwrap();
            assert!(n > 0, "closed before CONNACK");
            decoder.extend(&buf[..n]);
        };
        assert_eq!(code, ConnectReturnCode::ServerUnavailable);
        assert_eq!(edge.stats.load_shed.get(), 1);
        assert_eq!(edge.active_connections(), 1, "shed client never admitted");
    }

    #[tokio::test]
    async fn dead_primary_broker_falls_back_to_next_ranked_replica() {
        let broker = zdr_broker::server::spawn("127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        // Find a user whose rendezvous-preferred broker is the dead one,
        // so the tunnel must fall back to the live replica.
        let brokers = vec![dead, broker.addr];
        let user = (0..10_000)
            .map(UserId)
            .find(|u| broker_for_user(*u, &brokers) == Some(dead))
            .expect("some user must hash to the dead broker");

        let o = spawn_origin("127.0.0.1:0".parse().unwrap(), 1, brokers, 5_000)
            .await
            .unwrap();
        let edge = spawn_edge("127.0.0.1:0".parse().unwrap(), vec![o.addr])
            .await
            .unwrap();

        let mut c = Client::connect(edge.addr, user).await;
        c.send(&Packet::PingReq).await;
        assert_eq!(c.recv().await, Packet::PingResp);

        // The fallback was a funded retry, and the dead broker's failure
        // fed its breaker.
        assert_eq!(o.stats.retries.get(), 1);
        assert_eq!(o.resilience.budget().withdrawn(), 1);

        // Once the breaker trips (default threshold 3), further tunnels to
        // the same user skip the dead broker without dialing it.
        let _c2 = Client::connect(edge.addr, user).await;
        let _c3 = Client::connect(edge.addr, user).await;
        assert_eq!(o.stats.breaker_opened.get(), 1);
        let mut c4 = Client::connect(edge.addr, user).await;
        c4.send(&Packet::PingReq).await;
        assert_eq!(c4.recv().await, Packet::PingResp);
        assert_eq!(
            o.stats.retries.get(),
            3,
            "breaker-skipped attempts are free, not funded retries"
        );
    }

    #[tokio::test]
    async fn edge_stamps_deadline_as_first_tunnel_frame() {
        // A hand-rolled "origin" that captures the first frame raw.
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let fake_origin = listener.local_addr().unwrap();
        let (tx, rx) = tokio::sync::oneshot::channel::<(u8, Vec<u8>)>();
        tokio::spawn(async move {
            let (mut s, _) = listener.accept().await.unwrap();
            let frame = read_frame(&mut s).await.unwrap().unwrap();
            let _ = tx.send(frame);
        });
        let edge = spawn_edge("127.0.0.1:0".parse().unwrap(), vec![fake_origin])
            .await
            .unwrap();
        let mut stream = TcpStream::connect(edge.addr).await.unwrap();
        let pkt = Packet::Connect {
            client_id: zdr_broker::server::client_id_for(UserId(31)),
            keep_alive: 60,
            clean_session: true,
        };
        stream
            .write_all(&mqtt::encode(&pkt).unwrap())
            .await
            .unwrap();
        let (kind, payload) = tokio::time::timeout(Duration::from_secs(5), rx)
            .await
            .expect("first frame timeout")
            .unwrap();
        assert_eq!(kind, KIND_DCR);
        let (msg, _) = dcr::decode(&payload).unwrap();
        let now = zdr_core::clock::unix_now_ms();
        match msg {
            DcrMessage::Deadline { unix_ms } => {
                assert!(unix_ms > now, "deadline must be in the future");
                assert!(
                    unix_ms <= now + 10_000,
                    "deadline must be bounded by the tunnel budget"
                );
            }
            other => panic!("expected deadline frame, got {other:?}"),
        }
    }

    #[tokio::test]
    async fn sampled_tunnel_yields_connected_tree_across_edge_and_origin() {
        let (_broker, o1, _o2, edge) = stack().await;
        edge.stats.telemetry.tracer.set_sample_every(1);

        // Establishing the tunnel records every span before the CONNACK
        // reaches the client, so no polling is needed after connect.
        let mut c = Client::connect(edge.addr, UserId(41)).await;
        c.send(&Packet::PingReq).await;
        assert_eq!(c.recv().await, Packet::PingResp);

        // An Edge + Origin pair reads as one tree once merged.
        let mut merged = edge.stats.telemetry.tracer.snapshot();
        merged.merge(&o1.stats.telemetry.tracer.snapshot());

        let root = merged
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Tunnel && s.parent_id == 0)
            .expect("edge tunnel root span");
        assert!(root.detail.contains("established"), "{root:?}");
        let trace_id = root.trace_id;
        assert!(merged.is_connected(trace_id), "{merged:?}");

        // The Origin adopted the DCR trace frame: its leg parents under
        // the Edge's tunnel span, with its own broker connect beneath it.
        let origin_leg = merged
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Tunnel && s.parent_id == root.span_id)
            .expect("origin tunnel span parented under the edge root");
        assert_eq!(origin_leg.trace_id, trace_id);
        assert!(origin_leg.detail.contains("mode=connect"), "{origin_leg:?}");
        assert!(merged
            .spans
            .iter()
            .any(|s| s.kind == SpanKind::UpstreamConnect && s.parent_id == root.span_id));
        assert!(merged
            .spans
            .iter()
            .any(|s| s.kind == SpanKind::UpstreamConnect && s.parent_id == origin_leg.span_id));

        // The Origin never sampled locally — it only adopted.
        assert_eq!(o1.stats.telemetry.tracer.sample_every(), 0);
    }

    #[tokio::test]
    async fn rehome_carries_the_trace_to_the_alternate_origin() {
        let (_broker, o1, o2, edge) = stack().await;
        edge.stats.telemetry.tracer.set_sample_every(1);
        let mut c = Client::connect(edge.addr, UserId(43)).await;

        o1.drain();
        tokio::time::sleep(Duration::from_millis(300)).await;
        assert_eq!(edge.dcr_stats.rehomed_ok.get(), 1);
        c.send(&Packet::PingReq).await;
        assert_eq!(c.recv().await, Packet::PingResp);

        let mut merged = edge.stats.telemetry.tracer.snapshot();
        merged.merge(&o1.stats.telemetry.tracer.snapshot());
        merged.merge(&o2.stats.telemetry.tracer.snapshot());

        let root = merged
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Tunnel && s.parent_id == 0)
            .expect("edge tunnel root span");
        assert!(merged.is_connected(root.trace_id), "{merged:?}");
        // The funded re-home left a retry span, and BOTH origin legs —
        // the original and the re_connect — hang off the same root.
        assert!(merged
            .spans
            .iter()
            .any(|s| s.kind == SpanKind::RetryAttempt && s.parent_id == root.span_id));
        let legs: Vec<_> = merged
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Tunnel && s.parent_id == root.span_id)
            .collect();
        assert_eq!(legs.len(), 2, "{legs:?}");
        assert!(legs.iter().any(|s| s.detail.contains("mode=connect")));
        assert!(legs.iter().any(|s| s.detail.contains("mode=re_connect")));
    }

    #[tokio::test]
    async fn edge_deadline_sends_disconnect_to_surviving_client() {
        let (_broker, _o1, _o2, edge) = stack().await;
        let mut c = Client::connect(edge.addr, UserId(13)).await;
        assert_eq!(edge.active_connections(), 1);

        // Drain the Edge itself with a short hard deadline; the idle client
        // neither finishes nor reconnects, so it must be force-closed with
        // the MQTT close signal.
        edge.drain_with_deadline(Duration::from_millis(100));
        assert_eq!(c.recv().await, Packet::Disconnect);
        tokio::time::timeout(Duration::from_secs(2), edge.drained())
            .await
            .expect("edge must finish draining");
        assert_eq!(edge.active_connections(), 0);
        assert_eq!(edge.forced_closes(), 1);
        assert_eq!(edge.tracker().forced_tally().mqtt_disconnects, 1);
    }
}

//! The shared upstream-resilience layer every proxy→backend hop goes
//! through.
//!
//! [`Resilience`] bundles the three mechanisms that keep §4.4's
//! retry-on-another-server rule from amplifying a mass restart into a
//! retry storm, plus the accept-side overload gate:
//!
//! * a per-upstream [`CircuitBreaker`] (closed → open → half-open with
//!   seeded-jitter probe windows — see [`zdr_core::resilience`]), keyed by
//!   upstream address and created lazily;
//! * one cluster-wide [`RetryBudget`] shared by HTTP retries, PPR replays,
//!   and MQTT broker/origin failover, so all retry traffic together
//!   amplifies load by at most the configured fraction of successes;
//! * a [`LoadShedGate`] consulted at accept, driven by the
//!   [`crate::conn_tracker::ConnTracker`] gauge and a queue-delay EWMA,
//!   rejecting cheaply (HTTP 503 + Retry-After, MQTT CONNACK refuse, QUIC
//!   CONNECTION_CLOSE) before any work is admitted;
//! * the client-facing admission layer ([`zdr_core::admission`]): a
//!   per-client [`SlidingWindowLimiter`] plus the storm-triggered
//!   [`ProtectionMode`], consulted **ahead of** the shed gate via
//!   [`Resilience::admit_client`]. The shed gate answers "is this
//!   instance overloaded?"; admission answers "is this *client* abusive,
//!   or is a storm in progress?" — and each bumps a distinct counter
//!   (`admit_rejected` vs `load_shed`) so the auditor can attribute
//!   disruption correctly.
//!
//! Lock discipline matches `conn_tracker`: the per-request path touches
//! only atomics. The one shared map (addr → breaker) is read-locked for
//! lookup only; each breaker is itself lock-free.
//!
//! **Fail-open rules** (mirroring [`zdr_l4lb::health`]'s `routable()`,
//! which returns the full set when every instance looks down): a gate
//! with zero configuration never sheds; the gate never sheds when no
//! connection is active (serve degraded rather than serve nothing); and a
//! pool whose breakers are all open still sends half-open probes, so a
//! recovered fleet is rediscovered without operator action.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Duration;

use parking_lot::RwLock;

use zdr_core::admission::{
    client_key, AdmissionConfig, AdmitDecision, ProtectionConfig, ProtectionMode,
    ProtectionTransition, SlidingWindowLimiter, StormDetector, StormSignals,
};
use zdr_core::clock::Clock;
use zdr_core::metrics::Ewma;
use zdr_core::resilience::{
    Admit, BreakerConfig, BreakerTransition, CircuitBreaker, RetryBudget, RetryBudgetConfig,
};
use zdr_core::sync::{Arc, AtomicU64, Ordering};
use zdr_core::telemetry::ReleasePhase;

use crate::stats::ProxyStats;

/// Tunables for the accept-side load-shed gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedConfig {
    /// Shed new connections while the tracker gauge is at or above this
    /// many active connections. `0` disables the limit (fail open).
    pub max_active: u64,
    /// Shed while the smoothed accept→serve queue delay exceeds this.
    /// `Duration::ZERO` disables the signal (fail open).
    pub queue_delay_max: Duration,
    /// EWMA smoothing factor for the queue-delay signal, in permille
    /// (200 → α = 0.2).
    pub ewma_alpha_permille: u64,
}

impl Default for ShedConfig {
    fn default() -> Self {
        ShedConfig {
            max_active: 0,
            queue_delay_max: Duration::ZERO,
            ewma_alpha_permille: 200,
        }
    }
}

/// Top-level resilience tunables, embedded in every service config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceConfig {
    /// Per-upstream circuit-breaker tunables.
    pub breaker: BreakerConfig,
    /// Cluster-wide retry-budget tunables.
    pub budget: RetryBudgetConfig,
    /// Accept-side load-shed tunables.
    pub shed: ShedConfig,
    /// Per-client admission-limiter tunables.
    pub admission: AdmissionConfig,
    /// Storm-detection / protection-mode tunables.
    pub protection: ProtectionConfig,
}

impl ResilienceConfig {
    /// Projects the service-facing slice out of a published
    /// [`zdr_core::config::ZdrConfig`] snapshot (the config plane keeps
    /// durations as plain milliseconds; this is where they become
    /// [`Duration`]s).
    pub fn from_zdr(cfg: &zdr_core::config::ZdrConfig) -> Self {
        ResilienceConfig {
            breaker: cfg.breaker,
            budget: cfg.budget,
            shed: ShedConfig {
                max_active: cfg.shed.max_active,
                queue_delay_max: Duration::from_millis(cfg.shed.queue_delay_max_ms),
                ewma_alpha_permille: cfg.shed.ewma_alpha_permille,
            },
            admission: cfg.admission,
            protection: cfg.protection,
        }
    }
}

/// The accept-side overload gate. All-atomic; knobs are runtime-settable
/// so an operator (or test) can tighten a live instance.
#[derive(Debug)]
pub struct LoadShedGate {
    max_active: AtomicU64,
    queue_delay_max_us: AtomicU64,
    queue_delay: Ewma,
    /// Decisions to shed (monotonic; the service also bumps its
    /// [`ProxyStats::load_shed`]).
    shed_count: AtomicU64,
}

impl LoadShedGate {
    /// A gate with the given tunables.
    pub fn new(config: ShedConfig) -> Self {
        LoadShedGate {
            max_active: AtomicU64::new(config.max_active),
            queue_delay_max_us: AtomicU64::new(config.queue_delay_max.as_micros() as u64),
            queue_delay: Ewma::new(config.ewma_alpha_permille),
            shed_count: AtomicU64::new(0),
        }
    }

    /// Folds one observed accept→serve scheduling delay into the EWMA.
    pub fn observe_queue_delay(&self, delay: Duration) {
        self.queue_delay.observe(delay.as_micros() as u64);
    }

    /// Current smoothed queue delay.
    pub fn queue_delay(&self) -> Duration {
        Duration::from_micros(self.queue_delay.get())
    }

    /// Decides whether to reject a new connection while `active`
    /// connections are open. Fail-open: zero config never sheds, and a
    /// gate never sheds its only would-be connection (`active == 0`) — a
    /// degraded instance still serves *something*, matching
    /// `l4lb::health::routable()`'s all-down-means-serve-all rule.
    pub fn should_shed(&self, active: u64) -> bool {
        if active == 0 {
            return false;
        }
        // Relaxed throughout: the knobs are independent runtime settings
        // (operator writes race admission checks by nature), the gauge
        // value arrives as an argument, and shed_count is a reporting-only
        // tally — every decision here is advisory, so no load/store pairs
        // to order. Loom's shed_count_consistency model checks the one real
        // invariant: sheds counted == `true` decisions returned.
        let max = self.max_active.load(Ordering::Relaxed);
        if max > 0 && active >= max {
            self.shed_count.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let limit_us = self.queue_delay_max_us.load(Ordering::Relaxed);
        if limit_us > 0 && self.queue_delay.get() > limit_us {
            self.shed_count.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Total shed decisions taken.
    pub fn shed_count(&self) -> u64 {
        // Relaxed: monotonic counter read, reporting only.
        self.shed_count.load(Ordering::Relaxed)
    }

    /// Re-arms the active-connection limit (0 disables).
    pub fn set_max_active(&self, max: u64) {
        // Relaxed: independent knob; racing admissions may use either value.
        self.max_active.store(max, Ordering::Relaxed);
    }

    /// Re-arms the queue-delay limit (zero disables).
    pub fn set_queue_delay_max(&self, max: Duration) {
        // Relaxed: independent knob; racing admissions may use either value.
        self.queue_delay_max_us
            .store(max.as_micros() as u64, Ordering::Relaxed);
    }
}

/// The pre-rendered HTTP shed response: costs one `write`, no parsing, no
/// allocation — rejecting must be far cheaper than serving.
pub const HTTP_503_SHED: &[u8] = b"HTTP/1.1 503 Service Unavailable\r\n\
retry-after: 1\r\n\
connection: close\r\n\
content-length: 0\r\n\
\r\n";

/// The pre-rendered admission rejection: 429 (the *client* is over its
/// rate, distinct from the gate's 503 "the *instance* is overloaded")
/// with a Retry-After one admission window in the future.
pub const HTTP_429_ADMIT: &[u8] = b"HTTP/1.1 429 Too Many Requests\r\n\
retry-after: 1\r\n\
connection: close\r\n\
content-length: 0\r\n\
\r\n";

/// Shared resilience state for one service: breakers + budget + shed gate.
///
/// Hot-reloadable: [`Resilience::apply`] re-arms every threshold in place
/// from a freshly published [`ResilienceConfig`] — the config plane's
/// appliers call it on each `ConfigStore` publish, so new limits are in
/// force on the very next accept with zero connection churn.
#[derive(Debug)]
pub struct Resilience {
    /// The tunables last applied (boot config until the first reload).
    /// Guarded so [`Resilience::apply`] can diff-and-swap atomically with
    /// respect to [`Resilience::breaker`]'s lazy creation.
    config: RwLock<ResilienceConfig>,
    budget: RetryBudget,
    shed: LoadShedGate,
    admission: SlidingWindowLimiter,
    detector: StormDetector,
    breakers: RwLock<HashMap<SocketAddr, Arc<CircuitBreaker>>>,
    clock: Clock,
}

impl Resilience {
    /// A fresh layer on the system clock.
    pub fn new(config: ResilienceConfig) -> Self {
        Self::with_clock(config, Clock::system())
    }

    /// A fresh layer on a caller-supplied clock — tests pass
    /// [`Clock::mock`] and drive breaker windows on virtual time.
    pub fn with_clock(config: ResilienceConfig, clock: Clock) -> Self {
        Resilience {
            config: RwLock::new(config),
            budget: RetryBudget::new(config.budget),
            shed: LoadShedGate::new(config.shed),
            admission: SlidingWindowLimiter::new(config.admission),
            detector: StormDetector::new(config.protection),
            breakers: RwLock::new(HashMap::new()),
            clock,
        }
    }

    /// Applies a freshly published config to the live layer, in place:
    ///
    /// * shed gate limits re-armed via its runtime setters
    ///   (`ewma_alpha_permille` is boot-only — the EWMA keeps its α);
    /// * admission thresholds, storm-protection tunables, and retry-budget
    ///   deposit/cap re-armed through their `apply` hooks (table geometry
    ///   and the already-banked reserve are boot-only);
    /// * a *changed* breaker config drops the lazy breaker map, so every
    ///   upstream's next request recreates its breaker closed under the
    ///   new tunables. Unchanged breaker config keeps all live breaker
    ///   state — a no-op reload forgets nothing.
    ///
    /// In-flight requests that already hold a decision keep it; everything
    /// decided after this call uses the new thresholds.
    pub fn apply(&self, new: ResilienceConfig) {
        self.shed.set_max_active(new.shed.max_active);
        self.shed.set_queue_delay_max(new.shed.queue_delay_max);
        self.admission.apply(&new.admission);
        self.detector.apply(&new.protection);
        self.budget.apply(&new.budget);
        let breaker_changed = {
            let mut cur = self.config.write();
            let changed = cur.breaker != new.breaker;
            *cur = new;
            changed
        };
        if breaker_changed {
            self.breakers.write().clear();
        }
    }

    /// Monotonic milliseconds since this layer was created — the clock all
    /// breaker decisions use.
    pub fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// The layer's time source; services reuse it for queue-delay
    /// measurements so everything in one process shares a timeline.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The tunables currently in force (boot config until the first
    /// [`Resilience::apply`]).
    pub fn config(&self) -> ResilienceConfig {
        *self.config.read()
    }

    /// The cluster-wide retry budget.
    pub fn budget(&self) -> &RetryBudget {
        &self.budget
    }

    /// The accept-side shed gate.
    pub fn shed(&self) -> &LoadShedGate {
        &self.shed
    }

    /// The per-client admission limiter.
    pub fn admission(&self) -> &SlidingWindowLimiter {
        &self.admission
    }

    /// Admission check for one arriving connection from `peer`, run on the
    /// accept path **ahead of** the shed gate. Feeds the storm detector
    /// (so protection can arm/disarm), then rate-limits the client —
    /// with thresholds tightened while `draining` or while protection is
    /// engaged. Returns `false` when the arrival must be refused; the
    /// caller sends the protocol's cheap rejection ([`HTTP_429_ADMIT`],
    /// MQTT CONNACK ServerUnavailable, QUIC close) and bumps nothing —
    /// all counters are handled here.
    pub fn admit_client(&self, peer: SocketAddr, draining: bool, stats: &ProxyStats) -> bool {
        // Detector first: a connect flood must be able to arm protection
        // even while every arrival is still being admitted.
        self.protection_tick(stats);
        let tightened = draining || stats.protection.engaged();
        match self
            .admission
            .check(client_key(&peer.ip()), self.now_ms(), tightened)
        {
            AdmitDecision::Admitted => true,
            AdmitDecision::FailOpen => {
                stats.admit_fail_open.bump();
                true
            }
            AdmitDecision::Rejected => {
                stats.admit_rejected.bump();
                false
            }
        }
    }

    /// Feeds the storm detector one reading of the §2.5 storm signals off
    /// the live counters, folding any closed probe window into
    /// [`ProxyStats::protection`]. Called from every [`Resilience::admit_client`]
    /// and from the periodic stats sampler, so protection disarms even
    /// when the storm ends in silence. Arm/disarm edges bump their stats
    /// counters and land on the release timeline.
    pub fn protection_tick(&self, stats: &ProxyStats) -> Option<ProtectionTransition> {
        let totals = StormSignals {
            connects: stats.connections_accepted.get(),
            timeouts: stats.deadline_exceeded.get(),
            refusals: stats.load_shed.get() + stats.admit_rejected.get(),
            resets: stats.connections_reset.get(),
        };
        let edge = self
            .detector
            .observe(totals, self.now_ms(), &stats.protection);
        match edge {
            Some(ProtectionTransition::Armed(reason)) => {
                stats.protection_armed.bump();
                stats
                    .telemetry
                    .event(ReleasePhase::ProtectionArmed, 0, reason.name());
            }
            Some(ProtectionTransition::Disarmed) => {
                stats.protection_disarmed.bump();
                stats
                    .telemetry
                    .event(ReleasePhase::ProtectionDisarmed, 0, "stable windows reached");
            }
            Some(ProtectionTransition::Cooling) | None => {}
        }
        edge
    }

    /// A stable per-upstream key (for keyed fault injection).
    pub fn upstream_key(addr: SocketAddr) -> u64 {
        zdr_l4lb::hash::fnv1a(addr.to_string().as_bytes())
    }

    /// The breaker guarding `addr`, created closed on first use. Each
    /// breaker gets a per-address jitter seed so a fleet of breakers
    /// tripped by one event re-probes staggered, not in lockstep.
    pub fn breaker(&self, addr: SocketAddr) -> Arc<CircuitBreaker> {
        if let Some(b) = self.breakers.read().get(&addr) {
            return Arc::clone(b);
        }
        let mut cfg = self.config.read().breaker;
        let mut map = self.breakers.write();
        Arc::clone(map.entry(addr).or_insert_with(|| {
            cfg.jitter_seed ^= Self::upstream_key(addr);
            Arc::new(CircuitBreaker::new(cfg))
        }))
    }

    /// Admission check for one attempt against `addr`, bumping the probe
    /// counter when the breaker grants a half-open probe.
    pub fn admit(&self, addr: SocketAddr, stats: &ProxyStats) -> Admit {
        let decision = self.breaker(addr).admit(self.now_ms());
        if decision == Admit::Probe {
            stats.breaker_probes.bump();
        }
        decision
    }

    /// Records a successful attempt against `addr`: feeds the breaker and
    /// deposits into the retry budget.
    pub fn on_success(&self, addr: SocketAddr, stats: &ProxyStats) {
        self.budget.record_success();
        if let Some(BreakerTransition::Closed) = self.breaker(addr).record_success(self.now_ms()) {
            stats.breaker_closed.bump();
        }
    }

    /// Records a failed attempt against `addr`.
    pub fn on_failure(&self, addr: SocketAddr, stats: &ProxyStats) {
        if let Some(BreakerTransition::Opened) = self.breaker(addr).record_failure(self.now_ms()) {
            stats.breaker_opened.bump();
        }
    }

    /// Asks the budget to fund one retry (any attempt after the first),
    /// bumping the matching counters. `false` ⇒ fail fast, do not retry.
    pub fn try_retry(&self, stats: &ProxyStats) -> bool {
        if self.budget.try_withdraw() {
            stats.retries.bump();
            true
        } else {
            stats.retry_budget_exhausted.bump();
            false
        }
    }

    /// Addresses whose breaker currently admits traffic (closed, or far
    /// enough into its open window that a probe would be granted). A
    /// non-consuming peek — health views never claim probe slots.
    pub fn admitting<'a>(
        &self,
        addrs: impl IntoIterator<Item = &'a SocketAddr>,
    ) -> Vec<SocketAddr> {
        let now = self.now_ms();
        addrs
            .into_iter()
            .copied()
            .filter(|a| self.breaker(*a).would_admit(now))
            .collect()
    }
}

// not(loom): loom atomics panic outside a loom::model run; the shed-gate
// loom model lives in tests/loom.rs.
#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn addr(p: u16) -> SocketAddr {
        format!("127.0.0.1:{p}").parse().unwrap()
    }

    #[test]
    fn gate_fails_open_by_default() {
        let gate = LoadShedGate::new(ShedConfig::default());
        for active in [0, 1, 10, 1_000_000] {
            assert!(!gate.should_shed(active), "shed at {active} with no config");
        }
        assert_eq!(gate.shed_count(), 0);
    }

    #[test]
    fn gate_sheds_on_active_limit_but_never_at_zero() {
        let gate = LoadShedGate::new(ShedConfig {
            max_active: 5,
            ..Default::default()
        });
        assert!(!gate.should_shed(0), "must serve degraded, never nothing");
        assert!(!gate.should_shed(4));
        assert!(gate.should_shed(5));
        assert!(gate.should_shed(6));
        assert_eq!(gate.shed_count(), 2);
        gate.set_max_active(0);
        assert!(!gate.should_shed(100));
    }

    #[test]
    fn gate_sheds_on_queue_delay_ewma() {
        let gate = LoadShedGate::new(ShedConfig {
            queue_delay_max: Duration::from_millis(10),
            ewma_alpha_permille: 1000, // no smoothing: last sample wins
            ..Default::default()
        });
        gate.observe_queue_delay(Duration::from_millis(2));
        assert!(!gate.should_shed(3));
        gate.observe_queue_delay(Duration::from_millis(50));
        assert!(gate.should_shed(3));
        assert!(!gate.should_shed(0), "zero-active always admits");
        gate.observe_queue_delay(Duration::from_millis(1));
        assert!(!gate.should_shed(3));
        assert!(gate.queue_delay() <= Duration::from_millis(1));
    }

    #[test]
    fn breakers_are_per_address_with_distinct_seeds() {
        let r = Resilience::new(ResilienceConfig::default());
        let b1 = r.breaker(addr(9001));
        let b1_again = r.breaker(addr(9001));
        let b2 = r.breaker(addr(9002));
        assert!(Arc::ptr_eq(&b1, &b1_again));
        assert!(!Arc::ptr_eq(&b1, &b2));
        // Different per-address seeds ⇒ (almost surely) different windows.
        let distinct = (1..=8)
            .filter(|&e| b1.open_window_ms(e) != b2.open_window_ms(e))
            .count();
        assert!(distinct >= 6, "only {distinct}/8 windows differ");
    }

    #[test]
    fn success_and_failure_flow_through_to_stats() {
        // Mock clock: the open window elapses on virtual time, no sleeps.
        let clock = Clock::mock(0);
        let r = Resilience::with_clock(
            ResilienceConfig {
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    success_threshold: 1,
                    open_base_ms: 10,
                    ..Default::default()
                },
                ..Default::default()
            },
            clock.clone(),
        );
        let stats = ProxyStats::default();
        let a = addr(9100);

        r.on_failure(a, &stats);
        r.on_failure(a, &stats);
        assert_eq!(stats.breaker_opened.get(), 1);
        // Jittered window is at most 1.5 × base: step past it, then probe.
        clock.advance(Duration::from_millis(16));
        assert_eq!(r.admit(a, &stats), Admit::Probe);
        assert_eq!(stats.breaker_probes.get(), 1);
        r.on_success(a, &stats);
        assert_eq!(stats.breaker_closed.get(), 1);
        assert_eq!(r.admit(a, &stats), Admit::Yes);
    }

    #[test]
    fn retry_budget_counts_through_stats() {
        let r = Resilience::new(ResilienceConfig {
            budget: RetryBudgetConfig {
                reserve_tokens: 1,
                deposit_permille: 0,
                ..Default::default()
            },
            ..Default::default()
        });
        let stats = ProxyStats::default();
        assert!(r.try_retry(&stats));
        assert!(!r.try_retry(&stats));
        assert_eq!(stats.retries.get(), 1);
        assert_eq!(stats.retry_budget_exhausted.get(), 1);
    }

    #[test]
    fn admitting_filters_open_breakers() {
        let r = Resilience::new(ResilienceConfig {
            breaker: BreakerConfig {
                failure_threshold: 1,
                open_base_ms: 60_000,
                ..Default::default()
            },
            ..Default::default()
        });
        let stats = ProxyStats::default();
        let (a, b) = (addr(9201), addr(9202));
        r.on_failure(a, &stats);
        assert_eq!(r.admitting([a, b].iter()), vec![b]);
    }

    #[test]
    fn apply_rearms_shed_and_admission_in_place() {
        let r = Resilience::new(ResilienceConfig::default());
        let stats = ProxyStats::default();
        assert!(!r.shed().should_shed(1_000), "boot config fails open");
        let peer = addr(40_030);
        assert!(r.admit_client(peer, false, &stats));

        let mut next = r.config();
        next.shed.max_active = 10;
        next.admission.rate_per_window = 1;
        next.admission.window_ms = 60_000;
        r.apply(next);
        assert_eq!(r.config(), next);
        // The very next decisions use the new limits.
        assert!(r.shed().should_shed(10));
        assert!(
            !r.admit_client(peer, false, &stats),
            "client already spent the 1-per-window budget before the reload"
        );

        // Reload back to fail-open: both gates relax immediately.
        r.apply(ResilienceConfig::default());
        assert!(!r.shed().should_shed(1_000));
        assert!(r.admit_client(peer, false, &stats));
    }

    #[test]
    fn apply_keeps_breakers_unless_breaker_config_changed() {
        let r = Resilience::new(ResilienceConfig::default());
        let a = addr(40_040);
        let before = r.breaker(a);

        // Non-breaker reload: live breaker state survives.
        let mut next = r.config();
        next.shed.max_active = 5;
        r.apply(next);
        assert!(Arc::ptr_eq(&before, &r.breaker(a)));

        // Breaker reload: the map is dropped; the next request sees a
        // fresh closed breaker built from the new tunables.
        next.breaker.failure_threshold = 1;
        r.apply(next);
        let after = r.breaker(a);
        assert!(!Arc::ptr_eq(&before, &after));
        let stats = ProxyStats::default();
        r.on_failure(a, &stats);
        assert_eq!(
            stats.breaker_opened.get(),
            1,
            "one failure must trip the reloaded threshold"
        );
    }

    #[test]
    fn shed_response_is_parseable_http() {
        let text = std::str::from_utf8(HTTP_503_SHED).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 "));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn admit_response_is_parseable_http_and_distinct_from_shed() {
        let text = std::str::from_utf8(HTTP_429_ADMIT).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 "));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
        assert_ne!(HTTP_429_ADMIT, HTTP_503_SHED);
    }

    use zdr_core::admission::{AdmissionConfig, ProtectionConfig, StormReason};

    #[test]
    fn admit_client_rejects_over_rate_and_bumps_its_own_counter() {
        let r = Resilience::new(ResilienceConfig {
            admission: AdmissionConfig {
                rate_per_window: 2,
                window_ms: 60_000, // one window for the whole test
                ..Default::default()
            },
            ..Default::default()
        });
        let stats = ProxyStats::default();
        let peer = addr(40_001);
        assert!(r.admit_client(peer, false, &stats));
        assert!(r.admit_client(peer, false, &stats));
        assert!(!r.admit_client(peer, false, &stats), "third must refuse");
        // Distinct attribution (the satellite fix): admission rejects land
        // on admit_rejected, never on load_shed.
        assert_eq!(stats.admit_rejected.get(), 1);
        assert_eq!(stats.load_shed.get(), 0);
        // A different client is untouched.
        assert!(r.admit_client(addr(40_002), false, &stats));
    }

    #[test]
    fn admit_client_tightens_while_draining() {
        let r = Resilience::new(ResilienceConfig {
            admission: AdmissionConfig {
                rate_per_window: 4,
                window_ms: 60_000,
                tightened_permille: 500,
                ..Default::default()
            },
            ..Default::default()
        });
        let stats = ProxyStats::default();
        let peer = addr(40_010);
        assert!(r.admit_client(peer, true, &stats));
        assert!(r.admit_client(peer, true, &stats));
        assert!(
            !r.admit_client(peer, true, &stats),
            "drain halves the limit: 3rd of 4 must refuse"
        );
    }

    #[test]
    fn protection_arms_from_stats_deltas_and_disarms_on_quiet() {
        let clock = Clock::mock(0);
        let r = Resilience::with_clock(
            ResilienceConfig {
                protection: ProtectionConfig {
                    arm_threshold: 10,
                    disarm_successes: 2,
                    probe_window_ms: 100,
                },
                ..Default::default()
            },
            clock.clone(),
        );
        let stats = ProxyStats::default();
        // Baseline window.
        assert_eq!(r.protection_tick(&stats), None);
        // A refusal storm: shed + admission rejects spike inside one window.
        stats.connections_accepted.add(50);
        stats.load_shed.add(8);
        stats.admit_rejected.add(7);
        clock.advance(Duration::from_millis(120));
        let edge = r.protection_tick(&stats);
        assert!(
            matches!(
                edge,
                Some(ProtectionTransition::Armed(StormReason::RefusedStorm))
            ),
            "refusal spike must arm with refused_storm: {edge:?}"
        );
        assert!(stats.protection.engaged());
        assert_eq!(stats.protection_armed.get(), 1);
        // The arm edge landed on the release timeline with its reason.
        let timeline = stats.telemetry.snapshot().timeline;
        assert!(timeline.contains_sequence(&[ReleasePhase::ProtectionArmed]));
        assert_eq!(
            timeline.first(ReleasePhase::ProtectionArmed).unwrap().detail,
            "refused_storm"
        );

        // Two quiet windows: Cooling, then Disarmed.
        clock.advance(Duration::from_millis(120));
        assert_eq!(
            r.protection_tick(&stats),
            Some(ProtectionTransition::Cooling)
        );
        assert!(stats.protection.engaged(), "cooling stays tightened");
        clock.advance(Duration::from_millis(120));
        assert_eq!(
            r.protection_tick(&stats),
            Some(ProtectionTransition::Disarmed)
        );
        assert!(!stats.protection.engaged());
        assert_eq!(stats.protection_disarmed.get(), 1);
        assert!(stats
            .telemetry
            .snapshot()
            .timeline
            .contains_sequence(&[ReleasePhase::ProtectionArmed, ReleasePhase::ProtectionDisarmed]));
    }

    #[test]
    fn engaged_protection_tightens_admission() {
        let clock = Clock::mock(0);
        let r = Resilience::with_clock(
            ResilienceConfig {
                admission: AdmissionConfig {
                    rate_per_window: 4,
                    window_ms: 60_000,
                    tightened_permille: 500,
                    ..Default::default()
                },
                protection: ProtectionConfig {
                    arm_threshold: 5,
                    disarm_successes: 3,
                    probe_window_ms: 100,
                },
                ..Default::default()
            },
            clock.clone(),
        );
        let stats = ProxyStats::default();
        // Arm protection via a connect flood (nothing refused yet).
        r.protection_tick(&stats);
        stats.connections_accepted.add(20);
        clock.advance(Duration::from_millis(120));
        assert!(matches!(
            r.protection_tick(&stats),
            Some(ProtectionTransition::Armed(StormReason::ConnectFlood))
        ));
        // Not draining — but protection alone halves the client budget.
        let peer = addr(40_020);
        assert!(r.admit_client(peer, false, &stats));
        assert!(r.admit_client(peer, false, &stats));
        assert!(!r.admit_client(peer, false, &stats));
    }
}

//! `cargo xtask` — repo automation.
//!
//! Subcommands:
//!
//! * `lint` — walk every `.rs` file in the workspace and enforce the repo
//!   invariants (see [`lint`] for the rules), plus the cross-file
//!   protection-reason-rendered check. Exit code 1 on any violation, so
//!   CI can gate on it.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod lint;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        other => {
            eprintln!(
                "unknown subcommand {:?}\n\nusage: cargo xtask lint",
                other.unwrap_or("<none>")
            );
            ExitCode::from(2)
        }
    }
}

fn run_lint() -> ExitCode {
    // crates/xtask/ → crates/ → workspace root; independent of the cwd
    // cargo run was invoked from.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf();

    let mut files = Vec::new();
    collect_rs_files(&root, &mut files);
    files.sort();

    let mut violations = 0usize;
    let mut checked = 0usize;
    for file in files {
        let source = match std::fs::read_to_string(&file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}: unreadable: {e}", file.display());
                violations += 1;
                continue;
            }
        };
        let rel = file.strip_prefix(&root).unwrap_or(&file);
        match lint::lint_source(rel, &source) {
            Ok(found) => {
                checked += 1;
                for v in found {
                    println!("{v}");
                    violations += 1;
                }
            }
            Err(e) => {
                // A file rustc accepts must parse; surfacing this as a
                // failure keeps the linter honest about its coverage.
                eprintln!("{}: syn parse error: {e}", rel.display());
                violations += 1;
            }
        }
    }

    // Cross-file rule: every StormReason variant must be rendered as a
    // labelled /metrics series by the admin endpoint.
    let admission_rel = Path::new("crates/core/src/admission.rs");
    let admin_rel = Path::new("crates/proxy/src/admin.rs");
    match (
        std::fs::read_to_string(root.join(admission_rel)),
        std::fs::read_to_string(root.join(admin_rel)),
    ) {
        (Ok(admission_src), Ok(admin_src)) => {
            match lint::check_reason_rendering(admission_rel, &admission_src, &admin_src) {
                Ok(found) => {
                    for v in found {
                        println!("{v}");
                        violations += 1;
                    }
                }
                Err(e) => {
                    eprintln!("protection-reason-rendered: syn parse error: {e}");
                    violations += 1;
                }
            }
        }
        (a, b) => {
            for (rel, r) in [(admission_rel, &a), (admin_rel, &b)] {
                if let Err(e) = r {
                    eprintln!("{}: unreadable: {e}", rel.display());
                }
            }
            violations += 1;
        }
    }

    // Cross-check rule: every declared config field is rendered, and every
    // hot-reloadable field is validated (see lint::check_config_coverage).
    let config_rel = Path::new("crates/core/src/config.rs");
    match std::fs::read_to_string(root.join(config_rel)) {
        Ok(config_src) => match lint::check_config_coverage(config_rel, &config_src) {
            Ok(found) => {
                for v in found {
                    println!("{v}");
                    violations += 1;
                }
            }
            Err(e) => {
                eprintln!("config-coverage: syn parse error: {e}");
                violations += 1;
            }
        },
        Err(e) => {
            eprintln!("{}: unreadable: {e}", config_rel.display());
            violations += 1;
        }
    }

    if violations == 0 {
        println!("xtask lint: {checked} files clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {violations} violation(s)");
        ExitCode::FAILURE
    }
}

/// Recursively collects `.rs` files, skipping build output, VCS metadata,
/// and the linter's own seeded-violation fixtures.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

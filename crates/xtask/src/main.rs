//! `cargo xtask` — repo automation.
//!
//! Subcommands:
//!
//! * `lint` — walk every `.rs` file in the workspace and enforce the repo
//!   invariants (see [`lint`] for the rules), plus the cross-file
//!   protection-reason-rendered, span-kind-rendered, and config-coverage
//!   checks.
//! * `analyze` — build the heuristic cross-crate call graph and run the
//!   four data-plane passes (see [`analyze`]): async-blocking,
//!   await-holding-guard, deadline-coverage, panic-path. Flags:
//!   `--json` (machine-readable output), `--strict-index` (also flag
//!   slice indexing on panic paths).
//!
//! Exit codes, for both subcommands: `0` clean, `1` rule violations,
//! `2` parse/IO errors (reported even when violations are also present).
//! Diagnostics are sorted by `file:line` so CI diffs are stable.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod analyze;
mod lint;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some("analyze") => {
            let mut json = false;
            let mut strict_index = false;
            for flag in &args[1..] {
                match flag.as_str() {
                    "--json" => json = true,
                    "--strict-index" => strict_index = true,
                    other => {
                        eprintln!("unknown analyze flag {other:?}\n\nusage: cargo xtask analyze [--json] [--strict-index]");
                        return ExitCode::from(2);
                    }
                }
            }
            run_analyze(json, strict_index)
        }
        other => {
            eprintln!(
                "unknown subcommand {:?}\n\nusage: cargo xtask <lint|analyze>",
                other.unwrap_or("<none>")
            );
            ExitCode::from(2)
        }
    }
}

/// crates/xtask/ → crates/ → workspace root; independent of the cwd
/// cargo run was invoked from.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

/// Maps violation/error counts to the shared exit-code contract.
fn exit_for(violations: usize, errors: usize) -> ExitCode {
    if errors > 0 {
        ExitCode::from(2)
    } else if violations > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_lint() -> ExitCode {
    let root = workspace_root();

    let mut files = Vec::new();
    collect_rs_files(&root, &mut files);
    files.sort();

    let mut violations: Vec<lint::Violation> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    let mut checked = 0usize;
    // (file, variant, line) for every SpanKind recording in the
    // workspace — the inventory side of the span-kind-rendered rule.
    let mut span_sites: Vec<(PathBuf, String, usize)> = Vec::new();
    for file in files {
        let source = match std::fs::read_to_string(&file) {
            Ok(s) => s,
            Err(e) => {
                errors.push(format!("{}: unreadable: {e}", file.display()));
                continue;
            }
        };
        let rel = file.strip_prefix(&root).unwrap_or(&file);
        match lint::lint_source(rel, &source) {
            Ok(found) => {
                checked += 1;
                violations.extend(found);
                if let Ok(kinds) = lint::collect_recorded_span_kinds(&source) {
                    span_sites.extend(
                        kinds
                            .into_iter()
                            .map(|(variant, line)| (rel.to_path_buf(), variant, line)),
                    );
                }
            }
            Err(e) => {
                // A file rustc accepts must parse; surfacing this as a
                // failure keeps the linter honest about its coverage.
                errors.push(format!("{}: syn parse error: {e}", rel.display()));
            }
        }
    }

    // Cross-file rule: every StormReason variant must be rendered as a
    // labelled /metrics series by the admin endpoint.
    let admission_rel = Path::new("crates/core/src/admission.rs");
    let admin_rel = Path::new("crates/proxy/src/admin.rs");
    match (
        std::fs::read_to_string(root.join(admission_rel)),
        std::fs::read_to_string(root.join(admin_rel)),
    ) {
        (Ok(admission_src), Ok(admin_src)) => {
            match lint::check_reason_rendering(admission_rel, &admission_src, &admin_src) {
                Ok(found) => violations.extend(found),
                Err(e) => errors.push(format!("protection-reason-rendered: syn parse error: {e}")),
            }
        }
        (a, b) => {
            for (rel, r) in [(admission_rel, &a), (admin_rel, &b)] {
                if let Err(e) = r {
                    errors.push(format!("{}: unreadable: {e}", rel.display()));
                }
            }
        }
    }

    // Cross-file rule: every SpanKind recorded anywhere in the workspace
    // is rendered by the admin endpoint's kind_label — the /traces
    // labeller (see lint::check_span_kind_rendering).
    match std::fs::read_to_string(root.join(admin_rel)) {
        Ok(admin_src) => {
            match lint::check_span_kind_rendering(admin_rel, &admin_src, &span_sites) {
                Ok(found) => violations.extend(found),
                Err(e) => errors.push(format!("span-kind-rendered: syn parse error: {e}")),
            }
        }
        Err(e) => errors.push(format!("{}: unreadable: {e}", admin_rel.display())),
    }

    // Cross-check rule: every declared config field is rendered, and every
    // hot-reloadable field is validated (see lint::check_config_coverage).
    let config_rel = Path::new("crates/core/src/config.rs");
    match std::fs::read_to_string(root.join(config_rel)) {
        Ok(config_src) => match lint::check_config_coverage(config_rel, &config_src) {
            Ok(found) => violations.extend(found),
            Err(e) => errors.push(format!("config-coverage: syn parse error: {e}")),
        },
        Err(e) => errors.push(format!("{}: unreadable: {e}", config_rel.display())),
    }

    violations.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    errors.sort();
    for v in &violations {
        println!("{v}");
    }
    for e in &errors {
        eprintln!("{e}");
    }
    if violations.is_empty() && errors.is_empty() {
        println!("xtask lint: {checked} files clean");
    } else {
        eprintln!(
            "xtask lint: {} violation(s), {} error(s)",
            violations.len(),
            errors.len()
        );
    }
    exit_for(violations.len(), errors.len())
}

fn run_analyze(json: bool, strict_index: bool) -> ExitCode {
    let root = workspace_root();

    let mut files = Vec::new();
    collect_rs_files(&root, &mut files);
    files.sort();

    let mut io_errors: Vec<String> = Vec::new();
    let mut sources: Vec<(PathBuf, String)> = Vec::new();
    for file in files {
        let rel = file.strip_prefix(&root).unwrap_or(&file).to_path_buf();
        match std::fs::read_to_string(&file) {
            Ok(src) => sources.push((rel, src)),
            Err(e) => io_errors.push(format!("{}: unreadable: {e}", rel.display())),
        }
    }

    let options = analyze::AnalyzeOptions { strict_index };
    let mut outcome = analyze::analyze_sources(&sources, &options);
    outcome.errors.extend(io_errors);
    outcome.errors.sort();

    if json {
        print!("{}", analyze::render_json(&outcome));
        for e in &outcome.errors {
            eprintln!("{e}");
        }
    } else {
        for f in &outcome.findings {
            println!("{f}");
        }
        for e in &outcome.errors {
            eprintln!("{e}");
        }
        if outcome.findings.is_empty() && outcome.errors.is_empty() {
            println!("xtask analyze: {} files clean", sources.len());
        } else {
            eprintln!(
                "xtask analyze: {} finding(s), {} error(s)",
                outcome.findings.len(),
                outcome.errors.len()
            );
        }
    }
    exit_for(outcome.findings.len(), outcome.errors.len())
}

/// Recursively collects `.rs` files, skipping build output, VCS metadata,
/// and the linter's own seeded-violation fixtures.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

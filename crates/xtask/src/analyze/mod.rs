//! `cargo xtask analyze` — workspace-wide static analysis over a
//! heuristic cross-crate call graph.
//!
//! Four passes (DESIGN.md §12): async-blocking, await-holding-guard,
//! deadline-coverage, and panic-path. Findings are suppressed only by a
//! verified justification comment (`// BLOCKING-OK: <reason>`,
//! `// GUARD-OK: <reason>`, `// DEADLINE-OK: <reason>`,
//! `// PANIC-OK: <reason>`) — the marker must carry a non-empty reason,
//! either trailing on the flagged line or in the contiguous comment run
//! above the flagged line or its enclosing statement.

use std::collections::HashSet;
use std::fmt;
use std::path::PathBuf;

pub mod graph;
pub mod passes;

use passes::RawFinding;

#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyzeOptions {
    /// Also report slice/array indexing on data-plane panic paths. Off by
    /// default: the wire parsers index bounds-checked buffers constantly.
    pub strict_index: bool,
}

/// A user-facing diagnostic, printed as `file:line: [pass] message`.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: PathBuf,
    pub line: usize,
    pub pass: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.pass,
            self.message
        )
    }
}

#[derive(Debug, Default)]
pub struct AnalyzeOutcome {
    pub findings: Vec<Finding>,
    /// Parse/IO failures: these exit 2, distinct from rule violations.
    pub errors: Vec<String>,
}

fn marker_for(pass: &str) -> &'static str {
    match pass {
        passes::PASS_BLOCKING => "BLOCKING-OK:",
        passes::PASS_GUARD => "GUARD-OK:",
        passes::PASS_DEADLINE => "DEADLINE-OK:",
        _ => "PANIC-OK:",
    }
}

/// True when `text` contains `marker` followed by a non-empty reason.
fn line_has_marker(text: &str, marker: &str) -> bool {
    match text.find(marker) {
        Some(pos) => !text[pos + marker.len()..].trim().is_empty(),
        None => false,
    }
}

/// Scans the contiguous `//` comment run immediately above `anchor`
/// (1-based line) for a justified marker.
fn comment_run_has_marker(lines: &[String], anchor: usize, marker: &str) -> bool {
    let mut idx = anchor.saturating_sub(1); // 0-based index of the anchor line
    while idx > 0 {
        let text = lines[idx - 1].trim_start();
        if !text.starts_with("//") {
            return false;
        }
        if line_has_marker(text, marker) {
            return true;
        }
        idx -= 1;
    }
    false
}

fn suppressed(lines: &[String], line: usize, stmt_line: usize, marker: &str) -> bool {
    (line >= 1 && line <= lines.len() && line_has_marker(&lines[line - 1], marker))
        || comment_run_has_marker(lines, line, marker)
        || comment_run_has_marker(lines, stmt_line, marker)
}

struct FileEntry {
    path: PathBuf,
    crate_name: String,
    lines: Vec<String>,
    ast: syn::File,
}

/// Runs all four passes over `sources` (root-relative path + contents).
///
/// Files outside analyzed crates — `sim`, `bench`, `xtask`, integration
/// `tests/`, `benches/`, and anything not under `crates/` or `src/` —
/// are skipped: they never run on the data plane.
pub fn analyze_sources(sources: &[(PathBuf, String)], opts: &AnalyzeOptions) -> AnalyzeOutcome {
    let mut errors: Vec<String> = Vec::new();
    let mut files: Vec<FileEntry> = Vec::new();
    for (path, src) in sources {
        let Some(crate_name) = graph::crate_of(path) else {
            continue;
        };
        if matches!(crate_name.as_str(), "sim" | "bench" | "xtask") {
            continue;
        }
        if path
            .components()
            .any(|c| c.as_os_str() == "tests" || c.as_os_str() == "benches")
        {
            continue;
        }
        match syn::parse_file(src) {
            Ok(ast) => files.push(FileEntry {
                path: path.clone(),
                crate_name,
                lines: src.lines().map(String::from).collect(),
                ast,
            }),
            Err(e) => errors.push(format!("{}: parse error: {e}", path.display())),
        }
    }

    let field_map = graph::collect_fields(files.iter().map(|f| &f.ast));
    let mut fns = Vec::new();
    let mut raw: Vec<RawFinding> = Vec::new();
    for (idx, entry) in files.iter().enumerate() {
        let extractor = graph::Extractor::new(entry.crate_name.clone(), idx, &field_map);
        fns.extend(extractor.extract(&entry.ast));
        let mut guards = passes::GuardScan::new(idx);
        guards.run(&entry.ast);
        raw.extend(guards.findings);
    }
    let edges = graph::resolve(&fns);

    raw.extend(passes::async_blocking(&fns, &edges));
    let proxy_files: HashSet<usize> = files
        .iter()
        .enumerate()
        .filter(|(_, f)| f.path.starts_with("crates/proxy"))
        .map(|(i, _)| i)
        .collect();
    raw.extend(passes::deadline_coverage(&fns, &proxy_files));
    raw.extend(passes::panic_paths(&fns, &edges, opts.strict_index));

    let mut findings: Vec<Finding> = Vec::new();
    for r in raw {
        let lines = &files[r.file].lines;
        if suppressed(lines, r.line, r.stmt_line, marker_for(r.pass)) {
            continue;
        }
        findings.push(Finding {
            file: files[r.file].path.clone(),
            line: r.line,
            pass: r.pass,
            message: r.message,
        });
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.pass, &a.message).cmp(&(&b.file, b.line, b.pass, &b.message))
    });
    findings.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.pass == b.pass && a.message == b.message
    });
    errors.sort();
    AnalyzeOutcome { findings, errors }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Hand-rolled `--json` rendering (xtask deliberately has no serde).
pub fn render_json(outcome: &AnalyzeOutcome) -> String {
    let mut s = String::from("{\n  \"findings\": [");
    for (i, f) in outcome.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"pass\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file.display().to_string()),
            f.line,
            f.pass,
            json_escape(&f.message)
        ));
    }
    if !outcome.findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"errors\": [");
    for (i, e) in outcome.errors.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    \"{}\"", json_escape(e)));
    }
    if !outcome.errors.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_fixture(path: &str, src: &str, strict: bool) -> AnalyzeOutcome {
        analyze_sources(
            &[(PathBuf::from(path), src.to_string())],
            &AnalyzeOptions {
                strict_index: strict,
            },
        )
    }

    fn of_pass<'a>(outcome: &'a AnalyzeOutcome, pass: &str) -> Vec<&'a Finding> {
        outcome.findings.iter().filter(|f| f.pass == pass).collect()
    }

    const BLOCKING_FIXTURE: &str = include_str!("../../fixtures/analyze_blocking.rs");
    const GUARD_FIXTURE: &str = include_str!("../../fixtures/analyze_guard.rs");
    const DEADLINE_FIXTURE: &str = include_str!("../../fixtures/analyze_deadline.rs");
    const PANIC_FIXTURE: &str = include_str!("../../fixtures/analyze_panic.rs");

    #[test]
    fn blocking_pass_catches_direct_and_tainted_sites() {
        let outcome = analyze_fixture("crates/proxy/src/fix.rs", BLOCKING_FIXTURE, false);
        assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
        let blocking = of_pass(&outcome, passes::PASS_BLOCKING);
        assert_eq!(blocking.len(), 2, "{:#?}", outcome.findings);
        assert!(
            blocking.iter().any(|f| f.message.contains("serve_loop")),
            "direct async-context sleep must be flagged: {blocking:#?}"
        );
        assert!(
            blocking.iter().any(|f| f.message.contains("`nap`")),
            "sleep behind a sync helper must be flagged via taint: {blocking:#?}"
        );
    }

    #[test]
    fn blocking_pass_respects_spawn_blocking_and_suppression() {
        let outcome = analyze_fixture("crates/proxy/src/fix.rs", BLOCKING_FIXTURE, false);
        let blocking = of_pass(&outcome, passes::PASS_BLOCKING);
        assert!(
            !blocking.iter().any(|f| f.message.contains("offline_only")),
            "a sync fn never reached from async context is clean: {blocking:#?}"
        );
        // The suppressed site and the spawn_blocking closure contribute the
        // difference between "all sleeps" (4 in async context) and the two
        // reported ones.
        assert_eq!(blocking.len(), 2);
    }

    #[test]
    fn guard_pass_flags_live_guard_across_await() {
        let outcome = analyze_fixture("crates/proxy/src/fix.rs", GUARD_FIXTURE, false);
        assert!(outcome.errors.is_empty());
        let guard = of_pass(&outcome, passes::PASS_GUARD);
        assert_eq!(guard.len(), 1, "{:#?}", outcome.findings);
        assert!(guard[0].message.contains("`guard`"));
    }

    #[test]
    fn deadline_pass_flags_naked_connect_only() {
        let outcome = analyze_fixture("crates/proxy/src/fix_deadline.rs", DEADLINE_FIXTURE, false);
        assert!(outcome.errors.is_empty());
        let deadline = of_pass(&outcome, passes::PASS_DEADLINE);
        assert_eq!(deadline.len(), 1, "{:#?}", outcome.findings);
        assert!(deadline[0].message.contains("naked"));
    }

    #[test]
    fn deadline_pass_scoped_to_proxy_crate() {
        let outcome = analyze_fixture("crates/broker/src/fix.rs", DEADLINE_FIXTURE, false);
        assert!(of_pass(&outcome, passes::PASS_DEADLINE).is_empty());
    }

    #[test]
    fn panic_pass_reachability_and_suppression() {
        let outcome = analyze_fixture("crates/proxy/src/fix_panic.rs", PANIC_FIXTURE, false);
        assert!(outcome.errors.is_empty());
        let panics = of_pass(&outcome, passes::PASS_PANIC);
        assert_eq!(panics.len(), 1, "{:#?}", outcome.findings);
        assert!(panics[0].message.contains("parse_len"));
        assert!(panics[0].message.contains("serve_conn"));
    }

    #[test]
    fn strict_index_adds_indexing_sites() {
        let outcome = analyze_fixture("crates/proxy/src/fix_panic.rs", PANIC_FIXTURE, true);
        let panics = of_pass(&outcome, passes::PASS_PANIC);
        assert_eq!(panics.len(), 2, "{:#?}", outcome.findings);
        assert!(panics.iter().any(|f| f.message.contains("indexing")));
    }

    #[test]
    fn parse_errors_are_reported_as_errors_not_findings() {
        let outcome = analyze_fixture("crates/proxy/src/broken.rs", "fn broken( {", false);
        assert!(outcome.findings.is_empty());
        assert_eq!(outcome.errors.len(), 1);
        assert!(outcome.errors[0].contains("parse error"));
    }

    #[test]
    fn non_workspace_paths_are_ignored() {
        let outcome = analyze_fixture("scratch.rs", "fn ok() { panic!(\"x\") }", false);
        assert!(outcome.findings.is_empty());
        assert!(outcome.errors.is_empty());
    }

    #[test]
    fn test_files_and_excluded_crates_are_skipped() {
        for path in [
            "crates/proxy/tests/chaos.rs",
            "crates/sim/src/lib.rs",
            "crates/bench/src/main.rs",
            "crates/xtask/src/lint.rs",
        ] {
            let outcome = analyze_fixture(path, PANIC_FIXTURE, true);
            assert!(
                outcome.findings.is_empty(),
                "{path} should be outside the analyzer's scope"
            );
        }
    }

    #[test]
    fn findings_are_sorted_and_stable() {
        let sources = vec![
            (
                PathBuf::from("crates/proxy/src/fix_panic.rs"),
                PANIC_FIXTURE.to_string(),
            ),
            (
                PathBuf::from("crates/proxy/src/fix_blocking.rs"),
                BLOCKING_FIXTURE.to_string(),
            ),
        ];
        let outcome = analyze_sources(&sources, &AnalyzeOptions::default());
        let keys: Vec<(String, usize)> = outcome
            .findings
            .iter()
            .map(|f| (f.file.display().to_string(), f.line))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn real_mqtt_common_connect_is_deadline_bounded() {
        // The exemplar deadline idiom: its TcpStream::connect sits inside
        // tokio::time::timeout and must stay clean under pass 3.
        let src = include_str!("../../../proxy/src/mqtt_common.rs");
        let outcome = analyze_fixture("crates/proxy/src/mqtt_common.rs", src, false);
        assert!(outcome.errors.is_empty());
        let deadline = of_pass(&outcome, passes::PASS_DEADLINE);
        assert!(deadline.is_empty(), "{deadline:#?}");
    }

    #[test]
    fn json_rendering_escapes_and_shapes() {
        let outcome = AnalyzeOutcome {
            findings: vec![Finding {
                file: PathBuf::from("a.rs"),
                line: 3,
                pass: passes::PASS_PANIC,
                message: "`unwrap` on \"thing\"".to_string(),
            }],
            errors: vec!["b.rs: parse error: oops".to_string()],
        };
        let json = render_json(&outcome);
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("\\\"thing\\\""));
        assert!(json.contains("parse error"));
        let empty = render_json(&AnalyzeOutcome::default());
        assert!(empty.contains("\"findings\": []"));
    }

    #[test]
    fn suppression_requires_a_nonempty_reason() {
        let src = "async fn f() {\n    // BLOCKING-OK:\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n";
        let outcome = analyze_fixture("crates/proxy/src/fix.rs", src, false);
        assert_eq!(
            of_pass(&outcome, passes::PASS_BLOCKING).len(),
            1,
            "a bare marker with no reason must not suppress"
        );
    }
}

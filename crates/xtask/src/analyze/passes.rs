//! The four analysis passes over the extracted call graph.
//!
//! Each pass emits `RawFinding`s (pre-suppression); `mod.rs` applies the
//! per-pass justification markers (`// BLOCKING-OK:` etc.) before turning
//! them into user-facing findings.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};

use syn::spanned::Spanned;
use syn::visit::{self, Visit};

use super::graph::{is_cfg_test, Ctx, Edge, FnDef};

/// A pass result before suppression comments are considered.
#[derive(Debug, Clone)]
pub struct RawFinding {
    pub file: usize,
    pub line: usize,
    /// Statement anchor: a justification comment above the enclosing
    /// statement also suppresses the finding.
    pub stmt_line: usize,
    pub pass: &'static str,
    pub message: String,
}

pub const PASS_BLOCKING: &str = "async-blocking";
pub const PASS_GUARD: &str = "await-holding-guard";
pub const PASS_DEADLINE: &str = "deadline-coverage";
pub const PASS_PANIC: &str = "panic-path";

/// Crates whose functions count as data-plane code for the panic pass.
const DATA_PLANE_CRATES: &[&str] = &["proxy", "net", "appserver", "broker", "zdr"];

/// Function-name prefixes that mark data-plane entry points: accept
/// loops, per-connection servers, and takeover choreography.
const ENTRY_PREFIXES: &[&str] = &["serve", "accept", "handle_", "takeover", "relay", "spawn_"];

fn is_entry(f: &FnDef) -> bool {
    if !DATA_PLANE_CRATES.contains(&f.crate_name.as_str()) {
        return false;
    }
    if f.name == "main" {
        return true;
    }
    ENTRY_PREFIXES.iter().any(|p| f.name.starts_with(p))
}

/// Pass 1: blocking std calls reachable from async context.
///
/// A function is *async-tainted* if it is itself `async`, is called from
/// an async body (`Ctx::Async` edge), or is called with `Ctx::Inherit`
/// from a tainted function. `Ctx::BlockingAllowed` edges (spawn_blocking
/// / thread::spawn closures) never propagate taint.
pub fn async_blocking(fns: &[FnDef], edges: &[Edge]) -> Vec<RawFinding> {
    let mut tainted_by: HashMap<usize, String> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (idx, f) in fns.iter().enumerate() {
        if f.is_async {
            tainted_by.insert(idx, format!("async fn `{}`", f.qualified_name()));
            queue.push_back(idx);
        }
    }
    let mut inherit_out: HashMap<usize, Vec<usize>> = HashMap::new();
    for e in edges {
        match e.ctx {
            Ctx::Async => {
                if let Entry::Vacant(slot) = tainted_by.entry(e.callee) {
                    slot.insert(format!(
                        "async context in `{}`",
                        fns[e.caller].qualified_name()
                    ));
                    queue.push_back(e.callee);
                }
            }
            Ctx::Inherit => inherit_out.entry(e.caller).or_default().push(e.callee),
            Ctx::BlockingAllowed => {}
        }
    }
    while let Some(g) = queue.pop_front() {
        let witness = tainted_by.get(&g).cloned().unwrap_or_default();
        if let Some(callees) = inherit_out.get(&g) {
            for &callee in callees {
                if let Entry::Vacant(slot) = tainted_by.entry(callee) {
                    slot.insert(witness.clone());
                    queue.push_back(callee);
                }
            }
        }
    }

    let mut findings = Vec::new();
    for (idx, f) in fns.iter().enumerate() {
        for site in &f.blocking {
            let message = match site.ctx {
                Ctx::Async => format!(
                    "blocking call `{}` in async context in `{}`",
                    site.what,
                    f.qualified_name()
                ),
                Ctx::Inherit => match tainted_by.get(&idx) {
                    Some(witness) => format!(
                        "blocking call `{}` in `{}`, reachable from {witness}",
                        site.what,
                        f.qualified_name()
                    ),
                    None => continue,
                },
                Ctx::BlockingAllowed => continue,
            };
            findings.push(RawFinding {
                file: f.file,
                line: site.line,
                stmt_line: site.stmt_line,
                pass: PASS_BLOCKING,
                message,
            });
        }
    }
    findings
}

/// Pass 3: every outbound `TcpStream::connect` in the proxy crate must be
/// lexically inside a `timeout(...)` call (the `proto::deadline`-bounded
/// idiom), so no upstream hop can outlive `x-zdr-deadline`.
pub fn deadline_coverage(fns: &[FnDef], proxy_files: &HashSet<usize>) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    for f in fns {
        if !proxy_files.contains(&f.file) {
            continue;
        }
        for site in &f.connects {
            findings.push(RawFinding {
                file: f.file,
                line: site.line,
                stmt_line: site.stmt_line,
                pass: PASS_DEADLINE,
                message: format!(
                    "`{}` in `{}` is not deadline-bounded: wrap it in \
                     `tokio::time::timeout(deadline.remaining(..), ..)`",
                    site.what,
                    f.qualified_name()
                ),
            });
        }
    }
    findings
}

/// Pass 4: unwrap/expect/panic!-family sites reachable from data-plane
/// entry points. Reachability follows *all* edges regardless of context —
/// a panic inside a spawn_blocking task still kills that attempt.
pub fn panic_paths(fns: &[FnDef], edges: &[Edge], strict_index: bool) -> Vec<RawFinding> {
    let mut out: HashMap<usize, Vec<usize>> = HashMap::new();
    for e in edges {
        out.entry(e.caller).or_default().push(e.callee);
    }
    let mut reached_from: HashMap<usize, String> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (idx, f) in fns.iter().enumerate() {
        if is_entry(f) {
            reached_from.insert(idx, f.qualified_name());
            queue.push_back(idx);
        }
    }
    while let Some(g) = queue.pop_front() {
        let entry = reached_from.get(&g).cloned().unwrap_or_default();
        if let Some(callees) = out.get(&g) {
            for &callee in callees {
                if let Entry::Vacant(slot) = reached_from.entry(callee) {
                    slot.insert(entry.clone());
                    queue.push_back(callee);
                }
            }
        }
    }

    let mut findings = Vec::new();
    for (idx, f) in fns.iter().enumerate() {
        let Some(entry) = reached_from.get(&idx) else {
            continue;
        };
        for site in &f.panics {
            if site.strict_only && !strict_index {
                continue;
            }
            findings.push(RawFinding {
                file: f.file,
                line: site.line,
                stmt_line: site.stmt_line,
                pass: PASS_PANIC,
                message: format!(
                    "`{}` in `{}` is reachable from data-plane entry `{entry}`",
                    site.what,
                    f.qualified_name()
                ),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Pass 2: sync lock guard held across an `.await` point.
// ---------------------------------------------------------------------------

/// Finds the first `.await` in a statement subtree, not descending into
/// nested `async` blocks or closures (their awaits belong to a different
/// execution scope).
struct AwaitFinder {
    line: Option<usize>,
}

impl<'ast> Visit<'ast> for AwaitFinder {
    fn visit_expr_async(&mut self, _: &'ast syn::ExprAsync) {}
    fn visit_expr_closure(&mut self, _: &'ast syn::ExprClosure) {}
    fn visit_expr_await(&mut self, i: &'ast syn::ExprAwait) {
        if self.line.is_none() {
            self.line = Some(i.await_token.span().start().line);
        }
        visit::visit_expr_await(self, i);
    }
}

fn first_await_line(stmt: &syn::Stmt) -> Option<usize> {
    let mut finder = AwaitFinder { line: None };
    finder.visit_stmt(stmt);
    finder.line
}

/// Returns the lock-method line if `expr` is a sync lock acquisition:
/// `x.lock()`, `x.read()`, `x.write()`, optionally wrapped in
/// `unwrap`/`expect`/`?`. An awaited acquisition (`x.lock().await`) is an
/// async mutex, whose guard is designed to live across awaits.
fn lock_guard_init(expr: &syn::Expr) -> Option<usize> {
    match expr {
        syn::Expr::MethodCall(m) => match m.method.to_string().as_str() {
            "lock" | "read" | "write" => Some(m.method.span().start().line),
            "unwrap" | "expect" => lock_guard_init(&m.receiver),
            _ => None,
        },
        syn::Expr::Try(t) => lock_guard_init(&t.expr),
        syn::Expr::Reference(r) => lock_guard_init(&r.expr),
        syn::Expr::Await(_) => None,
        _ => None,
    }
}

/// Scans one async body linearly: tracks guards bound by top-level `let`
/// statements and reports any later statement containing an `.await`
/// while a guard is still live. `drop(guard)` and end-of-block release
/// guards; branch-sensitive drops and guards confined to nested blocks
/// are out of scope (see DESIGN.md §12).
fn scan_async_block(block: &syn::Block, file: usize, findings: &mut Vec<RawFinding>) {
    let mut live: Vec<(String, usize)> = Vec::new();
    for stmt in &block.stmts {
        if let Some(await_line) = first_await_line(stmt) {
            for (guard, guard_line) in &live {
                findings.push(RawFinding {
                    file,
                    line: await_line,
                    stmt_line: stmt.span().start().line,
                    pass: PASS_GUARD,
                    message: format!(
                        "`.await` while sync lock guard `{guard}` \
                         (acquired on line {guard_line}) is still live"
                    ),
                });
            }
        }
        match stmt {
            syn::Stmt::Local(local) => {
                if let Some(init) = &local.init {
                    if let Some(guard_line) = lock_guard_init(&init.expr) {
                        let name = match &local.pat {
                            syn::Pat::Ident(p) => Some(p.ident.to_string()),
                            syn::Pat::Type(t) => match &*t.pat {
                                syn::Pat::Ident(p) => Some(p.ident.to_string()),
                                _ => None,
                            },
                            _ => None,
                        };
                        if let Some(name) = name {
                            live.push((name, guard_line));
                        }
                    }
                }
            }
            syn::Stmt::Expr(syn::Expr::Call(call), _) => {
                if let syn::Expr::Path(p) = &*call.func {
                    if p.path.is_ident("drop") && call.args.len() == 1 {
                        if let syn::Expr::Path(arg) = &call.args[0] {
                            if let Some(ident) = arg.path.get_ident() {
                                let name = ident.to_string();
                                live.retain(|(g, _)| *g != name);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// The per-file visitor for pass 2: finds async fn bodies and async
/// blocks (each `async {}` is its own scan root), skipping test code.
pub struct GuardScan {
    file: usize,
    pub findings: Vec<RawFinding>,
}

impl GuardScan {
    pub fn new(file: usize) -> Self {
        GuardScan {
            file,
            findings: Vec::new(),
        }
    }

    pub fn run(&mut self, file: &syn::File) {
        self.visit_file(file);
    }
}

impl<'ast> Visit<'ast> for GuardScan {
    fn visit_item_mod(&mut self, i: &'ast syn::ItemMod) {
        if is_cfg_test(&i.attrs) {
            return;
        }
        visit::visit_item_mod(self, i);
    }

    fn visit_item_fn(&mut self, i: &'ast syn::ItemFn) {
        if i.sig.asyncness.is_some() {
            scan_async_block(&i.block, self.file, &mut self.findings);
        }
        visit::visit_item_fn(self, i);
    }

    fn visit_impl_item_fn(&mut self, i: &'ast syn::ImplItemFn) {
        if i.sig.asyncness.is_some() {
            scan_async_block(&i.block, self.file, &mut self.findings);
        }
        visit::visit_impl_item_fn(self, i);
    }

    fn visit_expr_async(&mut self, i: &'ast syn::ExprAsync) {
        scan_async_block(&i.block, self.file, &mut self.findings);
        visit::visit_expr_async(self, i);
    }
}

//! Cross-crate call-graph extraction for `cargo xtask analyze`.
//!
//! One syn pass over every workspace source file records, per function:
//! the calls it makes (with enough path/receiver context to resolve them
//! heuristically), the blocking/panic/connect sites inside it, and the
//! execution context each site runs under (async, inherited from the
//! caller, or explicitly blocking-allowed via `spawn_blocking` /
//! `thread::spawn`). Resolution into edges happens after all files are
//! extracted, so cross-crate calls link up by name + receiver-type
//! heuristics documented in DESIGN.md §12.

use std::collections::HashMap;
use std::path::Path;

use syn::spanned::Spanned;
use syn::visit::{self, Visit};

/// The execution context a call or blocking site occurs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ctx {
    /// Lexically inside an `async fn` body or `async {}` block.
    Async,
    /// Inside a sync fn body: asyncness is inherited from whoever calls it.
    Inherit,
    /// Inside a `spawn_blocking` / `thread::spawn` closure: blocking is fine.
    BlockingAllowed,
}

/// A site that may block the executor (pass 1).
#[derive(Debug, Clone)]
pub struct Site {
    pub line: usize,
    pub stmt_line: usize,
    pub what: String,
    pub ctx: Ctx,
}

/// A site that may panic (pass 4).
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub line: usize,
    pub stmt_line: usize,
    pub what: String,
    /// Indexing sites are only reported under `--strict-index`.
    pub strict_only: bool,
}

/// How a call site names its callee.
#[derive(Debug, Clone)]
pub enum CalleeRef {
    /// A path call: `foo()`, `module::foo()`, `zdr_net::takeover::request()`.
    /// Segments are already expanded through the file's `use` map.
    Free { path: Vec<String> },
    /// A qualified call: `Type::method()`.
    Typed { ty: String, method: String },
    /// A method call: `recv.method()`, with the receiver type when inferable.
    Method {
        method: String,
        recv_ty: Option<String>,
    },
}

#[derive(Debug, Clone)]
pub struct CallSite {
    pub callee: CalleeRef,
    pub ctx: Ctx,
}

/// One extracted function (free fn, inherent/trait method, or default body).
#[derive(Debug, Clone)]
pub struct FnDef {
    pub crate_name: String,
    pub file: usize, // index into the file table held by the caller
    pub line: usize,
    pub name: String,
    pub self_ty: Option<String>,
    pub is_async: bool,
    pub calls: Vec<CallSite>,
    pub blocking: Vec<Site>,
    pub connects: Vec<Site>,
    pub panics: Vec<PanicSite>,
}

impl FnDef {
    /// `Type::method` or bare name, for diagnostics.
    pub fn qualified_name(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    pub caller: usize,
    pub callee: usize,
    pub ctx: Ctx,
}

/// Path roots that never resolve to workspace functions. Note `core` here
/// is the *language* core library — our `core` crate is imported as
/// `zdr_core`, so the bare root is unambiguous.
const EXTERNAL_ROOTS: &[&str] = &[
    "std",
    "core",
    "alloc",
    "tokio",
    "parking_lot",
    "serde",
    "serde_json",
    "libc",
    "rand",
    "futures",
    "bytes",
    "loom",
    "proc_macro2",
    "quote",
    "syn",
    "crossbeam",
];

/// Maps a `use`/path crate root to a workspace crate directory name.
fn workspace_crate_of_root(root: &str) -> Option<String> {
    if root == "zero_downtime_release" {
        return Some("zdr".to_string());
    }
    root.strip_prefix("zdr_").map(|rest| rest.to_string())
}

/// Maps a root-relative file path to its workspace crate name, or `None`
/// for files that are not part of an analyzed crate.
pub fn crate_of(rel: &Path) -> Option<String> {
    let comps: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    match comps.first().map(String::as_str) {
        Some("crates") => comps.get(1).cloned(),
        Some("src") => Some("zdr".to_string()),
        _ => None,
    }
}

/// Strips references and transparent smart pointers down to the type name
/// that methods actually dispatch on.
fn type_last_seg(ty: &syn::Type) -> Option<String> {
    match ty {
        syn::Type::Reference(r) => type_last_seg(&r.elem),
        syn::Type::Paren(p) => type_last_seg(&p.elem),
        syn::Type::Group(g) => type_last_seg(&g.elem),
        syn::Type::Path(p) => {
            let seg = p.path.segments.last()?;
            let name = seg.ident.to_string();
            if matches!(name.as_str(), "Arc" | "Box" | "Rc") {
                if let syn::PathArguments::AngleBracketed(args) = &seg.arguments {
                    for arg in &args.args {
                        if let syn::GenericArgument::Type(t) = arg {
                            return type_last_seg(t);
                        }
                    }
                }
                Some(name)
            } else {
                Some(name)
            }
        }
        _ => None,
    }
}

/// Collects `use` aliases: local name -> full segment chain. Globs are
/// ignored (we cannot know what they bring in).
fn collect_use_tree(
    tree: &syn::UseTree,
    prefix: &mut Vec<String>,
    map: &mut HashMap<String, Vec<String>>,
) {
    match tree {
        syn::UseTree::Path(p) => {
            prefix.push(p.ident.to_string());
            collect_use_tree(&p.tree, prefix, map);
            prefix.pop();
        }
        syn::UseTree::Name(n) => {
            let mut full = prefix.clone();
            full.push(n.ident.to_string());
            map.insert(n.ident.to_string(), full);
        }
        syn::UseTree::Rename(r) => {
            let mut full = prefix.clone();
            full.push(r.ident.to_string());
            map.insert(r.rename.to_string(), full);
        }
        syn::UseTree::Group(g) => {
            for item in &g.items {
                collect_use_tree(item, prefix, map);
            }
        }
        syn::UseTree::Glob(_) => {}
    }
}

struct UseCollector {
    map: HashMap<String, Vec<String>>,
}

impl<'ast> Visit<'ast> for UseCollector {
    fn visit_item_use(&mut self, i: &'ast syn::ItemUse) {
        let mut prefix = Vec::new();
        collect_use_tree(&i.tree, &mut prefix, &mut self.map);
    }
}

/// `#[cfg(test)]` / `#[cfg(all(test, ...))]` detection, same word-match
/// shape as the linter's.
pub fn is_cfg_test(attrs: &[syn::Attribute]) -> bool {
    use quote::ToTokens;
    attrs.iter().any(|attr| {
        if !attr.path().is_ident("cfg") {
            return false;
        }
        let tokens = attr.to_token_stream().to_string();
        tokens
            .split(|c: char| !c.is_alphanumeric() && c != '_')
            .any(|word| word == "test")
    })
}

fn is_test_fn(attrs: &[syn::Attribute]) -> bool {
    attrs.iter().any(|attr| {
        let path = attr.path();
        path.is_ident("test") || path.segments.last().is_some_and(|s| s.ident == "test")
    })
}

/// Phase A: global struct-field type map (`struct -> field -> type name`),
/// used for receiver-type inference on `self.field.method()` chains.
pub struct FieldMap {
    pub fields: HashMap<String, HashMap<String, String>>,
}

struct FieldCollector {
    fields: HashMap<String, HashMap<String, String>>,
    test_mod_depth: usize,
}

impl<'ast> Visit<'ast> for FieldCollector {
    fn visit_item_mod(&mut self, i: &'ast syn::ItemMod) {
        let test = is_cfg_test(&i.attrs);
        if test {
            self.test_mod_depth += 1;
        }
        if !test {
            visit::visit_item_mod(self, i);
        }
        if test {
            self.test_mod_depth -= 1;
        }
    }

    fn visit_item_struct(&mut self, i: &'ast syn::ItemStruct) {
        if self.test_mod_depth > 0 {
            return;
        }
        let entry = self.fields.entry(i.ident.to_string()).or_default();
        if let syn::Fields::Named(named) = &i.fields {
            for field in &named.named {
                if let (Some(ident), Some(ty)) = (&field.ident, type_last_seg(&field.ty)) {
                    entry.insert(ident.to_string(), ty);
                }
            }
        }
    }
}

/// Collects the field map across a set of parsed files.
pub fn collect_fields<'a>(files: impl Iterator<Item = &'a syn::File>) -> FieldMap {
    let mut collector = FieldCollector {
        fields: HashMap::new(),
        test_mod_depth: 0,
    };
    for file in files {
        collector.visit_file(file);
    }
    FieldMap {
        fields: collector.fields,
    }
}

/// Blocking std::net verbs. `bind` is deliberately exempt: binding a
/// listener is a local, non-routing syscall the takeover path performs
/// on purpose before handing it to the runtime.
const NET_BLOCKING_VERBS: &[&str] = &[
    "connect",
    "accept",
    "read",
    "write",
    "recv",
    "recv_from",
    "send",
    "send_to",
    "peek",
];

const PROCESS_BLOCKING_VERBS: &[&str] = &["output", "status", "wait", "spawn"];

/// The per-file extraction visitor.
pub struct Extractor<'f> {
    crate_name: String,
    file_idx: usize,
    use_map: HashMap<String, Vec<String>>,
    /// Lock type names this file imported from `std::sync` (facade and
    /// parking_lot imports are exempt by construction).
    std_sync_locks: Vec<String>,
    field_map: &'f FieldMap,
    pub fns: Vec<FnDef>,
    // --- stacks ---
    fn_stack: Vec<usize>,
    ctx_stack: Vec<Ctx>,
    impl_ty: Vec<Option<String>>,
    stmt_lines: Vec<usize>,
    locals: Vec<HashMap<String, String>>,
    test_mod_depth: usize,
    timeout_depth: usize,
}

impl<'f> Extractor<'f> {
    pub fn new(crate_name: String, file_idx: usize, field_map: &'f FieldMap) -> Self {
        Extractor {
            crate_name,
            file_idx,
            use_map: HashMap::new(),
            std_sync_locks: Vec::new(),
            field_map,
            fns: Vec::new(),
            fn_stack: Vec::new(),
            ctx_stack: Vec::new(),
            impl_ty: Vec::new(),
            stmt_lines: Vec::new(),
            locals: Vec::new(),
            test_mod_depth: 0,
            timeout_depth: 0,
        }
    }

    pub fn extract(mut self, file: &syn::File) -> Vec<FnDef> {
        let mut uses = UseCollector {
            map: HashMap::new(),
        };
        uses.visit_file(file);
        for (alias, full) in &uses.map {
            if full.len() >= 3
                && full[0] == "std"
                && full[1] == "sync"
                && matches!(full.last().map(String::as_str), Some("Mutex" | "RwLock"))
            {
                self.std_sync_locks.push(alias.clone());
            }
        }
        self.use_map = uses.map;
        self.visit_file(file);
        self.fns
    }

    fn effective_ctx(&self) -> Ctx {
        self.ctx_stack.last().copied().unwrap_or(Ctx::Inherit)
    }

    fn cur_fn(&mut self) -> Option<&mut FnDef> {
        let idx = *self.fn_stack.last()?;
        self.fns.get_mut(idx)
    }

    fn anchor_line(&self, line: usize) -> usize {
        self.stmt_lines.last().copied().unwrap_or(line)
    }

    /// Expands a path through the file's `use` map and the enclosing
    /// `impl` type (for `Self::`).
    fn expand_path(&self, path: &syn::Path) -> Vec<String> {
        let mut segs: Vec<String> = path.segments.iter().map(|s| s.ident.to_string()).collect();
        if let Some(first) = segs.first() {
            if first == "Self" {
                if let Some(Some(ty)) = self.impl_ty.last() {
                    segs[0] = ty.clone();
                }
            } else if let Some(full) = self.use_map.get(first) {
                let mut expanded = full.clone();
                expanded.extend(segs.iter().skip(1).cloned());
                segs = expanded;
            }
        }
        segs
    }

    /// Best-effort receiver type for a method call.
    fn recv_type(&self, expr: &syn::Expr) -> Option<String> {
        match expr {
            syn::Expr::Path(p) => {
                if p.path.segments.len() != 1 {
                    return None;
                }
                let name = p.path.segments[0].ident.to_string();
                if name == "self" {
                    return self.impl_ty.last().cloned().flatten();
                }
                for scope in self.locals.iter().rev() {
                    if let Some(ty) = scope.get(&name) {
                        return Some(ty.clone());
                    }
                }
                None
            }
            syn::Expr::Field(f) => {
                let base = self.recv_type(&f.base)?;
                let member = match &f.member {
                    syn::Member::Named(ident) => ident.to_string(),
                    syn::Member::Unnamed(_) => return None,
                };
                self.field_map.fields.get(&base)?.get(&member).cloned()
            }
            syn::Expr::MethodCall(m)
                if matches!(
                    m.method.to_string().as_str(),
                    "clone" | "as_ref" | "as_mut" | "borrow" | "to_owned"
                ) =>
            {
                self.recv_type(&m.receiver)
            }
            syn::Expr::Reference(r) => self.recv_type(&r.expr),
            syn::Expr::Paren(p) => self.recv_type(&p.expr),
            syn::Expr::Unary(u) => self.recv_type(&u.expr),
            _ => None,
        }
    }

    /// Infers a local's type from its initializer: `Ty::ctor(..)`,
    /// `Ty { .. }`, or a clone of a known local.
    fn init_type(&self, expr: &syn::Expr) -> Option<String> {
        match expr {
            syn::Expr::Call(call) => {
                if let syn::Expr::Path(p) = &*call.func {
                    let segs = self.expand_path(&p.path);
                    if segs.len() >= 2 {
                        let ty = &segs[segs.len() - 2];
                        if ty.chars().next().is_some_and(|c| c.is_uppercase()) {
                            return Some(ty.clone());
                        }
                    }
                }
                None
            }
            syn::Expr::Struct(s) => s
                .path
                .segments
                .last()
                .map(|seg| seg.ident.to_string())
                .filter(|name| name != "Self"),
            syn::Expr::MethodCall(m) if m.method == "clone" => self.recv_type(&m.receiver),
            syn::Expr::Reference(r) => self.init_type(&r.expr),
            _ => None,
        }
    }

    fn record_local_type(&mut self, local: &syn::Local) {
        let name = match &local.pat {
            syn::Pat::Ident(p) => p.ident.to_string(),
            syn::Pat::Type(t) => {
                if let syn::Pat::Ident(p) = &*t.pat {
                    let name = p.ident.to_string();
                    if let Some(ty) = type_last_seg(&t.ty) {
                        if let Some(scope) = self.locals.last_mut() {
                            scope.insert(name, ty);
                        }
                    }
                    return;
                }
                return;
            }
            _ => return,
        };
        if let Some(init) = &local.init {
            if let Some(ty) = self.init_type(&init.expr) {
                if let Some(scope) = self.locals.last_mut() {
                    scope.insert(name, ty);
                }
            }
        }
    }

    fn enter_fn(
        &mut self,
        name: String,
        line: usize,
        is_async: bool,
        self_ty: Option<String>,
        inputs: &syn::punctuated::Punctuated<syn::FnArg, syn::Token![,]>,
    ) {
        let mut locals = HashMap::new();
        for input in inputs {
            if let syn::FnArg::Typed(pat_ty) = input {
                if let syn::Pat::Ident(p) = &*pat_ty.pat {
                    if let Some(ty) = type_last_seg(&pat_ty.ty) {
                        locals.insert(p.ident.to_string(), ty);
                    }
                }
            }
        }
        self.fns.push(FnDef {
            crate_name: self.crate_name.clone(),
            file: self.file_idx,
            line,
            name,
            self_ty,
            is_async,
            calls: Vec::new(),
            blocking: Vec::new(),
            connects: Vec::new(),
            panics: Vec::new(),
        });
        self.fn_stack.push(self.fns.len() - 1);
        self.ctx_stack
            .push(if is_async { Ctx::Async } else { Ctx::Inherit });
        self.locals.push(locals);
    }

    fn exit_fn(&mut self) {
        self.fn_stack.pop();
        self.ctx_stack.pop();
        self.locals.pop();
    }

    fn record_call(&mut self, callee: CalleeRef) {
        let ctx = self.effective_ctx();
        if let Some(f) = self.cur_fn() {
            f.calls.push(CallSite { callee, ctx });
        }
    }

    fn record_blocking(&mut self, line: usize, what: String) {
        let ctx = self.effective_ctx();
        let stmt_line = self.anchor_line(line);
        if let Some(f) = self.cur_fn() {
            f.blocking.push(Site {
                line,
                stmt_line,
                what,
                ctx,
            });
        }
    }

    fn record_connect(&mut self, line: usize, what: String) {
        let ctx = self.effective_ctx();
        let stmt_line = self.anchor_line(line);
        if let Some(f) = self.cur_fn() {
            f.connects.push(Site {
                line,
                stmt_line,
                what,
                ctx,
            });
        }
    }

    fn record_panic(&mut self, line: usize, what: String, strict_only: bool) {
        let stmt_line = self.anchor_line(line);
        if let Some(f) = self.cur_fn() {
            f.panics.push(PanicSite {
                line,
                stmt_line,
                what,
                strict_only,
            });
        }
    }

    /// Checks an expanded path against the blocking-call table.
    fn blocking_what(&self, segs: &[String]) -> Option<String> {
        let last = segs.last()?.as_str();
        if segs.len() >= 2 && segs[0] == "std" && segs[1] == "fs" {
            return Some(segs.join("::"));
        }
        if segs.len() >= 2
            && segs[0] == "std"
            && segs[1] == "net"
            && NET_BLOCKING_VERBS.contains(&last)
        {
            return Some(segs.join("::"));
        }
        // `std::thread::sleep` and the `core::sync` facade's re-export
        // (`zdr_core::sync::thread::sleep`) both block a worker thread.
        if last == "sleep" && segs.len() >= 2 && segs[segs.len() - 2] == "thread" {
            return Some(segs.join("::"));
        }
        if segs.len() >= 3
            && segs[0] == "std"
            && segs[1] == "process"
            && PROCESS_BLOCKING_VERBS.contains(&last)
        {
            return Some(segs.join("::"));
        }
        None
    }

    fn is_spawn_blocking_path(segs: &[String]) -> bool {
        match segs.last().map(String::as_str) {
            Some("spawn_blocking") => true,
            Some("spawn") => segs.len() >= 2 && segs[segs.len() - 2] == "thread",
            _ => false,
        }
    }

    fn in_test_context(&self) -> bool {
        self.test_mod_depth > 0
    }
}

impl<'ast, 'f> Visit<'ast> for Extractor<'f> {
    fn visit_item_mod(&mut self, i: &'ast syn::ItemMod) {
        if is_cfg_test(&i.attrs) {
            return; // test modules contribute nothing to the graph
        }
        visit::visit_item_mod(self, i);
    }

    fn visit_item_impl(&mut self, i: &'ast syn::ItemImpl) {
        let ty = type_last_seg(&i.self_ty);
        self.impl_ty.push(ty);
        visit::visit_item_impl(self, i);
        self.impl_ty.pop();
    }

    fn visit_item_fn(&mut self, i: &'ast syn::ItemFn) {
        if self.in_test_context() || is_test_fn(&i.attrs) {
            return;
        }
        self.enter_fn(
            i.sig.ident.to_string(),
            i.sig.ident.span().start().line,
            i.sig.asyncness.is_some(),
            None,
            &i.sig.inputs,
        );
        self.visit_block(&i.block);
        self.exit_fn();
    }

    fn visit_impl_item_fn(&mut self, i: &'ast syn::ImplItemFn) {
        if self.in_test_context() || is_test_fn(&i.attrs) {
            return;
        }
        let self_ty = self.impl_ty.last().cloned().flatten();
        self.enter_fn(
            i.sig.ident.to_string(),
            i.sig.ident.span().start().line,
            i.sig.asyncness.is_some(),
            self_ty,
            &i.sig.inputs,
        );
        self.visit_block(&i.block);
        self.exit_fn();
    }

    fn visit_trait_item_fn(&mut self, i: &'ast syn::TraitItemFn) {
        if self.in_test_context() || is_test_fn(&i.attrs) {
            return;
        }
        if let Some(block) = &i.default {
            self.enter_fn(
                i.sig.ident.to_string(),
                i.sig.ident.span().start().line,
                i.sig.asyncness.is_some(),
                None,
                &i.sig.inputs,
            );
            self.visit_block(block);
            self.exit_fn();
        }
    }

    fn visit_stmt(&mut self, i: &'ast syn::Stmt) {
        self.stmt_lines.push(i.span().start().line);
        if let syn::Stmt::Local(local) = i {
            self.record_local_type(local);
        }
        visit::visit_stmt(self, i);
        self.stmt_lines.pop();
    }

    fn visit_expr_async(&mut self, i: &'ast syn::ExprAsync) {
        self.ctx_stack.push(Ctx::Async);
        visit::visit_expr_async(self, i);
        self.ctx_stack.pop();
    }

    fn visit_expr_call(&mut self, i: &'ast syn::ExprCall) {
        let mut spawn_blocking = false;
        let mut is_timeout = false;
        if let syn::Expr::Path(p) = &*i.func {
            let segs = self.expand_path(&p.path);
            if let Some(last) = segs.last() {
                is_timeout = last == "timeout";
            }
            spawn_blocking = Self::is_spawn_blocking_path(&segs);
            if let Some(what) = self.blocking_what(&segs) {
                self.record_blocking(p.path.span().start().line, what);
            }
            if segs.len() >= 2
                && segs[segs.len() - 2] == "TcpStream"
                && segs.last().map(String::as_str) == Some("connect")
                && self.timeout_depth == 0
            {
                self.record_connect(p.path.span().start().line, "TcpStream::connect".to_string());
            }
            // Record the call edge.
            if segs.len() >= 2
                && segs[segs.len() - 2]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_uppercase())
            {
                self.record_call(CalleeRef::Typed {
                    ty: segs[segs.len() - 2].clone(),
                    method: segs.last().cloned().unwrap_or_default(),
                });
            } else {
                self.record_call(CalleeRef::Free { path: segs });
            }
        } else {
            // Calling a closure/field: visit the callee expr normally.
            self.visit_expr(&i.func);
        }

        if is_timeout {
            self.timeout_depth += 1;
        }
        for arg in &i.args {
            if spawn_blocking {
                if let syn::Expr::Closure(closure) = arg {
                    self.ctx_stack.push(Ctx::BlockingAllowed);
                    self.visit_expr(&closure.body);
                    self.ctx_stack.pop();
                    continue;
                }
            }
            self.visit_expr(arg);
        }
        if is_timeout {
            self.timeout_depth -= 1;
        }
    }

    fn visit_expr_method_call(&mut self, i: &'ast syn::ExprMethodCall) {
        let method = i.method.to_string();
        let line = i.method.span().start().line;
        match method.as_str() {
            "unwrap" | "expect" => {
                self.record_panic(line, method.clone(), false);
            }
            "block_on" => {
                self.record_blocking(line, "block_on".to_string());
            }
            _ => {}
        }
        let recv_ty = self.recv_type(&i.receiver);
        if matches!(method.as_str(), "lock" | "read" | "write") {
            if let Some(ty) = &recv_ty {
                if self.std_sync_locks.iter().any(|l| l == ty) {
                    self.record_blocking(line, format!("std::sync::{ty}::{method}"));
                }
            }
        }
        self.record_call(CalleeRef::Method { method, recv_ty });
        visit::visit_expr_method_call(self, i);
    }

    fn visit_expr_index(&mut self, i: &'ast syn::ExprIndex) {
        self.record_panic(i.span().start().line, "indexing".to_string(), true);
        visit::visit_expr_index(self, i);
    }

    fn visit_macro(&mut self, i: &'ast syn::Macro) {
        if let Some(last) = i.path.segments.last() {
            let name = last.ident.to_string();
            if matches!(
                name.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) {
                self.record_panic(i.path.span().start().line, format!("{name}!"), false);
            }
        }
        visit::visit_macro(self, i);
    }
}

/// Resolves recorded call sites into edges over the extracted functions.
pub fn resolve(fns: &[FnDef]) -> Vec<Edge> {
    let mut free: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut typed: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    let mut by_method: HashMap<&str, Vec<usize>> = HashMap::new();
    for (idx, f) in fns.iter().enumerate() {
        match &f.self_ty {
            Some(ty) => {
                typed
                    .entry((ty.as_str(), f.name.as_str()))
                    .or_default()
                    .push(idx);
                by_method.entry(f.name.as_str()).or_default().push(idx);
            }
            None => {
                free.entry(f.name.as_str()).or_default().push(idx);
            }
        }
    }

    let narrow = |candidates: &[usize], hint: Option<&str>, caller_crate: &str| -> Vec<usize> {
        if let Some(hint) = hint {
            return candidates
                .iter()
                .copied()
                .filter(|&i| fns[i].crate_name == hint)
                .collect();
        }
        let same: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| fns[i].crate_name == caller_crate)
            .collect();
        if !same.is_empty() {
            same
        } else {
            candidates.to_vec()
        }
    };

    let mut edges = Vec::new();
    for (caller, f) in fns.iter().enumerate() {
        for call in &f.calls {
            let targets: Vec<usize> = match &call.callee {
                CalleeRef::Free { path } => {
                    let Some(last) = path.last() else { continue };
                    let first = path.first().map(String::as_str).unwrap_or("");
                    let hint: Option<String>;
                    if matches!(first, "crate" | "self" | "super") {
                        hint = Some(f.crate_name.clone());
                    } else if let Some(ws) = workspace_crate_of_root(first) {
                        hint = Some(ws);
                    } else if EXTERNAL_ROOTS.contains(&first) {
                        continue;
                    } else if first.chars().next().is_some_and(|c| c.is_uppercase()) {
                        hint = None;
                    } else {
                        // A bare or module-relative path: the use map already
                        // expanded imports, so this stays in the caller crate.
                        hint = Some(f.crate_name.clone());
                    }
                    match free.get(last.as_str()) {
                        Some(c) => narrow(c, hint.as_deref(), &f.crate_name),
                        None => continue,
                    }
                }
                CalleeRef::Typed { ty, method } => {
                    match typed.get(&(ty.as_str(), method.as_str())) {
                        Some(c) => narrow(c, None, &f.crate_name),
                        None => continue,
                    }
                }
                CalleeRef::Method { method, recv_ty } => match recv_ty {
                    Some(ty) => match typed.get(&(ty.as_str(), method.as_str())) {
                        Some(c) => narrow(c, None, &f.crate_name),
                        None => continue,
                    },
                    None => match by_method.get(method.as_str()) {
                        // Untyped receivers resolve only when the name is
                        // unambiguous workspace-wide.
                        Some(c) if c.len() == 1 => c.clone(),
                        _ => continue,
                    },
                },
            };
            for callee in targets {
                edges.push(Edge {
                    caller,
                    callee,
                    ctx: call.ctx,
                });
            }
        }
    }
    edges
}

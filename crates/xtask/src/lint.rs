//! The repo-invariant linter behind `cargo xtask lint`.
//!
//! Four rules, each guarding an invariant the test suite cannot express:
//!
//! * **raw-atomics** — no `std::sync::atomic` (or `core::sync::atomic`)
//!   outside `crates/core/src/sync.rs`. Everything else goes through the
//!   `zdr_core::sync` facade, which is what lets `--cfg loom` swap every
//!   atomic in the workspace for loom's model-checked doubles. One stray
//!   raw atomic silently exempts that state from the loom suites.
//! * **inline-now** — no `Instant::now()` / `SystemTime::now()` outside
//!   `crates/core/src/clock.rs` (tests and benches excepted). Product
//!   code reads time through `zdr_core::clock`, so virtual-time tests can
//!   drive breaker windows and queue-delay signals deterministically.
//! * **safety-comment** — every `unsafe` block, impl, or fn carries a
//!   `// SAFETY:` comment on the line(s) immediately above the statement
//!   that contains it.
//! * **counter-in-snapshot** — every `Counter`-, `Histogram`-,
//!   `EventRing`-, or `ProtectionMode`-typed field of a stats struct
//!   (including behind `Arc<…>`) is referenced in that struct's
//!   `snapshot()` method, so a new counter, latency histogram, phase
//!   timeline, or protection gauge cannot silently vanish from the
//!   unified `StatsSnapshot`.
//! * **protection-reason-rendered** — cross-file: every variant of
//!   `core::admission`'s `StormReason` enum appears as a snake_case
//!   string literal in the admin endpoint's source, so a new storm
//!   reason cannot ship without its labelled `/metrics` series
//!   (see [`check_reason_rendering`]).
//! * **allow-justified** — every `#[allow(...)]` in product code carries
//!   a `// ALLOW: <reason>` comment in the run immediately above it
//!   (same shape as the `// SAFETY:` rule, but the reason must be
//!   non-empty). Lint suppressions are debt; the why must ship with them.
//! * **config-coverage** — every field declared in `core::config`'s
//!   `FIELDS` table is rendered by `ZdrConfig::field_value` (and hence the
//!   `/stats` config section and the boot-only reload diff), and every
//!   *hot* field is named in `ZdrConfig::validate`'s constraint table — a
//!   hot-reloadable knob cannot ship without a validator or invisible to
//!   operators (see [`check_config_coverage`]).
//! * **span-kind-rendered** — cross-file, the trace mirror of
//!   counter-in-snapshot: every `SpanKind::<Variant>` recorded anywhere
//!   in the workspace must appear as a match arm inside the admin
//!   endpoint's `kind_label` function, so a new span kind cannot ship
//!   invisible to the `/traces` renderer
//!   (see [`check_span_kind_rendering`]).
//!
//! The walker is syn-based: rules see the AST (paths, calls, unsafe
//! expressions, struct fields), not text, so `// Instant::now()` in a
//! comment or `"std::sync::atomic"` in a string never false-positives.

use std::fmt;
use std::path::{Path, PathBuf};

use syn::spanned::Spanned;
use syn::visit::Visit;

/// One rule violation, formatted `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Which rules apply to a file, derived from its path.
#[derive(Debug, Clone, Copy)]
struct Policy {
    /// The facade itself may name raw atomics — that is its whole job.
    allow_raw_atomics: bool,
    /// The clock module is the one approved wall-clock read site.
    allow_inline_now: bool,
    /// Integration tests and benches drive real timers; inline-now does
    /// not apply there (raw-atomics and safety-comment still do).
    is_test_code: bool,
}

fn policy_for(path: &Path) -> Policy {
    let p = path.to_string_lossy().replace('\\', "/");
    let is_test_code = ["tests", "benches"]
        .iter()
        .any(|dir| p.starts_with(&format!("{dir}/")) || p.contains(&format!("/{dir}/")));
    Policy {
        allow_raw_atomics: p.ends_with("crates/core/src/sync.rs"),
        allow_inline_now: p.ends_with("crates/core/src/clock.rs") || is_test_code,
        is_test_code,
    }
}

/// Lints one file's source. `path` is used for policy decisions and
/// violation labels only; the file is not re-read.
pub fn lint_source(path: &Path, source: &str) -> Result<Vec<Violation>, syn::Error> {
    let ast = syn::parse_file(source)?;
    let lines: Vec<&str> = source.lines().collect();
    let policy = policy_for(path);
    let mut walker = Walker {
        file: path.to_path_buf(),
        lines: &lines,
        policy,
        test_mod_depth: 0,
        stmt_lines: Vec::new(),
        counter_structs: Vec::new(),
        snapshot_bodies: Vec::new(),
        violations: Vec::new(),
    };
    walker.visit_file(&ast);
    walker.check_counters_in_snapshots();
    let mut v = walker.violations;
    v.sort_by_key(|x| x.line);
    Ok(v)
}

/// Field types whose values feed the unified snapshot; a field of any of
/// these types must be read by its struct's `snapshot()` method.
const SNAPSHOTTED_TYPES: [&str; 4] = ["Counter", "Histogram", "EventRing", "ProtectionMode"];

/// A struct with snapshot-tracked fields:
/// (name, line, fields as (field name, type name, line)).
type CounterStruct = (String, usize, Vec<(String, &'static str, usize)>);

struct Walker<'a> {
    file: PathBuf,
    lines: &'a [&'a str],
    policy: Policy,
    /// Depth of enclosing `#[cfg(test)]`-style modules.
    test_mod_depth: usize,
    /// Start lines of the enclosing statement chain, innermost last — the
    /// anchor the safety-comment rule scans upward from.
    stmt_lines: Vec<usize>,
    counter_structs: Vec<CounterStruct>,
    /// (self type name, snapshot() body as space-separated tokens).
    snapshot_bodies: Vec<(String, String)>,
    violations: Vec<Violation>,
}

impl Walker<'_> {
    fn push(&mut self, line: usize, rule: &'static str, message: String) {
        self.violations.push(Violation {
            file: self.file.clone(),
            line,
            rule,
            message,
        });
    }

    fn in_test_context(&self) -> bool {
        self.policy.is_test_code || self.test_mod_depth > 0
    }

    /// True when the comment run immediately above `anchor_line`
    /// (1-indexed) contains a `SAFETY:` marker.
    fn has_safety_comment_above(&self, anchor_line: usize) -> bool {
        let mut idx = anchor_line.saturating_sub(1); // 0-indexed line above
        while idx > 0 {
            let text = self.lines.get(idx - 1).map(|l| l.trim()).unwrap_or("");
            if text.starts_with("//") {
                if text.contains("SAFETY:") {
                    return true;
                }
                idx -= 1;
            } else {
                return false;
            }
        }
        false
    }

    /// True when the comment run immediately above `anchor_line` contains
    /// `marker` followed by a non-empty reason.
    fn has_marker_above(&self, anchor_line: usize, marker: &str) -> bool {
        let mut idx = anchor_line.saturating_sub(1); // 0-indexed line above
        while idx > 0 {
            let text = self.lines.get(idx - 1).map(|l| l.trim()).unwrap_or("");
            if !text.starts_with("//") {
                return false;
            }
            if let Some(pos) = text.find(marker) {
                if !text[pos + marker.len()..].trim().is_empty() {
                    return true;
                }
            }
            idx -= 1;
        }
        false
    }

    fn check_unsafe_marker(&mut self, anchor_line: usize, what: &str) {
        if !self.has_safety_comment_above(anchor_line) {
            self.push(
                anchor_line,
                "safety-comment",
                format!("{what} is not preceded by a `// SAFETY:` comment"),
            );
        }
    }

    fn check_raw_atomic_segments(&mut self, segments: &[(String, usize)]) {
        if self.policy.allow_raw_atomics {
            return;
        }
        for w in segments.windows(3) {
            if (w[0].0 == "std" || w[0].0 == "core") && w[1].0 == "sync" && w[2].0 == "atomic" {
                self.push(
                    w[0].1,
                    "raw-atomics",
                    format!(
                        "`{}::sync::atomic` bypasses the zdr_core::sync facade \
                         (loom cannot model it)",
                        w[0].0
                    ),
                );
                return; // one report per path
            }
        }
    }

    /// Recursively flattens a use-tree into segment chains and checks each.
    fn check_use_tree(&mut self, prefix: &[(String, usize)], tree: &syn::UseTree) {
        match tree {
            syn::UseTree::Path(p) => {
                let mut chain = prefix.to_vec();
                chain.push((p.ident.to_string(), p.ident.span().start().line));
                self.check_use_tree(&chain, &p.tree);
            }
            syn::UseTree::Group(g) => {
                for t in &g.items {
                    self.check_use_tree(prefix, t);
                }
            }
            syn::UseTree::Name(n) => {
                let mut chain = prefix.to_vec();
                chain.push((n.ident.to_string(), n.ident.span().start().line));
                self.check_raw_atomic_segments(&chain);
            }
            syn::UseTree::Rename(r) => {
                let mut chain = prefix.to_vec();
                chain.push((r.ident.to_string(), r.ident.span().start().line));
                self.check_raw_atomic_segments(&chain);
            }
            syn::UseTree::Glob(_) => {
                self.check_raw_atomic_segments(prefix);
            }
        }
    }

    /// Post-pass: every Counter/Histogram/EventRing field must appear in
    /// its struct's snapshot() body.
    fn check_counters_in_snapshots(&mut self) {
        let structs = std::mem::take(&mut self.counter_structs);
        for (name, struct_line, fields) in structs {
            let Some((_, body)) = self.snapshot_bodies.iter().find(|(n, _)| *n == name) else {
                self.push(
                    struct_line,
                    "counter-in-snapshot",
                    format!(
                        "stats struct `{name}` has Counter/Histogram/EventRing fields \
                         but no snapshot() method"
                    ),
                );
                continue;
            };
            let words: std::collections::HashSet<&str> = body
                .split(|c: char| !c.is_alphanumeric() && c != '_')
                .collect();
            for (field, ty, line) in fields {
                if !words.contains(field.as_str()) {
                    self.push(
                        line,
                        "counter-in-snapshot",
                        format!("{ty} field `{name}.{field}` is never read by {name}::snapshot()"),
                    );
                }
            }
        }
    }
}

/// Resolves a field type to a snapshot-tracked type name, looking through
/// one level of `Arc<…>`/`Box<…>` wrapping (stats structs share their
/// protection state as `Arc<ProtectionMode>`).
fn tracked_type(ty: &syn::Type) -> Option<&'static str> {
    let syn::Type::Path(tp) = ty else {
        return None;
    };
    let seg = tp.path.segments.last()?;
    if let Some(ty) = SNAPSHOTTED_TYPES.iter().find(|t| seg.ident == **t) {
        return Some(ty);
    }
    if seg.ident == "Arc" || seg.ident == "Box" {
        if let syn::PathArguments::AngleBracketed(args) = &seg.arguments {
            for arg in &args.args {
                if let syn::GenericArgument::Type(inner) = arg {
                    return tracked_type(inner);
                }
            }
        }
    }
    None
}

/// The cross-file rule behind `protection-reason-rendered`: every variant
/// of the `StormReason` enum in `admission_src` must appear, snake_cased,
/// as a string literal somewhere in `admin_src` — which is how the admin
/// endpoint renders the labelled `/metrics` series per reason. A variant
/// added to the enum without a rendering label fails the lint (and the
/// violation points at the variant).
pub fn check_reason_rendering(
    admission_path: &Path,
    admission_src: &str,
    admin_src: &str,
) -> Result<Vec<Violation>, syn::Error> {
    let admission = syn::parse_file(admission_src)?;
    let admin = syn::parse_file(admin_src)?;

    let mut variants: Vec<(String, usize)> = Vec::new();
    for item in &admission.items {
        if let syn::Item::Enum(e) = item {
            if e.ident == "StormReason" {
                for v in &e.variants {
                    variants.push((v.ident.to_string(), v.ident.span().start().line));
                }
            }
        }
    }

    struct Literals(std::collections::HashSet<String>);
    impl<'ast> Visit<'ast> for Literals {
        fn visit_lit_str(&mut self, l: &'ast syn::LitStr) {
            self.0.insert(l.value());
        }
    }
    let mut literals = Literals(std::collections::HashSet::new());
    literals.visit_file(&admin);

    let mut violations = Vec::new();
    for (variant, line) in variants {
        let label = snake_case(&variant);
        if !literals.0.contains(&label) {
            violations.push(Violation {
                file: admission_path.to_path_buf(),
                line,
                rule: "protection-reason-rendered",
                message: format!(
                    "StormReason::{variant} has no \"{label}\" literal in the admin \
                     endpoint — its /metrics reason series would be missing"
                ),
            });
        }
    }
    Ok(violations)
}

/// The `config-coverage` rule: parses `core::config`'s `FIELDS` table
/// (the `FieldSpec { name, hot }` inventory) and cross-checks it against
/// the string literals inside `ZdrConfig::validate` and
/// `ZdrConfig::field_value`. Every declared field must be renderable
/// (named in `field_value`, which drives the `/stats` config section and
/// the publish-time boot-only diff); every `hot: true` field must also be
/// named in `validate`'s constraint table. Violations point at the
/// `FieldSpec` entry.
pub fn check_config_coverage(
    config_path: &Path,
    config_src: &str,
) -> Result<Vec<Violation>, syn::Error> {
    let ast = syn::parse_file(config_src)?;

    // 1. The FIELDS inventory: (name, hot, line) per FieldSpec literal.
    struct Specs(Vec<(String, bool, usize)>);
    impl<'ast> Visit<'ast> for Specs {
        fn visit_expr_struct(&mut self, e: &'ast syn::ExprStruct) {
            let is_spec = e
                .path
                .segments
                .last()
                .is_some_and(|s| s.ident == "FieldSpec");
            if is_spec {
                let mut name = None;
                let mut hot = None;
                for field in &e.fields {
                    let syn::Member::Named(ident) = &field.member else {
                        continue;
                    };
                    match (&field.expr, ident.to_string().as_str()) {
                        (syn::Expr::Lit(l), "name") => {
                            if let syn::Lit::Str(s) = &l.lit {
                                name = Some((s.value(), s.span().start().line));
                            }
                        }
                        (syn::Expr::Lit(l), "hot") => {
                            if let syn::Lit::Bool(b) = &l.lit {
                                hot = Some(b.value());
                            }
                        }
                        _ => {}
                    }
                }
                if let (Some((name, line)), Some(hot)) = (name, hot) {
                    self.0.push((name, hot, line));
                }
            }
            syn::visit::visit_expr_struct(self, e);
        }
    }
    let mut specs = Specs(Vec::new());
    for item in &ast.items {
        if let syn::Item::Const(c) = item {
            if c.ident == "FIELDS" {
                specs.visit_expr(&c.expr);
            }
        }
    }

    // 2. String literals inside ZdrConfig::validate and ::field_value.
    struct Literals(std::collections::HashSet<String>);
    impl<'ast> Visit<'ast> for Literals {
        fn visit_lit_str(&mut self, l: &'ast syn::LitStr) {
            self.0.insert(l.value());
        }
    }
    let mut validate_lits = Literals(std::collections::HashSet::new());
    let mut render_lits = Literals(std::collections::HashSet::new());
    for item in &ast.items {
        let syn::Item::Impl(i) = item else { continue };
        if i.trait_.is_some() {
            continue;
        }
        let is_config = matches!(&*i.self_ty, syn::Type::Path(tp)
            if tp.path.segments.last().is_some_and(|s| s.ident == "ZdrConfig"));
        if !is_config {
            continue;
        }
        for impl_item in &i.items {
            if let syn::ImplItem::Fn(f) = impl_item {
                if f.sig.ident == "validate" {
                    validate_lits.visit_block(&f.block);
                } else if f.sig.ident == "field_value" {
                    render_lits.visit_block(&f.block);
                }
            }
        }
    }

    let mut violations = Vec::new();
    if specs.0.is_empty() {
        violations.push(Violation {
            file: config_path.to_path_buf(),
            line: 1,
            rule: "config-coverage",
            message: "no FieldSpec entries found in a FIELDS const — the config \
                      inventory the lint guards is missing"
                .to_string(),
        });
        return Ok(violations);
    }
    for (name, hot, line) in &specs.0 {
        if !render_lits.0.contains(name) {
            violations.push(Violation {
                file: config_path.to_path_buf(),
                line: *line,
                rule: "config-coverage",
                message: format!(
                    "field {name:?} is not named in ZdrConfig::field_value — it would be \
                     missing from the /stats config section and the boot-only reload diff"
                ),
            });
        }
        if *hot && !validate_lits.0.contains(name) {
            violations.push(Violation {
                file: config_path.to_path_buf(),
                line: *line,
                rule: "config-coverage",
                message: format!(
                    "hot field {name:?} is not named in ZdrConfig::validate — a reload \
                     could publish it unchecked"
                ),
            });
        }
    }
    Ok(violations)
}

/// Path visitor shared by the span-kind-rendered rule: collects every
/// `SpanKind::<Variant>` two-segment path as (variant, line). Uppercase
/// guard keeps associated functions (`SpanKind::name`) out of the
/// variant inventory.
struct SpanKindPaths(Vec<(String, usize)>);

impl<'ast> Visit<'ast> for SpanKindPaths {
    fn visit_path(&mut self, p: &'ast syn::Path) {
        let segs: Vec<&syn::PathSegment> = p.segments.iter().collect();
        for w in segs.windows(2) {
            if w[0].ident == "SpanKind"
                && w[1]
                    .ident
                    .to_string()
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_uppercase())
            {
                self.0
                    .push((w[1].ident.to_string(), w[1].ident.span().start().line));
            }
        }
        syn::visit::visit_path(self, p);
    }
}

/// Collects every `SpanKind::<Variant>` path in one file — recording
/// expressions and match patterns alike — as (variant, line) pairs. This
/// is the per-file inventory side of the `span-kind-rendered` rule: the
/// driver runs it over the whole workspace and feeds the union to
/// [`check_span_kind_rendering`].
pub fn collect_recorded_span_kinds(source: &str) -> Result<Vec<(String, usize)>, syn::Error> {
    let ast = syn::parse_file(source)?;
    let mut kinds = SpanKindPaths(Vec::new());
    kinds.visit_file(&ast);
    Ok(kinds.0)
}

/// The cross-file rule behind `span-kind-rendered`: every `SpanKind`
/// variant recorded anywhere in the workspace (`recorded` is the merged
/// (file, variant, line) inventory from [`collect_recorded_span_kinds`])
/// must appear as a `SpanKind::<Variant>` arm inside the admin
/// endpoint's `kind_label` function — the single place `/traces` turns a
/// kind into its rendered label. A kind recorded without a label fails
/// the lint (the violation points at the first recording site). A
/// missing `kind_label` function is itself a violation, so the rule can
/// never pass vacuously because the renderer moved or was renamed.
pub fn check_span_kind_rendering(
    admin_path: &Path,
    admin_src: &str,
    recorded: &[(PathBuf, String, usize)],
) -> Result<Vec<Violation>, syn::Error> {
    let admin = syn::parse_file(admin_src)?;

    struct Renderer {
        found: bool,
        kinds: SpanKindPaths,
    }
    impl<'ast> Visit<'ast> for Renderer {
        fn visit_item_fn(&mut self, f: &'ast syn::ItemFn) {
            if f.sig.ident == "kind_label" {
                self.found = true;
                self.kinds.visit_block(&f.block);
            }
            syn::visit::visit_item_fn(self, f);
        }
    }
    let mut renderer = Renderer {
        found: false,
        kinds: SpanKindPaths(Vec::new()),
    };
    renderer.visit_file(&admin);

    if !renderer.found {
        return Ok(vec![Violation {
            file: admin_path.to_path_buf(),
            line: 1,
            rule: "span-kind-rendered",
            message: "no kind_label function found in the admin endpoint — the \
                      /traces renderer the lint guards is missing"
                .to_string(),
        }]);
    }
    let rendered: std::collections::HashSet<&str> =
        renderer.kinds.0.iter().map(|(v, _)| v.as_str()).collect();

    // One violation per unrendered variant, anchored at its first
    // recording site in (file, line) order.
    let mut sites: Vec<&(PathBuf, String, usize)> = recorded.iter().collect();
    sites.sort_by(|a, b| (&a.0, a.2).cmp(&(&b.0, b.2)));
    let mut flagged: std::collections::HashSet<&str> = std::collections::HashSet::new();
    let mut violations = Vec::new();
    for (file, variant, line) in sites {
        if rendered.contains(variant.as_str()) || !flagged.insert(variant.as_str()) {
            continue;
        }
        violations.push(Violation {
            file: file.clone(),
            line: *line,
            rule: "span-kind-rendered",
            message: format!(
                "SpanKind::{variant} is recorded here but never rendered by the \
                 admin endpoint's kind_label — its spans would be invisible to /traces"
            ),
        });
    }
    Ok(violations)
}

/// `TimeoutStorm` → `timeout_storm` (matches serde's rename_all and
/// `StormReason::name()`).
fn snake_case(ident: &str) -> String {
    let mut out = String::with_capacity(ident.len() + 4);
    for (i, c) in ident.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// True for `#[cfg(...)]` attributes whose predicate mentions the word
/// `test` anywhere (covers `cfg(test)` and `cfg(all(test, not(loom)))`).
/// Word-matching the token stream keeps this robust across every cfg
/// combinator; the cost is that an exotic `cfg(feature = "test")` module
/// would also be treated as test code — a lint relaxation, never a miss.
fn is_cfg_test(attr: &syn::Attribute) -> bool {
    attr.path().is_ident("cfg")
        && attr
            .meta
            .require_list()
            .map(|l| l.tokens.to_string())
            .unwrap_or_default()
            .split(|c: char| !c.is_alphanumeric() && c != '_')
            .any(|w| w == "test")
}

impl<'ast> Visit<'ast> for Walker<'_> {
    fn visit_item_mod(&mut self, m: &'ast syn::ItemMod) {
        let is_test = m.attrs.iter().any(is_cfg_test);
        if is_test {
            self.test_mod_depth += 1;
        }
        syn::visit::visit_item_mod(self, m);
        if is_test {
            self.test_mod_depth -= 1;
        }
    }

    fn visit_attribute(&mut self, a: &'ast syn::Attribute) {
        if a.path().is_ident("allow") && !self.in_test_context() {
            let line = a.span().start().line;
            if !self.has_marker_above(line, "ALLOW:") {
                self.push(
                    line,
                    "allow-justified",
                    "#[allow(...)] without a `// ALLOW: <reason>` justification \
                     comment on the line(s) above"
                        .to_string(),
                );
            }
        }
        syn::visit::visit_attribute(self, a);
    }

    fn visit_item_use(&mut self, u: &'ast syn::ItemUse) {
        self.check_use_tree(&[], &u.tree);
        syn::visit::visit_item_use(self, u);
    }

    fn visit_path(&mut self, p: &'ast syn::Path) {
        let segments: Vec<(String, usize)> = p
            .segments
            .iter()
            .map(|s| (s.ident.to_string(), s.ident.span().start().line))
            .collect();
        self.check_raw_atomic_segments(&segments);
        syn::visit::visit_path(self, p);
    }

    fn visit_expr_call(&mut self, call: &'ast syn::ExprCall) {
        if self.policy.allow_inline_now || self.in_test_context() {
            syn::visit::visit_expr_call(self, call);
            return;
        }
        if let syn::Expr::Path(p) = &*call.func {
            let segs: Vec<String> = p
                .path
                .segments
                .iter()
                .map(|s| s.ident.to_string())
                .collect();
            if segs.len() >= 2 && segs[segs.len() - 1] == "now" {
                let ty = &segs[segs.len() - 2];
                if ty == "Instant" || ty == "SystemTime" {
                    self.push(
                        p.path.span().start().line,
                        "inline-now",
                        format!(
                            "`{ty}::now()` outside zdr_core::clock — take a Clock (or a \
                             caller-supplied now_ms) so tests can run on virtual time"
                        ),
                    );
                }
            }
        }
        syn::visit::visit_expr_call(self, call);
    }

    fn visit_stmt(&mut self, s: &'ast syn::Stmt) {
        self.stmt_lines.push(s.span().start().line);
        syn::visit::visit_stmt(self, s);
        self.stmt_lines.pop();
    }

    fn visit_expr_unsafe(&mut self, e: &'ast syn::ExprUnsafe) {
        let anchor = self
            .stmt_lines
            .last()
            .copied()
            .unwrap_or_else(|| e.span().start().line);
        self.check_unsafe_marker(anchor, "unsafe block");
        syn::visit::visit_expr_unsafe(self, e);
    }

    fn visit_item_impl(&mut self, i: &'ast syn::ItemImpl) {
        if i.unsafety.is_some() {
            self.check_unsafe_marker(i.span().start().line, "unsafe impl");
        }
        // Record snapshot() bodies for the counter rule.
        if i.trait_.is_none() {
            if let syn::Type::Path(tp) = &*i.self_ty {
                if let Some(name) = tp.path.segments.last().map(|s| s.ident.to_string()) {
                    for item in &i.items {
                        if let syn::ImplItem::Fn(f) = item {
                            if f.sig.ident == "snapshot" {
                                use quote::ToTokens;
                                let body = f.block.to_token_stream().to_string();
                                self.snapshot_bodies.push((name.clone(), body));
                            }
                        }
                    }
                }
            }
        }
        syn::visit::visit_item_impl(self, i);
    }

    fn visit_item_fn(&mut self, f: &'ast syn::ItemFn) {
        if f.sig.unsafety.is_some() {
            self.check_unsafe_marker(f.span().start().line, "unsafe fn");
        }
        syn::visit::visit_item_fn(self, f);
    }

    fn visit_item_struct(&mut self, s: &'ast syn::ItemStruct) {
        let mut counters = Vec::new();
        if let syn::Fields::Named(named) = &s.fields {
            for field in &named.named {
                if let Some(ty) = tracked_type(&field.ty) {
                    if let Some(ident) = &field.ident {
                        counters.push((ident.to_string(), ty, ident.span().start().line));
                    }
                }
            }
        }
        if !counters.is_empty() {
            self.counter_structs
                .push((s.ident.to_string(), s.ident.span().start().line, counters));
        }
        syn::visit::visit_item_struct(self, s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_fixture(fake_path: &str, source: &str) -> Vec<Violation> {
        lint_source(Path::new(fake_path), source).expect("fixture must parse")
    }

    fn rules(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn raw_atomics_fixture_fails() {
        let v = lint_fixture(
            "crates/demo/src/lib.rs",
            include_str!("../fixtures/raw_atomics.rs"),
        );
        assert!(
            v.iter().filter(|x| x.rule == "raw-atomics").count() >= 2,
            "expected use-decl and qualified-path hits, got {v:?}"
        );
        assert!(v.iter().all(|x| x.rule == "raw-atomics"), "{v:?}");
    }

    #[test]
    fn raw_atomics_allowed_in_the_facade_itself() {
        let v = lint_fixture(
            "crates/core/src/sync.rs",
            include_str!("../fixtures/raw_atomics.rs"),
        );
        assert!(v.is_empty(), "facade must be exempt, got {v:?}");
    }

    #[test]
    fn inline_now_fixture_fails_outside_tests_only() {
        let v = lint_fixture(
            "crates/demo/src/lib.rs",
            include_str!("../fixtures/inline_now.rs"),
        );
        // Instant::now() + SystemTime::now() flagged; the #[cfg(test)]
        // module's call is exempt.
        assert_eq!(rules(&v), vec!["inline-now", "inline-now"], "{v:?}");
    }

    #[test]
    fn inline_now_allowed_in_clock_and_integration_tests() {
        let src = include_str!("../fixtures/inline_now.rs");
        for path in ["crates/core/src/clock.rs", "crates/demo/tests/e2e.rs"] {
            let v = lint_fixture(path, src);
            assert!(v.is_empty(), "{path} must be exempt, got {v:?}");
        }
    }

    #[test]
    fn missing_safety_fixture_fails_once() {
        let v = lint_fixture(
            "crates/demo/src/lib.rs",
            include_str!("../fixtures/missing_safety.rs"),
        );
        assert_eq!(rules(&v), vec!["safety-comment"], "{v:?}");
        // The commented block further down must not be flagged.
        assert_eq!(v[0].line, 4, "{v:?}");
    }

    #[test]
    fn unsnapshotted_counter_fixture_fails() {
        let v = lint_fixture(
            "crates/demo/src/lib.rs",
            include_str!("../fixtures/unsnapshotted_counter.rs"),
        );
        assert_eq!(rules(&v), vec!["counter-in-snapshot"], "{v:?}");
        assert!(v[0].message.contains("dropped"), "{v:?}");
    }

    #[test]
    fn unsnapshotted_histogram_fixture_fails_per_field() {
        let v = lint_fixture(
            "crates/demo/src/lib.rs",
            include_str!("../fixtures/unsnapshotted_histogram.rs"),
        );
        assert_eq!(
            rules(&v),
            vec!["counter-in-snapshot", "counter-in-snapshot"],
            "{v:?}"
        );
        // The violation names the field's type, so the fix is obvious.
        assert!(v[0].message.contains("Histogram field"), "{v:?}");
        assert!(v[0].message.contains("connect_us"), "{v:?}");
        assert!(v[1].message.contains("EventRing field"), "{v:?}");
        assert!(v[1].message.contains("timeline"), "{v:?}");
    }

    #[test]
    fn telemetry_bundle_shape_passes_when_snapshot_reads_all_fields() {
        let src = "pub struct Histogram(u64);\n\
                   pub struct EventRing(u64);\n\
                   pub struct Bundle { pub lat: Histogram, pub tl: EventRing }\n\
                   impl Bundle {\n\
                   \x20   pub fn snapshot(&self) -> (u64, u64) {\n\
                   \x20       (self.lat.0, self.tl.0)\n\
                   \x20   }\n\
                   }\n";
        let v = lint_fixture("crates/demo/src/lib.rs", src);
        assert!(v.is_empty(), "exhaustive snapshot flagged: {v:?}");
    }

    #[test]
    fn clean_fixture_passes() {
        let v = lint_fixture(
            "crates/demo/src/lib.rs",
            include_str!("../fixtures/clean.rs"),
        );
        assert!(v.is_empty(), "clean fixture flagged: {v:?}");
    }

    #[test]
    fn counter_struct_without_snapshot_is_flagged() {
        let src = "pub struct Counter(u64);\n\
                   pub struct Orphan { pub hits: Counter }\n";
        let v = lint_fixture("crates/demo/src/lib.rs", src);
        assert_eq!(rules(&v), vec!["counter-in-snapshot"], "{v:?}");
        assert!(v[0].message.contains("no snapshot()"), "{v:?}");
    }

    #[test]
    fn arc_wrapped_protection_mode_field_is_tracked() {
        let src = "pub struct ProtectionMode(u64);\n\
                   pub struct Stats { pub protection: Arc<ProtectionMode> }\n\
                   impl Stats {\n\
                   \x20   pub fn snapshot(&self) -> u64 { 0 }\n\
                   }\n";
        let v = lint_fixture("crates/demo/src/lib.rs", src);
        assert_eq!(rules(&v), vec!["counter-in-snapshot"], "{v:?}");
        assert!(v[0].message.contains("protection"), "{v:?}");

        let ok = "pub struct ProtectionMode(u64);\n\
                  pub struct Stats { pub protection: Arc<ProtectionMode> }\n\
                  impl Stats {\n\
                  \x20   pub fn snapshot(&self) -> u64 { self.protection.0 }\n\
                  }\n";
        let v = lint_fixture("crates/demo/src/lib.rs", ok);
        assert!(v.is_empty(), "read field flagged: {v:?}");
    }

    #[test]
    fn bare_allow_fixture_flags_unjustified_only() {
        let v = lint_fixture(
            "crates/demo/src/lib.rs",
            include_str!("../fixtures/bare_allow.rs"),
        );
        assert_eq!(rules(&v), vec!["allow-justified"], "{v:?}");
        // The justified attribute and the one inside #[cfg(test)] are
        // exempt; only the bare product-code allow is flagged.
        assert_eq!(v[0].line, 9, "{v:?}");
    }

    #[test]
    fn allow_justification_requires_a_reason() {
        let src = "// ALLOW:\n#[allow(dead_code)]\nfn f() {}\n";
        let v = lint_fixture("crates/demo/src/lib.rs", src);
        assert_eq!(rules(&v), vec!["allow-justified"], "{v:?}");
    }

    #[test]
    fn reason_rendering_flags_unrendered_variants() {
        let admission = "pub enum StormReason { TimeoutStorm, RefusedStorm }\n";
        let admin_ok = "pub fn labels() -> [&'static str; 2] {\n\
                        \x20   [\"timeout_storm\", \"refused_storm\"]\n\
                        }\n";
        let admin_missing = "pub fn labels() -> [&'static str; 1] { [\"timeout_storm\"] }\n";

        let v = check_reason_rendering(
            Path::new("crates/core/src/admission.rs"),
            admission,
            admin_ok,
        )
        .unwrap();
        assert!(v.is_empty(), "complete rendering flagged: {v:?}");

        let v = check_reason_rendering(
            Path::new("crates/core/src/admission.rs"),
            admission,
            admin_missing,
        )
        .unwrap();
        assert_eq!(rules(&v), vec!["protection-reason-rendered"], "{v:?}");
        assert!(v[0].message.contains("RefusedStorm"), "{v:?}");
        assert!(v[0].message.contains("refused_storm"), "{v:?}");
    }

    #[test]
    fn repo_admission_and_admin_sources_satisfy_reason_rendering() {
        // The rule run exactly as `cargo xtask lint` runs it, against the
        // real sources — a unit-test early warning for the CI gate.
        let admission = include_str!("../../core/src/admission.rs");
        let admin = include_str!("../../proxy/src/admin.rs");
        let v = check_reason_rendering(Path::new("crates/core/src/admission.rs"), admission, admin)
            .unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    /// Turns one file's collected span kinds into the merged inventory
    /// shape [`check_span_kind_rendering`] takes.
    fn span_sites(fake_path: &str, source: &str) -> Vec<(PathBuf, String, usize)> {
        collect_recorded_span_kinds(source)
            .expect("fixture must parse")
            .into_iter()
            .map(|(variant, line)| (PathBuf::from(fake_path), variant, line))
            .collect()
    }

    #[test]
    fn span_kind_fixture_flags_unrendered_recording() {
        let sites = span_sites(
            "crates/demo/src/lib.rs",
            include_str!("../fixtures/unrendered_span_kind.rs"),
        );
        let admin_missing = "pub fn kind_label(kind: SpanKind) -> &'static str {\n\
                             \x20   match kind {\n\
                             \x20       SpanKind::Request => \"request\",\n\
                             \x20       _ => \"unknown\",\n\
                             \x20   }\n\
                             }\n";
        let v = check_span_kind_rendering(
            Path::new("crates/proxy/src/admin.rs"),
            admin_missing,
            &sites,
        )
        .unwrap();
        assert_eq!(rules(&v), vec!["span-kind-rendered"], "{v:?}");
        assert!(v[0].message.contains("GhostHop"), "{v:?}");
        // The violation points at the recording site, not the renderer.
        assert_eq!(v[0].file, PathBuf::from("crates/demo/src/lib.rs"), "{v:?}");
        assert_eq!(v[0].line, 11, "{v:?}");

        let admin_ok = "pub fn kind_label(kind: SpanKind) -> &'static str {\n\
                        \x20   match kind {\n\
                        \x20       SpanKind::Request => \"request\",\n\
                        \x20       SpanKind::GhostHop => \"ghost_hop\",\n\
                        \x20   }\n\
                        }\n";
        let v = check_span_kind_rendering(Path::new("crates/proxy/src/admin.rs"), admin_ok, &sites)
            .unwrap();
        assert!(v.is_empty(), "complete rendering flagged: {v:?}");
    }

    #[test]
    fn span_kind_rule_reports_each_variant_once_and_needs_the_renderer() {
        // Two recording sites for the same unrendered kind → one report,
        // anchored at the first site in (file, line) order.
        let src = "pub fn f(spans: &mut Vec<u32>) {\n\
                   \x20   spans.push(SpanKind::GhostHop as u32);\n\
                   \x20   spans.push(SpanKind::GhostHop as u32);\n\
                   }\n";
        let sites = span_sites("crates/demo/src/lib.rs", src);
        assert_eq!(sites.len(), 2, "{sites:?}");
        let admin = "pub fn kind_label(kind: SpanKind) -> &'static str { \"x\" }\n";
        let v = check_span_kind_rendering(Path::new("crates/proxy/src/admin.rs"), admin, &sites)
            .unwrap();
        assert_eq!(rules(&v), vec!["span-kind-rendered"], "{v:?}");
        assert_eq!(v[0].line, 2, "{v:?}");

        // Associated functions are not variants and must not be flagged.
        let assoc = span_sites(
            "crates/demo/src/lib.rs",
            "pub fn g() { SpanKind::name(); }\n",
        );
        assert!(assoc.is_empty(), "{assoc:?}");

        // A renamed/removed kind_label can never make the rule pass
        // vacuously — it is itself the violation.
        let v = check_span_kind_rendering(
            Path::new("crates/proxy/src/admin.rs"),
            "fn other() {}\n",
            &sites,
        )
        .unwrap();
        assert_eq!(rules(&v), vec!["span-kind-rendered"], "{v:?}");
        assert!(v[0].message.contains("kind_label"), "{v:?}");
    }

    #[test]
    fn repo_trace_recordings_satisfy_span_kind_rendering() {
        // The rule run exactly as `cargo xtask lint` runs it, against the
        // real sources — a unit-test early warning for the CI gate.
        // `core::trace`'s exhaustive `SpanKind::name()` match makes the
        // inventory cover every declared variant, so including trace.rs
        // alone already forces kind_label to stay exhaustive; the proxy
        // services add the actual recording sites.
        let mut sites = Vec::new();
        for (path, src) in [
            (
                "crates/core/src/trace.rs",
                include_str!("../../core/src/trace.rs"),
            ),
            (
                "crates/proxy/src/service.rs",
                include_str!("../../proxy/src/service.rs"),
            ),
            (
                "crates/proxy/src/reverse.rs",
                include_str!("../../proxy/src/reverse.rs"),
            ),
            (
                "crates/proxy/src/takeover.rs",
                include_str!("../../proxy/src/takeover.rs"),
            ),
            (
                "crates/proxy/src/mqtt_relay.rs",
                include_str!("../../proxy/src/mqtt_relay.rs"),
            ),
            (
                "crates/proxy/src/mqtt_relay_trunk.rs",
                include_str!("../../proxy/src/mqtt_relay_trunk.rs"),
            ),
            (
                "crates/proxy/src/quic_service.rs",
                include_str!("../../proxy/src/quic_service.rs"),
            ),
        ] {
            sites.extend(span_sites(path, src));
        }
        assert!(!sites.is_empty(), "trace sources record no SpanKind at all");
        let admin = include_str!("../../proxy/src/admin.rs");
        let v = check_span_kind_rendering(Path::new("crates/proxy/src/admin.rs"), admin, &sites)
            .unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    /// A minimal config.rs-shaped fixture: a FIELDS table plus validate /
    /// field_value impls whose literal coverage the rule inspects.
    fn config_fixture(fields: &str, validate: &str, field_value: &str) -> String {
        format!(
            "pub struct FieldSpec {{ pub name: &'static str, pub hot: bool }}\n\
             pub struct ZdrConfig;\n\
             pub const FIELDS: &[FieldSpec] = &[{fields}];\n\
             impl ZdrConfig {{\n\
                 pub fn validate(&self) -> Result<(), Vec<String>> {{\n\
                     let _ranges: &[&str] = &[{validate}];\n\
                     Ok(())\n\
                 }}\n\
                 pub fn field_value(&self, name: &str) -> Option<String> {{\n\
                     match name {{\n{field_value}\n_ => None }}\n\
                 }}\n\
             }}\n"
        )
    }

    #[test]
    fn config_coverage_flags_unvalidated_and_unrendered_fields() {
        let fields = "FieldSpec { name: \"shed.max_active\", hot: true },\n\
                      FieldSpec { name: \"admin.port\", hot: false },";

        // Clean: hot field validated + both rendered.
        let ok = config_fixture(
            fields,
            "\"shed.max_active\"",
            "\"shed.max_active\" => Some(String::new()),\n\
             \"admin.port\" => Some(String::new()),",
        );
        let v = check_config_coverage(Path::new("crates/core/src/config.rs"), &ok).unwrap();
        assert!(v.is_empty(), "complete coverage flagged: {v:?}");

        // Seeded violation: the hot field is missing from BOTH the
        // validator table and the renderer — two distinct violations.
        let seeded = config_fixture(fields, "", "\"admin.port\" => Some(String::new()),");
        let v = check_config_coverage(Path::new("crates/core/src/config.rs"), &seeded).unwrap();
        assert_eq!(
            rules(&v),
            vec!["config-coverage", "config-coverage"],
            "{v:?}"
        );
        assert!(v.iter().any(|x| x.message.contains("field_value")), "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("validate")), "{v:?}");
        assert!(
            v.iter().all(|x| x.message.contains("shed.max_active")),
            "{v:?}"
        );

        // A boot-only field may skip validate but must still render.
        let boot_only_unrendered = config_fixture(
            fields,
            "\"shed.max_active\"",
            "\"shed.max_active\" => Some(String::new()),",
        );
        let v = check_config_coverage(
            Path::new("crates/core/src/config.rs"),
            &boot_only_unrendered,
        )
        .unwrap();
        assert_eq!(rules(&v), vec!["config-coverage"], "{v:?}");
        assert!(v[0].message.contains("admin.port"), "{v:?}");

        // An empty inventory is itself a violation (the rule must never
        // pass vacuously because the table moved or was renamed).
        let gutted = config_fixture("", "", "");
        let v = check_config_coverage(Path::new("crates/core/src/config.rs"), &gutted).unwrap();
        assert_eq!(rules(&v), vec!["config-coverage"], "{v:?}");
    }

    #[test]
    fn repo_config_source_satisfies_config_coverage() {
        // The rule run exactly as `cargo xtask lint` runs it, against the
        // real source — a unit-test early warning for the CI gate.
        let config = include_str!("../../core/src/config.rs");
        let v = check_config_coverage(Path::new("crates/core/src/config.rs"), config).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn safety_comment_anchors_to_statement_not_keyword() {
        // The unsafe keyword sits on a continuation line of a multi-line
        // statement; the SAFETY comment above the *statement* still counts.
        let src = "pub fn f(p: *const u8) -> u8 {\n\
                   \x20   // SAFETY: fixture — caller guarantees validity.\n\
                   \x20   let v =\n\
                   \x20       unsafe { *p };\n\
                   \x20   v\n\
                   }\n";
        let v = lint_fixture("crates/demo/src/lib.rs", src);
        assert!(v.is_empty(), "statement-anchored comment missed: {v:?}");
    }
}

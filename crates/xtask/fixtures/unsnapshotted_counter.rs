//! Seeded violation for the `counter-in-snapshot` rule: `dropped` never
//! reaches the snapshot, so dashboards would silently miss it.
pub struct Counter(u64);

pub struct DemoStats {
    pub served: Counter,
    pub dropped: Counter,
}

pub struct Snap {
    pub served: u64,
}

impl DemoStats {
    pub fn snapshot(&self) -> Snap {
        Snap {
            served: self.served.0,
        }
    }
}

//! Seeded violations for the panic-path pass. Parsed, never compiled.

async fn serve_conn(frame: &[u8]) {
    let len = parse_len(frame);
    let _ = len;
}

fn parse_len(frame: &[u8]) -> u64 {
    // Reachable from the `serve_conn` entry point: flagged.
    decode(frame).unwrap()
}

fn decode(frame: &[u8]) -> Option<u64> {
    if frame.len() < 8 {
        return None;
    }
    // Indexing is reported only under --strict-index.
    Some(frame[0] as u64)
}

fn handle_frame(frame: &[u8]) -> u64 {
    // PANIC-OK: the accept path validated the frame length before dispatch
    decode(frame).unwrap()
}

fn offline() -> u64 {
    // Not reachable from any data-plane entry point: clean.
    decode(&[]).unwrap()
}

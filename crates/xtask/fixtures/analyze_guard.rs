//! Seeded violations for the await-holding-guard pass. Parsed, never compiled.

struct Shared {
    inner: std::sync::Mutex<u64>,
}

async fn tick() {}

async fn bad(shared: &Shared) {
    let guard = shared.inner.lock().unwrap();
    tick().await; // flagged: `guard` is still live
    drop(guard);
}

async fn good(shared: &Shared) {
    let done = shared.inner.lock().unwrap();
    drop(done);
    tick().await; // clean: dropped before the await
}

async fn scoped(shared: &Shared) {
    {
        let _held = shared.inner.lock().unwrap();
    }
    tick().await; // clean: the guard died with its block
}

async fn justified(shared: &Shared) {
    let excused = shared.inner.lock().unwrap();
    // GUARD-OK: protects one counter bump; no task can park on this lock
    tick().await;
    drop(excused);
}

//! Seeded violation for the `safety-comment` rule.

pub fn read_first(p: *const u8) -> u8 {
    unsafe { *p }
}

/// This one carries the required justification and must not be flagged.
pub fn read_second(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads (fixture).
    unsafe { *p }
}

//! Seeded violations for the deadline-coverage pass. Parsed, never compiled.

use tokio::net::TcpStream;

async fn naked(addr: std::net::SocketAddr) {
    let _ = TcpStream::connect(addr).await; // flagged: no deadline bound
}

async fn bounded(addr: std::net::SocketAddr) {
    let _ = tokio::time::timeout(
        std::time::Duration::from_millis(5),
        TcpStream::connect(addr), // clean: lexically inside timeout(..)
    )
    .await;
}

async fn justified(addr: std::net::SocketAddr) {
    // DEADLINE-OK: health probe raced against a bounded select! arm upstream
    let _ = TcpStream::connect(addr).await;
}

//! Seeded violations for the async-blocking pass. Parsed, never compiled.

async fn serve_loop() {
    // Direct blocking call in an async body: flagged.
    std::thread::sleep(std::time::Duration::from_millis(1));
    // Taints `nap`: the sleep inside it is flagged with this fn as witness.
    nap();
    tokio::task::spawn_blocking(|| {
        // Inside a spawn_blocking closure: clean.
        std::thread::sleep(std::time::Duration::from_millis(1));
    });
    // BLOCKING-OK: startup-only pause, measured under a millisecond
    std::thread::sleep(std::time::Duration::from_millis(1));
}

fn nap() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

fn offline_only() {
    // Never called from async context: clean.
    std::thread::sleep(std::time::Duration::from_millis(1));
}

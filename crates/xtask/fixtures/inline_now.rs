//! Seeded violation for the `inline-now` rule: reads the wall clock inline
//! instead of taking a `zdr_core::clock::Clock` (or a now_ms argument).
use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_reading_the_clock_is_fine() {
        let _ = std::time::Instant::now();
    }
}

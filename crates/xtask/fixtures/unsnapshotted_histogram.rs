//! Seeded violation for the `counter-in-snapshot` rule's telemetry
//! extension: `connect_us` (a Histogram) and `timeline` (an EventRing)
//! never reach the snapshot, so scrapes would silently miss them.
pub struct Histogram(u64);
pub struct EventRing(u64);

pub struct DemoTelemetry {
    pub latency_us: Histogram,
    pub connect_us: Histogram,
    pub timeline: EventRing,
}

pub struct Snap {
    pub latency_us: u64,
}

impl DemoTelemetry {
    pub fn snapshot(&self) -> Snap {
        Snap {
            latency_us: self.latency_us.0,
        }
    }
}

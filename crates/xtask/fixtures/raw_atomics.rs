//! Seeded violation for the `raw-atomics` rule: imports and names std
//! atomics directly instead of going through the `zdr_core::sync` facade.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn qualified() -> std::sync::atomic::AtomicBool {
    std::sync::atomic::AtomicBool::new(false)
}

//! Control fixture: violates nothing; every rule must stay silent.
use std::time::Duration;

pub fn double(d: Duration) -> Duration {
    d * 2
}

//! Seeded violations for the allow-justified lint rule. Parsed, never compiled.

// ALLOW: the relay fans out to many sinks; the arg list is the protocol
#[allow(clippy::too_many_arguments)]
fn justified(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8, g: u8, h: u8) -> u8 {
    a + b + c + d + e + f + g + h
}

#[allow(dead_code)]
fn bare() {}

#[cfg(test)]
mod tests {
    #[allow(dead_code)]
    fn exempt_in_tests() {}
}

//! Seeded violation for the `span-kind-rendered` rule: `GhostHop` is
//! recorded but the admin `/traces` renderer never labels it, so its
//! spans would be invisible to operators.
pub enum SpanKind {
    Request,
    GhostHop,
}

pub fn record(spans: &mut Vec<SpanKind>) {
    spans.push(SpanKind::Request);
    spans.push(SpanKind::GhostHop);
}

//! Criterion benches for Partial Post Replay: the 379 round trip and the
//! chunk-stream reconstruction — the costs added to a replayed request,
//! and the ablation against full-buffering (§4.3 option iii).

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use zdr_proto::http1::{ChunkedEncoder, ChunkedState, Headers, Method, Version};
use zdr_proto::ppr::{build_379, decode_379, rebuild_request, PartialRequest};

fn partial(body_len: usize) -> PartialRequest {
    let mut headers = Headers::new();
    headers.append("host", "origin.example");
    headers.append("content-type", "application/octet-stream");
    headers.append("content-length", (body_len * 2).to_string());
    PartialRequest {
        method: Method::Post,
        target: "/upload/video".into(),
        version: Version::Http11,
        headers,
        body_received: Bytes::from(vec![0xabu8; body_len]),
        chunked_state: None,
    }
}

fn ppr_round_trip(c: &mut Criterion) {
    let mut g = c.benchmark_group("ppr");
    for size in [4 * 1024usize, 64 * 1024, 1024 * 1024] {
        let p = partial(size);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("build_379", size), &p, |b, p| {
            b.iter(|| black_box(build_379(black_box(p))))
        });
        let resp = build_379(&p);
        g.bench_with_input(BenchmarkId::new("decode_379", size), &resp, |b, resp| {
            b.iter(|| black_box(decode_379(black_box(resp)).unwrap()))
        });
        let rest = vec![0xcdu8; size];
        g.bench_with_input(BenchmarkId::new("rebuild_request", size), &p, |b, p| {
            b.iter(|| black_box(rebuild_request(black_box(p), black_box(&rest))))
        });
    }
    g.finish();
}

fn chunk_resume(c: &mut Criterion) {
    let mut g = c.benchmark_group("chunked");
    let enc = ChunkedEncoder::new();
    let rest = vec![0u8; 64 * 1024];
    g.throughput(Throughput::Bytes(rest.len() as u64));
    g.bench_function("resume_mid_chunk_64k", |b| {
        let state = ChunkedState::InChunk {
            size: 16 * 1024,
            remaining: 8 * 1024,
        };
        b.iter(|| black_box(enc.resume(black_box(state), black_box(&rest)).unwrap()))
    });
    g.bench_function("encode_all_64k", |b| {
        b.iter(|| black_box(enc.encode_all(black_box(&rest))))
    });
    g.finish();
}

/// Ablation: PPR's per-replay copy vs buffering EVERY request at the proxy
/// (the rejected design). Buffering cost is paid per request; PPR's is
/// paid only on the rare restart-interrupted request.
fn buffering_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ppr_ablation");
    let body = vec![0u8; 256 * 1024];
    g.throughput(Throughput::Bytes(body.len() as u64));
    // Option (iii): copy every request body into a proxy-side buffer.
    g.bench_function("buffer_every_post_256k", |b| {
        b.iter(|| black_box(body.to_vec()))
    });
    // PPR: nothing to do on the common path.
    g.bench_function("ppr_common_path_noop", |b| {
        b.iter(|| black_box(&body).len())
    });
    g.finish();
}

criterion_group!(benches, ppr_round_trip, chunk_resume, buffering_ablation);
criterion_main!(benches);

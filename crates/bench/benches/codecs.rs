//! Criterion micro-benchmarks for the protocol codecs: the per-request
//! costs a Proxygen-like proxy pays on every hop.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use bytes::Bytes;
use zdr_proto::http1::{serialize_request, Request, RequestParser};
use zdr_proto::{h2, mqtt, quic};

fn http1_parse(c: &mut Criterion) {
    let wire = serialize_request(&{
        let mut r = Request::post("/upload/video", vec![0u8; 4096]);
        r.headers.append("host", "origin.example");
        r.headers.append("user-agent", "bench/1.0");
        r.headers.append("accept", "*/*");
        r
    });
    let mut g = c.benchmark_group("http1");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("parse_post_4k", |b| {
        b.iter(|| {
            let mut p = RequestParser::new();
            black_box(p.push(black_box(&wire)).unwrap().unwrap())
        })
    });
    g.bench_function("serialize_post_4k", |b| {
        let req = Request::post("/upload/video", vec![0u8; 4096]);
        b.iter(|| black_box(serialize_request(black_box(&req))))
    });
    g.finish();
}

fn mqtt_codec(c: &mut Criterion) {
    let publish = mqtt::Packet::Publish {
        topic: "notif/user-123456".into(),
        packet_id: None,
        payload: Bytes::from(vec![0u8; 256]),
        qos: mqtt::QoS::AtMostOnce,
        retain: false,
        dup: false,
    };
    let wire = mqtt::encode(&publish).unwrap();
    let mut g = c.benchmark_group("mqtt");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode_publish_256", |b| {
        b.iter(|| black_box(mqtt::encode(black_box(&publish)).unwrap()))
    });
    g.bench_function("decode_publish_256", |b| {
        b.iter(|| black_box(mqtt::decode(black_box(&wire)).unwrap()))
    });
    g.finish();
}

fn h2_frames(c: &mut Criterion) {
    let frame = h2::Frame::Data {
        stream_id: 7,
        data: Bytes::from(vec![0u8; 8192]),
        end_stream: false,
    };
    let wire = h2::encode(&frame).unwrap();
    let mut g = c.benchmark_group("h2");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode_data_8k", |b| {
        b.iter(|| black_box(h2::encode(black_box(&frame)).unwrap()))
    });
    g.bench_function("decode_data_8k", |b| {
        b.iter(|| black_box(h2::decode(black_box(&wire)).unwrap()))
    });
    g.finish();
}

fn quic_peek(c: &mut Criterion) {
    let d = quic::Datagram::one_rtt(quic::ConnectionId::new(3, 42), 100, vec![0u8; 1200]);
    let wire = quic::encode(&d).unwrap();
    let mut g = c.benchmark_group("quic");
    // peek_cid is the user-space router's per-packet hot path.
    g.throughput(Throughput::Elements(1));
    g.bench_function("peek_cid", |b| {
        b.iter(|| black_box(quic::peek_cid(black_box(&wire)).unwrap()))
    });
    g.bench_function("full_decode_1200", |b| {
        b.iter(|| black_box(quic::decode(black_box(&wire)).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, http1_parse, mqtt_codec, h2_frames, quic_peek);
criterion_main!(benches);

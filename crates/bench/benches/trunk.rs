//! Criterion benches for the Edge↔Origin trunk: per-stream costs on the
//! multiplexed connection, and the latency of a GOAWAY drain.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tokio::runtime::Runtime;

use zdr_core::clock::unix_now_ms;
use zdr_proto::deadline::Deadline;
use zdr_proxy::trunk::{self, StreamEvent};

/// Generous bound on the loopback dial — benches measure stream costs,
/// not connect latency, so the deadline just satisfies the API.
fn bench_deadline() -> Deadline {
    Deadline::after(unix_now_ms(), std::time::Duration::from_secs(5))
}

fn trunk_round_trip(c: &mut Criterion) {
    let rt = Runtime::new().unwrap();
    let mut g = c.benchmark_group("trunk");
    g.sample_size(30);

    // One persistent trunk; measure open+send+recv+close per iteration.
    let (client, _server, _echo_task) = rt.block_on(async {
        let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let server_task = tokio::spawn(async move {
            let (stream, _) = listener.accept().await.unwrap();
            trunk::accept(stream)
        });
        let (client, _ci) = trunk::connect(addr, bench_deadline()).await.unwrap();
        let (server, mut incoming) = server_task.await.unwrap();
        // Echo every incoming stream.
        let echo = tokio::spawn(async move {
            while let Some(mut s) = incoming.recv().await {
                tokio::spawn(async move {
                    while let Some(ev) = s.recv().await {
                        match ev {
                            StreamEvent::Data(d) => {
                                if s.send(d).await.is_err() {
                                    break;
                                }
                            }
                            _ => break,
                        }
                    }
                });
            }
        });
        (client, server, echo)
    });

    g.throughput(Throughput::Elements(1));
    g.bench_function("open_echo_close_1k", |b| {
        let payload = vec![0u8; 1024];
        b.iter(|| {
            rt.block_on(async {
                let mut s = client.open_stream(vec![]).await.unwrap();
                s.send(payload.clone()).await.unwrap();
                let ev = s.recv().await.unwrap();
                s.finish().await.unwrap();
                black_box(ev)
            })
        })
    });

    g.throughput(Throughput::Bytes(64 * 1024));
    g.bench_function("stream_echo_64k", |b| {
        let payload = vec![0u8; 16 * 1024 - 64]; // fits one h2 frame
        b.iter(|| {
            rt.block_on(async {
                let mut s = client.open_stream(vec![]).await.unwrap();
                let mut echoed = 0usize;
                for _ in 0..4 {
                    s.send(payload.clone()).await.unwrap();
                }
                while echoed < 4 * payload.len() {
                    match s.recv().await.unwrap() {
                        StreamEvent::Data(d) => echoed += d.len(),
                        _ => break,
                    }
                }
                s.finish().await.unwrap();
                black_box(echoed)
            })
        })
    });

    g.sample_size(20);
    g.bench_function("goaway_drain_empty_trunk", |b| {
        // Each iteration needs a fresh trunk pair (GOAWAY is one-shot per
        // connection). A dedicated current-thread runtime per iteration
        // gives every pair — and all its spawned connection tasks — a
        // clean, bounded shutdown.
        b.iter(|| {
            let rt2 = tokio::runtime::Builder::new_current_thread()
                .enable_all()
                .build()
                .unwrap();
            let drained = rt2.block_on(async {
                let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
                let addr = listener.local_addr().unwrap();
                let accept = tokio::spawn(async move {
                    let (stream, _) = listener.accept().await.unwrap();
                    trunk::accept(stream)
                });
                let (_client, _ci) = trunk::connect(addr, bench_deadline()).await.unwrap();
                let (server, _si) = accept.await.unwrap();
                server.goaway().await.unwrap();
                server.drained().await
            });
            drop(rt2);
            black_box(drained)
        })
    });

    g.finish();
}

criterion_group!(benches, trunk_round_trip);
criterion_main!(benches);

//! Criterion benches for the Socket Takeover substrate: the cost of
//! passing FDs and of a complete handshake — i.e. how much "restart" the
//! mechanism adds to a release.

use std::os::fd::AsFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use zdr_net::fdpass::{recv_with_fds, send_with_fds};
use zdr_net::inventory::{bind_tcp, bind_udp_reuseport_group, ListenerInventory};
use zdr_net::takeover::{request_takeover, HandoffInfo, TakeoverServer};

fn fd_pass_round_trip(c: &mut Criterion) {
    let mut g = c.benchmark_group("fdpass");
    g.throughput(Throughput::Elements(1));
    g.bench_function("send_recv_1_fd", |b| {
        let (a, bside) = UnixStream::pair().unwrap();
        let file = std::fs::File::open("/proc/self/cmdline").unwrap();
        let mut buf = [0u8; 16];
        b.iter(|| {
            send_with_fds(&a, b"x", &[file.as_fd()]).unwrap();
            let (_, fds) = recv_with_fds(&bside, &mut buf).unwrap();
            black_box(fds); // dropped: closes the dup'd fd
        })
    });
    g.bench_function("send_recv_32_fds", |b| {
        let (a, bside) = UnixStream::pair().unwrap();
        let file = std::fs::File::open("/proc/self/cmdline").unwrap();
        let fds: Vec<_> = (0..32).map(|_| file.as_fd()).collect();
        let mut buf = [0u8; 16];
        b.iter(|| {
            send_with_fds(&a, b"x", &fds).unwrap();
            let (_, received) = recv_with_fds(&bside, &mut buf).unwrap();
            black_box(received);
        })
    });
    g.finish();
}

fn takeover_handshake(c: &mut Criterion) {
    let mut g = c.benchmark_group("takeover");
    g.sample_size(20);
    g.bench_function("full_handshake_1_tcp_4_udp", |b| {
        b.iter(|| {
            let path = std::env::temp_dir().join(format!(
                "zdr-bench-takeover-{}-{:x}.sock",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            let tcp = bind_tcp("127.0.0.1:0".parse().unwrap()).unwrap();
            let tcp_addr = tcp.local_addr().unwrap();
            let udp = bind_udp_reuseport_group("127.0.0.1:0".parse().unwrap(), 4).unwrap();
            let udp_addr = udp[0].local_addr().unwrap();
            let mut inv = ListenerInventory::new();
            inv.add_tcp(tcp_addr, tcp);
            inv.add_udp_group(udp_addr, udp);

            let server = TakeoverServer::bind(&path).unwrap();
            let info = HandoffInfo {
                generation: 1,
                udp_router_addr: None,
                drain_deadline_ms: 1000,
            };
            let old = std::thread::spawn(move || {
                server
                    .serve_once(&inv, info, Duration::from_secs(10))
                    .unwrap()
            });
            let pending = request_takeover(&path, Duration::from_secs(10)).unwrap();
            let mut result = pending.confirm().unwrap();
            let listener = result.inventory.claim_tcp(tcp_addr).unwrap();
            let group = result.inventory.claim_udp_group(udp_addr).unwrap();
            result.inventory.finish().unwrap();
            old.join().unwrap();
            black_box((listener, group));
        })
    });
    g.finish();
}

criterion_group!(benches, fd_pass_round_trip, takeover_handshake);
criterion_main!(benches);

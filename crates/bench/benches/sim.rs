//! Criterion benches for the fleet simulator itself: ticks/second at
//! cluster scale determines how cheap the figure reproductions are.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use zdr_core::mechanism::RestartStrategy;
use zdr_core::tier::Tier;
use zdr_sim::cluster::{ClusterConfig, ClusterSim};

fn cluster_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.throughput(Throughput::Elements(1));
    g.bench_function("tick_100_machines_steady", |b| {
        let strategy = RestartStrategy::zero_downtime_for(Tier::EdgeProxygen);
        let mut sim = ClusterSim::new(ClusterConfig::edge(100, strategy, 1));
        sim.run_ticks(5);
        b.iter(|| {
            sim.tick();
            black_box(sim.now_ms())
        })
    });
    g.bench_function("tick_100_machines_draining", |b| {
        let strategy = RestartStrategy::zero_downtime_for(Tier::EdgeProxygen);
        let mut sim = ClusterSim::new(ClusterConfig::edge(100, strategy, 2));
        sim.run_ticks(5);
        let indices: Vec<usize> = (0..20).collect();
        sim.begin_restart(&indices);
        b.iter(|| {
            sim.tick();
            black_box(sim.now_ms())
        })
    });
    g.finish();
}

criterion_group!(benches, cluster_tick);
criterion_main!(benches);

//! Criterion benches for the L4 forwarding plane: Maglev builds (the cost
//! of a health transition) and per-packet routing.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use zdr_l4lb::conntrack::LruTable;
use zdr_l4lb::forwarder::{ForwarderConfig, L4Forwarder};
use zdr_l4lb::hash::FlowKey;
use zdr_l4lb::maglev::MaglevTable;
use zdr_l4lb::BackendId;

fn flows(n: u16) -> Vec<FlowKey> {
    (0..n)
        .map(|i| {
            FlowKey::tcp(
                format!("10.{}.{}.{}:{}", i % 4, (i / 4) % 250, i % 250, 1024 + i)
                    .parse()
                    .unwrap(),
                "198.51.100.1:443".parse().unwrap(),
            )
        })
        .collect()
}

fn maglev(c: &mut Criterion) {
    let backends: Vec<BackendId> = (0..100).map(BackendId).collect();
    let mut g = c.benchmark_group("maglev");
    g.bench_function("build_100_backends_65537", |b| {
        b.iter(|| black_box(MaglevTable::new(black_box(&backends)).unwrap()))
    });
    let table = MaglevTable::new(&backends).unwrap();
    g.throughput(Throughput::Elements(1));
    g.bench_function("lookup", |b| {
        let mut h = 0u64;
        b.iter(|| {
            h = h.wrapping_add(0x9e37_79b9);
            black_box(table.lookup(black_box(h)))
        })
    });
    g.finish();
}

fn conntrack(c: &mut Criterion) {
    let keys = flows(4096);
    let mut g = c.benchmark_group("conntrack");
    g.throughput(Throughput::Elements(1));
    g.bench_function("insert_evict", |b| {
        let mut lru: LruTable<FlowKey, BackendId> = LruTable::new(1024);
        let mut i = 0usize;
        b.iter(|| {
            lru.insert(keys[i % keys.len()], BackendId((i % 7) as u32));
            i += 1;
        })
    });
    g.bench_function("hit_path", |b| {
        let mut lru: LruTable<FlowKey, BackendId> = LruTable::new(8192);
        for (i, k) in keys.iter().enumerate() {
            lru.insert(*k, BackendId(i as u32 % 5));
        }
        let mut i = 0usize;
        b.iter(|| {
            let v = lru.get(&keys[i % keys.len()]).copied();
            i += 1;
            black_box(v)
        })
    });
    g.finish();
}

fn forwarder(c: &mut Criterion) {
    let keys = flows(4096);
    let mut g = c.benchmark_group("forwarder");
    g.throughput(Throughput::Elements(1));
    g.bench_function("route_with_conn_table", |b| {
        let mut f = L4Forwarder::new(
            (0..50).map(BackendId).collect(),
            ForwarderConfig {
                table_size: 65_537,
                ..ForwarderConfig::default()
            },
        );
        let mut i = 0usize;
        b.iter(|| {
            let b_ = f.route(keys[i % keys.len()]);
            i += 1;
            black_box(b_)
        })
    });
    g.bench_function("route_maglev_only", |b| {
        let mut f = L4Forwarder::new(
            (0..50).map(BackendId).collect(),
            ForwarderConfig {
                table_size: 65_537,
                conn_table_capacity: 0,
                ..ForwarderConfig::default()
            },
        );
        let mut i = 0usize;
        b.iter(|| {
            let b_ = f.route(keys[i % keys.len()]);
            i += 1;
            black_box(b_)
        })
    });
    g.finish();
}

criterion_group!(benches, maglev, conntrack, forwarder);
criterion_main!(benches);

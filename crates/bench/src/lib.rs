//! # zdr-bench — figure-reproduction binaries and criterion benches
//!
//! One binary per paper figure (`cargo run -p zdr-bench --release --bin
//! figN_*`) plus criterion micro-benchmarks of the hot paths
//! (`cargo bench -p zdr-bench`).
//!
//! Every binary accepts `--fast` to run a scaled-down configuration
//! (useful in CI); default parameters match EXPERIMENTS.md.

/// True when `--fast` was passed on the command line.
pub fn fast_mode() -> bool {
    std::env::args().any(|a| a == "--fast")
}

/// Prints the standard experiment header.
pub fn header(figure: &str, title: &str) {
    println!("┌──────────────────────────────────────────────────────────────");
    println!("│ Zero Downtime Release — {figure}: {title}");
    println!("└──────────────────────────────────────────────────────────────");
}

#[cfg(test)]
mod tests {
    #[test]
    fn fast_mode_reflects_args() {
        // Test binaries don't pass --fast.
        assert!(!super::fast_mode());
    }
}

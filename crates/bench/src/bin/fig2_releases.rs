//! Figs. 2a–2c: release frequency, root-cause mix, commits per update.

use zdr_sim::experiments::releases;

fn main() {
    zdr_bench::header("Figs. 2a-2c", "release characterization");
    let cfg = if zdr_bench::fast_mode() {
        releases::Config {
            weeks: 4,
            clusters: 3,
            seed: 2020,
        }
    } else {
        releases::Config::default()
    };
    println!("{}", releases::run(&cfg));
    println!("paper: L7LB ≈3+/wk; App ≈100/wk; binary ≈47%; commits 10-100");
}

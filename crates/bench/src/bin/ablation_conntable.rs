//! §5.1 ablation: L4 routing stability under health flaps, by scheme.

use zdr_sim::experiments::conntable;

fn main() {
    zdr_bench::header("Ablation", "L4 LRU connection table under health flaps");
    let cfg = if zdr_bench::fast_mode() {
        conntable::Config {
            flows: 5_000,
            ..conntable::Config::default()
        }
    } else {
        conntable::Config {
            flows: 100_000,
            ..conntable::Config::default()
        }
    };
    println!("{}", conntable::run(&cfg));
    println!("paper (§5.1): the LRU cache absorbs momentary shuffles; adoption");
    println!("\"also usually yields performance improvements\"");
}

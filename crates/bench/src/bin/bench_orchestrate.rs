//! Fleet release-train bench: §6.2's staggered, canary-gated batches plus
//! the PAPERS.md Microreboots ablation, over a simulated fleet.
//!
//! Four arms — {whole-process takeover, per-service microreboot} ×
//! {healthy, defective binary}. Healthy arms must complete with every
//! batch promoted; defective arms must halt on the canary gate and roll
//! the failing batch back, never settling mixed. The ablation's claim is
//! the last two columns: microreboots confine the blast radius of a bad
//! binary and pay for it in rollout time.
//!
//! Emits `BENCH_orchestrate.json` (validated in CI against
//! `schemas/bench_orchestrate.schema.json`). Pass `--fast` for the
//! scaled-down CI run, `--out PATH` to redirect the artifact.

use zdr_sim::experiments::release_train;
use zdr_sim::TICK_MS;

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn main() {
    zdr_bench::header(
        "BENCH orchestrate",
        "release trains: whole-process vs microreboot, healthy vs defective",
    );
    let fast = zdr_bench::fast_mode();
    let cfg = if fast {
        release_train::Config {
            clusters: 4,
            machines_per_cluster: 10,
            batch_size: 2,
            stagger_ticks: 5,
            window_ticks: 2,
            drain_ms: 5_000,
            ..release_train::Config::default()
        }
    } else {
        // ~3k proxies: the fleet scale §6.2's trains exist for.
        release_train::Config {
            clusters: 12,
            machines_per_cluster: 256,
            batch_size: 3,
            ..release_train::Config::default()
        }
    };
    let report = release_train::run(&cfg);

    let arms: Vec<serde_json::Value> = report
        .arms
        .iter()
        .map(|a| {
            serde_json::json!({
                "mode": a.mode.name(),
                "buggy": a.buggy,
                "completed": a.completed,
                "halted": a.halted,
                "halt_reason": a.halt_reason,
                "mixed_state": a.mixed_state,
                "batches_promoted": a.batches_promoted,
                "batches_rolled_back": a.batches_rolled_back,
                "completion_ms": a.completion_ms,
                "peak_blast_radius": a.peak_blast_radius,
                "user_errors": a.user_errors,
                "disruptions": a.disruptions,
                "requests": a.requests,
            })
        })
        .collect();
    let json = serde_json::json!({
        "bench": "orchestrate",
        "fast": fast,
        "clusters": cfg.clusters,
        "machines_per_cluster": cfg.machines_per_cluster,
        "batch_size": cfg.batch_size,
        "stagger_ms": cfg.stagger_ticks * TICK_MS,
        "window_ms": cfg.window_ticks * TICK_MS,
        "drain_ms": cfg.drain_ms,
        "arms": arms,
    });
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_orchestrate.json".into());
    let pretty = serde_json::to_string_pretty(&json).expect("serialize report");
    std::fs::write(&out, &pretty).expect("write BENCH_orchestrate.json");

    println!("BENCH_orchestrate {json}");
    println!("{report}");
    println!("artifact: {out}");
    println!(
        "paper: §6.2 — staggered canary-gated batches; a bad binary is halted and \
         rolled back before it reaches the fleet"
    );
}

//! Ablation: drain period vs disruption and completion time.

use zdr_sim::experiments::drain_sweep;

fn main() {
    zdr_bench::header("Ablation", "drain-period sweep");
    let cfg = if zdr_bench::fast_mode() {
        drain_sweep::Config {
            machines: 10,
            drain_periods_ms: vec![10_000, 60_000, 300_000],
            ..drain_sweep::Config::default()
        }
    } else {
        drain_sweep::Config::default()
    };
    println!("{}", drain_sweep::run(&cfg));
    println!("takeaway: persistent connections defeat any drain length; mechanisms don't");
}

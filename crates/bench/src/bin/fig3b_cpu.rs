//! Fig. 3b: app-tier CPU burned on reconnection storms.

use zdr_sim::experiments::reconnect_storm;

fn main() {
    zdr_bench::header("Fig. 3b", "reconnect-storm CPU at the app tier");
    let cfg = reconnect_storm::Config::default();
    println!("{}", reconnect_storm::run(&cfg));
    println!("paper: 10% of origins restarting costs ~20% of app-tier CPU");
}

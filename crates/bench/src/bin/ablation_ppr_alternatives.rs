//! §4.3 ablation: the four ways to handle restart-interrupted POSTs.

use zdr_sim::experiments::ppr_alternatives;

fn main() {
    zdr_bench::header("Ablation", "interrupted-POST design alternatives (§4.3)");
    println!(
        "{}",
        ppr_alternatives::run(&ppr_alternatives::Config::default())
    );
    println!("paper: 500 disrupts; 307 re-uploads over high-RTT WAN; buffering every");
    println!("POST is impractical; PPR pays only intra-DC replay bytes during releases");
}

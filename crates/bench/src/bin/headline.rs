//! The paper's §1 headline claims, computed end to end.

use zdr_sim::experiments::headline;

fn main() {
    zdr_bench::header("§1", "headline claims");
    let cfg = if zdr_bench::fast_mode() {
        headline::Config {
            machines: 30,
            ..headline::Config::default()
        }
    } else {
        headline::Config::default()
    };
    println!("{}", headline::run(&cfg));
    println!("paper: (i) 25/90-minute releases; (ii) +15-20% effective L7LB capacity;");
    println!("(iii) millions of error codes prevented");
}

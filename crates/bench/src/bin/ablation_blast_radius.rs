//! §5.1 ablation: canary-gated vs ungated rollout of a defective binary.

use zdr_sim::experiments::blast_radius;

fn main() {
    zdr_bench::header("Ablation", "blast radius of a defective release");
    let cfg = if zdr_bench::fast_mode() {
        blast_radius::Config {
            machines: 20,
            window_ticks: 10,
            ..blast_radius::Config::default()
        }
    } else {
        blast_radius::Config::default()
    };
    println!("{}", blast_radius::run(&cfg));
    println!("paper (§5.1): blast radius confined; mitigation/rollback applied swiftly");
}

//! Fig. 13: release timelines for restarted (GR) vs non-restarted (GNR)
//! machine groups.

use zdr_sim::experiments::timeline;

fn main() {
    zdr_bench::header("Fig. 13", "release timeline, GR vs GNR groups");
    let cfg = if zdr_bench::fast_mode() {
        timeline::Config {
            machines: 20,
            warmup_ticks: 15,
            window_ticks: 80,
            drain_ms: 30_000,
            ..timeline::Config::default()
        }
    } else {
        timeline::Config::default()
    };
    println!("{}", timeline::run(&cfg));
    println!("paper: RPS/MQTT flat cluster-wide; small CPU bump on GR from takeover");
}

//! Fig. 16: global release completion times per tier.

use zdr_sim::experiments::completion;

fn main() {
    zdr_bench::header("Fig. 16", "release completion times");
    let cfg = if zdr_bench::fast_mode() {
        completion::Config {
            clusters: 8,
            machines_per_cluster: 40,
            batch_fraction: 0.20,
        }
    } else {
        completion::Config::default()
    };
    println!("{}", completion::run(&cfg));
    println!("paper: Proxygen ≈1.5h median; App Server ≈25min");
}

//! Release-telemetry benchmark: a scripted Socket Takeover under
//! keep-alive HTTP load, reported from the in-process [`zdr_core::telemetry`]
//! bundle — request-latency percentiles from ≥10k server-side samples plus
//! the takeover FD-pass pause histogram.
//!
//! The same scripted release is judged by the [`DisruptionAuditor`]:
//! the pre-release load seeds the EWMA baseline, the release window
//! spans the takeover, and the verdict is emitted as `AUDIT <json>`.
//!
//! Emits two machine-readable artifacts — `BENCH_telemetry.json` and
//! `AUDIT_telemetry.json` (validated in CI against
//! `schemas/bench_telemetry.schema.json` / `schemas/audit.schema.json`) —
//! alongside a human-readable summary. Pass `--fast` for the scaled-down
//! CI run, `--out PATH` / `--audit-out PATH` to redirect the artifacts.

use std::net::SocketAddr;
use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

use zdr_appserver::{self as appserver, AppServerConfig};
use zdr_core::sync::{Arc, AtomicU64, Ordering};
use zdr_core::telemetry::{AuditorConfig, DisruptionAuditor, TelemetrySnapshot};
use zdr_proto::http1::{serialize_request, Request, ResponseParser};
use zdr_proxy::reverse::ReverseProxyConfig;
use zdr_proxy::takeover::{ProxyInstance, ProxyInstanceConfig};

/// One keep-alive load worker: sends requests until the shared quota is
/// exhausted, reopening its connection whenever the proxy closes it
/// (e.g. a drain force-close mid-release). Returns (ok, failed).
async fn worker(addr: SocketAddr, quota: Arc<AtomicU64>) -> (u64, u64) {
    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut conn: Option<TcpStream> = None;
    let mut parser = ResponseParser::new();
    let mut buf = [0u8; 16 * 1024];
    while quota
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |q| q.checked_sub(1))
        .is_ok()
    {
        if conn.is_none() {
            match TcpStream::connect(addr).await {
                Ok(s) => {
                    parser.reset();
                    conn = Some(s);
                }
                Err(_) => {
                    failed += 1;
                    continue;
                }
            }
        }
        let stream = conn.as_mut().expect("connection just established");
        let req = Request::get(format!("/bench/{ok}"));
        if stream.write_all(&serialize_request(&req)).await.is_err() {
            conn = None;
            failed += 1;
            continue;
        }
        loop {
            match stream.read(&mut buf).await {
                Ok(0) | Err(_) => {
                    conn = None;
                    failed += 1;
                    break;
                }
                Ok(n) => match parser.push(&buf[..n]) {
                    Ok(Some(resp)) => {
                        if resp.status.code == 200 {
                            ok += 1;
                        } else {
                            failed += 1;
                        }
                        parser.reset();
                        break;
                    }
                    Ok(None) => {}
                    Err(_) => {
                        conn = None;
                        failed += 1;
                        break;
                    }
                },
            }
        }
    }
    (ok, failed)
}

/// Drives `total` requests at `addr` across `workers` keep-alive
/// connections; returns (ok, failed).
async fn drive(addr: SocketAddr, total: u64, workers: usize) -> (u64, u64) {
    let quota = Arc::new(AtomicU64::new(total));
    let mut tasks = Vec::new();
    for _ in 0..workers {
        let quota = Arc::clone(&quota);
        tasks.push(tokio::spawn(worker(addr, quota)));
    }
    let mut ok = 0u64;
    let mut failed = 0u64;
    for t in tasks {
        let (o, f) = t.await.expect("load worker panicked");
        ok += o;
        failed += f;
    }
    (ok, failed)
}

fn percentiles(h: &zdr_core::telemetry::HistogramSnapshot) -> serde_json::Value {
    serde_json::json!({
        "count": h.count,
        "p50": h.percentile(50.0),
        "p90": h.percentile(90.0),
        "p99": h.percentile(99.0),
        "p999": h.percentile(99.9),
        "mean": h.mean(),
        "max": h.max,
    })
}

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

#[tokio::main]
async fn main() {
    zdr_bench::header(
        "BENCH telemetry",
        "request latency + takeover pause under scripted release",
    );
    let fast = zdr_bench::fast_mode();
    let total: u64 = if fast { 4_000 } else { 20_000 };
    let workers = 4;

    // Backend tier: two app servers behind one proxy instance.
    let mut apps = Vec::new();
    for name in ["web-1", "web-2"] {
        apps.push(
            appserver::spawn(
                "127.0.0.1:0".parse().unwrap(),
                AppServerConfig {
                    server_name: name.into(),
                    ..Default::default()
                },
            )
            .await
            .expect("spawn app server"),
        );
    }
    let cfg = ProxyInstanceConfig {
        reverse: ReverseProxyConfig {
            upstreams: apps.iter().map(|a| a.addr).collect(),
            upstream_timeout: Duration::from_secs(10),
            ..Default::default()
        },
        takeover_path: std::env::temp_dir().join(format!(
            "zdr-bench-telemetry-{}.sock",
            std::process::id()
        )),
        drain_ms: 500,
    };
    let old = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
        .await
        .expect("bind proxy");
    let addr = old.addr;
    let old_stats = Arc::clone(&old.reverse.stats);

    // Phase 1: warm half the sample budget through generation 0, feeding
    // the auditor one baseline window per chunk.
    let auditor = DisruptionAuditor::new(AuditorConfig::default());
    auditor.observe(old_stats.audit_totals());
    let chunk = (total / 2) / 4;
    let mut ok1 = 0u64;
    let mut failed1 = 0u64;
    for _ in 0..4 {
        let (o, f) = drive(addr, chunk, workers).await;
        ok1 += o;
        failed1 += f;
        auditor.observe(old_stats.audit_totals());
    }

    // Phase 2: the release — load keeps flowing while generation 1 takes
    // the sockets over and generation 0 drains; the audit window spans it.
    auditor.begin_release();
    let load = tokio::spawn(drive(addr, total - 4 * chunk, workers));
    let old_task = tokio::spawn(old.serve_one_takeover());
    tokio::time::sleep(Duration::from_millis(50)).await;
    let new = ProxyInstance::takeover_from(cfg)
        .await
        .expect("takeover_from");
    let drained = old_task
        .await
        .expect("takeover task panicked")
        .expect("serve_one_takeover");
    let (ok2, failed2) = load.await.expect("phase-2 load panicked");

    // Merge both generations' telemetry: the old side holds most request
    // samples and the drain duration; the new side holds the pause as
    // measured across the handshake plus post-release samples.
    let mut telemetry: TelemetrySnapshot = drained.reverse.stats.telemetry.snapshot();
    telemetry.merge(&new.reverse.stats.telemetry.snapshot());

    // Close the audit window over both generations' counters.
    let release_totals = old_stats
        .snapshot()
        .merged(&new.reverse.stats.snapshot())
        .audit_totals();
    auditor.observe(release_totals);
    let verdict = auditor.end_release();

    let report = serde_json::json!({
        "bench": "telemetry",
        "fast": fast,
        "requests_target": total,
        "requests_ok": ok1 + ok2,
        "requests_failed": failed1 + failed2,
        "generation": new.generation,
        "request_latency_us": percentiles(&telemetry.request_latency_us),
        "upstream_connect_us": percentiles(&telemetry.upstream_connect_us),
        "takeover_pause_us": telemetry.takeover_pause_us.clone(),
        "drain_duration_ms": percentiles(&telemetry.drain_duration_ms),
        "timeline": {
            "events": telemetry.timeline.events.len(),
            "dropped": telemetry.timeline.dropped,
        },
    });
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_telemetry.json".into());
    let pretty = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, &pretty).expect("write BENCH_telemetry.json");
    let audit_out = arg_value("--audit-out").unwrap_or_else(|| "AUDIT_telemetry.json".into());
    let audit_json = serde_json::to_string_pretty(&verdict).expect("serialize verdict");
    std::fs::write(&audit_out, &audit_json).expect("write AUDIT_telemetry.json");

    println!("BENCH_telemetry {report}");
    println!(
        "AUDIT {}",
        serde_json::to_string(&verdict).expect("serialize verdict")
    );
    println!(
        "requests: {}/{} ok, {} failed during release",
        ok1 + ok2,
        total,
        failed1 + failed2
    );
    println!(
        "request latency µs: p50={:?} p99={:?} (n={})",
        telemetry.request_latency_us.percentile(50.0),
        telemetry.request_latency_us.percentile(99.0),
        telemetry.request_latency_us.count,
    );
    println!(
        "takeover pause µs: max={} (n={})",
        telemetry.takeover_pause_us.max, telemetry.takeover_pause_us.count,
    );
    println!(
        "auditor: disrupted={} over {} release-window requests",
        verdict.disrupted, verdict.requests
    );
    println!("artifacts: {out}, {audit_out}");
    println!("paper: Fig. 5 — successor answers health checks from its first instant");
}

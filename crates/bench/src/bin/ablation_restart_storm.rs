//! Ablation: the upstream-resilience layer under a 50% restart storm.

use zdr_sim::experiments::restart_storm;

fn main() {
    zdr_bench::header("Ablation", "restart storm vs resilience layer");
    let report = restart_storm::run(&restart_storm::Config::default());
    println!("{report}");
    println!(
        "takeaway: breakers + a shared retry budget turn a 50% upstream outage \
         into a bounded goodput dip ({}x retry amplification, {} late serves)",
        (report.retry_ratio() * 1000.0).round() / 1000.0,
        report.served_past_deadline
    );
}

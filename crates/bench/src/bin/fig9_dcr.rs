//! Fig. 9: MQTT publish continuity with/without Downstream Connection Reuse.

use zdr_sim::experiments::dcr;

fn main() {
    zdr_bench::header("Fig. 9", "MQTT during Origin restart (DCR vs woutDCR)");
    let cfg = if zdr_bench::fast_mode() {
        dcr::Config {
            machines: 20,
            tunnels_per_machine: 500,
            window_ticks: 60,
            drain_ms: 15_000,
            ..dcr::Config::default()
        }
    } else {
        dcr::Config::default()
    };
    println!("{}", dcr::run(&cfg));
    println!("paper: with DCR no publish deterioration and no connect-ACK spike");
}

//! Fig. 15: PDF of release hour-of-day.

use zdr_sim::experiments::peak;

fn main() {
    zdr_bench::header("Fig. 15", "release hour-of-day distribution");
    let cfg = if zdr_bench::fast_mode() {
        peak::Config {
            weeks: 40,
            ..peak::Config::default()
        }
    } else {
        peak::Config::default()
    };
    println!("{}", peak::run(&cfg));
    println!("paper: Proxygen releases peak 12-17h; App Server PDF is flat");
}

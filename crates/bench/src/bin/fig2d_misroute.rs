//! Fig. 2d: UDP packets misrouted during an SO_REUSEPORT socket handover.

use zdr_sim::experiments::misroute;

fn main() {
    zdr_bench::header("Fig. 2d", "SO_REUSEPORT handover misrouting");
    let cfg = if zdr_bench::fast_mode() {
        misroute::Config {
            flows: 2_000,
            ..misroute::Config::default()
        }
    } else {
        misroute::Config::default()
    };
    println!("{}", misroute::run(&cfg));
    println!("paper: ring flux misroutes most packets; motivates FD passing");
}

//! §6.2.2: the disruption cost of releasing at peak vs at the trough.

use zdr_sim::experiments::peak_release;

fn main() {
    zdr_bench::header("§6.2.2", "releasing at peak hours");
    let cfg = if zdr_bench::fast_mode() {
        peak_release::Config {
            machines: 20,
            window_ticks: 60,
            ..peak_release::Config::default()
        }
    } else {
        peak_release::Config::default()
    };
    println!("{}", peak_release::run(&cfg));
    println!("paper: ZDR lets operators release 12-17h, when they can react fastest");
}

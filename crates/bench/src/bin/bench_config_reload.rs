//! Config-change disruption delta: the same tuning change (shed +
//! breaker limits) applied two ways, under identical keep-alive load —
//!
//! * **hot reload** — one `ConfigStore::publish`, fanned out to the live
//!   instance's applier; no socket moves, no process restart;
//! * **supervised takeover** — the pre-config-plane way: boot a successor
//!   with the new settings and hand the sockets over (§2.3 choreography).
//!
//! Reports, per leg, the failed-request count, connection churn, forced
//! closes, and the time until the new limits govern the accept path; the
//! `delta` block is the takeover leg minus the reload leg — the price of
//! a restart for a change that needed none.
//!
//! Emits `BENCH_config_reload.json` (validated in CI against
//! `schemas/bench_config_reload.schema.json`). Pass `--fast` for the
//! scaled-down CI run, `--out PATH` to redirect the artifact.

use std::net::SocketAddr;
use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

use zdr_appserver::{self as appserver, AppServerConfig};
use zdr_core::clock::Clock;
use zdr_core::config::{ConfigStore, ZdrConfig};
use zdr_core::sync::{Arc, AtomicU64, Ordering};
use zdr_proto::http1::{serialize_request, Request, ResponseParser};
use zdr_proxy::reverse::ReverseProxyConfig;
use zdr_proxy::takeover::{ProxyInstance, ProxyInstanceConfig};

/// One keep-alive load worker: sends requests until the shared quota is
/// exhausted, reopening its connection whenever the proxy closes it.
/// Returns (ok, failed, reconnects) — reconnects count the churn a
/// restart inflicts on clients that a reload must not.
async fn worker(addr: SocketAddr, quota: Arc<AtomicU64>) -> (u64, u64, u64) {
    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut reconnects = 0u64;
    let mut conn: Option<TcpStream> = None;
    let mut parser = ResponseParser::new();
    let mut buf = [0u8; 16 * 1024];
    while quota
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |q| q.checked_sub(1))
        .is_ok()
    {
        if conn.is_none() {
            match TcpStream::connect(addr).await {
                Ok(s) => {
                    reconnects += 1;
                    parser.reset();
                    conn = Some(s);
                }
                Err(_) => {
                    failed += 1;
                    continue;
                }
            }
        }
        let stream = conn.as_mut().expect("connection just established");
        let req = Request::get(format!("/bench/{ok}"));
        if stream.write_all(&serialize_request(&req)).await.is_err() {
            conn = None;
            failed += 1;
            continue;
        }
        loop {
            match stream.read(&mut buf).await {
                Ok(0) | Err(_) => {
                    conn = None;
                    failed += 1;
                    break;
                }
                Ok(n) => match parser.push(&buf[..n]) {
                    Ok(Some(resp)) => {
                        if resp.status.code == 200 {
                            ok += 1;
                        } else {
                            failed += 1;
                        }
                        parser.reset();
                        break;
                    }
                    Ok(None) => {}
                    Err(_) => {
                        conn = None;
                        failed += 1;
                        break;
                    }
                },
            }
        }
    }
    (ok, failed, reconnects)
}

/// Drives `total` requests at `addr` across `workers` keep-alive
/// connections; returns (ok, failed, reconnects). The initial connect of
/// each worker is excluded from churn (every leg opens its connections
/// once).
async fn drive(addr: SocketAddr, total: u64, workers: usize) -> (u64, u64, u64) {
    let quota = Arc::new(AtomicU64::new(total));
    let mut tasks = Vec::new();
    for _ in 0..workers {
        let quota = Arc::clone(&quota);
        tasks.push(tokio::spawn(worker(addr, quota)));
    }
    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut reconnects = 0u64;
    for t in tasks {
        let (o, f, r) = t.await.expect("load worker panicked");
        ok += o;
        failed += f;
        reconnects += r;
    }
    (ok, failed, reconnects.saturating_sub(workers as u64))
}

/// The tuning change both legs apply: enable count-based shedding and
/// tighten the breaker. Benign under the bench's 4 workers, observable
/// on the gates.
fn retuned(boot: &ZdrConfig) -> ZdrConfig {
    let mut cfg = boot.clone();
    cfg.shed.max_active = 64;
    cfg.breaker.failure_threshold = 3;
    cfg
}

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

#[tokio::main]
async fn main() {
    zdr_bench::header(
        "BENCH config_reload",
        "disruption delta: hot reload vs takeover for the same tuning change",
    );
    let fast = zdr_bench::fast_mode();
    let total: u64 = if fast { 4_000 } else { 20_000 };
    let workers = 4;
    let clock = Clock::system();

    // Backend tier shared by both legs: two app servers.
    let mut apps = Vec::new();
    for name in ["web-1", "web-2"] {
        apps.push(
            appserver::spawn(
                "127.0.0.1:0".parse().unwrap(),
                AppServerConfig {
                    server_name: name.into(),
                    ..Default::default()
                },
            )
            .await
            .expect("spawn app server"),
        );
    }
    let upstreams: Vec<SocketAddr> = apps.iter().map(|a| a.addr).collect();
    let mut boot = ZdrConfig::default();
    boot.routing.upstreams = upstreams.clone();
    boot.drain.drain_ms = 500;

    let instance_cfg = |tag: &str, from: &ZdrConfig| ProxyInstanceConfig {
        reverse: ReverseProxyConfig {
            upstreams: from.routing.upstreams.clone(),
            upstream_timeout: Duration::from_secs(10),
            ..Default::default()
        },
        takeover_path: std::env::temp_dir().join(format!(
            "zdr-bench-cfgreload-{tag}-{}.sock",
            std::process::id()
        )),
        drain_ms: from.drain.drain_ms,
    };

    // ---- Leg 1: hot reload ------------------------------------------
    // One instance, one ConfigStore, one publish mid-load.
    let cfg1 = instance_cfg("reload", &boot);
    let store = Arc::new(ConfigStore::new(boot.clone()));
    let inst = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg1)
        .await
        .expect("bind proxy");
    let addr = inst.addr;
    let apply = inst.config_applier();
    store.subscribe(Box::new(move |c, e| apply(c.as_ref(), e)));

    let load = tokio::spawn(drive(addr, total, workers));
    tokio::time::sleep(Duration::from_millis(50)).await;
    // publish() returns only after every subscriber applied the snapshot,
    // so this measures the full change-to-in-force latency.
    let t0 = clock.now_us();
    let epoch = store.publish(retuned(&boot)).expect("publish retuned config");
    let reload_apply_us = clock.now_us() - t0;
    let (r_ok, r_failed, r_churn) = load.await.expect("reload-leg load panicked");
    let reload_forced = inst.reverse.forced_closes();
    drop(inst);

    // ---- Leg 2: supervised takeover ---------------------------------
    // Old instance boots the *old* settings; the successor boots the
    // retuned ones — the restart-shaped way to apply the same change.
    let cfg_old = instance_cfg("takeover", &boot);
    let mut cfg_new = instance_cfg("takeover", &retuned(&boot));
    cfg_new.takeover_path = cfg_old.takeover_path.clone();
    let old = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg_old)
        .await
        .expect("bind old proxy");
    let addr = old.addr;

    let load = tokio::spawn(drive(addr, total, workers));
    let old_task = tokio::spawn(old.serve_one_takeover());
    // Parity with the reload leg's 50 ms of pre-change load; also lets
    // the handover socket come up before the measured window opens.
    tokio::time::sleep(Duration::from_millis(50)).await;
    let t0 = clock.now_us();
    let new = ProxyInstance::takeover_from(cfg_new)
        .await
        .expect("takeover_from");
    // The successor owns the VIP here: the retuned limits now govern
    // every fresh accept — that is the takeover leg's time-to-in-force.
    let takeover_apply_us = clock.now_us() - t0;
    let drained = old_task
        .await
        .expect("takeover task panicked")
        .expect("serve_one_takeover");
    // Let the drain deadline pass so the forced-close tally is final.
    tokio::time::sleep(Duration::from_millis(700)).await;
    let (t_ok, t_failed, t_churn) = load.await.expect("takeover-leg load panicked");
    let takeover_forced = drained.reverse.forced_closes() + new.reverse.forced_closes();
    let pause_us = {
        let mut tel = drained.reverse.stats.telemetry.snapshot();
        tel.merge(&new.reverse.stats.telemetry.snapshot());
        tel.takeover_pause_us.max
    };

    let delta = |takeover: u64, reload: u64| (takeover as i64) - (reload as i64);
    let report = serde_json::json!({
        "bench": "config_reload",
        "fast": fast,
        "requests_target": total,
        "reload": {
            "requests_ok": r_ok,
            "requests_failed": r_failed,
            "connection_churn": r_churn,
            "forced_closes": reload_forced,
            "apply_us": reload_apply_us,
            "config_epoch": epoch,
        },
        "takeover": {
            "requests_ok": t_ok,
            "requests_failed": t_failed,
            "connection_churn": t_churn,
            "forced_closes": takeover_forced,
            "apply_us": takeover_apply_us,
            "takeover_pause_us": pause_us,
            "generation": new.generation,
        },
        "delta": {
            "requests_failed": delta(t_failed, r_failed),
            "connection_churn": delta(t_churn, r_churn),
            "forced_closes": delta(takeover_forced, reload_forced),
            "apply_us": delta(takeover_apply_us, reload_apply_us),
        },
    });
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_config_reload.json".into());
    let pretty = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, &pretty).expect("write BENCH_config_reload.json");

    println!("BENCH_config_reload {report}");
    println!(
        "reload:   {r_ok}/{total} ok, {r_failed} failed, churn {r_churn}, \
         forced {reload_forced}, in force after {reload_apply_us} µs (epoch {epoch})"
    );
    println!(
        "takeover: {t_ok}/{total} ok, {t_failed} failed, churn {t_churn}, \
         forced {takeover_forced}, in force after {takeover_apply_us} µs"
    );
    println!("artifact: {out}");
    println!("paper: §2.3 — restarts pay a disruption bill; a reload of hot fields pays none");
}

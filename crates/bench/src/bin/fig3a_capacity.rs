//! Fig. 3a: cluster capacity during a rolling update.

use zdr_sim::experiments::capacity;

fn main() {
    zdr_bench::header("Fig. 3a", "cluster capacity during rolling update");
    for batch in [0.15f64, 0.20] {
        let cfg = if zdr_bench::fast_mode() {
            capacity::Config {
                machines: 20,
                batch_fraction: batch,
                drain_ms: 20_000,
                seed: 31,
            }
        } else {
            capacity::Config {
                batch_fraction: batch,
                ..capacity::Config::default()
            }
        };
        println!("{}", capacity::run(&cfg));
    }
    println!("paper: cluster persistently below 85% capacity with 15-20% batches");
}

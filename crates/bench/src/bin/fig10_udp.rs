//! Fig. 10: UDP misrouting under Socket Takeover vs traditional migration.

use zdr_sim::experiments::misroute;

fn main() {
    zdr_bench::header("Fig. 10", "connection-ID user-space routing");
    let cfg = if zdr_bench::fast_mode() {
        misroute::Config {
            flows: 5_000,
            ..misroute::Config::default()
        }
    } else {
        misroute::Config {
            flows: 200_000,
            ..misroute::Config::default()
        }
    };
    println!("{}", misroute::run(&cfg));
    println!("paper: ~100x fewer misrouted packets at the tail with conn-id routing");
}

//! Fig. 11: POST disruptions across a week of app-server restarts.

use zdr_sim::experiments::ppr;

fn main() {
    zdr_bench::header("Fig. 11", "Partial Post Replay over 7 days of restarts");
    let cfg = if zdr_bench::fast_mode() {
        ppr::Config {
            machines: 100,
            restarts: 20,
            ..ppr::Config::default()
        }
    } else {
        ppr::Config::default()
    };
    println!("{}", ppr::run(&cfg));
    println!("paper: median ≈0.0008% of daily POSTs interrupted (≈millions saved)");
}

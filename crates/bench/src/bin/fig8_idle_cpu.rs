//! Fig. 8b: idle CPU during draining, ZDR vs HardRestart.

use zdr_sim::experiments::idle_cpu;

fn main() {
    zdr_bench::header("Fig. 8b", "idle CPU during draining");
    let cfg = if zdr_bench::fast_mode() {
        idle_cpu::Config {
            machines: 40,
            drain_ms: 20_000,
            ..idle_cpu::Config::default()
        }
    } else {
        idle_cpu::Config::default()
    };
    println!("{}", idle_cpu::run(&cfg));
    println!("paper: ZDR within ~1%; HardRestart degrades linearly with batch size");
}

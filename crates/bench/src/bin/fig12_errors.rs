//! Fig. 12: proxy error classes, traditional vs Zero Downtime restarts.

use zdr_sim::experiments::proxy_errors;

fn main() {
    zdr_bench::header("Fig. 12", "proxy errors sent to end users");
    let cfg = if zdr_bench::fast_mode() {
        proxy_errors::Config {
            machines: 20,
            window_ticks: 60,
            drain_ms: 20_000,
            ..proxy_errors::Config::default()
        }
    } else {
        proxy_errors::Config::default()
    };
    println!("{}", proxy_errors::run(&cfg));
    println!("paper: all classes worse traditionally; write timeouts up to 16x");
}

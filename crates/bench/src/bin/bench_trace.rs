//! Trace-plane overhead benchmark: pins the cost of carrying the
//! [`zdr_core::trace::Tracer`] in the request path with sampling *off* —
//! the steady-state configuration every production box runs — as a
//! checked-in baseline (`results/BENCH_trace.json`).
//!
//! Three measurements:
//!
//! * a micro loop over [`Tracer::sample`] itself, off and at 1-in-8, in
//!   ns/call — sampling off must stay a single relaxed load;
//! * an end-to-end keep-alive leg through a proxy with tracing off,
//!   whose request-latency percentiles are the banded baseline;
//! * the same leg at 1-in-8 sampling, which must not blow the latency up
//!   and whose span ring feeds two more CI artifacts: the `/traces`
//!   JSON body (`--traces-out`, validated against
//!   `schemas/trace.schema.json`) and a two-node [`FleetReport`] merged
//!   from both legs' histograms (`--fleet-out`, validated against
//!   `schemas/fleet_report.schema.json`).
//!
//! Pass `--fast` for the scaled-down CI run, `--out PATH` /
//! `--traces-out PATH` / `--fleet-out PATH` to redirect the artifacts.

use std::net::SocketAddr;
use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

use zdr_appserver::{self as appserver, AppServerConfig};
use zdr_core::clock::Clock;
use zdr_core::fleet::{FleetReport, NodeReport};
use zdr_core::sync::{Arc, AtomicU64, Ordering};
use zdr_core::trace::Tracer;
use zdr_proto::http1::{serialize_request, Request, ResponseParser};
use zdr_proxy::admin::render_traces;
use zdr_proxy::reverse::ReverseProxyConfig;
use zdr_proxy::takeover::{ProxyInstance, ProxyInstanceConfig};

/// One keep-alive load worker: sends requests until the shared quota is
/// exhausted, reopening its connection if the proxy closes it.
/// Returns (ok, failed).
async fn worker(addr: SocketAddr, quota: Arc<AtomicU64>) -> (u64, u64) {
    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut conn: Option<TcpStream> = None;
    let mut parser = ResponseParser::new();
    let mut buf = [0u8; 16 * 1024];
    while quota
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |q| q.checked_sub(1))
        .is_ok()
    {
        if conn.is_none() {
            match TcpStream::connect(addr).await {
                Ok(s) => {
                    parser.reset();
                    conn = Some(s);
                }
                Err(_) => {
                    failed += 1;
                    continue;
                }
            }
        }
        let stream = conn.as_mut().expect("connection just established");
        let req = Request::get(format!("/bench/{ok}"));
        if stream.write_all(&serialize_request(&req)).await.is_err() {
            conn = None;
            failed += 1;
            continue;
        }
        loop {
            match stream.read(&mut buf).await {
                Ok(0) | Err(_) => {
                    conn = None;
                    failed += 1;
                    break;
                }
                Ok(n) => match parser.push(&buf[..n]) {
                    Ok(Some(resp)) => {
                        if resp.status.code == 200 {
                            ok += 1;
                        } else {
                            failed += 1;
                        }
                        parser.reset();
                        break;
                    }
                    Ok(None) => {}
                    Err(_) => {
                        conn = None;
                        failed += 1;
                        break;
                    }
                },
            }
        }
    }
    (ok, failed)
}

/// Drives `total` requests at `addr` across `workers` keep-alive
/// connections; returns (ok, failed).
async fn drive(addr: SocketAddr, total: u64, workers: usize) -> (u64, u64) {
    let quota = Arc::new(AtomicU64::new(total));
    let mut tasks = Vec::new();
    for _ in 0..workers {
        let quota = Arc::clone(&quota);
        tasks.push(tokio::spawn(worker(addr, quota)));
    }
    let mut ok = 0u64;
    let mut failed = 0u64;
    for t in tasks {
        let (o, f) = t.await.expect("load worker panicked");
        ok += o;
        failed += f;
    }
    (ok, failed)
}

fn percentiles(h: &zdr_core::telemetry::HistogramSnapshot) -> serde_json::Value {
    serde_json::json!({
        "count": h.count,
        "p50": h.percentile(50.0),
        "p90": h.percentile(90.0),
        "p99": h.percentile(99.0),
        "p999": h.percentile(99.9),
        "mean": h.mean(),
        "max": h.max,
    })
}

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// ns/call for `iters` calls of [`Tracer::sample`] at the tracer's
/// current rate, timed with the repo clock (µs resolution over the whole
/// loop, so keep `iters` in the millions).
fn sample_ns_per_call(tracer: &Tracer, iters: u64) -> f64 {
    let clock = Clock::system();
    let start = clock.now_us();
    for _ in 0..iters {
        // black_box defeats the optimizer, not the measurement: without
        // it the relaxed load folds away and the loop times to zero.
        std::hint::black_box(tracer.sample());
    }
    let elapsed_us = clock.now_us().saturating_sub(start);
    elapsed_us as f64 * 1_000.0 / iters as f64
}

/// Spawns one proxy over the shared app tier and drives `total` requests
/// through it at the given sampling rate. Returns the report fragment
/// plus the pieces the fleet/traces artifacts need.
async fn e2e_leg(
    upstreams: Vec<SocketAddr>,
    tag: &str,
    sample_every: u64,
    total: u64,
    workers: usize,
) -> (
    serde_json::Value,
    NodeReport,
    zdr_core::trace::TraceSnapshot,
) {
    let cfg = ProxyInstanceConfig {
        reverse: ReverseProxyConfig {
            upstreams,
            upstream_timeout: Duration::from_secs(10),
            ..Default::default()
        },
        takeover_path: std::env::temp_dir()
            .join(format!("zdr-bench-trace-{tag}-{}.sock", std::process::id())),
        drain_ms: 500,
    };
    let proxy = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg)
        .await
        .expect("bind proxy");
    proxy
        .reverse
        .stats
        .telemetry
        .tracer
        .set_sample_every(sample_every);

    let (ok, failed) = drive(proxy.addr, total, workers).await;

    let latency = proxy.reverse.stats.telemetry.snapshot().request_latency_us;
    let traces = proxy.reverse.stats.telemetry.tracer.snapshot();
    let mut trace_ids: Vec<u64> = traces.spans.iter().map(|s| s.trace_id).collect();
    trace_ids.sort_unstable();
    trace_ids.dedup();

    let fragment = serde_json::json!({
        "sample_every": sample_every,
        "requests_ok": ok,
        "requests_failed": failed,
        "spans_recorded": traces.recorded,
        "spans_dropped": traces.dropped,
        "traces": trace_ids.len(),
        "request_latency_us": percentiles(&latency),
    });
    let node = NodeReport {
        cluster: 0, // caller renumbers
        vip: proxy.addr.to_string(),
        scraped: true,
        requests: ok + failed,
        disruptions: failed,
        latency_us: latency,
        audit: None,
    };
    (fragment, node, traces)
}

#[tokio::main]
async fn main() {
    zdr_bench::header(
        "BENCH trace",
        "tracer overhead: sampling off vs 1-in-8, micro + end-to-end",
    );
    let fast = zdr_bench::fast_mode();
    let total: u64 = if fast { 2_000 } else { 10_000 };
    let sample_calls: u64 = if fast { 2_000_000 } else { 20_000_000 };
    let workers = 4;
    const SAMPLED_EVERY: u64 = 8;

    // Micro leg: the per-request fast path is one Tracer::sample call.
    let tracer = Tracer::default();
    let off_ns = sample_ns_per_call(&tracer, sample_calls);
    tracer.set_sample_every(SAMPLED_EVERY);
    let on_ns = sample_ns_per_call(&tracer, sample_calls);

    // Backend tier shared by both end-to-end legs.
    let mut apps = Vec::new();
    for name in ["web-1", "web-2"] {
        apps.push(
            appserver::spawn(
                "127.0.0.1:0".parse().unwrap(),
                AppServerConfig {
                    server_name: name.into(),
                    ..Default::default()
                },
            )
            .await
            .expect("spawn app server"),
        );
    }
    let upstreams: Vec<SocketAddr> = apps.iter().map(|a| a.addr).collect();

    let (off, mut off_node, off_traces) =
        e2e_leg(upstreams.clone(), "off", 0, total, workers).await;
    let (sampled, mut sampled_node, sampled_traces) =
        e2e_leg(upstreams, "sampled", SAMPLED_EVERY, total, workers).await;
    assert!(
        off_traces.is_empty() && off_traces.recorded == 0,
        "sampling off must record nothing"
    );
    assert!(
        sampled_traces.recorded > 0,
        "1-in-{SAMPLED_EVERY} sampling must record spans"
    );

    let report = serde_json::json!({
        "bench": "trace",
        "fast": fast,
        "requests_target": total,
        "sample_calls": sample_calls,
        "sample_off_ns_per_call": off_ns,
        "sample_on_ns_per_call": on_ns,
        "off": off,
        "sampled": sampled,
    });
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_trace.json".into());
    let pretty = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, &pretty).expect("write BENCH_trace.json");

    // The /traces body from the sampled leg — the same JSON the admin
    // endpoint serves, so the schema check covers the live wire format.
    let traces_out = arg_value("--traces-out").unwrap_or_else(|| "TRACES_trace.json".into());
    let traces_json =
        serde_json::to_string_pretty(&render_traces(&sampled_traces)).expect("serialize traces");
    std::fs::write(&traces_out, &traces_json).expect("write TRACES_trace.json");

    // A two-node fleet report merged from both legs' histograms — the
    // same artifact `zdr orchestrate` journals per batch.
    off_node.cluster = 0;
    sampled_node.cluster = 1;
    let mut fleet = FleetReport::new(0, zdr_core::clock::unix_now_ms());
    fleet.push(off_node);
    fleet.push(sampled_node);
    let fleet_out = arg_value("--fleet-out").unwrap_or_else(|| "FLEET_trace.json".into());
    let fleet_json = serde_json::to_string_pretty(&fleet).expect("serialize fleet report");
    std::fs::write(&fleet_out, &fleet_json).expect("write FLEET_trace.json");

    println!("BENCH_trace {report}");
    println!("sample() ns/call: off={off_ns:.2} on(1-in-{SAMPLED_EVERY})={on_ns:.2}");
    println!(
        "e2e p50 µs: off={:?} sampled={:?} (spans recorded={} dropped={})",
        off["request_latency_us"]["p50"],
        sampled["request_latency_us"]["p50"],
        sampled_traces.recorded,
        sampled_traces.dropped,
    );
    println!("artifacts: {out}, {traces_out}, {fleet_out}");
    println!("paper: §6 — observability must not tax the request path it watches");
}

//! Fig. 17: system-resource overhead of Socket Takeover.

use zdr_sim::experiments::overhead;

fn main() {
    zdr_bench::header("Fig. 17", "Socket Takeover system overheads");
    let cfg = overhead::Config::default();
    println!("{}", overhead::run(&cfg));
    println!("paper: median <5% CPU/RAM; spike persists ~60-70s of a 20-min drain");
}

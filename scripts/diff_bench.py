#!/usr/bin/env python3
"""Diff a fresh BENCH_*.json run against its checked-in baseline.

Dependency-free on purpose, like validate_json.py: CI runners only
guarantee a bare python3. Schema conformance is validate_json.py's job;
this script asks the next question — did the run *mean* the same thing
as the baseline in results/?

The comparator is picked by the report's `bench` field:

* telemetry      — the scripted-takeover report (results/BENCH_telemetry.json)
* config_reload  — the reload-vs-takeover disruption delta
                   (results/BENCH_config_reload.json)
* orchestrate    — the fleet release-train ablation
                   (results/BENCH_orchestrate.json)
* trace          — the tracer-overhead report (results/BENCH_trace.json)

Three tiers of comparison, loosest first, because CI runners are noisy
shared machines and a flaky perf gate is worse than none:

* identity   — bench name, fast flag, request target (and generation
               where the report has one) must match the baseline
               exactly; a mismatch means the bench itself changed and
               the baseline must be re-recorded.
* semantics  — success/failure accounting must stay disruption-free in
               kind (what "disruption-free" means is per-bench).
* magnitude  — latency/pause values may drift but not explode: each
               compared value must stay within RATIO x the baseline
               (with an absolute floor so microsecond jitter on a quiet
               metric can't trip the ratio).

Usage: diff_bench.py BASELINE.json FRESH.json
"""

import json
import sys

# A 20x band with a floor is deliberately wide: this gate exists to
# catch order-of-magnitude regressions (a lost pool, a sync accept
# path), not 2x scheduler noise on shared CI hardware.
RATIO = 20.0
FLOOR_US = 200
FLOOR_MS = 50


def fail(errors):
    print("BASELINE DIFF FAIL:")
    for e in errors:
        print(f"  {e}")
    raise SystemExit(1)


def banded(errors, path, base, fresh, floor):
    """fresh must sit inside [base/RATIO, base*RATIO], floor-padded."""
    if base is None or fresh is None:
        # Null percentiles mean an empty histogram; emptiness itself is
        # policed by the count checks, not here.
        return
    lo = min(base / RATIO, base - floor)
    hi = max(base * RATIO, base + floor)
    if not lo <= fresh <= hi:
        errors.append(f"{path}: {fresh} outside [{lo:.0f}, {hi:.0f}] (baseline {base})")


def diff_telemetry(base, fresh, errors):
    """The scripted-takeover telemetry report."""
    if base.get("generation") != fresh.get("generation"):
        errors.append(
            f"$.generation: {fresh.get('generation')!r} != baseline {base.get('generation')!r}"
        )

    # Semantics: the release stayed disruption-free in kind.
    target = fresh.get("requests_target", 0)
    ok = fresh.get("requests_ok", 0)
    failed = fresh.get("requests_failed", 0)
    if ok < target * 0.95:
        errors.append(f"$.requests_ok: {ok} < 95% of target {target}")
    if failed > max(50, target * 0.05):
        errors.append(f"$.requests_failed: {failed} exceeds budget for target {target}")

    timeline = fresh.get("timeline", {})
    if timeline.get("events", 0) < 1:
        errors.append("$.timeline.events: empty timeline")
    if timeline.get("dropped", 0) != 0:
        errors.append(f"$.timeline.dropped: {timeline.get('dropped')} events lost")

    pause = fresh.get("takeover_pause_us", {})
    if pause.get("count") != 1:
        errors.append(f"$.takeover_pause_us.count: {pause.get('count')} != 1 release")

    latency = fresh.get("request_latency_us", {})
    if latency.get("count", 0) < ok * 0.9:
        errors.append(
            f"$.request_latency_us.count: {latency.get('count')} < 90% of ok {ok}"
        )

    # Magnitude: within RATIO of the baseline. Counts are exempt — the
    # upstream pool makes connect counts load-shape-dependent.
    for metric in ("request_latency_us", "upstream_connect_us"):
        for q in ("p50", "p99", "mean", "max"):
            banded(
                errors,
                f"$.{metric}.{q}",
                base.get(metric, {}).get(q),
                fresh.get(metric, {}).get(q),
                FLOOR_US,
            )
    banded(
        errors,
        "$.takeover_pause_us.max",
        base.get("takeover_pause_us", {}).get("max"),
        pause.get("max"),
        FLOOR_US,
    )
    banded(
        errors,
        "$.drain_duration_ms.max",
        base.get("drain_duration_ms", {}).get("max"),
        fresh.get("drain_duration_ms", {}).get("max"),
        FLOOR_MS,
    )


def diff_config_reload(base, fresh, errors):
    """The reload-vs-takeover disruption delta report.

    The headline claim this gate defends: the *reload* leg is
    disruption-free in absolute terms — zero failed requests, zero
    connection churn, zero forced closes — not merely better than the
    takeover leg. The takeover leg gets the same failure budget the
    telemetry bench does.
    """
    if base.get("takeover", {}).get("generation") != fresh.get("takeover", {}).get(
        "generation"
    ):
        errors.append(
            f"$.takeover.generation: {fresh.get('takeover', {}).get('generation')!r}"
            f" != baseline {base.get('takeover', {}).get('generation')!r}"
        )

    target = fresh.get("requests_target", 0)
    reload = fresh.get("reload", {})
    takeover = fresh.get("takeover", {})

    for key in ("requests_failed", "connection_churn", "forced_closes"):
        if reload.get(key, 1) != 0:
            errors.append(f"$.reload.{key}: {reload.get(key)} != 0 (reloads must not disrupt)")
    if reload.get("requests_ok", 0) != target:
        errors.append(f"$.reload.requests_ok: {reload.get('requests_ok')} != target {target}")
    if reload.get("config_epoch") != 2:
        errors.append(f"$.reload.config_epoch: {reload.get('config_epoch')} != 2 (one publish)")

    if takeover.get("requests_ok", 0) < target * 0.95:
        errors.append(
            f"$.takeover.requests_ok: {takeover.get('requests_ok')} < 95% of target {target}"
        )
    if takeover.get("requests_failed", 0) > max(50, target * 0.05):
        errors.append(
            f"$.takeover.requests_failed: {takeover.get('requests_failed')}"
            f" exceeds budget for target {target}"
        )

    # The delta is the bench's reason to exist: a restart must never beat
    # a reload on disruption or time-to-in-force.
    delta = fresh.get("delta", {})
    for key in ("requests_failed", "connection_churn", "forced_closes", "apply_us"):
        if delta.get(key, 0) < 0:
            errors.append(
                f"$.delta.{key}: {delta.get(key)} < 0 (takeover leg beat the reload leg)"
            )

    # Magnitude: the reload must stay sub-millisecond-ish (banded against
    # baseline), the takeover pays its usual socket-handover price.
    for leg in ("reload", "takeover"):
        banded(
            errors,
            f"$.{leg}.apply_us",
            base.get(leg, {}).get("apply_us"),
            fresh.get(leg, {}).get("apply_us"),
            FLOOR_US,
        )
    banded(
        errors,
        "$.takeover.takeover_pause_us",
        base.get("takeover", {}).get("takeover_pause_us"),
        takeover.get("takeover_pause_us"),
        FLOOR_US,
    )


def diff_orchestrate(base, fresh, errors):
    """The fleet release-train ablation report.

    The baseline's numbers are arm-shaped expectations, not measurements
    to reproduce: what this gate defends is the *invariants* — a defective
    binary is always halted and rolled back (never a mixed fleet), healthy
    trains always complete, and microreboots confine the blast radius a
    whole-process release pays in full. Magnitudes are banded loosely.
    """
    for key in ("clusters", "machines_per_cluster", "batch_size",
                "stagger_ms", "window_ms", "drain_ms"):
        if base.get(key) != fresh.get(key):
            errors.append(f"$.{key}: {fresh.get(key)!r} != baseline {base.get(key)!r}")

    def arm_index(report):
        return {
            (a.get("mode"), a.get("buggy")): a for a in report.get("arms", [])
        }

    base_arms = arm_index(base)
    fresh_arms = arm_index(fresh)
    if set(base_arms) != set(fresh_arms):
        errors.append(
            f"$.arms: arm set {sorted(fresh_arms)} != baseline {sorted(base_arms)}"
        )
        return

    for (mode, buggy), a in sorted(fresh_arms.items()):
        path = f"$.arms[{mode},{'buggy' if buggy else 'healthy'}]"
        if a.get("mixed_state"):
            errors.append(f"{path}.mixed_state: true (a batch settled half-released)")
        if buggy:
            if not a.get("halted") or a.get("completed"):
                errors.append(f"{path}: defective binary must halt, not complete")
            if a.get("halt_reason") != "canary_gate":
                errors.append(
                    f"{path}.halt_reason: {a.get('halt_reason')!r} != 'canary_gate'"
                )
            if a.get("batches_rolled_back", 0) < 1:
                errors.append(f"{path}.batches_rolled_back: nothing rolled back")
            if not a.get("peak_blast_radius", 0) > 0:
                errors.append(f"{path}.peak_blast_radius: 0 (the bug never shipped?)")
        else:
            if not a.get("completed") or a.get("halted"):
                errors.append(f"{path}: healthy train must complete")
            if a.get("halt_reason") is not None:
                errors.append(f"{path}.halt_reason: {a.get('halt_reason')!r} on a healthy train")
            if a.get("batches_rolled_back", 0) != 0:
                errors.append(f"{path}.batches_rolled_back: healthy train rolled back")
            if a.get("peak_blast_radius", 1) != 0:
                errors.append(f"{path}.peak_blast_radius: nonzero on a healthy train")
            if a.get("user_errors", 1) != 0:
                errors.append(f"{path}.user_errors: healthy train served 5xx")
        banded(
            errors,
            f"{path}.completion_ms",
            base_arms[(mode, buggy)].get("completion_ms"),
            a.get("completion_ms"),
            FLOOR_MS,
        )

    # The ablation's two claims, checked within the fresh run itself.
    micro = fresh_arms.get(("microreboot", True), {})
    whole = fresh_arms.get(("whole_process", True), {})
    if not micro.get("peak_blast_radius", 1) < whole.get("peak_blast_radius", 0):
        errors.append(
            "$.arms: microreboot blast radius "
            f"{micro.get('peak_blast_radius')} not below whole-process "
            f"{whole.get('peak_blast_radius')}"
        )
    micro_h = fresh_arms.get(("microreboot", False), {})
    whole_h = fresh_arms.get(("whole_process", False), {})
    if not micro_h.get("completion_ms", 0) > whole_h.get("completion_ms", 1):
        errors.append(
            "$.arms: microreboot completion "
            f"{micro_h.get('completion_ms')} not above whole-process "
            f"{whole_h.get('completion_ms')} (the radius win must cost time)"
        )


def diff_trace(base, fresh, errors):
    """The tracer-overhead report.

    The claim this gate defends: carrying the tracer with sampling *off*
    — every production box's steady state — costs nothing measurable.
    The off leg must record zero spans, the sampled leg must actually
    sample, and neither the per-call micro cost nor the end-to-end
    latency may explode relative to the baseline.
    """
    if base.get("sample_calls") != fresh.get("sample_calls"):
        errors.append(
            f"$.sample_calls: {fresh.get('sample_calls')!r}"
            f" != baseline {base.get('sample_calls')!r}"
        )

    target = fresh.get("requests_target", 0)
    for leg in ("off", "sampled"):
        l = fresh.get(leg, {})
        if l.get("requests_ok", 0) < target * 0.95:
            errors.append(
                f"$.{leg}.requests_ok: {l.get('requests_ok')} < 95% of target {target}"
            )
        if l.get("requests_failed", 0) > max(50, target * 0.05):
            errors.append(
                f"$.{leg}.requests_failed: {l.get('requests_failed')}"
                f" exceeds budget for target {target}"
            )
        if base.get(leg, {}).get("sample_every") != l.get("sample_every"):
            errors.append(
                f"$.{leg}.sample_every: {l.get('sample_every')!r}"
                f" != baseline {base.get(leg, {}).get('sample_every')!r}"
            )

    # Semantics: off records nothing, sampled records real span trees.
    off = fresh.get("off", {})
    for key in ("spans_recorded", "spans_dropped", "traces"):
        if off.get(key, 1) != 0:
            errors.append(f"$.off.{key}: {off.get(key)} != 0 (sampling was off)")
    sampled = fresh.get("sampled", {})
    if sampled.get("spans_recorded", 0) < 1:
        errors.append("$.sampled.spans_recorded: sampling on recorded nothing")
    if sampled.get("traces", 0) < 1:
        errors.append("$.sampled.traces: no trace trees retained")

    # Magnitude: ns/call for the off fast path is the headline number —
    # one relaxed load, so hold it to an absolute ceiling as well as the
    # baseline band (the 50 ns floor keeps sub-ns jitter out of the
    # ratio, the 200 ns cap catches "someone put a lock in sample()").
    off_ns = fresh.get("sample_off_ns_per_call")
    banded(errors, "$.sample_off_ns_per_call",
           base.get("sample_off_ns_per_call"), off_ns, 50)
    if off_ns is not None and off_ns > 200:
        errors.append(
            f"$.sample_off_ns_per_call: {off_ns} > 200 ns (off path must stay a load)"
        )
    banded(errors, "$.sample_on_ns_per_call",
           base.get("sample_on_ns_per_call"),
           fresh.get("sample_on_ns_per_call"), 50)
    for leg in ("off", "sampled"):
        for q in ("p50", "p99", "mean", "max"):
            banded(
                errors,
                f"$.{leg}.request_latency_us.{q}",
                base.get(leg, {}).get("request_latency_us", {}).get(q),
                fresh.get(leg, {}).get("request_latency_us", {}).get(q),
                FLOOR_US,
            )


COMPARATORS = {
    "telemetry": diff_telemetry,
    "config_reload": diff_config_reload,
    "orchestrate": diff_orchestrate,
    "trace": diff_trace,
}


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    with open(sys.argv[1]) as f:
        base = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)

    errors = []

    # Identity: the bench being measured must be the bench that was
    # baselined.
    for key in ("bench", "fast", "requests_target"):
        if base.get(key) != fresh.get(key):
            errors.append(f"$.{key}: {fresh.get(key)!r} != baseline {base.get(key)!r}")

    comparator = COMPARATORS.get(base.get("bench"))
    if comparator is None:
        errors.append(f"$.bench: no comparator for {base.get('bench')!r}")
    else:
        comparator(base, fresh, errors)

    if errors:
        fail(errors)
    print(f"OK {sys.argv[2]} within bands of baseline {sys.argv[1]}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Validate a JSON document against a checked-in schema.

Dependency-free on purpose (CI runners only guarantee a bare python3):
implements the JSON Schema subset the repo's schemas actually use —
type (including union types and null), required, properties, items,
enum, minimum, and $ref into #/definitions.

Usage: validate_json.py SCHEMA.json DOCUMENT.json
"""

import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def type_ok(value, name):
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    return isinstance(value, TYPES[name])


def resolve(schema, root):
    ref = schema.get("$ref")
    if ref is None:
        return schema
    if not ref.startswith("#/"):
        raise SystemExit(f"unsupported $ref: {ref}")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def validate(value, schema, root, path):
    errors = []
    schema = resolve(schema, root)

    declared = schema.get("type")
    if declared is not None:
        names = declared if isinstance(declared, list) else [declared]
        if not any(type_ok(value, n) for n in names):
            errors.append(f"{path}: expected {declared}, got {type(value).__name__}")
            return errors  # further checks would just cascade

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                errors.extend(validate(value[key], sub, root, f"{path}.{key}"))

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            errors.extend(validate(item, schema["items"], root, f"{path}[{i}]"))

    return errors


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    schema_path, doc_path = sys.argv[1], sys.argv[2]
    with open(schema_path) as f:
        schema = json.load(f)
    with open(doc_path) as f:
        doc = json.load(f)
    errors = validate(doc, schema, schema, "$")
    if errors:
        print(f"FAIL {doc_path} against {schema_path}:")
        for e in errors:
            print(f"  {e}")
        raise SystemExit(1)
    print(f"OK {doc_path} conforms to {schema_path}")


if __name__ == "__main__":
    main()

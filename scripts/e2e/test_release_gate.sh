#!/usr/bin/env bash
# The release gate a config change rides through, against real `zdr`
# processes: check → reload (admin POST + SIGHUP) → verify → doctor
# preflight → takeover → rollback. The takeover and rollback hops ride
# `zdr orchestrate` as single-node release trains, so this script and the
# controller exercise the same choreography and cannot drift apart. Every
# hop asserts the serving path stayed up and the config_epoch gauge tells
# the truth.
#
# Needs: bash, python3, curl, a built `zdr` binary (ZDR_BIN overrides
# the default target/release/zdr; the script builds it if missing).
set -euo pipefail

cd "$(dirname "$0")/../.."
ZDR_BIN=${ZDR_BIN:-target/release/zdr}
if [ ! -x "$ZDR_BIN" ]; then
    cargo build --release --bin zdr
fi

TMP=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

step() { echo "==> $*"; }
die() { echo "FAIL: $*" >&2; exit 1; }

# Waits for the daemon behind $1 (a log file) to print `READY <addr>`
# and echoes the addr.
wait_ready() {
    for _ in $(seq 1 100); do
        if addr=$(sed -n 's/^READY \(.*\)$/\1/p' "$1" | head -n1) && [ -n "$addr" ]; then
            echo "$addr"
            return 0
        fi
        sleep 0.1
    done
    die "no READY line in $1: $(cat "$1")"
}

# HTTP status of a GET (curl exit tolerated so a refused connect reads
# as 000, not a script abort).
get_code() { curl -s -o /dev/null -w '%{http_code}' --max-time 5 "$1" || true; }

# config_epoch as reported by /stats on admin port $1.
epoch_at() {
    curl -s --max-time 5 "http://127.0.0.1:$1/stats" \
        | python3 -c 'import json,sys; print(json.load(sys.stdin)["config_epoch"])'
}

# Rendered value of config field $2 in /stats on admin port $1.
config_field_at() {
    curl -s --max-time 5 "http://127.0.0.1:$1/stats" \
        | python3 -c 'import json,sys; print(json.load(sys.stdin)["config"][sys.argv[1]])' "$2"
}

ADMIN0=$((21000 + RANDOM % 10000))
ADMIN1=$((ADMIN0 + 1))
SOCK="$TMP/takeover.sock"

step "unknown flags are rejected with a hint, never silently ignored"
if "$ZDR_BIN" proxy --shed-max-actve 5 >"$TMP/typo.log" 2>&1; then
    die "typoed flag was accepted"
fi
grep -q 'did you mean --shed-max-active' "$TMP/typo.log" \
    || die "no nearest-match hint: $(cat "$TMP/typo.log")"

step "app server up"
"$ZDR_BIN" app-server --listen 127.0.0.1:0 --name web-e2e >"$TMP/app.log" 2>&1 &
PIDS+=($!)
APP_ADDR=$(wait_ready "$TMP/app.log")

cat >"$TMP/zdr.toml" <<EOF
[routing]
upstreams = ["$APP_ADDR"]

[shed]
max_active = 128

[drain]
drain_ms = 500

[admin]
port = $ADMIN0
EOF

step "zdr check rejects a bad file, passes the good one"
cat >"$TMP/bad.toml" <<EOF
[admission]
window_ms = 0
typo_key = 7
EOF
if "$ZDR_BIN" check "$TMP/bad.toml" >"$TMP/check-bad.log" 2>&1; then
    die "zdr check accepted a bad file"
fi
grep -q 'config rejected' "$TMP/check-bad.log" || die "no rejection report"
"$ZDR_BIN" check "$TMP/zdr.toml" >"$TMP/check-ok.log"
grep -q '^OK ' "$TMP/check-ok.log" || die "zdr check did not pass the good file"

step "generation 0 up from the checked file"
"$ZDR_BIN" proxy --config "$TMP/zdr.toml" --takeover-path "$SOCK" >"$TMP/g0.log" 2>&1 &
G0=$!
PIDS+=($G0)
VIP=$(wait_ready "$TMP/g0.log")
[ "$(get_code "http://$VIP/boot")" = 200 ] || die "VIP not serving after boot"
[ "$(epoch_at $ADMIN0)" = 1 ] || die "boot epoch must be 1"

step "hot reload via POST /config/reload"
sed -i 's/max_active = 128/max_active = 64/' "$TMP/zdr.toml"
code=$(curl -s -o "$TMP/reload1.json" -w '%{http_code}' --max-time 5 \
    -X POST "http://127.0.0.1:$ADMIN0/config/reload")
[ "$code" = 200 ] || die "reload POST returned $code: $(cat "$TMP/reload1.json")"
grep -q '"epoch":2' "$TMP/reload1.json" || die "reload did not report epoch 2"
[ "$(epoch_at $ADMIN0)" = 2 ] || die "config_epoch gauge did not advance"
[ "$(config_field_at $ADMIN0 shed.max_active)" = 64 ] || die "/stats config section stale"
[ "$(get_code "http://$VIP/after-reload")" = 200 ] || die "VIP disrupted by reload"

step "hot reload via SIGHUP"
sed -i 's/drain_ms = 500/drain_ms = 750/' "$TMP/zdr.toml"
kill -HUP "$G0"
for _ in $(seq 1 50); do
    [ "$(epoch_at $ADMIN0)" = 3 ] && break
    sleep 0.1
done
[ "$(epoch_at $ADMIN0)" = 3 ] || die "SIGHUP reload did not land"
[ "$(config_field_at $ADMIN0 drain.drain_ms)" = 750 ] || die "drain_ms not applied"

step "invalid reload is rejected whole, epoch unchanged"
cp "$TMP/zdr.toml" "$TMP/zdr.toml.good"
sed -i 's/max_active = 64/max_active = 64\ntypo_key = 1/' "$TMP/zdr.toml"
code=$(curl -s -o "$TMP/reload-bad.json" -w '%{http_code}' --max-time 5 \
    -X POST "http://127.0.0.1:$ADMIN0/config/reload")
[ "$code" = 400 ] || die "invalid reload returned $code"
cp "$TMP/zdr.toml.good" "$TMP/zdr.toml"
[ "$(epoch_at $ADMIN0)" = 3 ] || die "rejected reload moved the epoch"

step "boot-only drift is rejected with takeover guidance"
sed -i "s/port = $ADMIN0/port = $ADMIN1/" "$TMP/zdr.toml"
code=$(curl -s -o "$TMP/reload-drift.json" -w '%{http_code}' --max-time 5 \
    -X POST "http://127.0.0.1:$ADMIN0/config/reload")
[ "$code" = 400 ] || die "boot-only drift returned $code"
grep -q 'takeover' "$TMP/reload-drift.json" || die "drift rejection lacks takeover guidance"

step "doctor: preflight verdicts gate the release"
# An unreachable upstream is a critical verdict and a non-zero exit.
if "$ZDR_BIN" doctor --upstream 127.0.0.1:1 >"$TMP/doctor-bad.log" 2>&1; then
    die "doctor passed an unreachable upstream"
fi
grep -q 'DOCTOR VERDICT critical' "$TMP/doctor-bad.log" \
    || die "no critical verdict: $(cat "$TMP/doctor-bad.log")"
# The real release preflights clean. The drifted file differing from the
# live proxy is a warn, not a refusal — the takeover train below is
# exactly how that drift ships.
"$ZDR_BIN" doctor --takeover-path "$SOCK" --upstream "$APP_ADDR" \
    --config "$TMP/zdr.toml" --admin "127.0.0.1:$ADMIN0" >"$TMP/doctor.log" 2>&1 \
    || die "doctor refused the release: $(cat "$TMP/doctor.log")"
grep -q 'DOCTOR VERDICT' "$TMP/doctor.log" || die "no doctor verdict"

# Collects the pids of fleet proxies a train spawned (they outlive the
# controller by design) so cleanup reaps them.
absorb_fleet() {
    while read -r pid; do
        PIDS+=("$pid")
    done < <(sed -n 's/^SPAWNED pid=\([0-9]*\).*/\1/p' "$1")
}

step "takeover via orchestrate: the boot-only change ships as a 1-node train"
# The drifted file (admin on $ADMIN1) is exactly what a takeover is for;
# the train preflights it, boots the successor while generation 0 drains,
# and canary-gates the new generation before promoting.
"$ZDR_BIN" orchestrate --node "$VIP=$SOCK=$TMP/zdr.toml=$TMP/zdr.toml.good" \
    --journal "$TMP/train-up.journal" --window-ms 200 --probes-per-window 5 \
    >"$TMP/train-up.log" 2>&1 \
    || die "takeover train failed: $(cat "$TMP/train-up.log")"
absorb_fleet "$TMP/train-up.log"
grep -q '"event":"batch_promoted"' "$TMP/train-up.log" \
    || die "takeover train never promoted: $(cat "$TMP/train-up.log")"
grep -q '"phase":"completed"' "$TMP/train-up.log" \
    || die "takeover train did not complete: $(cat "$TMP/train-up.log")"
for _ in $(seq 1 100); do
    grep -q 'DRAINED' "$TMP/g0.log" && break
    sleep 0.1
done
grep -q 'DRAINED' "$TMP/g0.log" || die "generation 0 never drained"
[ "$(get_code "http://$VIP/after-takeover")" = 200 ] || die "VIP down after takeover"
[ "$(epoch_at $ADMIN1)" = 1 ] || die "successor should boot at epoch 1 from the file"
[ "$(config_field_at $ADMIN1 admin.port)" = "$ADMIN1" ] || die "boot-only change not in force"

step "rollback via orchestrate: demotion is just another 1-node train"
"$ZDR_BIN" orchestrate --node "$VIP=$SOCK=$TMP/zdr.toml.good=$TMP/zdr.toml.good" \
    --journal "$TMP/train-down.journal" --window-ms 200 --probes-per-window 5 \
    >"$TMP/train-down.log" 2>&1 \
    || die "rollback train failed: $(cat "$TMP/train-down.log")"
absorb_fleet "$TMP/train-down.log"
grep -q '"phase":"completed"' "$TMP/train-down.log" \
    || die "rollback train did not complete: $(cat "$TMP/train-down.log")"
[ "$(get_code "http://$VIP/after-rollback")" = 200 ] || die "VIP down after rollback"
[ "$(epoch_at $ADMIN0)" = 1 ] || die "rolled-back generation should boot at epoch 1"
code=$(curl -s -o /dev/null -w '%{http_code}' --max-time 5 \
    -X POST "http://127.0.0.1:$ADMIN0/config/reload")
[ "$code" = 200 ] || die "config plane dead after rollback ($code)"
[ "$(epoch_at $ADMIN0)" = 2 ] || die "post-rollback reload did not land"

echo "PASS: check → reload → verify → doctor → orchestrated takeover → orchestrated rollback, VIP up throughout"

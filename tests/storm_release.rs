//! Chaos: a seeded connect storm lands in the middle of a Socket
//! Takeover, and the release must stay disruption-free anyway.
//!
//! The admission layer refuses the storm per-client ahead of the shed
//! gate, the storm detector arms [`ProtectionMode`] with the right
//! reason code, the drain hard deadline still holds, `/healthz` stays
//! truthful throughout, and — once the storm passes — protection
//! disarms only after the configured run of stable probe windows.
//!
//! `ZDR_FAULT_SEED` (the CI chaos matrix) pins a single seed; without
//! it, four distinct seeds run back to back.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

use zero_downtime_release::appserver::{self, AppServerConfig};
use zero_downtime_release::core::admission::{
    AdmissionConfig, ProtectionConfig, ProtectionState, StormReason,
};
use zero_downtime_release::core::telemetry::ReleasePhase;
use zero_downtime_release::net::fault::ConnectStorm;
use zero_downtime_release::proto::http1::{serialize_request, Request, Response, ResponseParser};
use zero_downtime_release::proxy::admin::spawn_admin;
use zero_downtime_release::proxy::resilience::ResilienceConfig;
use zero_downtime_release::proxy::reverse::ReverseProxyConfig;
use zero_downtime_release::proxy::stats::StatsSnapshot;
use zero_downtime_release::proxy::takeover::{ProxyInstance, ProxyInstanceConfig};

const DEFAULT_SEEDS: [u64; 4] = [1, 42, 1337, 24_301];

/// The drain period the old instance advertises; the hard-deadline
/// assertion bounds the observed drain against this plus scheduler slack.
const DRAIN_MS: u64 = 1_500;

fn seeds_under_test() -> Vec<u64> {
    match std::env::var("ZDR_FAULT_SEED") {
        Ok(s) => vec![s.parse().expect("ZDR_FAULT_SEED must be a u64")],
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

fn tmp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "zdr-storm-{tag}-{}-{:x}.sock",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

/// One HTTP request on an already-open keep-alive stream; the stream
/// stays usable afterwards.
async fn request_on(stream: &mut TcpStream, target: &str) -> std::io::Result<Response> {
    stream
        .write_all(&serialize_request(&Request::get(target)))
        .await?;
    let mut parser = ResponseParser::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = stream.read(&mut buf).await?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "closed mid-response",
            ));
        }
        if let Some(resp) = parser.push(&buf[..n]).map_err(std::io::Error::other)? {
            return Ok(resp);
        }
    }
}

/// Scrapes one admin route on a fresh connection.
async fn admin_get(addr: std::net::SocketAddr, target: &str) -> Response {
    let mut stream = TcpStream::connect(addr).await.expect("admin connect");
    request_on(&mut stream, target).await.expect("admin scrape")
}

async fn storm_round(seed: u64) {
    let app = appserver::spawn("127.0.0.1:0".parse().unwrap(), AppServerConfig::default())
        .await
        .unwrap();
    let cfg = ProxyInstanceConfig {
        reverse: ReverseProxyConfig {
            upstreams: vec![app.addr],
            resilience: ResilienceConfig {
                // All storm clients share 127.0.0.1, so a low per-client
                // rate turns the storm into a refusal spike — the reason
                // code is deterministically RefusedStorm, not
                // ConnectFlood (failure signals outrank raw connects).
                admission: AdmissionConfig {
                    rate_per_window: 4,
                    window_ms: 100,
                    ..Default::default()
                },
                // Disarm needs 5 × 100 ms of quiet — long enough that the
                // post-storm assertions always observe the armed state
                // (the old instance stops seeing storm traffic at
                // handover, well under 500 ms before they run).
                protection: ProtectionConfig {
                    arm_threshold: 10,
                    disarm_successes: 5,
                    probe_window_ms: 100,
                },
                ..Default::default()
            },
            ..Default::default()
        },
        takeover_path: tmp_path(&format!("{seed}")),
        drain_ms: DRAIN_MS,
    };

    let old = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
        .await
        .unwrap();
    let vip = old.addr;
    let old_stats = old.stats();
    let old_resilience = Arc::clone(old.reverse.resilience());
    let old_drain = Arc::clone(old.reverse.state());
    let old_tracker = Arc::clone(old.reverse.tracker());

    // Admin endpoint on the OLD instance: scrapable before, during, and
    // after the takeover.
    let scrape_stats = Arc::clone(&old_stats);
    let scrape_tracker = Arc::clone(&old_tracker);
    let health_drain = Arc::clone(&old_drain);
    let admin = spawn_admin(
        0,
        move || scrape_stats.snapshot().merged(&scrape_tracker.snapshot()),
        move || !health_drain.is_draining(),
    )
    .await
    .unwrap();

    // Detector ticker, standing in for the zdr binary's: probe windows
    // close (and protection can disarm) even with no traffic arriving.
    let tick_resilience = Arc::clone(&old_resilience);
    let tick_stats = Arc::clone(&old_stats);
    let ticker = tokio::spawn(async move {
        loop {
            tick_resilience.protection_tick(&tick_stats);
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
    });

    // Truthful before the release: serving.
    assert_eq!(admin_get(admin.addr, "/healthz").await.status.code, 200);

    // An established keep-alive connection that must ride out the storm
    // and the takeover untouched.
    let mut established = TcpStream::connect(vip).await.unwrap();
    assert_eq!(
        request_on(&mut established, "/pre").await.unwrap().status.code,
        200,
        "seed {seed}: established connection must work before the release"
    );

    // Release starts; the storm lands while the handover is in flight.
    let old_task = tokio::spawn(old.serve_one_takeover());
    let storm = ConnectStorm {
        seed,
        connections: 200,
        concurrency: 8,
        hold: Duration::from_millis(5),
    };
    let storm_task = tokio::spawn(async move { storm.unleash(vip).await });
    tokio::time::sleep(Duration::from_millis(50)).await;
    let new = ProxyInstance::takeover_from(cfg.clone()).await.unwrap();
    let handover_at = Instant::now();
    assert_eq!(new.generation, 1);

    let report = storm_task.await.unwrap();
    assert_eq!(report.attempted, 200, "seed {seed}: storm accounting");

    // The storm just ended: protection must be armed on the draining
    // instance, with the refusal reason, and /stats must say so.
    assert!(
        old_stats.protection.engaged(),
        "seed {seed}: protection must be engaged right after the storm"
    );
    let resp = admin_get(admin.addr, "/stats").await;
    let snap: StatsSnapshot = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(
        snap.protection_engaged, 1,
        "seed {seed}: engaged state must ride /stats"
    );
    assert_eq!(
        snap.protection_reason,
        StormReason::RefusedStorm.code(),
        "seed {seed}: reason code must ride /stats"
    );
    assert!(
        snap.admit_rejected > 0,
        "seed {seed}: the storm must have been refused by admission"
    );
    assert_eq!(
        snap.load_shed, 0,
        "seed {seed}: admission refusals must not masquerade as shed"
    );

    // Truthful during the drain: the old instance reports 503.
    assert_eq!(
        admin_get(admin.addr, "/healthz").await.status.code,
        503,
        "seed {seed}: /healthz must flip once draining"
    );

    // The established connection still works mid-drain — the storm got
    // refused, not the victims.
    assert_eq!(
        request_on(&mut established, "/mid").await.unwrap().status.code,
        200,
        "seed {seed}: established connection must survive the storm + drain"
    );
    drop(established);

    // Drain resolves within the hard deadline (generous slack for CI).
    let drained = old_task.await.unwrap().unwrap();
    let drain_elapsed = handover_at.elapsed();
    assert!(
        drain_elapsed < Duration::from_millis(DRAIN_MS) + Duration::from_secs(3),
        "seed {seed}: drain took {drain_elapsed:?}, deadline {DRAIN_MS} ms"
    );

    // Zero established connections force-closed: everything either
    // finished or was refused up front.
    let final_snap = drained
        .reverse
        .stats
        .snapshot()
        .merged(&drained.reverse.tracker().snapshot());
    assert_eq!(
        final_snap.forced_closes(),
        0,
        "seed {seed}: no established connection may be force-closed before the deadline"
    );
    assert!(final_snap.protection_armed >= 1, "seed {seed}");

    // Quiet now: protection must disarm after the configured stable run
    // (5 × 100 ms probe windows), driven purely by the ticker.
    let disarm_wait = Instant::now();
    loop {
        if old_stats.protection.state() == ProtectionState::Disarmed {
            break;
        }
        assert!(
            disarm_wait.elapsed() < Duration::from_secs(5),
            "seed {seed}: protection never disarmed after the storm passed"
        );
        tokio::time::sleep(Duration::from_millis(20)).await;
    }
    let settled = old_stats.snapshot();
    assert_eq!(settled.protection_engaged, 0, "seed {seed}");
    assert_eq!(settled.protection_disarmed, 1, "seed {seed}");

    // The timeline tells the whole story, in order, with the reason in
    // the armed event's detail.
    let timeline = &settled.telemetry.timeline;
    assert!(
        timeline.contains_sequence(&[
            ReleasePhase::ProtectionArmed,
            ReleasePhase::ProtectionDisarmed
        ]),
        "seed {seed}: timeline missing arm → disarm: {timeline:?}"
    );
    assert_eq!(
        timeline
            .first(ReleasePhase::ProtectionArmed)
            .expect("armed event")
            .detail,
        StormReason::RefusedStorm.name(),
        "seed {seed}: armed event must carry the reason code"
    );

    // The successor serves: the storm's per-client budget refills after a
    // window, so a patient client gets through.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok(mut stream) = TcpStream::connect(vip).await {
            if let Ok(resp) = request_on(&mut stream, "/post").await {
                if resp.status.code == 200 {
                    break;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "seed {seed}: successor never admitted a patient client"
        );
        tokio::time::sleep(Duration::from_millis(120)).await;
    }

    ticker.abort();
    admin.abort();
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn connect_storm_mid_takeover_stays_disruption_free() {
    for seed in seeds_under_test() {
        storm_round(seed).await;
    }
}

//! UDP Socket Takeover integration: pass a live SO_REUSEPORT group between
//! "processes" over a real UNIX-socket SCM_RIGHTS handshake, then verify
//! connection-ID user-space routing delivers every packet to the process
//! holding its flow state.

use std::time::Duration;

use tokio::net::UdpSocket;

use zero_downtime_release::net::inventory::{bind_udp_reuseport_group, ListenerInventory};
use zero_downtime_release::net::takeover::{request_takeover, HandoffInfo, TakeoverServer};
use zero_downtime_release::net::udp_router::UdpRouter;
use zero_downtime_release::proto::quic::{self, ConnectionId, Datagram};

fn sock_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "zdr-udp-takeover-{tag}-{}-{:x}.sock",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

#[tokio::test]
async fn udp_group_passes_through_real_scm_rights_handshake() {
    let path = sock_path("pass");
    let group = bind_udp_reuseport_group("127.0.0.1:0".parse().unwrap(), 3).unwrap();
    let vip = group[0].local_addr().unwrap();

    let mut inv = ListenerInventory::new();
    inv.add_udp_group(vip, group);
    let server = TakeoverServer::bind(&path).unwrap();
    let info = HandoffInfo {
        generation: 1,
        udp_router_addr: Some("127.0.0.1:9".parse().unwrap()),
        drain_deadline_ms: 1000,
    };
    let old = std::thread::spawn(move || {
        server
            .serve_once(&inv, info, Duration::from_secs(10))
            .unwrap()
    });

    let pending = tokio::task::spawn_blocking({
        let path = path.clone();
        move || request_takeover(&path, Duration::from_secs(10))
    })
    .await
    .unwrap()
    .unwrap();
    assert_eq!(pending.result.info.generation, 1);
    let mut result = tokio::task::spawn_blocking(move || pending.confirm())
        .await
        .unwrap()
        .unwrap();
    let sockets = result.inventory.claim_udp_group(vip).unwrap();
    result.inventory.finish().unwrap();
    old.join().unwrap();
    assert_eq!(sockets.len(), 3);

    // The reclaimed ring still receives: send datagrams and observe them
    // on some member.
    let client = UdpSocket::bind("127.0.0.1:0").await.unwrap();
    for s in &sockets {
        s.set_nonblocking(true).unwrap();
    }
    let tokio_socks: Vec<UdpSocket> = sockets
        .into_iter()
        .map(|s| UdpSocket::from_std(s).unwrap())
        .collect();

    let d = Datagram::initial(ConnectionId::new(2, 1), &b"post-takeover"[..]);
    client
        .send_to(&quic::encode(&d).unwrap(), vip)
        .await
        .unwrap();

    let mut got = false;
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut buf = [0u8; 2048];
    while !got && std::time::Instant::now() < deadline {
        for s in &tokio_socks {
            if let Ok((n, _)) = s.try_recv_from(&mut buf) {
                assert_eq!(quic::decode(&buf[..n]).unwrap(), d);
                got = true;
            }
        }
        tokio::time::sleep(Duration::from_millis(5)).await;
    }
    assert!(got, "taken-over ring must receive datagrams");
}

#[tokio::test]
async fn user_space_routing_preserves_every_flow() {
    // Old process (gen 1) keeps a drain socket; new process (gen 2) owns
    // the VIP ring and forwards gen-1 packets to it.
    let group = bind_udp_reuseport_group("127.0.0.1:0".parse().unwrap(), 2).unwrap();
    let vip = group[0].local_addr().unwrap();

    let drain = UdpSocket::bind("127.0.0.1:0").await.unwrap();
    let drain_addr = drain.local_addr().unwrap();
    let old_process = tokio::spawn(async move {
        let mut count = 0u32;
        let mut buf = [0u8; 2048];
        loop {
            match tokio::time::timeout(Duration::from_secs(2), drain.recv_from(&mut buf)).await {
                Ok(Ok((n, _))) => {
                    let (_client, inner) =
                        zero_downtime_release::net::udp_router::decapsulate(&buf[..n])
                            .expect("forwards are encapsulated");
                    let d = quic::decode(inner).unwrap();
                    assert_eq!(d.cid.generation, 1);
                    count += 1;
                }
                _ => return count,
            }
        }
    });

    let (tx, mut rx) = tokio::sync::mpsc::channel(512);
    let mut stats = Vec::new();
    for sock in group {
        sock.set_nonblocking(true).unwrap();
        let router = UdpRouter::new(UdpSocket::from_std(sock).unwrap(), 2, Some(drain_addr));
        stats.push(router.stats());
        let tx = tx.clone();
        tokio::spawn(async move { router.run(tx).await });
    }

    let client = UdpSocket::bind("127.0.0.1:0").await.unwrap();
    let (mut old_sent, mut new_sent) = (0u32, 0u32);
    for i in 0..200u64 {
        let generation = if i % 3 == 0 { 1 } else { 2 };
        let d = Datagram::one_rtt(ConnectionId::new(generation, i), i, &b"x"[..]);
        client
            .send_to(&quic::encode(&d).unwrap(), vip)
            .await
            .unwrap();
        if generation == 1 {
            old_sent += 1;
        } else {
            new_sent += 1;
        }
    }

    // All new-generation packets surface at the new process.
    let mut new_got = 0u32;
    while new_got < new_sent {
        let d = tokio::time::timeout(Duration::from_secs(5), rx.recv())
            .await
            .expect("delivery timeout")
            .unwrap();
        assert_eq!(d.datagram.cid.generation, 2);
        new_got += 1;
    }
    // All old-generation packets surfaced at the old process.
    let old_got = old_process.await.unwrap();
    assert_eq!(old_got, old_sent, "user-space routing must lose nothing");

    let totals = stats
        .iter()
        .map(|s| s.snapshot())
        .fold((0, 0, 0), |a, s| (a.0 + s.0, a.1 + s.1, a.2 + s.2));
    assert_eq!(totals.0, u64::from(new_sent));
    assert_eq!(totals.1, u64::from(old_sent));
    assert_eq!(totals.2, 0, "zero drops");
}

//! Failure injection on the Socket Takeover handshake (§5.1's operational
//! hazards): a takeover that breaks must degrade into "old process keeps
//! serving", never into an outage.

use std::io::{Read, Write};
use std::net::SocketAddr;
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

use zero_downtime_release::net::fault::{
    FaultAction, FaultInjector, FaultPoint, NoFaults, ScriptedFaults,
};
use zero_downtime_release::net::inventory::{bind_tcp, ListenerInventory};
use zero_downtime_release::net::takeover::{
    request_takeover, HandoffInfo, ReclaimVerdict, TakeoverServer,
};
use zero_downtime_release::net::NetError;

fn sock_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "zdr-fi-{tag}-{}-{:x}.sock",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

fn loopback() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

fn inventory_with_tcp() -> (ListenerInventory, SocketAddr) {
    let l = bind_tcp(loopback()).unwrap();
    let addr = l.local_addr().unwrap();
    let mut inv = ListenerInventory::new();
    inv.add_tcp(addr, l);
    (inv, addr)
}

type ServeResult = (Result<(), String>, SocketAddr, ListenerInventory);

/// Serves one takeover attempt, returning the outcome and the still-owned
/// inventory — a failed handshake must leave the old process holding (and
/// serving) its sockets.
fn serve(path: std::path::PathBuf) -> std::thread::JoinHandle<ServeResult> {
    std::thread::spawn(move || {
        let (inv, addr) = inventory_with_tcp();
        let server = TakeoverServer::bind(&path).unwrap();
        let info = HandoffInfo {
            generation: 3,
            udp_router_addr: None,
            drain_deadline_ms: 500,
        };
        let outcome = server
            .serve_once(&inv, info, Duration::from_secs(2))
            .map(|_| ())
            .map_err(|e| e.to_string());
        (outcome, addr, inv)
    })
}

#[test]
fn peer_dies_mid_handshake_old_keeps_serving() {
    // The "new binary crashes during takeover" case: connects, receives
    // the offer + FDs, then dies without confirming.
    let path = sock_path("die");
    let server = serve(path.clone());
    std::thread::sleep(Duration::from_millis(100));

    {
        let mut conn = UnixStream::connect(&path).unwrap();
        // Send a valid Request frame, then read a bit of the offer and die.
        let body = br#"{"type":"request","version":1}"#;
        conn.write_all(&(body.len() as u32).to_be_bytes()).unwrap();
        conn.write_all(body).unwrap();
        let mut some = [0u8; 16];
        let _ = conn.read(&mut some);
        // conn drops here — mid-handshake death.
    }

    let (outcome, vip, _inv) = server.join().unwrap();
    assert!(
        outcome.is_err(),
        "server must report the failed handshake: {outcome:?}"
    );
    // The VIP listener was only *borrowed* for the attempt: the old process
    // still owns it and keeps serving.
    assert!(
        std::net::TcpStream::connect(vip).is_ok(),
        "old process must keep serving"
    );
}

#[test]
fn garbage_on_the_takeover_socket_is_rejected() {
    let path = sock_path("garbage");
    let server = serve(path.clone());
    std::thread::sleep(Duration::from_millis(100));

    {
        let mut conn = UnixStream::connect(&path).unwrap();
        conn.write_all(b"\xff\xff\xff\xff totally not a frame")
            .unwrap();
    }

    let (outcome, vip, _inv) = server.join().unwrap();
    assert!(outcome.is_err());
    assert!(std::net::TcpStream::connect(vip).is_ok());
}

#[test]
fn version_mismatch_is_refused_cleanly() {
    let path = sock_path("version");
    let server = serve(path.clone());
    std::thread::sleep(Duration::from_millis(100));

    let mut conn = UnixStream::connect(&path).unwrap();
    let body = br#"{"type":"request","version":999}"#;
    conn.write_all(&(body.len() as u32).to_be_bytes()).unwrap();
    conn.write_all(body).unwrap();
    // The server answers with an Abort frame before erroring out.
    let mut len = [0u8; 4];
    conn.read_exact(&mut len).unwrap();
    let mut reply = vec![0u8; u32::from_be_bytes(len) as usize];
    conn.read_exact(&mut reply).unwrap();
    let text = String::from_utf8_lossy(&reply);
    assert!(text.contains("abort"), "{text}");
    assert!(text.contains("version"), "{text}");

    let (outcome, vip, _inv) = server.join().unwrap();
    assert!(
        matches!(outcome, Err(ref m) if m.contains("version")),
        "{outcome:?}"
    );
    assert!(std::net::TcpStream::connect(vip).is_ok());
}

#[test]
fn slow_loris_peer_times_out() {
    // A peer that connects and sends nothing must not wedge the old
    // process: the per-step timeout fires.
    let path = sock_path("loris");
    let server = serve(path.clone());
    std::thread::sleep(Duration::from_millis(100));

    let _conn = UnixStream::connect(&path).unwrap();
    // Send nothing; hold the connection open past the server's timeout.
    let start = std::time::Instant::now();
    let (outcome, vip, _inv) = server.join().unwrap();
    assert!(outcome.is_err(), "{outcome:?}");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "timeout must bound the wait"
    );
    assert!(std::net::TcpStream::connect(vip).is_ok());
}

#[test]
fn no_server_listening_fails_fast_for_the_new_process() {
    // The successor starting when no old process exists (first boot race):
    // request_takeover must fail cleanly so the caller can bind fresh.
    let path = sock_path("absent");
    let err = request_takeover(&path, Duration::from_secs(1)).unwrap_err();
    assert!(matches!(err, NetError::Io(_)), "{err:?}");
}

/// Like [`serve`], but consults a scripted injector at each send site.
fn serve_with(
    path: std::path::PathBuf,
    faults: Arc<ScriptedFaults>,
) -> std::thread::JoinHandle<ServeResult> {
    std::thread::spawn(move || {
        let (inv, addr) = inventory_with_tcp();
        let server = TakeoverServer::bind(&path).unwrap();
        let info = HandoffInfo {
            generation: 3,
            udp_router_addr: None,
            drain_deadline_ms: 500,
        };
        let outcome = server
            .serve_once_watched(&inv, info, Duration::from_secs(2), &*faults)
            .map(|_| ())
            .map_err(|e| e.to_string());
        (outcome, addr, inv)
    })
}

#[test]
fn truncated_fd_chunk_is_rejected_by_the_new_process() {
    // The old process advertises N FDs but the SCM_RIGHTS payload carries
    // N-1 (kernel truncation / sender bug). The receiver's inventory check
    // must flag the mismatch instead of serving with a hole in the VIP set.
    let path = sock_path("trunc");
    let faults = Arc::new(ScriptedFaults::once(
        FaultPoint::SendFdChunk,
        FaultAction::Truncate,
    ));
    let server = serve_with(path.clone(), Arc::clone(&faults));
    std::thread::sleep(Duration::from_millis(100));

    let err = request_takeover(&path, Duration::from_secs(2)).unwrap_err();
    assert!(matches!(err, NetError::Inventory(_)), "{err:?}");
    assert_eq!(faults.injected(), 1);

    let (outcome, vip, _inv) = server.join().unwrap();
    assert!(outcome.is_err(), "{outcome:?}");
    // The old process still owns and serves the VIP.
    assert!(std::net::TcpStream::connect(vip).is_ok());
}

#[test]
fn dropped_confirm_times_out_both_sides() {
    // The new process receives the sockets but its Confirm frame never
    // leaves (step D lost). The old process's per-step timeout must fire —
    // and it must keep serving, since without a Confirm it never drains.
    let path = sock_path("noconfirm");
    let server = serve(path.clone());
    std::thread::sleep(Duration::from_millis(100));

    let pending = request_takeover(&path, Duration::from_secs(1)).unwrap();
    let faults = ScriptedFaults::once(FaultPoint::SendConfirm, FaultAction::Drop);
    // The confirm is silently dropped; the new side then waits for a
    // Draining ack that never comes and times out.
    let err = pending.confirm_with(&faults).unwrap_err();
    assert!(matches!(err, NetError::Io(_)), "{err:?}");
    assert_eq!(faults.injected(), 1);

    let (outcome, vip, _inv) = server.join().unwrap();
    assert!(outcome.is_err(), "{outcome:?}");
    assert!(std::net::TcpStream::connect(vip).is_ok());
}

#[test]
fn watched_rollback_returns_the_sockets_to_the_old_process() {
    // Full reverse-takeover round trip: the successor confirms, fails its
    // health probe, and hands the sockets back over the same UNIX stream.
    let path = sock_path("rollback");
    let old = std::thread::spawn({
        let path = path.clone();
        move || {
            let (inv, addr) = inventory_with_tcp();
            let server = TakeoverServer::bind(&path).unwrap();
            let info = HandoffInfo {
                generation: 4,
                udp_router_addr: None,
                drain_deadline_ms: 500,
            };
            let mut watch = server
                .serve_once_watched(&inv, info, Duration::from_secs(5), &NoFaults)
                .unwrap();
            let healthy = watch.await_health(Duration::from_secs(5)).unwrap();
            assert!(!healthy, "successor reports unhealthy in this scenario");
            let reclaimed = watch.reclaim(Duration::from_secs(5)).unwrap();
            (reclaimed, addr)
        }
    });
    std::thread::sleep(Duration::from_millis(100));

    // New process: take the sockets, confirm, report unhealthy, then answer
    // the predecessor's Reclaim by sending the sockets back.
    let pending = request_takeover(&path, Duration::from_secs(5)).unwrap();
    let (mut result, mut release) = pending.confirm_watched().unwrap();
    let vip = result.inventory.unclaimed()[0].addr;
    let listener = result.inventory.claim_tcp(vip).unwrap();
    release.report_health(false).unwrap();
    assert_eq!(
        release.await_verdict(Duration::from_secs(5)).unwrap(),
        ReclaimVerdict::Reclaimed
    );
    let mut back = ListenerInventory::new();
    back.add_tcp(vip, listener);
    let info = HandoffInfo {
        generation: 4,
        udp_router_addr: None,
        drain_deadline_ms: 500,
    };
    release.serve_reclaim(&back, info).unwrap();

    let (mut reclaimed, addr) = old.join().unwrap();
    assert_eq!(addr, vip, "reclaim must return the same VIP");
    assert_eq!(reclaimed.info.generation, 4);
    let got = reclaimed.inventory.claim_tcp(addr).unwrap();
    // The reclaimed listener is the same kernel file description: a client
    // connecting now lands in its backlog and is accepted by the old
    // process — zero accepted-connection loss across the rollback.
    let conn = std::net::TcpStream::connect(addr);
    assert!(conn.is_ok(), "VIP must accept after rollback");
    let (peer, _) = got.accept().unwrap();
    drop(peer);
}

mod backoff_properties {
    use proptest::prelude::*;
    use zero_downtime_release::core::supervisor::BackoffSchedule;

    fn schedules() -> impl Strategy<Value = BackoffSchedule> {
        (
            1u64..500,
            500u64..50_000,
            1.0f64..4.0,
            0.0f64..0.9,
            1u32..10,
        )
            .prop_map(|(base_ms, cap_ms, multiplier, jitter_frac, max_attempts)| {
                BackoffSchedule {
                    base_ms,
                    cap_ms,
                    multiplier,
                    jitter_frac,
                    max_attempts,
                }
            })
    }

    proptest! {
        #[test]
        fn raw_delays_are_monotone_and_capped(s in schedules()) {
            let mut prev = 0u64;
            for attempt in 1..=s.max_attempts {
                let d = s.raw_delay_ms(attempt);
                prop_assert!(d >= prev, "attempt {}: {} < {}", attempt, d, prev);
                prop_assert!(d <= s.cap_ms, "attempt {}: {} above cap {}", attempt, d, s.cap_ms);
                prev = d;
            }
        }

        #[test]
        fn jittered_delay_stays_within_bounds(s in schedules(), seed in any::<u64>()) {
            for attempt in 1..=s.max_attempts {
                let (lo, hi) = s.bounds_ms(attempt);
                let d = s.delay_ms(attempt, seed);
                prop_assert!(
                    lo <= d && d <= hi,
                    "attempt {}: {} outside [{}, {}]", attempt, d, lo, hi
                );
            }
        }

        #[test]
        fn jittered_delay_is_deterministic_per_seed(s in schedules(), seed in any::<u64>()) {
            for attempt in 1..=s.max_attempts {
                prop_assert_eq!(s.delay_ms(attempt, seed), s.delay_ms(attempt, seed));
            }
        }
    }
}

//! Failure injection on the Socket Takeover handshake (§5.1's operational
//! hazards): a takeover that breaks must degrade into "old process keeps
//! serving", never into an outage.

use std::io::{Read, Write};
use std::net::SocketAddr;
use std::os::unix::net::UnixStream;
use std::time::Duration;

use zero_downtime_release::net::inventory::{bind_tcp, ListenerInventory};
use zero_downtime_release::net::takeover::{request_takeover, HandoffInfo, TakeoverServer};
use zero_downtime_release::net::NetError;

fn sock_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "zdr-fi-{tag}-{}-{:x}.sock",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

fn loopback() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

fn inventory_with_tcp() -> (ListenerInventory, SocketAddr) {
    let l = bind_tcp(loopback()).unwrap();
    let addr = l.local_addr().unwrap();
    let mut inv = ListenerInventory::new();
    inv.add_tcp(addr, l);
    (inv, addr)
}

type ServeResult = (Result<(), String>, SocketAddr, ListenerInventory);

/// Serves one takeover attempt, returning the outcome and the still-owned
/// inventory — a failed handshake must leave the old process holding (and
/// serving) its sockets.
fn serve(path: std::path::PathBuf) -> std::thread::JoinHandle<ServeResult> {
    std::thread::spawn(move || {
        let (inv, addr) = inventory_with_tcp();
        let server = TakeoverServer::bind(&path).unwrap();
        let info = HandoffInfo {
            generation: 3,
            udp_router_addr: None,
            drain_deadline_ms: 500,
        };
        let outcome = server
            .serve_once(&inv, info, Duration::from_secs(2))
            .map(|_| ())
            .map_err(|e| e.to_string());
        (outcome, addr, inv)
    })
}

#[test]
fn peer_dies_mid_handshake_old_keeps_serving() {
    // The "new binary crashes during takeover" case: connects, receives
    // the offer + FDs, then dies without confirming.
    let path = sock_path("die");
    let server = serve(path.clone());
    std::thread::sleep(Duration::from_millis(100));

    {
        let mut conn = UnixStream::connect(&path).unwrap();
        // Send a valid Request frame, then read a bit of the offer and die.
        let body = br#"{"type":"request","version":1}"#;
        conn.write_all(&(body.len() as u32).to_be_bytes()).unwrap();
        conn.write_all(body).unwrap();
        let mut some = [0u8; 16];
        let _ = conn.read(&mut some);
        // conn drops here — mid-handshake death.
    }

    let (outcome, vip, _inv) = server.join().unwrap();
    assert!(
        outcome.is_err(),
        "server must report the failed handshake: {outcome:?}"
    );
    // The VIP listener was only *borrowed* for the attempt: the old process
    // still owns it and keeps serving.
    assert!(
        std::net::TcpStream::connect(vip).is_ok(),
        "old process must keep serving"
    );
}

#[test]
fn garbage_on_the_takeover_socket_is_rejected() {
    let path = sock_path("garbage");
    let server = serve(path.clone());
    std::thread::sleep(Duration::from_millis(100));

    {
        let mut conn = UnixStream::connect(&path).unwrap();
        conn.write_all(b"\xff\xff\xff\xff totally not a frame")
            .unwrap();
    }

    let (outcome, vip, _inv) = server.join().unwrap();
    assert!(outcome.is_err());
    assert!(std::net::TcpStream::connect(vip).is_ok());
}

#[test]
fn version_mismatch_is_refused_cleanly() {
    let path = sock_path("version");
    let server = serve(path.clone());
    std::thread::sleep(Duration::from_millis(100));

    let mut conn = UnixStream::connect(&path).unwrap();
    let body = br#"{"type":"request","version":999}"#;
    conn.write_all(&(body.len() as u32).to_be_bytes()).unwrap();
    conn.write_all(body).unwrap();
    // The server answers with an Abort frame before erroring out.
    let mut len = [0u8; 4];
    conn.read_exact(&mut len).unwrap();
    let mut reply = vec![0u8; u32::from_be_bytes(len) as usize];
    conn.read_exact(&mut reply).unwrap();
    let text = String::from_utf8_lossy(&reply);
    assert!(text.contains("abort"), "{text}");
    assert!(text.contains("version"), "{text}");

    let (outcome, vip, _inv) = server.join().unwrap();
    assert!(
        matches!(outcome, Err(ref m) if m.contains("version")),
        "{outcome:?}"
    );
    assert!(std::net::TcpStream::connect(vip).is_ok());
}

#[test]
fn slow_loris_peer_times_out() {
    // A peer that connects and sends nothing must not wedge the old
    // process: the per-step timeout fires.
    let path = sock_path("loris");
    let server = serve(path.clone());
    std::thread::sleep(Duration::from_millis(100));

    let _conn = UnixStream::connect(&path).unwrap();
    // Send nothing; hold the connection open past the server's timeout.
    let start = std::time::Instant::now();
    let (outcome, vip, _inv) = server.join().unwrap();
    assert!(outcome.is_err(), "{outcome:?}");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "timeout must bound the wait"
    );
    assert!(std::net::TcpStream::connect(vip).is_ok());
}

#[test]
fn no_server_listening_fails_fast_for_the_new_process() {
    // The successor starting when no old process exists (first boot race):
    // request_takeover must fail cleanly so the caller can bind fresh.
    let path = sock_path("absent");
    let err = request_takeover(&path, Duration::from_secs(1)).unwrap_err();
    assert!(matches!(err, NetError::Io(_)), "{err:?}");
}

//! Failure injection on the Socket Takeover handshake (§5.1's operational
//! hazards): a takeover that breaks must degrade into "old process keeps
//! serving", never into an outage.

use std::io::{Read, Write};
use std::net::SocketAddr;
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

use zero_downtime_release::net::fault::{
    FaultAction, FaultInjector, FaultPoint, NoFaults, ScriptedFaults,
};
use zero_downtime_release::net::inventory::{bind_tcp, ListenerInventory};
use zero_downtime_release::net::takeover::{
    request_takeover, HandoffInfo, ReclaimVerdict, TakeoverServer,
};
use zero_downtime_release::net::NetError;

fn sock_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "zdr-fi-{tag}-{}-{:x}.sock",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

fn loopback() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

fn inventory_with_tcp() -> (ListenerInventory, SocketAddr) {
    let l = bind_tcp(loopback()).unwrap();
    let addr = l.local_addr().unwrap();
    let mut inv = ListenerInventory::new();
    inv.add_tcp(addr, l);
    (inv, addr)
}

type ServeResult = (Result<(), String>, SocketAddr, ListenerInventory);

/// Serves one takeover attempt, returning the outcome and the still-owned
/// inventory — a failed handshake must leave the old process holding (and
/// serving) its sockets.
fn serve(path: std::path::PathBuf) -> std::thread::JoinHandle<ServeResult> {
    std::thread::spawn(move || {
        let (inv, addr) = inventory_with_tcp();
        let server = TakeoverServer::bind(&path).unwrap();
        let info = HandoffInfo {
            generation: 3,
            udp_router_addr: None,
            drain_deadline_ms: 500,
        };
        let outcome = server
            .serve_once(&inv, info, Duration::from_secs(2))
            .map(|_| ())
            .map_err(|e| e.to_string());
        (outcome, addr, inv)
    })
}

#[test]
fn peer_dies_mid_handshake_old_keeps_serving() {
    // The "new binary crashes during takeover" case: connects, receives
    // the offer + FDs, then dies without confirming.
    let path = sock_path("die");
    let server = serve(path.clone());
    std::thread::sleep(Duration::from_millis(100));

    {
        let mut conn = UnixStream::connect(&path).unwrap();
        // Send a valid Request frame, then read a bit of the offer and die.
        let body = br#"{"type":"request","version":1}"#;
        conn.write_all(&(body.len() as u32).to_be_bytes()).unwrap();
        conn.write_all(body).unwrap();
        let mut some = [0u8; 16];
        let _ = conn.read(&mut some);
        // conn drops here — mid-handshake death.
    }

    let (outcome, vip, _inv) = server.join().unwrap();
    assert!(
        outcome.is_err(),
        "server must report the failed handshake: {outcome:?}"
    );
    // The VIP listener was only *borrowed* for the attempt: the old process
    // still owns it and keeps serving.
    assert!(
        std::net::TcpStream::connect(vip).is_ok(),
        "old process must keep serving"
    );
}

#[test]
fn garbage_on_the_takeover_socket_is_rejected() {
    let path = sock_path("garbage");
    let server = serve(path.clone());
    std::thread::sleep(Duration::from_millis(100));

    {
        let mut conn = UnixStream::connect(&path).unwrap();
        conn.write_all(b"\xff\xff\xff\xff totally not a frame")
            .unwrap();
    }

    let (outcome, vip, _inv) = server.join().unwrap();
    assert!(outcome.is_err());
    assert!(std::net::TcpStream::connect(vip).is_ok());
}

#[test]
fn version_mismatch_is_refused_cleanly() {
    let path = sock_path("version");
    let server = serve(path.clone());
    std::thread::sleep(Duration::from_millis(100));

    let mut conn = UnixStream::connect(&path).unwrap();
    let body = br#"{"type":"request","version":999}"#;
    conn.write_all(&(body.len() as u32).to_be_bytes()).unwrap();
    conn.write_all(body).unwrap();
    // The server answers with an Abort frame before erroring out.
    let mut len = [0u8; 4];
    conn.read_exact(&mut len).unwrap();
    let mut reply = vec![0u8; u32::from_be_bytes(len) as usize];
    conn.read_exact(&mut reply).unwrap();
    let text = String::from_utf8_lossy(&reply);
    assert!(text.contains("abort"), "{text}");
    assert!(text.contains("version"), "{text}");

    let (outcome, vip, _inv) = server.join().unwrap();
    assert!(
        matches!(outcome, Err(ref m) if m.contains("version")),
        "{outcome:?}"
    );
    assert!(std::net::TcpStream::connect(vip).is_ok());
}

#[test]
fn slow_loris_peer_times_out() {
    // A peer that connects and sends nothing must not wedge the old
    // process: the per-step timeout fires.
    let path = sock_path("loris");
    let server = serve(path.clone());
    std::thread::sleep(Duration::from_millis(100));

    let _conn = UnixStream::connect(&path).unwrap();
    // Send nothing; hold the connection open past the server's timeout.
    let start = std::time::Instant::now();
    let (outcome, vip, _inv) = server.join().unwrap();
    assert!(outcome.is_err(), "{outcome:?}");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "timeout must bound the wait"
    );
    assert!(std::net::TcpStream::connect(vip).is_ok());
}

#[test]
fn no_server_listening_fails_fast_for_the_new_process() {
    // The successor starting when no old process exists (first boot race):
    // request_takeover must fail cleanly so the caller can bind fresh.
    let path = sock_path("absent");
    let err = request_takeover(&path, Duration::from_secs(1)).unwrap_err();
    assert!(matches!(err, NetError::Io(_)), "{err:?}");
}

/// Like [`serve`], but consults a scripted injector at each send site.
fn serve_with(
    path: std::path::PathBuf,
    faults: Arc<ScriptedFaults>,
) -> std::thread::JoinHandle<ServeResult> {
    std::thread::spawn(move || {
        let (inv, addr) = inventory_with_tcp();
        let server = TakeoverServer::bind(&path).unwrap();
        let info = HandoffInfo {
            generation: 3,
            udp_router_addr: None,
            drain_deadline_ms: 500,
        };
        let outcome = server
            .serve_once_watched(&inv, info, Duration::from_secs(2), &*faults)
            .map(|_| ())
            .map_err(|e| e.to_string());
        (outcome, addr, inv)
    })
}

#[test]
fn truncated_fd_chunk_is_rejected_by_the_new_process() {
    // The old process advertises N FDs but the SCM_RIGHTS payload carries
    // N-1 (kernel truncation / sender bug). The receiver's inventory check
    // must flag the mismatch instead of serving with a hole in the VIP set.
    let path = sock_path("trunc");
    let faults = Arc::new(ScriptedFaults::once(
        FaultPoint::SendFdChunk,
        FaultAction::Truncate,
    ));
    let server = serve_with(path.clone(), Arc::clone(&faults));
    std::thread::sleep(Duration::from_millis(100));

    let err = request_takeover(&path, Duration::from_secs(2)).unwrap_err();
    assert!(matches!(err, NetError::Inventory(_)), "{err:?}");
    assert_eq!(faults.injected(), 1);

    let (outcome, vip, _inv) = server.join().unwrap();
    assert!(outcome.is_err(), "{outcome:?}");
    // The old process still owns and serves the VIP.
    assert!(std::net::TcpStream::connect(vip).is_ok());
}

#[test]
fn dropped_confirm_times_out_both_sides() {
    // The new process receives the sockets but its Confirm frame never
    // leaves (step D lost). The old process's per-step timeout must fire —
    // and it must keep serving, since without a Confirm it never drains.
    let path = sock_path("noconfirm");
    let server = serve(path.clone());
    std::thread::sleep(Duration::from_millis(100));

    let pending = request_takeover(&path, Duration::from_secs(1)).unwrap();
    let faults = ScriptedFaults::once(FaultPoint::SendConfirm, FaultAction::Drop);
    // The confirm is silently dropped; the new side then waits for a
    // Draining ack that never comes and times out.
    let err = pending.confirm_with(&faults).unwrap_err();
    assert!(matches!(err, NetError::Io(_)), "{err:?}");
    assert_eq!(faults.injected(), 1);

    let (outcome, vip, _inv) = server.join().unwrap();
    assert!(outcome.is_err(), "{outcome:?}");
    assert!(std::net::TcpStream::connect(vip).is_ok());
}

#[test]
fn watched_rollback_returns_the_sockets_to_the_old_process() {
    // Full reverse-takeover round trip: the successor confirms, fails its
    // health probe, and hands the sockets back over the same UNIX stream.
    let path = sock_path("rollback");
    let old = std::thread::spawn({
        let path = path.clone();
        move || {
            let (inv, addr) = inventory_with_tcp();
            let server = TakeoverServer::bind(&path).unwrap();
            let info = HandoffInfo {
                generation: 4,
                udp_router_addr: None,
                drain_deadline_ms: 500,
            };
            let mut watch = server
                .serve_once_watched(&inv, info, Duration::from_secs(5), &NoFaults)
                .unwrap();
            let healthy = watch.await_health(Duration::from_secs(5)).unwrap();
            assert!(!healthy, "successor reports unhealthy in this scenario");
            let reclaimed = watch.reclaim(Duration::from_secs(5)).unwrap();
            (reclaimed, addr)
        }
    });
    std::thread::sleep(Duration::from_millis(100));

    // New process: take the sockets, confirm, report unhealthy, then answer
    // the predecessor's Reclaim by sending the sockets back.
    let pending = request_takeover(&path, Duration::from_secs(5)).unwrap();
    let (mut result, mut release) = pending.confirm_watched().unwrap();
    let vip = result.inventory.unclaimed()[0].addr;
    let listener = result.inventory.claim_tcp(vip).unwrap();
    release.report_health(false).unwrap();
    assert_eq!(
        release.await_verdict(Duration::from_secs(5)).unwrap(),
        ReclaimVerdict::Reclaimed
    );
    let mut back = ListenerInventory::new();
    back.add_tcp(vip, listener);
    let info = HandoffInfo {
        generation: 4,
        udp_router_addr: None,
        drain_deadline_ms: 500,
    };
    release.serve_reclaim(&back, info).unwrap();

    let (mut reclaimed, addr) = old.join().unwrap();
    assert_eq!(addr, vip, "reclaim must return the same VIP");
    assert_eq!(reclaimed.info.generation, 4);
    let got = reclaimed.inventory.claim_tcp(addr).unwrap();
    // The reclaimed listener is the same kernel file description: a client
    // connecting now lands in its backlog and is accepted by the old
    // process — zero accepted-connection loss across the rollback.
    let conn = std::net::TcpStream::connect(addr);
    assert!(conn.is_ok(), "VIP must accept after rollback");
    let (peer, _) = got.accept().unwrap();
    drop(peer);
}

mod upstream_chaos {
    //! Multi-seed chaos on the upstream path: the reverse proxy forwards
    //! through a [`FlakyUpstreams`] injector (slow / black-holed /
    //! flapping upstreams, mode derived from the seed) and under EVERY
    //! seed the same invariants must hold — the proxy always answers,
    //! nothing outlives its deadline, and retry volume stays inside the
    //! budget's structural bound.
    //!
    //! `ZDR_FAULT_SEED` (the CI chaos matrix) pins a single seed; without
    //! it, eight distinct seeds run back to back.

    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use tokio::io::{AsyncReadExt, AsyncWriteExt};
    use tokio::net::TcpStream;

    use zero_downtime_release::appserver::{self, AppServerConfig};
    use zero_downtime_release::core::clock::unix_now_ms;
    use zero_downtime_release::core::resilience::RetryBudgetConfig;
    use zero_downtime_release::net::fault::{FlakyUpstreams, UpstreamFaultMode};
    use zero_downtime_release::proto::deadline::{Deadline, DEADLINE_HEADER};
    use zero_downtime_release::proto::http1::{serialize_request, Request, ResponseParser};
    use zero_downtime_release::proxy::reverse::{spawn_reverse_proxy, ReverseProxyConfig};

    const DEFAULT_SEEDS: [u64; 8] = [1, 7, 42, 1337, 2026, 24_301, 999_983, 0xdead_beef];

    fn seeds_under_test() -> Vec<u64> {
        match std::env::var("ZDR_FAULT_SEED") {
            Ok(s) => vec![s.parse().expect("ZDR_FAULT_SEED must be a u64")],
            Err(_) => DEFAULT_SEEDS.to_vec(),
        }
    }

    /// The injected misbehaviour is itself seed-derived, so the seed
    /// matrix sweeps modes as well as phases.
    fn mode_for(seed: u64) -> UpstreamFaultMode {
        match seed % 3 {
            0 => UpstreamFaultMode::Flap { period: 2 },
            1 => UpstreamFaultMode::Slow(Duration::from_millis(20)),
            _ => UpstreamFaultMode::BlackHole,
        }
    }

    async fn request(
        proxy: std::net::SocketAddr,
        deadline: Deadline,
    ) -> std::io::Result<(u16, Duration)> {
        let started = Instant::now();
        let mut stream = TcpStream::connect(proxy).await?;
        let mut req = Request::get("/");
        req.headers.set(DEADLINE_HEADER, deadline.header_value());
        stream.write_all(&serialize_request(&req)).await?;
        let mut parser = ResponseParser::new();
        let mut buf = [0u8; 16 * 1024];
        loop {
            let n = stream.read(&mut buf).await?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "closed mid-response",
                ));
            }
            if let Some(resp) = parser.push(&buf[..n]).map_err(std::io::Error::other)? {
                return Ok((resp.status.code, started.elapsed()));
            }
        }
    }

    async fn chaos_round(seed: u64) {
        let mode = mode_for(seed);
        let mut apps = Vec::new();
        for _ in 0..3 {
            apps.push(
                appserver::spawn("127.0.0.1:0".parse().unwrap(), AppServerConfig::default())
                    .await
                    .unwrap(),
            );
        }
        let faults = Arc::new(FlakyUpstreams::new(seed, mode));
        let proxy = spawn_reverse_proxy(
            "127.0.0.1:0".parse().unwrap(),
            ReverseProxyConfig {
                upstreams: apps.iter().map(|a| a.addr).collect(),
                faults: Arc::clone(&faults),
                ..Default::default()
            },
        )
        .await
        .unwrap();

        // Black holes burn a whole deadline per request; keep those rounds
        // short so the full seed sweep stays fast.
        let (requests, budget) = match mode {
            UpstreamFaultMode::BlackHole => (3u64, Duration::from_millis(250)),
            _ => (24u64, Duration::from_secs(1)),
        };

        let mut successes = 0u64;
        for _ in 0..requests {
            let (status, elapsed) = request(proxy.addr, Deadline::after(unix_now_ms(), budget))
                .await
                .unwrap_or_else(|e| panic!("seed {seed} ({mode:?}): proxy stopped answering: {e}"));
            // Bounded even when every upstream black-holes: the propagated
            // deadline caps the hang, never a transport timeout.
            assert!(
                elapsed < budget + Duration::from_secs(2),
                "seed {seed} ({mode:?}): answer took {elapsed:?}"
            );
            if status == 200 {
                successes += 1;
            }
        }

        assert!(
            faults.injected() > 0,
            "seed {seed} ({mode:?}): chaos round injected nothing"
        );
        // Live-but-degraded modes must still mostly succeed.
        if !matches!(mode, UpstreamFaultMode::BlackHole) {
            assert!(
                successes >= requests / 2,
                "seed {seed} ({mode:?}): only {successes}/{requests} succeeded"
            );
        }
        // The retry budget's structural bound survives every seed.
        let snapshot = proxy.stats.snapshot();
        let reserve = RetryBudgetConfig::default().reserve_tokens as f64;
        assert!(
            (snapshot.retries as f64) <= reserve + 0.1 * successes as f64,
            "seed {seed} ({mode:?}): {} retries for {successes} successes",
            snapshot.retries
        );
    }

    #[tokio::test]
    async fn every_fault_seed_keeps_the_proxy_answering_within_deadline() {
        for seed in seeds_under_test() {
            chaos_round(seed).await;
        }
    }
}

mod backoff_properties {
    use proptest::prelude::*;
    use zero_downtime_release::core::supervisor::BackoffSchedule;

    fn schedules() -> impl Strategy<Value = BackoffSchedule> {
        (
            1u64..500,
            500u64..50_000,
            1.0f64..4.0,
            0.0f64..0.9,
            1u32..10,
        )
            .prop_map(|(base_ms, cap_ms, multiplier, jitter_frac, max_attempts)| {
                BackoffSchedule {
                    base_ms,
                    cap_ms,
                    multiplier,
                    jitter_frac,
                    max_attempts,
                }
            })
    }

    proptest! {
        #[test]
        fn raw_delays_are_monotone_and_capped(s in schedules()) {
            let mut prev = 0u64;
            for attempt in 1..=s.max_attempts {
                let d = s.raw_delay_ms(attempt);
                prop_assert!(d >= prev, "attempt {}: {} < {}", attempt, d, prev);
                prop_assert!(d <= s.cap_ms, "attempt {}: {} above cap {}", attempt, d, s.cap_ms);
                prev = d;
            }
        }

        #[test]
        fn jittered_delay_stays_within_bounds(s in schedules(), seed in any::<u64>()) {
            for attempt in 1..=s.max_attempts {
                let (lo, hi) = s.bounds_ms(attempt);
                let d = s.delay_ms(attempt, seed);
                prop_assert!(
                    lo <= d && d <= hi,
                    "attempt {}: {} outside [{}, {}]", attempt, d, lo, hi
                );
            }
        }

        #[test]
        fn jittered_delay_is_deterministic_per_seed(s in schedules(), seed in any::<u64>()) {
            for attempt in 1..=s.max_attempts {
                prop_assert_eq!(s.delay_ms(attempt, seed), s.delay_ms(attempt, seed));
            }
        }
    }
}

//! The ISSUE's acceptance experiment on real sockets: half the upstream
//! fleet restarts under live traffic, and the resilience layer must keep
//! the storm bounded —
//!
//! * total retry volume stays ≤ 1.1× the successful-request volume
//!   (budget-funded retries, reserve + 10% of successes);
//! * zero requests are served past their propagated deadline;
//! * once a restarting upstream's breaker opens, the only connections it
//!   receives are half-open probes;
//! * every counter involved is visible in the serialized
//!   [`StatsSnapshot`] (the `zdr --stats-json` payload).

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

use zero_downtime_release::appserver::{self, AppServerConfig};
use zero_downtime_release::core::clock::unix_now_ms;
use zero_downtime_release::proto::deadline::{Deadline, DEADLINE_HEADER};
use zero_downtime_release::proto::http1::{serialize_request, Request, ResponseParser};
use zero_downtime_release::proxy::reverse::{spawn_reverse_proxy, ReverseProxyConfig};

/// An upstream mid-restart: accepts (the listen socket still exists) but
/// closes immediately, so every request through it fails. Counts hits —
/// the signal that breakers stop traffic to it.
async fn restarting_upstream() -> (SocketAddr, Arc<AtomicU64>) {
    let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
    let addr = listener.local_addr().unwrap();
    let hits = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&hits);
    tokio::spawn(async move {
        while let Ok((stream, _)) = listener.accept().await {
            counter.fetch_add(1, Ordering::Relaxed);
            drop(stream);
        }
    });
    (addr, hits)
}

/// One GET through the proxy on a fresh connection, stamped with an
/// absolute deadline. Returns (status, elapsed).
async fn request_with_deadline(
    proxy: SocketAddr,
    deadline: Deadline,
) -> std::io::Result<(u16, Duration)> {
    let started = Instant::now();
    let mut stream = TcpStream::connect(proxy).await?;
    let mut req = Request::get("/");
    req.headers.set(DEADLINE_HEADER, deadline.header_value());
    stream.write_all(&serialize_request(&req)).await?;
    let mut parser = ResponseParser::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = stream.read(&mut buf).await?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "closed mid-response",
            ));
        }
        if let Some(resp) = parser.push(&buf[..n]).map_err(std::io::Error::other)? {
            return Ok((resp.status.code, started.elapsed()));
        }
    }
}

#[tokio::test]
async fn restart_storm_keeps_retries_probes_and_deadlines_bounded() {
    // Two live app servers, two restarting upstreams: a 50% storm.
    let live_a = appserver::spawn("127.0.0.1:0".parse().unwrap(), AppServerConfig::default())
        .await
        .unwrap();
    let live_b = appserver::spawn("127.0.0.1:0".parse().unwrap(), AppServerConfig::default())
        .await
        .unwrap();
    let (dead_a, hits_a) = restarting_upstream().await;
    let (dead_b, hits_b) = restarting_upstream().await;

    let proxy = spawn_reverse_proxy(
        "127.0.0.1:0".parse().unwrap(),
        ReverseProxyConfig {
            upstreams: vec![dead_a, live_a.addr, dead_b, live_b.addr],
            ..Default::default()
        },
    )
    .await
    .unwrap();

    const REQUESTS: u64 = 200;
    const BUDGET: Duration = Duration::from_secs(5);
    let mut successes = 0u64;
    let mut failures = 0u64;
    for _ in 0..REQUESTS {
        let deadline = Deadline::after(unix_now_ms(), BUDGET);
        let (status, elapsed) = request_with_deadline(proxy.addr, deadline)
            .await
            .expect("proxy must always answer");
        // Nothing is served past its propagated deadline: every answer —
        // success or failure — lands within the stamped budget.
        assert!(
            elapsed < BUDGET,
            "answered after the deadline: {elapsed:?} (status {status})"
        );
        match status {
            200 => successes += 1,
            _ => failures += 1,
        }
    }

    let snapshot = proxy.stats.snapshot();

    // The storm is survivable: breakers route around the dead half, so
    // nearly everything succeeds.
    assert!(
        successes >= REQUESTS * 9 / 10,
        "goodput collapsed: {successes}/{REQUESTS} ({failures} failures)"
    );

    // Retry amplification is budget-bounded: reserve + 10% of successes is
    // the structural cap, far inside the ≤1.1× acceptance bound.
    let reserve =
        zero_downtime_release::core::resilience::RetryBudgetConfig::default().reserve_tokens as f64;
    assert!(
        (snapshot.retries as f64) <= reserve + 0.1 * successes as f64,
        "retries {} exceed budget cap",
        snapshot.retries
    );
    assert!(
        (snapshot.retries as f64) <= 1.1 * successes as f64,
        "retry volume {} above 1.1x successes {successes}",
        snapshot.retries
    );

    // Both dead upstreams tripped their breakers…
    assert!(
        snapshot.breaker_opened >= 2,
        "both breakers must open: {snapshot:?}"
    );
    // …and after tripping they saw only half-open probes: total hits are
    // the failures needed to trip (threshold 3 each, requests are
    // sequential) plus the probes the breakers granted.
    let dead_hits = hits_a.load(Ordering::Relaxed) + hits_b.load(Ordering::Relaxed);
    assert!(
        dead_hits <= 6 + snapshot.breaker_probes,
        "dead upstreams saw {dead_hits} connections but only {} probes were granted",
        snapshot.breaker_probes
    );

    // Every resilience counter rides the one serialized snapshot (what
    // `zdr --stats-json` prints).
    let json = serde_json::to_string(&snapshot).unwrap();
    for field in [
        "breaker_opened",
        "breaker_closed",
        "breaker_probes",
        "retries",
        "retry_budget_exhausted",
        "load_shed",
        "deadline_exceeded",
    ] {
        assert!(
            json.contains(field),
            "snapshot JSON missing {field}: {json}"
        );
    }
}

#[tokio::test]
async fn expired_deadlines_are_refused_not_served() {
    let live = appserver::spawn("127.0.0.1:0".parse().unwrap(), AppServerConfig::default())
        .await
        .unwrap();
    let proxy = spawn_reverse_proxy(
        "127.0.0.1:0".parse().unwrap(),
        ReverseProxyConfig {
            upstreams: vec![live.addr],
            ..Default::default()
        },
    )
    .await
    .unwrap();

    // A batch of requests whose propagated deadline has already passed:
    // each must be refused with 504 — zero served past the deadline.
    for _ in 0..20 {
        let (status, _) = request_with_deadline(proxy.addr, Deadline::at_unix_ms(1))
            .await
            .unwrap();
        assert_eq!(status, 504, "expired deadline must never be served");
    }
    let snapshot = proxy.stats.snapshot();
    assert_eq!(snapshot.deadline_exceeded, 20);
    // No upstream work happened for any of them.
    assert_eq!(live.stats.snapshot().0, 0);
}

//! Cross-process Downstream Connection Reuse: broker, two Origin relays,
//! and an Edge relay as four separate `zdr` OS processes; one Origin
//! drains itself mid-stream and the subscriber's connection never drops.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

use zero_downtime_release::proto::dcr::UserId;
use zero_downtime_release::proto::mqtt::{self, ConnectReturnCode, Packet, QoS, StreamDecoder};

const ZDR_BIN: &str = env!("CARGO_BIN_EXE_zdr");

struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = Command::new(ZDR_BIN)
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn zdr");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read READY line");
        let addr = line
            .trim()
            .strip_prefix("READY ")
            .unwrap_or_else(|| panic!("expected READY, got {line:?}"))
            .parse()
            .expect("parse addr");
        Daemon { child, addr }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    stream: TcpStream,
    decoder: StreamDecoder,
}

impl Client {
    async fn connect(edge: SocketAddr, user: UserId) -> Client {
        let mut stream = TcpStream::connect(edge).await.unwrap();
        let pkt = Packet::Connect {
            client_id: user.client_id(),
            keep_alive: 60,
            clean_session: true,
        };
        stream
            .write_all(&mqtt::encode(&pkt).unwrap())
            .await
            .unwrap();
        let mut c = Client {
            stream,
            decoder: StreamDecoder::new(),
        };
        match c.recv().await {
            Packet::ConnAck {
                code: ConnectReturnCode::Accepted,
                ..
            } => c,
            other => panic!("expected CONNACK, got {other:?}"),
        }
    }

    async fn send(&mut self, pkt: &Packet) {
        self.stream
            .write_all(&mqtt::encode(pkt).unwrap())
            .await
            .unwrap();
    }

    async fn recv(&mut self) -> Packet {
        let mut buf = [0u8; 8192];
        loop {
            if let Some(p) = self.decoder.next_packet().unwrap() {
                return p;
            }
            let n = tokio::time::timeout(Duration::from_secs(15), self.stream.read(&mut buf))
                .await
                .expect("recv timeout")
                .unwrap();
            assert!(n > 0, "connection dropped");
            self.decoder.extend(&buf[..n]);
        }
    }
}

async fn run_dcr_scenario(trunk: bool) {
    let broker = Daemon::spawn(&["broker", "--listen", "127.0.0.1:0"]);
    let broker_addr = broker.addr.to_string();

    // Origin 1 drains itself after 1.5 s; origin 2 is the re-home target.
    let mut o1_args = vec![
        "origin",
        "--listen",
        "127.0.0.1:0",
        "--id",
        "1",
        "--broker",
        &broker_addr,
        "--drain-after",
        "1500",
    ];
    let mut o2_args = vec![
        "origin",
        "--listen",
        "127.0.0.1:0",
        "--id",
        "2",
        "--broker",
        &broker_addr,
    ];
    if trunk {
        o1_args.push("--trunk");
        o2_args.push("--trunk");
    }
    let o1 = Daemon::spawn(&o1_args);
    let o2 = Daemon::spawn(&o2_args);
    let o1_addr = o1.addr.to_string();
    let o2_addr = o2.addr.to_string();

    let mut edge_args = vec![
        "edge",
        "--listen",
        "127.0.0.1:0",
        "--origin",
        &o1_addr,
        "--origin",
        &o2_addr,
    ];
    if trunk {
        edge_args.push("--trunk");
    }
    let edge = Daemon::spawn(&edge_args);

    // Subscriber through the four-process stack.
    let mut sub = Client::connect(edge.addr, UserId(42)).await;
    sub.send(&Packet::Subscribe {
        packet_id: 1,
        filters: vec![("news".into(), QoS::AtMostOnce)],
    })
    .await;
    match sub.recv().await {
        Packet::SubAck { .. } => {}
        other => panic!("{other:?}"),
    }

    // Publisher keeps a slow stream going across origin 1's self-drain.
    let mut publisher = Client::connect(edge.addr, UserId(43)).await;
    for seq in 0..12u32 {
        publisher
            .send(&Packet::Publish {
                topic: "news".into(),
                packet_id: None,
                payload: bytes::Bytes::from(format!("item-{seq}").into_bytes()),
                qos: QoS::AtMostOnce,
                retain: false,
                dup: false,
            })
            .await;
        match sub.recv().await {
            Packet::Publish { payload, .. } => {
                assert_eq!(payload, format!("item-{seq}").as_bytes());
            }
            other => panic!("seq {seq}: {other:?}"),
        }
        tokio::time::sleep(Duration::from_millis(250)).await;
    }
    // 12 × 250 ms = 3 s: the drain at 1.5 s happened mid-stream, and every
    // message still arrived, in order, on the original connections.
}

#[tokio::test]
async fn dcr_across_processes_per_tunnel_tcp() {
    run_dcr_scenario(false).await;
}

#[tokio::test]
async fn dcr_across_processes_trunk_goaway() {
    run_dcr_scenario(true).await;
}

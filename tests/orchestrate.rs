//! Fleet release orchestration, end to end across real OS processes:
//! `zdr orchestrate` drives a canary-gated release train over live
//! `zdr proxy` predecessors, and the acceptance invariant of the whole
//! subsystem is exercised under injected faults — an injected canary
//! failure or controller crash mid-train must never leave the fleet in a
//! mixed state without an explicit journaled HALT: every batch ends fully
//! promoted or fully rolled back.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use zero_downtime_release::core::config::ZdrConfig;

const ZDR_BIN: &str = env!("CARGO_BIN_EXE_zdr");

/// Orchestrate's documented exit codes (see `zdr --help`).
const EXIT_REFUSED: i32 = 2;
const EXIT_HALTED: i32 = 3;
const EXIT_CRASHED: i32 = 7;

struct Daemon {
    child: Child,
    /// Address parsed from the `READY <addr>` line.
    addr: SocketAddr,
    /// Retained so the pipe stays open (a dropped read end would EPIPE the
    /// child's later DRAINED announcement).
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = Command::new(ZDR_BIN)
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn zdr");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read READY line");
        let addr = line
            .trim()
            .strip_prefix("READY ")
            .unwrap_or_else(|| panic!("expected READY line, got {line:?}"))
            .parse()
            .expect("parse READY addr");
        Daemon {
            child,
            addr,
            _stdout: stdout,
        }
    }

    fn alive(&mut self) -> bool {
        self.child.try_wait().expect("try_wait").is_none()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn tmp_path(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "zdr-orch-{tag}-{}-{:x}.{ext}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

/// Writes a full config file routing to `upstreams` with a short drain, so
/// superseded generations leave quickly.
fn write_cfg(tag: &str, upstreams: &[SocketAddr]) -> PathBuf {
    let mut cfg = ZdrConfig::default();
    cfg.routing.upstreams = upstreams.to_vec();
    cfg.drain.drain_ms = 300;
    let path = tmp_path(tag, "toml");
    std::fs::write(&path, cfg.to_toml()).expect("write config");
    path
}

/// An upstream that passes the doctor's reachability probe (the TCP
/// handshake completes) but serves nothing: every proxied request through
/// it fails, which is exactly what the canary gate exists to catch.
fn accept_then_close_upstream() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind black hole");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            drop(conn);
        }
    });
    addr
}

/// Blocking HTTP/1.0 GET; true on a 200.
fn get_ok(addr: SocketAddr, path: &str) -> bool {
    let timeout = Duration::from_secs(2);
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, timeout) else {
        return false;
    };
    if stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_write_timeout(Some(timeout)).is_err()
        || stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: zdr-test\r\n\r\n").as_bytes())
            .is_err()
    {
        return false;
    }
    let mut response = String::new();
    if stream.read_to_string(&mut response).is_err() {
        return false;
    }
    response
        .lines()
        .next()
        .is_some_and(|status| status.contains(" 200 "))
}

/// One cluster of the train: a live predecessor proxy serving a VIP, its
/// takeover socket, and the release/rollback config pair.
struct TrainNode {
    pred: Daemon,
    vip: SocketAddr,
    spec: String,
}

fn spawn_node(tag: &str, app: SocketAddr, new_cfg: &Path, rollback_cfg: &Path) -> TrainNode {
    let sock = tmp_path(tag, "sock").to_string_lossy().into_owned();
    let pred = Daemon::spawn(&[
        "proxy",
        "--listen",
        "127.0.0.1:0",
        "--upstream",
        &app.to_string(),
        "--takeover-path",
        &sock,
        "--drain-ms",
        "300",
    ]);
    let vip = pred.addr;
    let spec = format!(
        "{vip}={sock}={}={}",
        new_cfg.display(),
        rollback_cfg.display()
    );
    TrainNode { pred, vip, spec }
}

struct TrainRun {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

impl TrainRun {
    /// The final `TRAIN_REPORT <json>` line.
    fn report(&self) -> serde_json::Value {
        let line = self
            .stdout
            .lines()
            .rev()
            .find_map(|l| l.strip_prefix("TRAIN_REPORT "))
            .unwrap_or_else(|| panic!("no TRAIN_REPORT in stdout:\n{}", self.stdout));
        serde_json::from_str(line).expect("TRAIN_REPORT parses")
    }

    /// Pids of the fleet processes this run left serving.
    fn spawned_pids(&self) -> Vec<u32> {
        self.stdout
            .lines()
            .filter_map(|l| l.strip_prefix("SPAWNED pid="))
            .filter_map(|rest| rest.split_whitespace().next()?.parse().ok())
            .collect()
    }
}

/// Runs `zdr orchestrate` to completion with a hard timeout (a train that
/// neither settles nor crashes is itself a bug worth failing loudly on).
fn orchestrate(seed: u64, args: &[String]) -> TrainRun {
    let mut child = Command::new(ZDR_BIN)
        .arg("orchestrate")
        .args(args)
        .env("ZDR_FAULT_SEED", seed.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn orchestrate");
    let stdout = child.stdout.take().expect("stdout piped");
    let stderr = child.stderr.take().expect("stderr piped");
    let out = std::thread::spawn(move || {
        let mut s = String::new();
        let _ = BufReader::new(stdout).read_to_string(&mut s);
        s
    });
    let err = std::thread::spawn(move || {
        let mut s = String::new();
        let _ = BufReader::new(stderr).read_to_string(&mut s);
        s
    });
    let start = Instant::now();
    let status = loop {
        if let Some(status) = child.try_wait().expect("wait orchestrate") {
            break status;
        }
        if start.elapsed() > Duration::from_secs(120) {
            let _ = child.kill();
            let _ = child.wait();
            panic!("orchestrate did not settle within 120s");
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    TrainRun {
        code: status.code(),
        stdout: out.join().unwrap(),
        stderr: err.join().unwrap(),
    }
}

/// The fleet outlives the controller by design; tests must not.
struct Fleet(Vec<u32>);

impl Fleet {
    fn new() -> Fleet {
        Fleet(Vec::new())
    }
    fn absorb(&mut self, run: &TrainRun) {
        self.0.extend(run.spawned_pids());
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for pid in &self.0 {
            let _ = Command::new("kill").arg(pid.to_string()).status();
        }
    }
}

/// Parses the journal file into its per-line JSON records.
fn journal_events(path: &Path) -> Vec<serde_json::Value> {
    std::fs::read_to_string(path)
        .expect("read journal")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).expect("journal line parses"))
        .collect()
}

fn event_index(events: &[serde_json::Value], name: &str) -> Option<usize> {
    events.iter().position(|e| e["event"] == name)
}

/// Common flags: tight canary windows so trains settle in seconds.
fn train_flags(nodes: &[&TrainNode], journal: &Path) -> Vec<String> {
    let mut args = Vec::new();
    for n in nodes {
        args.push("--node".into());
        args.push(n.spec.clone());
    }
    args.extend([
        "--journal".into(),
        journal.to_string_lossy().into_owned(),
        "--window-ms".into(),
        "150".into(),
        "--probes-per-window".into(),
        "4".into(),
    ]);
    args
}

#[test]
fn happy_train_promotes_every_batch_across_processes() {
    let app = Daemon::spawn(&["app-server", "--listen", "127.0.0.1:0", "--name", "web-1"]);
    let good = write_cfg("happy-good", &[app.addr]);
    let nodes: Vec<TrainNode> = (0..3)
        .map(|i| spawn_node(&format!("happy-{i}"), app.addr, &good, &good))
        .collect();
    let journal = tmp_path("happy", "journal");
    let mut fleet = Fleet::new();

    let run = orchestrate(0, &train_flags(&nodes.iter().collect::<Vec<_>>(), &journal));
    fleet.absorb(&run);
    assert_eq!(
        run.code,
        Some(0),
        "stdout:\n{}\nstderr:\n{}",
        run.stdout,
        run.stderr
    );

    let report = run.report();
    assert_eq!(report["phase"], "completed");
    assert_eq!(report["batches_promoted"], 3);
    assert_eq!(report["batches_rolled_back"], 0);
    assert_eq!(report["mixed_state"], false);

    let events = journal_events(&journal);
    assert_eq!(events.first().unwrap()["event"], "train_started");
    assert_eq!(events.last().unwrap()["event"], "completed");
    assert_eq!(
        events
            .iter()
            .filter(|e| e["event"] == "batch_promoted")
            .count(),
        3
    );

    // The whole fleet serves its new generation.
    for node in &nodes {
        assert!(
            get_ok(node.vip, "/post-train"),
            "vip {} must serve",
            node.vip
        );
    }
}

#[test]
fn canary_failure_in_batch_2_halts_rolls_back_and_spares_the_rest() {
    // The acceptance case, under 4 fault seeds: batch 1 (released before
    // the halt) stays promoted, batch 2's bad release is rolled back, and
    // batch 3 is never touched.
    for seed in 1..=4u64 {
        let app = Daemon::spawn(&["app-server", "--listen", "127.0.0.1:0", "--name", "web-1"]);
        let good = write_cfg(&format!("canary-good-{seed}"), &[app.addr]);
        // Passes preflight (TCP handshake completes), 502s on traffic.
        let bad = write_cfg(
            &format!("canary-bad-{seed}"),
            &[accept_then_close_upstream()],
        );
        let nodes = [
            spawn_node(&format!("canary-{seed}-0"), app.addr, &good, &good),
            spawn_node(&format!("canary-{seed}-1"), app.addr, &bad, &good),
            spawn_node(&format!("canary-{seed}-2"), app.addr, &good, &good),
        ];
        let journal = tmp_path(&format!("canary-{seed}"), "journal");
        let mut fleet = Fleet::new();

        let run = orchestrate(
            seed,
            &train_flags(&nodes.iter().collect::<Vec<_>>(), &journal),
        );
        fleet.absorb(&run);
        assert_eq!(
            run.code,
            Some(EXIT_HALTED),
            "seed {seed} stdout:\n{}\nstderr:\n{}",
            run.stdout,
            run.stderr
        );

        let report = run.report();
        assert_eq!(report["phase"], "halted", "seed {seed}");
        assert_eq!(report["halted_at_batch"], 1, "seed {seed}");
        assert_eq!(report["halt_reason"]["kind"], "canary_gate", "seed {seed}");
        assert_eq!(report["halt_reason"]["cluster"], 1, "seed {seed}");
        assert_eq!(
            report["batches"],
            serde_json::json!(["promoted", "rolled_back", "pending"]),
            "seed {seed}"
        );
        assert_eq!(report["mixed_state"], false, "seed {seed}");

        // The journal proves the ordering invariant: HALT is on disk
        // before the first rollback record, and batch 2 never started.
        let events = journal_events(&journal);
        let halted = event_index(&events, "halted").expect("halted journaled");
        let rollback = event_index(&events, "rollback_started").expect("rollback journaled");
        assert!(halted < rollback, "seed {seed}: HALT must precede rollback");
        assert!(
            events
                .iter()
                .any(|e| e["event"] == "batch_rolled_back" && e["batch"] == 1),
            "seed {seed}: batch 1 must be fully rolled back"
        );
        assert!(
            !events
                .iter()
                .any(|e| e["event"] == "batch_started" && e["batch"] == 2),
            "seed {seed}: batch 2 must never start"
        );

        // Batch 1's release survives, batch 2 serves its rollback config,
        // batch 3's untouched predecessor is still the serving process.
        let mut nodes = nodes;
        assert!(get_ok(nodes[0].vip, "/batch-0"), "seed {seed}: released");
        assert!(get_ok(nodes[1].vip, "/batch-1"), "seed {seed}: rolled back");
        assert!(get_ok(nodes[2].vip, "/batch-2"), "seed {seed}: untouched");
        assert!(
            nodes[2].pred.alive(),
            "seed {seed}: batch 3's predecessor must never be released"
        );
    }
}

#[test]
fn mqtt_canary_failure_halts_while_http_stays_green() {
    // ROADMAP item 3's gap, closed: the gate judges the successor's own
    // per-protocol counters, not just HTTP probes. Inject a /stats scrape
    // that reports a generation dropping every MQTT tunnel for two
    // consecutive windows (the gate's debounce) while every HTTP probe
    // keeps answering 200 — the train must halt and roll back anyway.
    let app = Daemon::spawn(&["app-server", "--listen", "127.0.0.1:0", "--name", "web-1"]);
    let good = write_cfg("mqtt-canary-good", &[app.addr]);
    let node = spawn_node("mqtt-canary", app.addr, &good, &good);
    let journal = tmp_path("mqtt-canary", "journal");
    let mut fleet = Fleet::new();

    let mut args = train_flags(&[&node], &journal);
    args.extend([
        "--fault".into(),
        "mqtt-canary-fail@0".into(),
        "--fault".into(),
        "mqtt-canary-fail@1".into(),
    ]);
    let run = orchestrate(1, &args);
    fleet.absorb(&run);
    assert_eq!(
        run.code,
        Some(EXIT_HALTED),
        "stdout:\n{}\nstderr:\n{}",
        run.stdout,
        run.stderr
    );

    let report = run.report();
    assert_eq!(report["phase"], "halted");
    assert_eq!(report["halt_reason"]["kind"], "canary_gate");
    assert_eq!(report["batches"], serde_json::json!(["rolled_back"]));
    assert_eq!(report["mixed_state"], false);

    // The CANARY lines prove the split: HTTP clean, MQTT catastrophic.
    let canaries: Vec<&str> = run
        .stdout
        .lines()
        .filter(|l| l.starts_with("CANARY "))
        .collect();
    assert!(
        canaries.len() >= 2,
        "two bad windows observed:\n{}",
        run.stdout
    );
    for line in &canaries {
        assert!(line.contains("http=0/4"), "HTTP stayed green: {line}");
        assert!(line.contains("mqtt=4/4"), "MQTT dropped everything: {line}");
    }
    assert!(run.stdout.contains("TRAIN_FAULT scrape"), "{}", run.stdout);

    // The journaled windows carry the combined sample (4 HTTP + 4 MQTT
    // requests, 4 MQTT disruptions), and the halt precedes the rollback.
    let events = journal_events(&journal);
    assert!(
        events.iter().any(|e| e["event"] == "window_observed"
            && e["sample"]["requests"] == 8
            && e["sample"]["disruptions"] == 4),
        "combined window journaled:\n{events:?}"
    );
    assert!(
        event_index(&events, "halted").unwrap() < event_index(&events, "rollback_started").unwrap()
    );

    // Nothing promoted, so no fleet report was published.
    let sidecar = PathBuf::from(format!("{}.fleet", journal.display()));
    let reports = std::fs::read_to_string(&sidecar).unwrap_or_default();
    assert!(
        reports.trim().is_empty(),
        "halted train publishes no fleet report: {reports}"
    );

    // The rollback successor serves the VIP.
    assert!(get_ok(node.vip, "/rolled-back"));
}

#[test]
fn promoted_batches_publish_merged_fleet_reports() {
    // The fleet loop: each batch promotion merges every member node's
    // scraped /stats — cross-node latency quantiles, summed traffic, a
    // controller-side audit verdict — into a FLEET_REPORT, journaled to
    // the sidecar beside the train journal.
    let app = Daemon::spawn(&["app-server", "--listen", "127.0.0.1:0", "--name", "web-1"]);
    let good = write_cfg("fleet-good", &[app.addr]);
    let nodes: Vec<TrainNode> = (0..2)
        .map(|i| spawn_node(&format!("fleet-{i}"), app.addr, &good, &good))
        .collect();
    let journal = tmp_path("fleet", "journal");
    let mut fleet = Fleet::new();

    let mut args = train_flags(&nodes.iter().collect::<Vec<_>>(), &journal);
    args.extend(["--batch-size".into(), "2".into()]);
    let run = orchestrate(1, &args);
    fleet.absorb(&run);
    assert_eq!(
        run.code,
        Some(0),
        "stdout:\n{}\nstderr:\n{}",
        run.stdout,
        run.stderr
    );

    let reports: Vec<serde_json::Value> = run
        .stdout
        .lines()
        .filter_map(|l| l.strip_prefix("FLEET_REPORT "))
        .map(|l| serde_json::from_str(l).expect("FLEET_REPORT parses"))
        .collect();
    assert_eq!(reports.len(), 1, "one report per promoted batch");
    let report = &reports[0];
    assert_eq!(report["batch"], 0);
    assert_eq!(report["disrupted"], false);
    assert_eq!(report["disruptions"], 0);
    assert!(report["unix_ms"].as_u64().unwrap() > 0);
    let members = report["nodes"].as_array().expect("nodes array");
    assert_eq!(members.len(), 2, "both batch members reported");
    for (node, member) in nodes.iter().zip(members) {
        assert_eq!(member["vip"], node.vip.to_string());
        assert_eq!(member["scraped"], true, "live admin scrape succeeded");
        assert!(member["requests"].as_u64().unwrap() > 0);
        assert!(member["audit"].is_object(), "audit verdict attached");
    }
    // The merged histogram really merged: the cross-node count covers at
    // least both nodes' canary probes, and the quantiles are derived.
    let merged = report["latency_us"]["count"].as_u64().unwrap();
    assert!(merged >= 8, "cross-node latency merge, got {merged}");
    assert!(report["latency_p99_us"].as_u64().unwrap() >= report["latency_p50_us"].as_u64().unwrap());

    // The sidecar journal carries the same report.
    let sidecar = PathBuf::from(format!("{}.fleet", journal.display()));
    let journaled: Vec<serde_json::Value> = std::fs::read_to_string(&sidecar)
        .expect("fleet sidecar exists")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).expect("sidecar line parses"))
        .collect();
    assert_eq!(journaled, reports);
}

#[test]
fn controller_crash_at_batch_boundary_resumes_from_journal() {
    for seed in 1..=2u64 {
        let app = Daemon::spawn(&["app-server", "--listen", "127.0.0.1:0", "--name", "web-1"]);
        let good = write_cfg(&format!("crash-good-{seed}"), &[app.addr]);
        let nodes = [
            spawn_node(&format!("crash-{seed}-0"), app.addr, &good, &good),
            spawn_node(&format!("crash-{seed}-1"), app.addr, &good, &good),
        ];
        let journal = tmp_path(&format!("crash-{seed}"), "journal");
        let mut fleet = Fleet::new();
        let base = train_flags(&nodes.iter().collect::<Vec<_>>(), &journal);

        // Leg 1: the controller dies right after journaling batch 0's
        // promotion, before batch 1 starts.
        let mut crashing = base.clone();
        crashing.extend(["--fault".into(), "controller-crash@0".into()]);
        let run = orchestrate(seed, &crashing);
        fleet.absorb(&run);
        assert_eq!(
            run.code,
            Some(EXIT_CRASHED),
            "seed {seed} stdout:\n{}\nstderr:\n{}",
            run.stdout,
            run.stderr
        );
        assert!(run
            .stdout
            .contains("TRAIN_CRASH injected at batch boundary"));
        let events = journal_events(&journal);
        assert!(
            events
                .iter()
                .any(|e| e["event"] == "batch_promoted" && e["batch"] == 0),
            "seed {seed}: promotion must be journaled before the crash"
        );
        assert!(
            !events
                .iter()
                .any(|e| e["event"] == "batch_started" && e["batch"] == 1),
            "seed {seed}: batch 1 must not have started"
        );
        assert!(event_index(&events, "completed").is_none(), "seed {seed}");

        // Leg 2: a new controller resumes from the journal and finishes
        // the train; batch 0 is not re-released.
        let run = orchestrate(seed, &base);
        fleet.absorb(&run);
        assert_eq!(
            run.code,
            Some(0),
            "seed {seed} stdout:\n{}\nstderr:\n{}",
            run.stdout,
            run.stderr
        );
        assert!(run.stdout.contains("RESUMED"), "seed {seed}");
        let report = run.report();
        assert_eq!(report["phase"], "completed", "seed {seed}");
        assert_eq!(report["batches_promoted"], 2, "seed {seed}");
        assert_eq!(report["mixed_state"], false, "seed {seed}");
        let events = journal_events(&journal);
        assert_eq!(events.last().unwrap()["event"], "completed", "seed {seed}");
        assert_eq!(
            events
                .iter()
                .filter(|e| e["event"] == "batch_started" && e["batch"] == 0)
                .count(),
            1,
            "seed {seed}: batch 0 released exactly once across both legs"
        );
        for node in &nodes {
            assert!(get_ok(node.vip, "/post-resume"), "seed {seed}");
        }
    }
}

#[test]
fn dropped_promotion_verdicts_fail_safe() {
    // The controller loses every canary verdict for the one cluster; with
    // no missed-window budget the train must halt and roll back, never
    // promote on silence.
    for seed in 1..=2u64 {
        let app = Daemon::spawn(&["app-server", "--listen", "127.0.0.1:0", "--name", "web-1"]);
        let good = write_cfg(&format!("verdict-good-{seed}"), &[app.addr]);
        let node = spawn_node(&format!("verdict-{seed}"), app.addr, &good, &good);
        let journal = tmp_path(&format!("verdict-{seed}"), "journal");
        let mut fleet = Fleet::new();

        let mut args = train_flags(&[&node], &journal);
        args.extend([
            "--max-missed".into(),
            "0".into(),
            "--fault".into(),
            "drop-verdict@0".into(),
        ]);
        let run = orchestrate(seed, &args);
        fleet.absorb(&run);
        assert_eq!(
            run.code,
            Some(EXIT_HALTED),
            "seed {seed} stdout:\n{}\nstderr:\n{}",
            run.stdout,
            run.stderr
        );
        let report = run.report();
        assert_eq!(report["phase"], "halted", "seed {seed}");
        assert_eq!(report["halt_reason"]["kind"], "verdict_lost", "seed {seed}");
        assert_eq!(report["batches"], serde_json::json!(["rolled_back"]));
        assert_eq!(report["mixed_state"], false, "seed {seed}");
        let events = journal_events(&journal);
        assert!(
            event_index(&events, "window_missed").is_some(),
            "seed {seed}"
        );
        assert!(
            event_index(&events, "halted").unwrap()
                < event_index(&events, "rollback_started").unwrap(),
            "seed {seed}"
        );
        // The rollback successor serves the VIP.
        assert!(get_ok(node.vip, "/rolled-back"), "seed {seed}");
    }
}

#[test]
fn journal_staleness_truncation_and_replay_crash() {
    let app = Daemon::spawn(&["app-server", "--listen", "127.0.0.1:0", "--name", "web-1"]);
    let good = write_cfg("journal-good", &[app.addr]);
    let node = spawn_node("journal", app.addr, &good, &good);
    let journal = tmp_path("journal", "journal");
    let mut fleet = Fleet::new();
    let base = train_flags(&[&node], &journal);

    // A completed single-node train to resume against.
    let run = orchestrate(1, &base);
    fleet.absorb(&run);
    assert_eq!(
        run.code,
        Some(0),
        "stdout:\n{}\nstderr:\n{}",
        run.stdout,
        run.stderr
    );

    // Injected crash during journal replay: exits before any new record.
    let before = std::fs::read_to_string(&journal).unwrap();
    let mut crash = base.clone();
    crash.extend(["--fault".into(), "replay-crash@0".into()]);
    let run = orchestrate(2, &crash);
    assert_eq!(run.code, Some(EXIT_CRASHED));
    assert!(run
        .stdout
        .contains("TRAIN_CRASH injected at journal replay"));
    assert_eq!(
        std::fs::read_to_string(&journal).unwrap(),
        before,
        "a replay crash must not touch the journal"
    );

    // Injected tail loss: the terminal `completed` record is dropped; the
    // resumed controller re-derives it, repairs the file, spawns nothing.
    let mut truncate = base.clone();
    truncate.extend(["--fault".into(), "replay-truncate@0".into()]);
    let run = orchestrate(3, &truncate);
    assert_eq!(
        run.code,
        Some(0),
        "stdout:\n{}\nstderr:\n{}",
        run.stdout,
        run.stderr
    );
    assert!(run.spawned_pids().is_empty(), "nothing to re-release");
    let events = journal_events(&journal);
    assert_eq!(events.last().unwrap()["event"], "completed");

    // A journal from a *different* train (another gate shape) is stale:
    // refused with guidance, journal untouched.
    let mut stale = base.clone();
    stale.extend(["--windows".into(), "2".into()]);
    let run = orchestrate(4, &stale);
    assert_eq!(run.code, Some(EXIT_REFUSED), "stderr:\n{}", run.stderr);
    assert!(
        run.stderr.contains("stale journal") && run.stderr.contains("--fresh"),
        "stderr must name the staleness and the escape hatch:\n{}",
        run.stderr
    );

    // --fresh discards it and the differently-shaped train runs.
    let mut fresh = stale;
    fresh.push("--fresh".into());
    let run = orchestrate(5, &fresh);
    fleet.absorb(&run);
    assert_eq!(
        run.code,
        Some(0),
        "stdout:\n{}\nstderr:\n{}",
        run.stdout,
        run.stderr
    );
    assert_eq!(run.report()["phase"], "completed");
    assert!(get_ok(node.vip, "/post-fresh"));
}

#[test]
fn doctor_gates_the_train_and_force_overrides() {
    let app = Daemon::spawn(&["app-server", "--listen", "127.0.0.1:0", "--name", "web-1"]);

    // Plain doctor: a healthy upstream is ok, an unreachable one critical.
    let out = Command::new(ZDR_BIN)
        .args(["doctor", "--upstream", &app.addr.to_string()])
        .output()
        .expect("run doctor");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DOCTOR VERDICT ok"), "{stdout}");

    let unreachable = {
        // Bind-then-drop: an address known free a moment ago.
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let out = Command::new(ZDR_BIN)
        .args(["doctor", "--upstream", &unreachable.to_string()])
        .output()
        .expect("run doctor");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DOCTOR VERDICT critical"), "{stdout}");

    // Orchestrate refuses a train whose preflight is critical (takeover
    // socket directory missing) — and writes no journal doing so.
    let good = write_cfg("doctor-good", &[app.addr]);
    let journal = tmp_path("doctor-refused", "journal");
    let spec = format!(
        "{}=/nonexistent-zdr-dir/to.sock={}={}",
        unreachable,
        good.display(),
        good.display()
    );
    let run = orchestrate(
        1,
        &[
            "--node".into(),
            spec,
            "--journal".into(),
            journal.to_string_lossy().into_owned(),
        ],
    );
    assert_eq!(run.code, Some(EXIT_REFUSED), "stderr:\n{}", run.stderr);
    assert!(run.stderr.contains("preflight"), "{}", run.stderr);
    assert!(!journal.exists(), "a refused train must not journal");

    // --force overrides: critical only in the (never-released) rollback
    // config's dead upstream, so the forced train still completes cleanly.
    let dead_rollback = write_cfg("doctor-dead-rollback", &[app.addr, unreachable]);
    let node = spawn_node("doctor-force", app.addr, &good, &dead_rollback);
    let journal = tmp_path("doctor-forced", "journal");
    let mut fleet = Fleet::new();
    let mut args = train_flags(&[&node], &journal);
    args.push("--force".into());
    let run = orchestrate(1, &args);
    fleet.absorb(&run);
    assert_eq!(
        run.code,
        Some(0),
        "stdout:\n{}\nstderr:\n{}",
        run.stdout,
        run.stderr
    );
    assert!(
        run.stdout
            .contains("PREFLIGHT critical overridden by --force"),
        "{}",
        run.stdout
    );
    assert_eq!(run.report()["phase"], "completed");
}

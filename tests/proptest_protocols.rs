//! Property-based tests over the protocol codecs: every encoder/decoder
//! pair is an inverse under arbitrary inputs and arbitrary fragmentation.

use bytes::Bytes;
use proptest::prelude::*;

use zero_downtime_release::proto::http1::{
    serialize_request, serialize_response, ChunkEvent, ChunkedDecoder, ChunkedEncoder, Headers,
    Request, RequestParser, Response, ResponseParser, StatusCode,
};
use zero_downtime_release::proto::{dcr, h2, mqtt, ppr, quic};

// ── generators ─────────────────────────────────────────────────────────

fn header_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,20}".prop_filter("reserved framing headers", |n| {
        !matches!(
            n.as_str(),
            "content-length" | "transfer-encoding" | "connection"
        )
    })
}

fn header_value() -> impl Strategy<Value = String> {
    "[ -~&&[^\r\n]]{0,40}".prop_map(|s| s.trim().to_string())
}

fn headers() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec((header_name(), header_value()), 0..8)
}

fn body() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..4096)
}

fn target() -> impl Strategy<Value = String> {
    "/[a-zA-Z0-9/_.-]{0,40}"
}

// ── HTTP/1.1 ───────────────────────────────────────────────────────────

proptest! {
    #[test]
    fn http1_request_round_trip(
        tgt in target(),
        hdrs in headers(),
        body in body(),
        chunked in any::<bool>(),
    ) {
        let mut req = if chunked {
            Request::post_chunked(tgt, body.clone())
        } else {
            Request::post(tgt, body.clone())
        };
        for (n, v) in &hdrs {
            req.headers.append(n, v);
        }
        let wire = serialize_request(&req);
        let mut p = RequestParser::new();
        let back = p.push(&wire).unwrap().expect("complete");
        prop_assert_eq!(&back.body[..], &body[..]);
        prop_assert_eq!(back.target, req.target);
        for (n, v) in &hdrs {
            prop_assert!(back.headers.get_all(n).any(|got| got == v));
        }
    }

    #[test]
    fn http1_request_survives_arbitrary_fragmentation(
        body in proptest::collection::vec(any::<u8>(), 1..2048),
        cuts in proptest::collection::vec(1usize..64, 0..20),
    ) {
        let req = Request::post("/upload", body.clone());
        let wire = serialize_request(&req);
        let mut p = RequestParser::new();
        let mut pos = 0usize;
        let mut result = None;
        for cut in cuts {
            if pos >= wire.len() { break; }
            let end = (pos + cut).min(wire.len());
            if let Some(r) = p.push(&wire[pos..end]).unwrap() {
                result = Some(r);
            }
            pos = end;
        }
        if result.is_none() && pos < wire.len() {
            result = p.push(&wire[pos..]).unwrap();
        }
        let back = result.expect("complete after all bytes");
        prop_assert_eq!(&back.body[..], &body[..]);
    }

    #[test]
    fn http1_response_round_trip(
        code in (200u16..=599).prop_filter("204/304 are bodyless by RFC", |c| *c != 204 && *c != 304),
        hdrs in headers(),
        body in body(),
    ) {
        let mut resp = Response::new(StatusCode::from_code(code), body.clone());
        for (n, v) in &hdrs {
            resp.headers.append(n, v);
        }
        let wire = serialize_response(&resp);
        let mut p = ResponseParser::new();
        let back = p.push(&wire).unwrap().expect("complete");
        prop_assert_eq!(back.status.code, code);
        prop_assert_eq!(&back.body[..], &body[..]);
    }

    #[test]
    fn chunked_round_trip_any_chunking(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..512), 0..12),
    ) {
        let enc = ChunkedEncoder::new();
        let mut wire = Vec::new();
        let mut payload = Vec::new();
        for c in &chunks {
            wire.extend_from_slice(&enc.chunk(c));
            payload.extend_from_slice(c);
        }
        wire.extend_from_slice(&enc.finish());

        let mut dec = ChunkedDecoder::new();
        let (consumed, events) = dec.feed(&wire).unwrap();
        prop_assert_eq!(consumed, wire.len());
        let mut out = Vec::new();
        let mut done = false;
        for e in events {
            match e {
                ChunkEvent::Data(d) => out.extend_from_slice(&d),
                ChunkEvent::End => done = true,
            }
        }
        prop_assert!(done);
        prop_assert_eq!(out, payload);
    }

    #[test]
    fn chunked_resume_reconstructs_exact_bytes(
        total in proptest::collection::vec(any::<u8>(), 1..4096),
        split_at in 0usize..4096,
        chunk_size in 1u64..2048,
    ) {
        // A body interrupted `split_at` bytes in, mid-chunk of size
        // `chunk_size`: resume() must deliver exactly the remaining bytes.
        let split = split_at.min(total.len());
        let rest = &total[split..];
        let remaining_in_chunk = (chunk_size).min(rest.len() as u64);
        let state = if remaining_in_chunk == 0 {
            zero_downtime_release::proto::http1::ChunkedState::AtBoundary
        } else {
            zero_downtime_release::proto::http1::ChunkedState::InChunk {
                size: chunk_size,
                remaining: remaining_in_chunk,
            }
        };
        let enc = ChunkedEncoder::new();
        let wire = enc.resume(state, rest).unwrap();
        let mut dec = ChunkedDecoder::new();
        let (_, events) = dec.feed(&wire).unwrap();
        let mut out = Vec::new();
        for e in events {
            if let ChunkEvent::Data(d) = e {
                out.extend_from_slice(&d);
            }
        }
        prop_assert_eq!(&out[..], rest);
    }
}

// ── MQTT ───────────────────────────────────────────────────────────────

fn mqtt_packet() -> impl Strategy<Value = mqtt::Packet> {
    prop_oneof![
        ("[a-z0-9-]{1,32}", any::<u16>(), any::<bool>()).prop_map(
            |(client_id, keep_alive, clean_session)| mqtt::Packet::Connect {
                client_id,
                keep_alive,
                clean_session
            }
        ),
        (any::<bool>(),).prop_map(|(sp,)| mqtt::Packet::ConnAck {
            session_present: sp,
            code: mqtt::ConnectReturnCode::Accepted
        }),
        ("[a-z0-9/+-]{1,40}", body(), any::<bool>(), any::<bool>()).prop_map(
            |(topic, payload, retain, dup)| mqtt::Packet::Publish {
                topic,
                packet_id: None,
                payload: Bytes::from(payload),
                qos: mqtt::QoS::AtMostOnce,
                retain,
                dup
            }
        ),
        ("[a-z0-9/]{1,40}", 1u16.., body()).prop_map(|(topic, id, payload)| {
            mqtt::Packet::Publish {
                topic,
                packet_id: Some(id),
                payload: Bytes::from(payload),
                qos: mqtt::QoS::AtLeastOnce,
                retain: false,
                dup: false,
            }
        }),
        any::<u16>().prop_map(|id| mqtt::Packet::PubAck { packet_id: id }),
        (
            any::<u16>(),
            proptest::collection::vec("[a-z0-9/+#]{1,20}", 1..5)
        )
            .prop_map(|(id, filters)| mqtt::Packet::Subscribe {
                packet_id: id,
                filters: filters
                    .into_iter()
                    .map(|f| (f, mqtt::QoS::AtMostOnce))
                    .collect()
            }),
        Just(mqtt::Packet::PingReq),
        Just(mqtt::Packet::PingResp),
        Just(mqtt::Packet::Disconnect),
    ]
}

proptest! {
    #[test]
    fn mqtt_round_trip(pkt in mqtt_packet()) {
        let wire = mqtt::encode(&pkt).unwrap();
        let (back, consumed) = mqtt::decode(&wire).unwrap();
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(back, pkt);
    }

    #[test]
    fn mqtt_stream_decoder_any_fragmentation(
        pkts in proptest::collection::vec(mqtt_packet(), 1..6),
        frag in 1usize..64,
    ) {
        let mut wire = Vec::new();
        for p in &pkts {
            wire.extend_from_slice(&mqtt::encode(p).unwrap());
        }
        let mut dec = mqtt::StreamDecoder::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(frag) {
            dec.extend(chunk);
            while let Some(p) = dec.next_packet().unwrap() {
                got.push(p);
            }
        }
        prop_assert_eq!(got, pkts);
    }

    #[test]
    fn mqtt_decode_never_panics_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = mqtt::decode(&garbage); // must not panic
    }
}

// ── QUIC-like datagrams ────────────────────────────────────────────────

proptest! {
    #[test]
    fn quic_round_trip(
        generation in any::<u32>(),
        random in any::<u64>(),
        pn in 0u64..(1 << 62),
        payload in body(),
        initial in any::<bool>(),
    ) {
        let cid = quic::ConnectionId::new(generation, random);
        let d = if initial {
            quic::Datagram::initial(cid, payload.clone())
        } else {
            quic::Datagram::one_rtt(cid, pn, payload.clone())
        };
        let wire = quic::encode(&d).unwrap();
        prop_assert_eq!(quic::decode(&wire).unwrap(), d);
        prop_assert_eq!(quic::peek_cid(&wire).unwrap(), cid);
    }

    #[test]
    fn quic_decode_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = quic::decode(&garbage);
        let _ = quic::peek_cid(&garbage);
        let _ = quic::peek_is_initial(&garbage);
    }
}

// ── DCR + h2 + PPR ─────────────────────────────────────────────────────

proptest! {
    #[test]
    fn dcr_round_trip(user in any::<u64>(), origin in any::<u32>(), deadline in any::<u32>()) {
        for msg in [
            dcr::DcrMessage::ReconnectSolicitation { origin_id: origin, draining_deadline_ms: deadline },
            dcr::DcrMessage::ReConnect { user_id: dcr::UserId(user) },
            dcr::DcrMessage::ConnectAck { user_id: dcr::UserId(user) },
            dcr::DcrMessage::ConnectRefuse { user_id: dcr::UserId(user) },
        ] {
            let wire = dcr::encode(&msg);
            let (back, n) = dcr::decode(&wire).unwrap();
            prop_assert_eq!(n, wire.len());
            prop_assert_eq!(back, msg);
        }
    }

    #[test]
    fn user_id_client_id_inverse(user in any::<u64>()) {
        let id = dcr::UserId(user);
        prop_assert_eq!(dcr::UserId::from_client_id(&id.client_id()), Some(id));
    }

    #[test]
    fn h2_data_round_trip(
        stream_id in 1u32..(1 << 31),
        data in proptest::collection::vec(any::<u8>(), 0..16_000),
        end in any::<bool>(),
    ) {
        let f = h2::Frame::Data { stream_id, data: Bytes::from(data), end_stream: end };
        let wire = h2::encode(&f).unwrap();
        let (back, n) = h2::decode(&wire).unwrap();
        prop_assert_eq!(n, wire.len());
        prop_assert_eq!(back, f);
    }

    #[test]
    fn h2_headers_round_trip(
        stream_id in 1u32..(1 << 31),
        hdrs in proptest::collection::vec(("[a-z:][a-z0-9-]{0,15}", "[ -~]{0,30}"), 0..10),
    ) {
        let f = h2::Frame::Headers { stream_id, headers: hdrs, end_stream: true };
        let wire = h2::encode(&f).unwrap();
        let (back, _) = h2::decode(&wire).unwrap();
        prop_assert_eq!(back, f);
    }

    #[test]
    fn ppr_379_round_trip_preserves_everything(
        tgt in target(),
        hdrs in headers(),
        received in body(),
    ) {
        let mut h = Headers::new();
        for (n, v) in &hdrs {
            h.append(n, v);
        }
        let partial = ppr::PartialRequest {
            method: zero_downtime_release::proto::http1::Method::Post,
            target: tgt,
            version: zero_downtime_release::proto::http1::Version::Http11,
            headers: h,
            body_received: Bytes::from(received.clone()),
            chunked_state: None,
        };
        // Through a full HTTP serialization cycle, like production.
        let wire = serialize_response(&ppr::build_379(&partial));
        let mut p = ResponseParser::new();
        let resp = p.push(&wire).unwrap().expect("complete");
        let back = ppr::decode_379(&resp).unwrap();
        prop_assert_eq!(&back, &partial);
    }

    #[test]
    fn ppr_rebuild_concatenates(
        first in body(),
        rest in body(),
    ) {
        let partial = ppr::PartialRequest {
            method: zero_downtime_release::proto::http1::Method::Post,
            target: "/u".into(),
            version: zero_downtime_release::proto::http1::Version::Http11,
            headers: Headers::new(),
            body_received: Bytes::from(first.clone()),
            chunked_state: None,
        };
        let req = ppr::rebuild_request(&partial, &rest);
        let mut expected = first;
        expected.extend_from_slice(&rest);
        prop_assert_eq!(&req.body[..], &expected[..]);
        prop_assert_eq!(req.headers.content_length(), Some(expected.len() as u64));
    }
}

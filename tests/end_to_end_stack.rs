//! End-to-end integration: client → takeover-capable proxy → app tier,
//! restarted live under load, observed through the public crate API.

use std::net::SocketAddr;
use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

use zero_downtime_release::appserver::{self, AppServerConfig};
use zero_downtime_release::l4lb::health::{HealthChecker, HealthConfig, HealthState};
use zero_downtime_release::l4lb::BackendId;
use zero_downtime_release::proto::http1::{serialize_request, Request, Response, ResponseParser};
use zero_downtime_release::proxy::reverse::ReverseProxyConfig;
use zero_downtime_release::proxy::takeover::{ProxyInstance, ProxyInstanceConfig};

async fn send(addr: SocketAddr, req: &Request) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr).await?;
    stream.write_all(&serialize_request(req)).await?;
    let mut parser = ResponseParser::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = stream.read(&mut buf).await?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof",
            ));
        }
        if let Some(resp) = parser.push(&buf[..n]).map_err(std::io::Error::other)? {
            return Ok(resp);
        }
    }
}

fn takeover_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "zdr-it-{tag}-{}-{:x}.sock",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

async fn stack(
    tag: &str,
) -> (
    Vec<appserver::AppServerHandle>,
    ProxyInstanceConfig,
    ProxyInstance,
) {
    let mut apps = Vec::new();
    for name in ["app-A", "app-B", "app-C"] {
        apps.push(
            appserver::spawn(
                "127.0.0.1:0".parse().unwrap(),
                AppServerConfig {
                    server_name: name.into(),
                    ..Default::default()
                },
            )
            .await
            .unwrap(),
        );
    }
    let cfg = ProxyInstanceConfig {
        reverse: ReverseProxyConfig {
            upstreams: apps.iter().map(|a| a.addr).collect(),
            upstream_timeout: Duration::from_secs(10),
            ..Default::default()
        },
        takeover_path: takeover_path(tag),
        drain_ms: 1_000,
    };
    let proxy = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
        .await
        .unwrap();
    (apps, cfg, proxy)
}

#[tokio::test]
async fn requests_flow_through_entire_stack() {
    let (_apps, _cfg, proxy) = stack("flow").await;
    for i in 0..10 {
        let resp = send(proxy.addr, &Request::get(format!("/item/{i}")))
            .await
            .unwrap();
        assert_eq!(resp.status.code, 200);
        assert!(resp.headers.get("x-served-by").is_some());
    }
    // Round-robin spreads load over the app tier.
    let mut seen = std::collections::HashSet::new();
    for _ in 0..9 {
        let resp = send(proxy.addr, &Request::get("/spread")).await.unwrap();
        seen.insert(resp.headers.get("x-served-by").unwrap().to_string());
    }
    assert_eq!(seen.len(), 3, "all three app servers must serve");
}

#[tokio::test]
async fn post_upload_round_trips() {
    let (_apps, _cfg, proxy) = stack("post").await;
    let body = vec![0x42u8; 128 * 1024];
    let resp = send(proxy.addr, &Request::post("/upload", body))
        .await
        .unwrap();
    assert_eq!(resp.status.code, 200);
    assert_eq!(
        &resp.body[..],
        format!("received={}", 128 * 1024).as_bytes()
    );
}

#[tokio::test]
async fn l4_health_view_never_flaps_through_takeover() {
    // Katran's perspective: probe the proxy through the whole restart and
    // feed verdicts to the real health-checker state machine. The backend
    // must never transition down.
    let (_apps, cfg, proxy) = stack("health").await;
    let vip = proxy.addr;
    let mut checker = HealthChecker::new(
        HealthConfig {
            fall_threshold: 3,
            rise_threshold: 2,
        },
        [BackendId(0)],
    );

    let prober = tokio::spawn(async move {
        let mut transitions = Vec::new();
        for _ in 0..40 {
            let ok = matches!(
                send(vip, &Request::get("/proxygen/health")).await,
                Ok(resp) if resp.status.code == 200
            );
            if let Some(t) = checker.report(BackendId(0), ok) {
                transitions.push(t);
            }
            assert_eq!(checker.state(BackendId(0)), Some(HealthState::Up));
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        transitions
    });

    tokio::time::sleep(Duration::from_millis(50)).await;
    let old_task = tokio::spawn(proxy.serve_one_takeover());
    tokio::time::sleep(Duration::from_millis(50)).await;
    let _new = ProxyInstance::takeover_from(cfg).await.unwrap();
    old_task.await.unwrap().unwrap();

    let transitions = prober.await.unwrap();
    assert!(
        transitions.is_empty(),
        "no health transitions during ZDR: {transitions:?}"
    );
}

#[tokio::test]
async fn sustained_load_across_double_restart() {
    let (_apps, cfg, proxy) = stack("double").await;
    let vip = proxy.addr;

    let load = tokio::spawn(async move {
        let mut failures = 0u32;
        for i in 0..300 {
            match send(vip, &Request::get(format!("/r/{i}"))).await {
                Ok(resp) if resp.status.code == 200 => {}
                _ => failures += 1,
            }
            tokio::time::sleep(Duration::from_millis(3)).await;
        }
        failures
    });

    // Two back-to-back releases.
    let t0 = tokio::spawn(proxy.serve_one_takeover());
    tokio::time::sleep(Duration::from_millis(30)).await;
    let gen1 = ProxyInstance::takeover_from(cfg.clone()).await.unwrap();
    t0.await.unwrap().unwrap();

    tokio::time::sleep(Duration::from_millis(100)).await;
    let t1 = tokio::spawn(gen1.serve_one_takeover());
    tokio::time::sleep(Duration::from_millis(30)).await;
    let gen2 = ProxyInstance::takeover_from(cfg).await.unwrap();
    t1.await.unwrap().unwrap();

    assert_eq!(gen2.generation, 2);
    assert_eq!(load.await.unwrap(), 0, "two releases, zero failures");
}

#[tokio::test]
async fn app_server_failure_fails_over_without_user_impact() {
    let (apps, _cfg, proxy) = stack("failover").await;
    // Kill app-A outright (crash, not graceful).
    apps[0].initiate_restart();
    tokio::time::sleep(Duration::from_millis(50)).await;
    for i in 0..10 {
        let resp = send(proxy.addr, &Request::get(format!("/x/{i}")))
            .await
            .unwrap();
        assert_eq!(resp.status.code, 200, "request {i}");
        assert_ne!(resp.headers.get("x-served-by"), Some("app-A"));
    }
}

//! Model-checked property tests for the h2 stream multiplexer — the state
//! machine the trunk drain (GOAWAY) semantics rest on.

use std::collections::HashSet;

use proptest::prelude::*;

use zero_downtime_release::proto::h2::{ErrorCode, Frame, Multiplexer, StreamState};

/// Operations the fuzzer drives.
#[derive(Debug, Clone)]
enum Op {
    Open,
    AdmitPeer { jump: u32 },
    LocalEnd { pick: usize },
    PeerEnd { pick: usize },
    Reset { pick: usize },
    SendGoaway,
    ReceiveGoaway { at_pick: usize },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Open),
        3 => (1u32..4).prop_map(|jump| Op::AdmitPeer { jump }),
        2 => any::<usize>().prop_map(|pick| Op::LocalEnd { pick }),
        2 => any::<usize>().prop_map(|pick| Op::PeerEnd { pick }),
        1 => any::<usize>().prop_map(|pick| Op::Reset { pick }),
        1 => Just(Op::SendGoaway),
        1 => any::<usize>().prop_map(|at_pick| Op::ReceiveGoaway { at_pick }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mux_invariants_hold_under_random_ops(ops in proptest::collection::vec(op(), 1..60)) {
        let mut mux = Multiplexer::client();
        // Reference model: the set of live stream ids we believe exist.
        let mut live: Vec<u32> = Vec::new();
        let mut next_peer = 2u32;
        let mut goaway_sent = false;
        let mut goaway_received = false;

        for op in ops {
            match op {
                Op::Open => {
                    let result = mux.open_stream();
                    if goaway_sent || goaway_received {
                        prop_assert!(result.is_err(), "opens must fail while draining");
                    } else {
                        let id = result.unwrap();
                        prop_assert_eq!(id % 2, 1, "client streams are odd");
                        prop_assert!(!live.contains(&id));
                        live.push(id);
                    }
                }
                Op::AdmitPeer { jump } => {
                    let id = next_peer + (jump - 1) * 2;
                    match mux.admit_peer_stream(id) {
                        Ok(true) => {
                            live.push(id);
                            next_peer = id + 2;
                        }
                        Ok(false) => {
                            prop_assert!(goaway_sent, "refusal only while draining");
                            next_peer = next_peer.max(id + 2);
                        }
                        Err(_) => prop_assert!(false, "ascending ids must be admitted"),
                    }
                }
                Op::LocalEnd { pick } if !live.is_empty() => {
                    let id = live[pick % live.len()];
                    let before = mux.stream_state(id);
                    let _ = mux.local_end(id);
                    match before {
                        Some(StreamState::HalfClosedRemote) => {
                            prop_assert_eq!(mux.stream_state(id), None);
                            live.retain(|s| *s != id);
                        }
                        Some(StreamState::Open) => {
                            prop_assert_eq!(
                                mux.stream_state(id),
                                Some(StreamState::HalfClosedLocal)
                            );
                        }
                        _ => {}
                    }
                }
                Op::PeerEnd { pick } if !live.is_empty() => {
                    let id = live[pick % live.len()];
                    let before = mux.stream_state(id);
                    let _ = mux.peer_end(id);
                    match before {
                        Some(StreamState::HalfClosedLocal) => {
                            prop_assert_eq!(mux.stream_state(id), None);
                            live.retain(|s| *s != id);
                        }
                        Some(StreamState::Open) => {
                            prop_assert_eq!(
                                mux.stream_state(id),
                                Some(StreamState::HalfClosedRemote)
                            );
                        }
                        _ => {}
                    }
                }
                Op::Reset { pick } if !live.is_empty() => {
                    let id = live[pick % live.len()];
                    mux.reset_stream(id);
                    prop_assert_eq!(mux.stream_state(id), None);
                    live.retain(|s| *s != id);
                }
                Op::SendGoaway => {
                    let frame = mux.send_goaway(ErrorCode::NoError);
                    let is_goaway = matches!(frame, Frame::GoAway { .. });
                    prop_assert!(is_goaway);
                    goaway_sent = true;
                }
                Op::ReceiveGoaway { at_pick } => {
                    // The peer processed streams up to some id we pick from
                    // our live set (or 0).
                    let last = if live.is_empty() {
                        0
                    } else {
                        live[at_pick % live.len()]
                    };
                    mux.receive_goaway(last);
                    goaway_received = true;
                    // Locally-initiated (odd) streams above `last` are
                    // orphaned and dropped.
                    live.retain(|id| !(id % 2 == 1 && *id > last));
                }
                _ => {} // pick ops on an empty live set: no-ops
            }

            // Core invariants, every step:
            prop_assert_eq!(mux.active_streams(), live.len());
            let unique: HashSet<u32> = live.iter().copied().collect();
            prop_assert_eq!(unique.len(), live.len(), "no duplicate live streams");
            prop_assert_eq!(mux.is_draining(), goaway_sent || goaway_received);
            prop_assert_eq!(mux.drained(), mux.is_draining() && live.is_empty());
            for id in &live {
                prop_assert!(mux.stream_state(*id).is_some(), "live stream {id} tracked");
            }
        }
    }

    #[test]
    fn drained_is_reachable_from_any_state(opens in 0usize..10, admits in 0usize..10) {
        // From any population of streams, completing them all after a
        // GOAWAY always reaches the drained point — the trunk can always
        // close cleanly.
        let mut mux = Multiplexer::server();
        let mut ids = Vec::new();
        for i in 0..admits {
            let id = (2 * i + 1) as u32;
            if mux.admit_peer_stream(id).unwrap() {
                ids.push(id);
            }
        }
        for _ in 0..opens {
            ids.push(mux.open_stream().unwrap());
        }
        mux.send_goaway(ErrorCode::NoError);
        for id in &ids {
            mux.local_end(*id).unwrap();
            mux.peer_end(*id).unwrap();
        }
        prop_assert!(mux.drained());
    }
}

//! Downstream Connection Reuse integration: continuous publish delivery
//! across an Origin restart, through the public crate API.

use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

use zero_downtime_release::broker::server as broker;
use zero_downtime_release::proto::dcr::UserId;
use zero_downtime_release::proto::mqtt::{self, ConnectReturnCode, Packet, QoS, StreamDecoder};
use zero_downtime_release::proxy::mqtt_relay::{spawn_edge, spawn_origin};

struct Client {
    stream: TcpStream,
    decoder: StreamDecoder,
}

impl Client {
    async fn connect(edge: std::net::SocketAddr, user: UserId) -> Client {
        let mut stream = TcpStream::connect(edge).await.unwrap();
        let pkt = Packet::Connect {
            client_id: user.client_id(),
            keep_alive: 60,
            clean_session: true,
        };
        stream
            .write_all(&mqtt::encode(&pkt).unwrap())
            .await
            .unwrap();
        let mut c = Client {
            stream,
            decoder: StreamDecoder::new(),
        };
        match c.recv().await {
            Packet::ConnAck {
                code: ConnectReturnCode::Accepted,
                ..
            } => c,
            other => panic!("expected CONNACK, got {other:?}"),
        }
    }

    async fn send(&mut self, pkt: &Packet) {
        self.stream
            .write_all(&mqtt::encode(pkt).unwrap())
            .await
            .unwrap();
    }

    async fn recv(&mut self) -> Packet {
        let mut buf = [0u8; 8192];
        loop {
            if let Some(p) = self.decoder.next_packet().unwrap() {
                return p;
            }
            let n = tokio::time::timeout(Duration::from_secs(10), self.stream.read(&mut buf))
                .await
                .expect("recv timeout")
                .unwrap();
            assert!(n > 0, "connection closed unexpectedly");
            self.decoder.extend(&buf[..n]);
        }
    }
}

#[tokio::test]
async fn publish_stream_continues_across_origin_restart() {
    let broker = broker::spawn("127.0.0.1:0".parse().unwrap()).await.unwrap();
    let o1 = spawn_origin("127.0.0.1:0".parse().unwrap(), 1, vec![broker.addr], 5_000)
        .await
        .unwrap();
    let o2 = spawn_origin("127.0.0.1:0".parse().unwrap(), 2, vec![broker.addr], 5_000)
        .await
        .unwrap();
    let edge = spawn_edge("127.0.0.1:0".parse().unwrap(), vec![o1.addr, o2.addr])
        .await
        .unwrap();

    // Subscriber through origin 1.
    let mut sub = Client::connect(edge.addr, UserId(1)).await;
    sub.send(&Packet::Subscribe {
        packet_id: 1,
        filters: vec![("stream/1".into(), QoS::AtMostOnce)],
    })
    .await;
    sub.recv().await; // SUBACK

    // Publisher task feeds sequence-numbered messages directly at the
    // broker core (decoupled from the relay under test).
    let core = std::sync::Arc::clone(&broker.core);
    let publisher = tokio::spawn(async move {
        for seq in 0..50u32 {
            core.publish("stream/1", format!("msg-{seq}").as_bytes(), QoS::AtMostOnce);
            tokio::time::sleep(Duration::from_millis(20)).await;
        }
    });

    // Restart origin 1 mid-stream.
    tokio::time::sleep(Duration::from_millis(200)).await;
    o1.drain();

    // The subscriber must receive ALL 50 messages in order, despite the
    // restart. (DCR re-homes the tunnel; the broker buffers anything that
    // races the swap.)
    let mut next = 0u32;
    while next < 50 {
        match sub.recv().await {
            Packet::Publish { payload, .. } => {
                let text = String::from_utf8(payload.to_vec()).unwrap();
                assert_eq!(text, format!("msg-{next}"), "gap or reorder at {next}");
                next += 1;
            }
            Packet::PingResp => {}
            other => panic!("unexpected packet {other:?}"),
        }
    }
    publisher.await.unwrap();

    assert_eq!(edge.dcr_stats.rehomed_ok.get(), 1);
    assert_eq!(broker.core.stats().dcr_accepted, 1);
    assert_eq!(edge.stats.mqtt_dropped.get(), 0, "no client saw a drop");
}

#[tokio::test]
async fn many_tunnels_rehome_concurrently() {
    let broker = broker::spawn("127.0.0.1:0".parse().unwrap()).await.unwrap();
    let o1 = spawn_origin("127.0.0.1:0".parse().unwrap(), 1, vec![broker.addr], 5_000)
        .await
        .unwrap();
    let o2 = spawn_origin("127.0.0.1:0".parse().unwrap(), 2, vec![broker.addr], 5_000)
        .await
        .unwrap();
    let edge = spawn_edge("127.0.0.1:0".parse().unwrap(), vec![o1.addr, o2.addr])
        .await
        .unwrap();

    let mut clients = Vec::new();
    for u in 0..20u64 {
        let mut c = Client::connect(edge.addr, UserId(u)).await;
        c.send(&Packet::Subscribe {
            packet_id: 1,
            filters: vec![(format!("user/{u}"), QoS::AtMostOnce)],
        })
        .await;
        c.recv().await;
        clients.push(c);
    }

    o1.drain();
    tokio::time::sleep(Duration::from_millis(500)).await;
    assert_eq!(edge.dcr_stats.rehomed_ok.get(), 20, "every tunnel re-homed");
    assert_eq!(broker.core.stats().dcr_accepted, 20);

    // Every client still receives its topic.
    for (u, c) in clients.iter_mut().enumerate() {
        broker
            .core
            .publish(&format!("user/{u}"), b"still-here", QoS::AtMostOnce);
        match c.recv().await {
            Packet::Publish { payload, .. } => assert_eq!(&payload[..], b"still-here"),
            other => panic!("user {u}: {other:?}"),
        }
    }
}

#[tokio::test]
async fn ping_liveness_survives_rehome() {
    let broker = broker::spawn("127.0.0.1:0".parse().unwrap()).await.unwrap();
    let o1 = spawn_origin("127.0.0.1:0".parse().unwrap(), 1, vec![broker.addr], 5_000)
        .await
        .unwrap();
    let o2 = spawn_origin("127.0.0.1:0".parse().unwrap(), 2, vec![broker.addr], 5_000)
        .await
        .unwrap();
    let edge = spawn_edge("127.0.0.1:0".parse().unwrap(), vec![o1.addr, o2.addr])
        .await
        .unwrap();

    let mut c = Client::connect(edge.addr, UserId(5)).await;
    c.send(&Packet::PingReq).await;
    assert_eq!(c.recv().await, Packet::PingResp);

    o1.drain();
    tokio::time::sleep(Duration::from_millis(300)).await;

    // The MQTT keep-alive ping still round-trips on the same client
    // connection — "the underlying transport session [is] always
    // available" (§4.2).
    c.send(&Packet::PingReq).await;
    assert_eq!(c.recv().await, Packet::PingResp);
}

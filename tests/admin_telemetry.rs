//! Release telemetry end to end: the admin endpoint is scraped *mid-drain*
//! during a real Socket Takeover (the §2.5 evidence must be observable
//! while the release is in flight), and the disruption auditor judges a
//! clean takeover vs an injected 5xx burst.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

use zero_downtime_release::appserver::{self, AppServerConfig};
use zero_downtime_release::core::sync::{AtomicBool, AtomicU64, Ordering};
use zero_downtime_release::core::telemetry::{AuditorConfig, DisruptionAuditor, ReleasePhase};
use zero_downtime_release::net::fault::{FaultAction, FaultInjector, FaultPoint};
use zero_downtime_release::proto::http1::{serialize_request, Request, Response, ResponseParser};
use zero_downtime_release::proxy::admin::spawn_admin;
use zero_downtime_release::proxy::reverse::ReverseProxyConfig;
use zero_downtime_release::proxy::stats::StatsSnapshot;
use zero_downtime_release::proxy::takeover::{ProxyInstance, ProxyInstanceConfig};

fn takeover_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "zdr-admintel-{tag}-{}-{:x}.sock",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

async fn send(addr: SocketAddr, req: &Request) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr).await?;
    stream.write_all(&serialize_request(req)).await?;
    read_response(&mut stream, &mut ResponseParser::new()).await
}

async fn read_response(
    stream: &mut TcpStream,
    parser: &mut ResponseParser,
) -> std::io::Result<Response> {
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = stream.read(&mut buf).await?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof",
            ));
        }
        if let Some(resp) = parser.push(&buf[..n]).map_err(std::io::Error::other)? {
            parser.reset();
            return Ok(resp);
        }
    }
}

/// Drives `total` keep-alive requests at `addr` over four connections,
/// reopening a connection whenever the proxy closes it (drain). Returns
/// (responses with 200, responses with any other status); attempts that
/// die before a response count in neither.
async fn drive(addr: SocketAddr, total: u64) -> (u64, u64) {
    let quota = Arc::new(AtomicU64::new(total));
    let mut tasks = Vec::new();
    for _ in 0..4 {
        let quota = Arc::clone(&quota);
        tasks.push(tokio::spawn(async move {
            let mut ok = 0u64;
            let mut other = 0u64;
            let mut conn: Option<TcpStream> = None;
            let mut parser = ResponseParser::new();
            while quota
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |q| q.checked_sub(1))
                .is_ok()
            {
                if conn.is_none() {
                    match TcpStream::connect(addr).await {
                        Ok(s) => {
                            parser.reset();
                            conn = Some(s);
                        }
                        Err(_) => continue,
                    }
                }
                let stream = conn.as_mut().expect("connection just established");
                let req = Request::get("/load");
                if stream.write_all(&serialize_request(&req)).await.is_err() {
                    conn = None;
                    continue;
                }
                match read_response(stream, &mut parser).await {
                    Ok(resp) if resp.status.code == 200 => ok += 1,
                    Ok(_) => other += 1,
                    Err(_) => conn = None,
                }
            }
            (ok, other)
        }));
    }
    let mut ok = 0u64;
    let mut other = 0u64;
    for t in tasks {
        let (o, x) = t.await.expect("load worker panicked");
        ok += o;
        other += x;
    }
    (ok, other)
}

async fn spawn_apps(n: usize) -> Vec<appserver::AppServerHandle> {
    let mut apps = Vec::new();
    for i in 0..n {
        apps.push(
            appserver::spawn(
                "127.0.0.1:0".parse().unwrap(),
                AppServerConfig {
                    server_name: format!("web-{i}"),
                    ..Default::default()
                },
            )
            .await
            .unwrap(),
        );
    }
    apps
}

#[tokio::test]
async fn admin_scrape_mid_drain_sees_timeline_and_latency_histogram() {
    let apps = spawn_apps(2).await;
    let cfg = ProxyInstanceConfig {
        reverse: ReverseProxyConfig {
            upstreams: apps.iter().map(|a| a.addr).collect(),
            upstream_timeout: Duration::from_secs(10),
            ..Default::default()
        },
        takeover_path: takeover_path("scrape"),
        drain_ms: 3_000,
    };
    let old = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
        .await
        .unwrap();
    let addr = old.addr;

    // The admin endpoint over the old generation's live sources — exactly
    // what `zdr --admin-port` wires up.
    let stats = Arc::clone(&old.reverse.stats);
    let tracker = Arc::clone(old.reverse.tracker());
    let drain = Arc::clone(old.reverse.state());
    let scrape_stats = Arc::clone(&stats);
    let admin = spawn_admin(
        0,
        move || scrape_stats.snapshot().merged(&tracker.snapshot()),
        move || !drain.is_draining(),
    )
    .await
    .unwrap();
    assert_eq!(get(admin.addr, "/healthz").await.status.code, 200);

    // ≥10k request-latency samples through generation 0.
    let (ok, other) = drive(addr, 11_000).await;
    assert_eq!(ok, 11_000, "pre-release load must be clean ({other} non-200)");

    // Hold one keep-alive connection open so the drain stays in progress
    // while we scrape.
    let mut held = TcpStream::connect(addr).await.unwrap();
    held.write_all(&serialize_request(&Request::get("/held")))
        .await
        .unwrap();
    read_response(&mut held, &mut ResponseParser::new())
        .await
        .unwrap();

    // The release: generation 1 takes the sockets over.
    let old_task = tokio::spawn(old.serve_one_takeover());
    tokio::time::sleep(Duration::from_millis(50)).await;
    let new = ProxyInstance::takeover_from(cfg).await.unwrap();
    let drained = old_task.await.unwrap().unwrap();
    assert_eq!(new.generation, 1);
    // Let the last server-side latency record land before comparing counts.
    tokio::time::sleep(Duration::from_millis(100)).await;

    // Mid-drain: the old generation is draining, its admin endpoint is
    // still answering, and the new generation is serving the VIP.
    assert!(drained.reverse.state().is_draining());
    assert_eq!(get(admin.addr, "/healthz").await.status.code, 503);
    assert_eq!(send(addr, &Request::get("/after")).await.unwrap().status.code, 200);

    let resp = get(admin.addr, "/stats").await;
    assert_eq!(resp.status.code, 200);
    let snap: StatsSnapshot = serde_json::from_slice(&resp.body).unwrap();

    // Full old-side phase sequence, with monotonic timestamps.
    assert!(
        snap.telemetry.timeline.contains_sequence(&[
            ReleasePhase::Bind,
            ReleasePhase::FdPass,
            ReleasePhase::Confirm,
            ReleasePhase::HealthFlip,
            ReleasePhase::DrainStart,
        ]),
        "timeline: {:?}",
        snap.telemetry.timeline.events
    );
    let events = &snap.telemetry.timeline.events;
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "{pair:?}");
        assert!(pair[0].t_ms <= pair[1].t_ms, "{pair:?}");
    }

    // Histogram counts match the live counters: one latency sample per
    // answered request (11k load + the held request), p99 present.
    let h = &snap.telemetry.request_latency_us;
    assert_eq!(h.count, snap.requests_ok + snap.responses_5xx, "{snap:?}");
    assert!(h.count >= 10_000, "need ≥10k samples, got {}", h.count);
    assert!(h.percentile(99.0).is_some());
    assert_eq!(snap.telemetry.takeover_pause_us.count, 1);

    // The Prometheus view renders the same series.
    let resp = get(admin.addr, "/metrics").await;
    assert_eq!(resp.status.code, 200);
    let text = String::from_utf8(resp.body.to_vec()).unwrap();
    assert!(
        text.contains(&format!("zdr_request_latency_us_count {}", h.count)),
        "{text}"
    );
    assert!(
        text.contains("zdr_request_latency_us{quantile=\"0.99\"}"),
        "{text}"
    );
    assert!(
        text.contains(&format!("zdr_requests_ok {}", snap.requests_ok)),
        "{text}"
    );
    drop(held);
}

async fn get(addr: SocketAddr, target: &str) -> Response {
    send(addr, &Request::get(target)).await.unwrap()
}

/// A toggleable injector: while on, every upstream connect dies — the
/// §2.5 "irregular increase" burst, injected at `net::fault`'s
/// [`FaultPoint::UpstreamConnect`] hook.
#[derive(Default)]
struct BurstFaults {
    on: AtomicBool,
    injected: AtomicU64,
}

impl FaultInjector for BurstFaults {
    fn decide(&self, point: FaultPoint) -> FaultAction {
        if point == FaultPoint::UpstreamConnect && self.on.load(Ordering::Acquire) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            FaultAction::Die
        } else {
            FaultAction::Proceed
        }
    }

    fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

#[tokio::test]
async fn auditor_clears_a_clean_takeover_and_flags_a_5xx_burst() {
    let apps = spawn_apps(2).await;
    let faults = Arc::new(BurstFaults::default());
    let cfg = ProxyInstanceConfig {
        reverse: ReverseProxyConfig {
            upstreams: apps.iter().map(|a| a.addr).collect(),
            upstream_timeout: Duration::from_secs(2),
            faults: Arc::clone(&faults) as Arc<dyn FaultInjector>,
            ..Default::default()
        },
        takeover_path: takeover_path("audit"),
        drain_ms: 500,
    };
    let old = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
        .await
        .unwrap();
    let addr = old.addr;
    let old_stats = Arc::clone(&old.reverse.stats);

    // Wider slack than production: a real drain can shed a handful of
    // connections organically, and that must not fail the *clean* half.
    let auditor = DisruptionAuditor::new(AuditorConfig {
        absolute_slack: 0.05,
        ..AuditorConfig::default()
    });

    // Baseline: three clean sampler windows through generation 0.
    let totals = |new_stats: Option<&zero_downtime_release::proxy::stats::ProxyStats>| {
        let mut snap = old_stats.snapshot();
        if let Some(s) = new_stats {
            snap = snap.merged(&s.snapshot());
        }
        snap.audit_totals()
    };
    auditor.observe(totals(None));
    for _ in 0..3 {
        let (ok, other) = drive(addr, 200).await;
        assert_eq!((ok, other), (200, 0));
        auditor.observe(totals(None));
    }

    // Clean release: a real takeover inside the audit window.
    auditor.begin_release();
    assert!(auditor.in_release());
    let old_task = tokio::spawn(old.serve_one_takeover());
    tokio::time::sleep(Duration::from_millis(50)).await;
    let new = ProxyInstance::takeover_from(cfg).await.unwrap();
    old_task.await.unwrap().unwrap();
    let (ok, _) = drive(addr, 400).await;
    assert!(ok >= 300, "most release-window requests must succeed: {ok}");
    auditor.observe(totals(Some(&new.reverse.stats)));
    let verdict = auditor.end_release();
    assert!(!verdict.insufficient_traffic, "{verdict:?}");
    assert!(
        !verdict.disrupted,
        "clean takeover must yield a no-disruption verdict: {verdict:?}"
    );

    // Burst release: every upstream connect dies mid-window; the auditor
    // must flag the 5xx signal.
    auditor.begin_release();
    faults.on.store(true, Ordering::Release);
    let (ok, other) = drive(addr, 300).await;
    faults.on.store(false, Ordering::Release);
    assert!(other > 0, "burst must surface as non-200 responses ({ok} ok)");
    auditor.observe(totals(Some(&new.reverse.stats)));
    let verdict = auditor.end_release();
    assert!(!verdict.insufficient_traffic, "{verdict:?}");
    assert!(verdict.disrupted, "burst must be flagged: {verdict:?}");
    assert!(
        verdict
            .signals
            .iter()
            .any(|s| s.flagged && (s.signal == "http_5xx" || s.signal == "proxy_errors")),
        "{verdict:?}"
    );
    assert!(verdict.window_sample().disruptions > 0);
    assert!(faults.injected() > 0);
}

//! Cross-process UDP Socket Takeover: two real `zdr quic` processes hand
//! an SO_REUSEPORT socket group over SCM_RIGHTS while live QUIC-like flows
//! keep being served — the §4.1 UDP mechanism, deployed shape.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use tokio::net::UdpSocket;

use zero_downtime_release::proto::quic::{self, ConnectionId, Datagram};

const ZDR_BIN: &str = env!("CARGO_BIN_EXE_zdr");

struct Daemon {
    child: Child,
    addr: SocketAddr,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = Command::new(ZDR_BIN)
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn zdr");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read READY line");
        let addr = line
            .trim()
            .strip_prefix("READY ")
            .unwrap_or_else(|| panic!("expected READY, got {line:?}"))
            .parse()
            .expect("parse addr");
        Daemon {
            child,
            addr,
            stdout,
        }
    }

    fn wait_drained(mut self) -> bool {
        let mut line = String::new();
        loop {
            line.clear();
            match self.stdout.read_line(&mut line) {
                Ok(0) => return false,
                Ok(_) if line.contains("DRAINED") => {
                    let _ = self.child.wait();
                    return true;
                }
                Ok(_) => continue,
                Err(_) => return false,
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn sock_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "zdr-mpudp-{tag}-{}-{:x}.sock",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ))
        .to_string_lossy()
        .into_owned()
}

struct FlowClient {
    socket: UdpSocket,
    cid: ConnectionId,
    next_pn: u64,
}

impl FlowClient {
    async fn open(vip: SocketAddr, random: u64) -> FlowClient {
        let socket = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let hello = Datagram::initial(ConnectionId::new(0, random), &b"hello"[..]);
        socket
            .send_to(&quic::encode(&hello).unwrap(), vip)
            .await
            .unwrap();
        let mut buf = [0u8; 2048];
        let (n, _) = tokio::time::timeout(Duration::from_secs(10), socket.recv_from(&mut buf))
            .await
            .expect("open timeout")
            .unwrap();
        let reply = quic::decode(&buf[..n]).unwrap();
        FlowClient {
            socket,
            cid: reply.cid,
            next_pn: 1,
        }
    }

    async fn echo(&mut self, vip: SocketAddr, payload: &[u8]) -> Option<Vec<u8>> {
        let d = Datagram::one_rtt(self.cid, self.next_pn, payload.to_vec());
        self.next_pn += 1;
        self.socket
            .send_to(&quic::encode(&d).unwrap(), vip)
            .await
            .unwrap();
        let mut buf = [0u8; 2048];
        let (n, _) = tokio::time::timeout(Duration::from_secs(10), self.socket.recv_from(&mut buf))
            .await
            .ok()?
            .ok()?;
        Some(quic::decode(&buf[..n]).unwrap().payload.to_vec())
    }
}

#[tokio::test]
async fn udp_flows_survive_cross_process_takeover() {
    let path = sock_path("flows");
    let old = Daemon::spawn(&[
        "quic",
        "--listen",
        "127.0.0.1:0",
        "--takeover-path",
        &path,
        "--drain-ms",
        "3000",
    ]);
    let vip = old.addr;

    // Generation-0 flows against the old process.
    let mut flow_a = FlowClient::open(vip, 11).await;
    assert_eq!(flow_a.cid.generation, 0);
    assert_eq!(flow_a.echo(vip, b"pre").await.unwrap(), b"echo:pre");

    // Release: the NEW OS process takes the SO_REUSEPORT group over.
    let new = Daemon::spawn(&[
        "quic",
        "--takeover",
        "--takeover-path",
        &path,
        "--drain-ms",
        "3000",
    ]);
    assert_eq!(new.addr, vip, "successor owns the same UDP VIP");

    // The old flow keeps working across processes: the new process's
    // user-space router forwards its packets to the draining process.
    for i in 0..5 {
        let msg = format!("mid-{i}");
        assert_eq!(
            flow_a
                .echo(vip, msg.as_bytes())
                .await
                .expect("old flow must survive"),
            format!("echo:{msg}").into_bytes()
        );
    }

    // New flows are served by the new process at generation 1. In the
    // handover instant both processes may briefly accept Initials (packets
    // already queued on the shared ring) — that's the paper's overlap
    // window, and such flows still get service via user-space routing. We
    // only require that the window closes: fresh flows soon mint gen-1.
    let mut flow_b = FlowClient::open(vip, 12).await;
    for attempt in 0..20u64 {
        if flow_b.cid.generation == 1 {
            break;
        }
        // Raced flow: still served (by the draining process) — verify,
        // then try a fresh one.
        assert!(
            flow_b.echo(vip, b"raced").await.is_some(),
            "raced flow must still work"
        );
        tokio::time::sleep(Duration::from_millis(50)).await;
        flow_b = FlowClient::open(vip, 100 + attempt).await;
    }
    assert_eq!(flow_b.cid.generation, 1, "overlap window must close");
    assert_eq!(flow_b.echo(vip, b"new").await.unwrap(), b"echo:new");

    // The old process drains out and exits cleanly.
    assert!(
        old.wait_drained(),
        "old process must report DRAINED and exit"
    );

    // The new process still serves after its predecessor is gone.
    assert_eq!(flow_b.echo(vip, b"after").await.unwrap(), b"echo:after");
}

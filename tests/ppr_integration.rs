//! Partial Post Replay integration: the full §4.3 workflow across real
//! sockets — restarting app server, 379 with partial body, proxy replay,
//! retry chains, and the failure modes.

use std::net::SocketAddr;
use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

use zero_downtime_release::appserver::{self, AppServerConfig, AppServerHandle, RestartBehavior};
use zero_downtime_release::proto::http1::{serialize_request, Request, Response, ResponseParser};
use zero_downtime_release::proxy::reverse::{
    spawn_reverse_proxy, ReverseProxyConfig, ReverseProxyHandle,
};

async fn slow_app(name: &str, delay_ms: u64) -> AppServerHandle {
    appserver::spawn(
        "127.0.0.1:0".parse().unwrap(),
        AppServerConfig {
            server_name: name.into(),
            restart_behavior: RestartBehavior::PartialPostReplay,
            read_delay_ms: delay_ms,
            ..Default::default()
        },
    )
    .await
    .unwrap()
}

async fn proxy(upstreams: Vec<SocketAddr>, ppr_enabled: bool) -> ReverseProxyHandle {
    spawn_reverse_proxy(
        "127.0.0.1:0".parse().unwrap(),
        ReverseProxyConfig {
            upstreams,
            ppr_enabled,
            upstream_timeout: Duration::from_secs(60),
            ..Default::default()
        },
    )
    .await
    .unwrap()
}

async fn send(addr: SocketAddr, req: &Request) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr).await?;
    stream.write_all(&serialize_request(req)).await?;
    let mut parser = ResponseParser::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = stream.read(&mut buf).await?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof",
            ));
        }
        if let Some(resp) = parser.push(&buf[..n]).map_err(std::io::Error::other)? {
            return Ok(resp);
        }
    }
}

fn big_upload() -> Request {
    Request::post("/upload/video", vec![0xa5u8; 1024 * 1024])
}

#[tokio::test]
async fn upload_survives_app_restart_via_replay() {
    let a = slow_app("app-A", 50).await;
    let b = slow_app("app-B", 0).await;
    let p = proxy(vec![a.addr, b.addr], true).await;

    let client = tokio::spawn({
        let addr = p.addr;
        async move { send(addr, &big_upload()).await.unwrap() }
    });
    tokio::time::sleep(Duration::from_millis(300)).await;
    a.initiate_restart();

    let resp = client.await.unwrap();
    assert_eq!(resp.status.code, 200);
    assert_eq!(resp.headers.get("x-served-by"), Some("app-B"));
    assert_eq!(
        &resp.body[..],
        format!("received={}", 1024 * 1024).as_bytes()
    );

    assert_eq!(p.stats.ppr_handoffs.get(), 1);
    assert_eq!(p.stats.ppr_replayed_ok.get(), 1);
    assert_eq!(p.stats.responses_5xx.get(), 0);
    assert_eq!(a.stats.snapshot().1, 1, "app-A must have sent one 379");
}

#[tokio::test]
async fn without_ppr_the_user_sees_500() {
    // Ablation: same scenario, PPR client side disabled.
    let a = slow_app("app-A", 50).await;
    let b = slow_app("app-B", 0).await;
    let p = proxy(vec![a.addr, b.addr], false).await;

    let client = tokio::spawn({
        let addr = p.addr;
        async move { send(addr, &big_upload()).await.unwrap() }
    });
    tokio::time::sleep(Duration::from_millis(300)).await;
    a.initiate_restart();

    let resp = client.await.unwrap();
    assert_eq!(
        resp.status.code, 500,
        "no PPR → the disruption reaches the user"
    );
    assert_eq!(p.stats.responses_5xx.get(), 1);
}

#[tokio::test]
async fn replay_chains_through_consecutively_restarting_servers() {
    // §4.4: "it is possible that the next HHVM server is also restarting
    // ... the downstream Proxygen retries the request with a different
    // HHVM server."
    let a = slow_app("app-A", 50).await;
    let b = slow_app("app-B", 50).await;
    let c = slow_app("app-C", 0).await;
    let p = proxy(vec![a.addr, b.addr, c.addr], true).await;

    let client = tokio::spawn({
        let addr = p.addr;
        async move { send(addr, &big_upload()).await.unwrap() }
    });
    tokio::time::sleep(Duration::from_millis(300)).await;
    a.initiate_restart();
    // When the replay lands on B, restart B too.
    tokio::time::sleep(Duration::from_millis(300)).await;
    b.initiate_restart();

    let resp = client.await.unwrap();
    assert_eq!(resp.status.code, 200);
    assert_eq!(resp.headers.get("x-served-by"), Some("app-C"));
    assert!(p.stats.ppr_handoffs.get() >= 1);
}

#[tokio::test]
async fn replayed_body_is_byte_identical() {
    // The replica must receive exactly the original bytes: length is
    // checked by the server echoing received=<n>, and a content hash via
    // a distinctive pattern that would break on corruption.
    let a = slow_app("app-A", 40).await;
    let b = slow_app("app-B", 0).await;
    let p = proxy(vec![a.addr, b.addr], true).await;

    let mut body = Vec::with_capacity(512 * 1024);
    for i in 0..512 * 1024 {
        body.push((i % 251) as u8);
    }
    let req = Request::post("/upload", body.clone());

    let client = tokio::spawn({
        let addr = p.addr;
        async move { send(addr, &req).await.unwrap() }
    });
    tokio::time::sleep(Duration::from_millis(250)).await;
    a.initiate_restart();

    let resp = client.await.unwrap();
    assert_eq!(resp.status.code, 200);
    assert_eq!(
        &resp.body[..],
        format!("received={}", body.len()).as_bytes()
    );
}

#[tokio::test]
async fn short_get_unaffected_by_upstream_restart_mechanics() {
    let a = slow_app("app-A", 0).await;
    let p = proxy(vec![a.addr], true).await;
    let resp = send(p.addr, &Request::get("/health")).await.unwrap();
    assert_eq!(resp.status.code, 200);
    assert_eq!(p.stats.ppr_handoffs.get(), 0);
}

//! Property-based tests over the infrastructure: consistent hashing, the
//! LRU connection table (model-checked against a reference), release
//! scheduling, and simulator determinism.

use std::collections::HashMap;

use proptest::prelude::*;

use zero_downtime_release::core::drain::{connection_outcome, ConnectionKind, ConnectionOutcome};
use zero_downtime_release::core::mechanism::RestartStrategy;
use zero_downtime_release::core::scheduler::{run_to_completion, ClusterRollout, RolloutPlan};
use zero_downtime_release::core::tier::Tier;
use zero_downtime_release::l4lb::conntrack::LruTable;
use zero_downtime_release::l4lb::maglev::MaglevTable;
use zero_downtime_release::l4lb::BackendId;
use zero_downtime_release::net::reuseport::{simulate_handover, HandoverStrategy};
use zero_downtime_release::sim::cluster::{ClusterConfig, ClusterSim};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ── Maglev ────────────────────────────────────────────────────────

    #[test]
    fn maglev_covers_all_backends(n in 1u32..40) {
        let backends: Vec<BackendId> = (0..n).map(BackendId).collect();
        let t = MaglevTable::with_size(&backends, 1009).unwrap();
        let counts = t.slot_counts();
        prop_assert_eq!(counts.len(), n as usize);
        for (b, c) in counts {
            prop_assert!(c > 0, "backend {b} starved");
        }
    }

    #[test]
    fn maglev_removal_moves_only_affected_flows(
        n in 3u32..20,
        removed_idx in 0u32..20,
        flows in proptest::collection::vec(any::<u64>(), 50..200),
    ) {
        let removed_idx = removed_idx % n;
        let backends: Vec<BackendId> = (0..n).map(BackendId).collect();
        let full = MaglevTable::with_size(&backends, 1009).unwrap();
        let mut reduced_set = backends.clone();
        reduced_set.remove(removed_idx as usize);
        let reduced = MaglevTable::with_size(&reduced_set, 1009).unwrap();

        let mut moved_unaffected = 0usize;
        let mut unaffected = 0usize;
        for h in flows {
            let before = full.lookup(h);
            if before != BackendId(removed_idx) {
                unaffected += 1;
                if reduced.lookup(h) != before {
                    moved_unaffected += 1;
                }
            } else {
                // Flows of the removed backend must land somewhere valid.
                prop_assert!(reduced_set.contains(&reduced.lookup(h)));
            }
        }
        // Maglev's residual disruption is small: <20% of unaffected flows.
        if unaffected > 20 {
            prop_assert!(
                (moved_unaffected as f64) < 0.2 * unaffected as f64,
                "{moved_unaffected}/{unaffected} unaffected flows moved"
            );
        }
    }

    // ── LRU conntrack vs reference model ──────────────────────────────

    #[test]
    fn lru_matches_reference_model(
        capacity in 1usize..32,
        ops in proptest::collection::vec((0u8..3, 0u32..64, any::<u32>()), 1..200),
    ) {
        let mut lru: LruTable<u32, u32> = LruTable::new(capacity);
        // Reference: map + recency list.
        let mut model: Vec<(u32, u32)> = Vec::new(); // front = MRU

        for (op, key, value) in ops {
            match op {
                0 => {
                    // insert
                    let evicted = lru.insert(key, value);
                    if let Some(pos) = model.iter().position(|(k, _)| *k == key) {
                        model.remove(pos);
                        model.insert(0, (key, value));
                        prop_assert!(evicted.is_none());
                    } else {
                        if model.len() == capacity {
                            let lru_entry = model.pop().unwrap();
                            prop_assert_eq!(evicted, Some(lru_entry));
                        } else {
                            prop_assert!(evicted.is_none());
                        }
                        model.insert(0, (key, value));
                    }
                }
                1 => {
                    // get
                    let got = lru.get(&key).copied();
                    if let Some(pos) = model.iter().position(|(k, _)| *k == key) {
                        let entry = model.remove(pos);
                        prop_assert_eq!(got, Some(entry.1));
                        model.insert(0, entry);
                    } else {
                        prop_assert_eq!(got, None);
                    }
                }
                _ => {
                    // remove
                    let got = lru.remove_cloned(&key);
                    if let Some(pos) = model.iter().position(|(k, _)| *k == key) {
                        let entry = model.remove(pos);
                        prop_assert_eq!(got, Some(entry.1));
                    } else {
                        prop_assert_eq!(got, None);
                    }
                }
            }
            prop_assert_eq!(lru.len(), model.len());
        }
        // Final contents agree.
        for (k, v) in &model {
            prop_assert_eq!(lru.peek(k), Some(v));
        }
    }

    // ── SO_REUSEPORT model ────────────────────────────────────────────

    #[test]
    fn fd_passing_never_misroutes(
        flows in proptest::collection::vec(any::<u64>(), 0..500),
        sockets in 1usize..16,
    ) {
        let report = simulate_handover(&flows, sockets, HandoverStrategy::FdPassing);
        prop_assert_eq!(report.misrouted, 0);
    }

    #[test]
    fn rebind_misroute_rate_bounded(
        flows in proptest::collection::vec(any::<u64>(), 1..500),
        sockets in 1usize..16,
    ) {
        let report = simulate_handover(&flows, sockets, HandoverStrategy::Rebind);
        prop_assert!(report.misroute_rate() <= 1.0);
        prop_assert_eq!(report.total, flows.len() as u64 * 2 * sockets as u64);
    }

    // ── Release scheduling ────────────────────────────────────────────

    #[test]
    fn rollout_always_terminates_and_covers_everyone(
        n in 1usize..60,
        batch_pct in 1u32..=100,
        hard in any::<bool>(),
    ) {
        let plan = RolloutPlan {
            batch_fraction: batch_pct as f64 / 100.0,
            drain_ms: 1_000,
            restart_ms: 100,
        };
        let strategy = if hard {
            RestartStrategy::HardRestart
        } else {
            RestartStrategy::zero_downtime_for(Tier::EdgeProxygen)
        };
        let mut rollout = ClusterRollout::new(n, strategy, plan);
        let (t, min_cap) = run_to_completion(&mut rollout, 100);
        prop_assert!(t > 0);
        prop_assert!((0.0..=1.0).contains(&min_cap));
        for i in 0..n {
            prop_assert_eq!(rollout.instance(i).generation(), 1);
        }
    }

    #[test]
    fn zdr_min_capacity_dominates_hard(
        n in 2usize..40,
        batch_pct in 5u32..=50,
    ) {
        let plan = RolloutPlan {
            batch_fraction: batch_pct as f64 / 100.0,
            drain_ms: 1_000,
            restart_ms: 100,
        };
        let mut hard = ClusterRollout::new(n, RestartStrategy::HardRestart, plan);
        let (_, hard_cap) = run_to_completion(&mut hard, 100);
        let mut zdr = ClusterRollout::new(
            n,
            RestartStrategy::zero_downtime_for(Tier::EdgeProxygen),
            plan,
        );
        let (_, zdr_cap) = run_to_completion(&mut zdr, 100);
        prop_assert!(zdr_cap >= hard_cap);
    }

    // ── Connection-outcome totality ───────────────────────────────────

    #[test]
    fn connection_outcome_is_total_and_consistent(
        remaining in any::<u64>(),
        drain in any::<u64>(),
        kind_sel in 0u8..4,
        hard in any::<bool>(),
    ) {
        let kind = match kind_sel {
            0 => ConnectionKind::ShortRequest,
            1 => ConnectionKind::LongPost,
            2 => ConnectionKind::MqttTunnel,
            _ => ConnectionKind::QuicFlow,
        };
        let strategy = if hard {
            RestartStrategy::HardRestart
        } else {
            RestartStrategy::zero_downtime_for(Tier::OriginProxygen)
        };
        let outcome = connection_outcome(&strategy, kind, remaining, drain);
        // Anything finishing within the drain is never disrupted.
        if remaining <= drain {
            prop_assert_eq!(outcome, ConnectionOutcome::CompletedDuringDrain);
        }
        // HardRestart never hands anything over.
        if hard && remaining > drain {
            prop_assert_eq!(outcome, ConnectionOutcome::Disrupted);
        }
    }
}

// ── Takeover manifest + canary gate ────────────────────────────────────

use zero_downtime_release::core::canary::{CanaryGate, CanaryPolicy, WindowSample};
use zero_downtime_release::net::inventory::{Manifest, Vip};
use zero_downtime_release::net::udp_router::{decapsulate, encapsulate};

proptest! {
    #[test]
    fn manifest_serde_round_trip(
        entries in proptest::collection::vec(
            (any::<bool>(), any::<u16>(), 0usize..16),
            0..20,
        ),
    ) {
        let manifest = Manifest {
            entries: entries
                .iter()
                .map(|(tcp, port, count)| {
                    let addr = format!("127.0.0.1:{port}").parse().unwrap();
                    let vip = if *tcp { Vip::tcp(addr) } else { Vip::udp(addr) };
                    (vip, *count)
                })
                .collect(),
        };
        let json = serde_json::to_string(&manifest).unwrap();
        let back: Manifest = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &manifest);
        prop_assert_eq!(
            back.total_fds(),
            entries.iter().map(|(_, _, c)| c).sum::<usize>()
        );
    }

    #[test]
    fn udp_encapsulation_round_trip_any_payload(
        a in any::<u8>(), b in any::<u8>(), c in any::<u8>(), d in any::<u8>(),
        port in 1u16..,
        payload in proptest::collection::vec(any::<u8>(), 0..1500),
    ) {
        let client = std::net::SocketAddr::from(([a, b, c, d], port));
        let wrapped = encapsulate(client, &payload);
        let (addr, inner) = decapsulate(&wrapped).expect("valid encapsulation");
        prop_assert_eq!(addr, client);
        prop_assert_eq!(inner, &payload[..]);
    }

    #[test]
    fn canary_gate_never_halts_below_threshold(
        baseline_bad in 0u64..100,
        windows in proptest::collection::vec(0u64..100, 1..30),
    ) {
        // Canary windows whose rate stays at or below the baseline rate can
        // never trip the gate (threshold = 3x baseline + slack).
        let baseline = WindowSample { requests: 100_000, disruptions: baseline_bad };
        let mut gate = CanaryGate::new(CanaryPolicy::default(), baseline);
        for (t, bad) in windows.iter().enumerate() {
            let sample = WindowSample {
                requests: 100_000,
                disruptions: (*bad).min(baseline_bad),
            };
            gate.observe(t as u64, sample);
        }
        prop_assert!(!gate.halted());
    }

    #[test]
    fn canary_gate_always_halts_on_sustained_blowup(extra in 1u64..1000) {
        let baseline = WindowSample { requests: 100_000, disruptions: 10 };
        let mut gate = CanaryGate::new(CanaryPolicy::default(), baseline);
        // Sustained rate far above threshold must halt within the debounce.
        let blowup = WindowSample { requests: 100_000, disruptions: 1_000 + extra };
        let mut halted_at = None;
        for t in 0..5u64 {
            if matches!(
                gate.observe(t, blowup),
                zero_downtime_release::core::canary::Verdict::Halt { .. }
            ) {
                halted_at = Some(t);
                break;
            }
        }
        prop_assert_eq!(halted_at, Some(1), "halt on the 2nd bad window (debounce=2)");
    }
}

// ── Simulator determinism (heavier; fewer cases) ───────────────────────

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cluster_sim_is_deterministic(seed in any::<u64>()) {
        let run = |seed: u64| {
            let strategy = RestartStrategy::zero_downtime_for(Tier::EdgeProxygen);
            let mut cfg = ClusterConfig::edge(5, strategy, seed);
            cfg.drain_ms = 10_000;
            cfg.workload.short_rps = 20.0;
            cfg.workload.mqtt_tunnels_per_machine = 50;
            let mut sim = ClusterSim::new(cfg);
            sim.run_ticks(5);
            sim.begin_restart(&[0]);
            sim.run_ticks(20);
            (
                sim.counters().clone(),
                sim.series("rps").unwrap().clone(),
                sim.series("capacity").unwrap().clone(),
            )
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn sim_conservation_requests_never_vanish(seed in any::<u64>()) {
        // Every short/post request either completes or is disrupted; with
        // no restarts, everything completes eventually.
        let mut cfg = ClusterConfig::edge(3, RestartStrategy::HardRestart, seed);
        cfg.workload.short_rps = 30.0;
        cfg.workload.post_rps = 0.0;
        cfg.workload.quic_fps = 0.0;
        cfg.workload.mqtt_tunnels_per_machine = 0;
        cfg.keepalive_per_machine = 0;
        let mut sim = ClusterSim::new(cfg);
        sim.run_ticks(30);
        prop_assert_eq!(sim.counters().total_disruptions(), 0);
        let accepted: f64 = sim.series("rps").unwrap().points.iter().map(|&(_, v)| v).sum();
        let completed = sim.counters().requests_ok as f64;
        // Allow the in-flight tail (≤ a few ticks of arrivals).
        prop_assert!(completed <= accepted);
        prop_assert!(completed >= accepted - 5.0 * 30.0 * 3.0, "completed {completed} accepted {accepted}");
    }
}

// ── Circuit breaker: liveness + single-flight probes ───────────────────

use zero_downtime_release::core::resilience::{Admit, BreakerConfig, BreakerState, CircuitBreaker};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Liveness: whatever outcome history the breaker has absorbed, once
    /// the upstream is healthy (every admitted attempt succeeds) the
    /// breaker re-closes within one open window plus a probe TTL — it can
    /// never wedge open against a healthy upstream.
    #[test]
    fn breaker_never_wedges_open_against_healthy_upstream(
        failure_threshold in 1u32..6,
        success_threshold in 1u32..6,
        open_base_ms in 10u64..2_000,
        max_mult in 1u64..16,
        probe_ttl_ms in 10u64..2_000,
        jitter_seed in any::<u64>(),
        history in proptest::collection::vec((0u8..3, 1u64..500), 0..100),
    ) {
        let config = BreakerConfig {
            failure_threshold,
            success_threshold,
            open_base_ms,
            open_max_ms: open_base_ms * max_mult,
            probe_ttl_ms,
            jitter_seed,
        };
        let b = CircuitBreaker::new(config);

        // Arbitrary past: failures, successes, and admit attempts (which
        // may claim — and then lose — half-open probes).
        let mut now = 0u64;
        for (op, dt) in history {
            now += dt;
            match op {
                0 => {
                    b.record_failure(now);
                }
                1 => {
                    b.record_success(now);
                }
                _ => {
                    b.admit(now);
                }
            }
        }

        // From here the upstream is healthy: every admitted attempt
        // succeeds. The breaker must close within (worst case) a lost
        // probe's TTL + one maximal jittered open window + the successes
        // needed to re-close.
        let deadline = now
            + config.probe_ttl_ms
            + 2 * config.open_max_ms.max(config.open_base_ms)
            + 1_000 * success_threshold as u64
            + 1_000;
        while b.state() != BreakerState::Closed {
            prop_assert!(
                now <= deadline,
                "breaker wedged {:?} against a healthy upstream",
                b.state()
            );
            if b.admit(now).allowed() {
                b.record_success(now);
                now += 1;
            } else {
                now += 50;
            }
        }
        prop_assert_eq!(b.admit(now), Admit::Yes);
    }

    /// Single-flight probes: once tripped, the breaker never grants a
    /// second half-open probe while one is in flight and inside its TTL —
    /// recovering upstreams cannot be stormed by probes.
    #[test]
    fn breaker_never_storms_half_open_probes(
        success_threshold in 1u32..6,
        open_base_ms in 10u64..2_000,
        probe_ttl_ms in 10u64..2_000,
        jitter_seed in any::<u64>(),
        steps in proptest::collection::vec((1u64..3_000, 0u8..4), 1..200),
    ) {
        let config = BreakerConfig {
            failure_threshold: 1,
            success_threshold,
            open_base_ms,
            open_max_ms: open_base_ms * 8,
            probe_ttl_ms,
            jitter_seed,
        };
        let b = CircuitBreaker::new(config);
        b.record_failure(0);
        prop_assert_eq!(b.state(), BreakerState::Open);

        // Model: the grant time of the outstanding probe, if any.
        let mut outstanding: Option<u64> = None;
        let mut now = 0u64;
        for (dt, outcome) in steps {
            now += dt;
            match b.admit(now) {
                Admit::Yes => {
                    // Plain admission only ever happens closed.
                    prop_assert_eq!(b.state(), BreakerState::Closed);
                    if outcome == 1 {
                        b.record_failure(now); // may re-trip (threshold 1)
                    } else {
                        b.record_success(now);
                    }
                }
                Admit::Probe => {
                    if let Some(granted) = outstanding {
                        prop_assert!(
                            now >= granted + config.probe_ttl_ms,
                            "probe granted at {now} while one from {granted} \
                             is in flight (ttl {})",
                            config.probe_ttl_ms
                        );
                    }
                    match outcome {
                        0 => outstanding = Some(now), // probe lost in transit
                        1 => {
                            b.record_failure(now); // probe failed: reopen
                            outstanding = None;
                        }
                        _ => {
                            b.record_success(now); // probe succeeded
                            outstanding = None;
                        }
                    }
                }
                Admit::No => {}
            }
        }
    }
}

#[test]
fn maglev_lookup_distribution_is_uniform_ish() {
    // Non-proptest statistical check: hashing 100k flows over 10 backends
    // lands within ±15% of uniform.
    let backends: Vec<BackendId> = (0..10).map(BackendId).collect();
    let t = MaglevTable::with_size(&backends, 65_537).unwrap();
    let mut counts: HashMap<BackendId, u64> = HashMap::new();
    for i in 0..100_000u64 {
        let h = zero_downtime_release::l4lb::hash::fnv1a_u64(i);
        *counts.entry(t.lookup(h)).or_insert(0) += 1;
    }
    for (b, c) in counts {
        assert!((8_500..=11_500).contains(&c), "{b}: {c}");
    }
}

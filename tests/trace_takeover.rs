//! Cross-hop tracing across a real supervised Socket Takeover, between
//! **separate OS processes**: one logical request whose trace context
//! rides `x-zdr-trace` lands spans on *both* generations of the VIP —
//! the predecessor records the request it served plus the FD-pass pause
//! span, the successor records the follow-up hop — and the two `/traces`
//! payloads merge into one connected, generation-tagged tree. Sampling
//! stays honest too: sampled-out requests record nothing.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

use zero_downtime_release::core::trace::{SpanKind, TraceSnapshot};
use zero_downtime_release::proto::http1::{serialize_request, Request, Response, ResponseParser};
use zero_downtime_release::proto::trace::{TraceContext, TRACE_HEADER};

const ZDR_BIN: &str = env!("CARGO_BIN_EXE_zdr");

struct Daemon {
    child: Child,
    /// Address parsed from the `READY <addr>` line.
    addr: SocketAddr,
    /// Admin endpoint parsed from the `ADMIN <addr>` line (printed
    /// before READY when `--admin-port` is given).
    admin: Option<SocketAddr>,
    /// Retained stdout reader (for DRAINED etc.).
    stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = Command::new(ZDR_BIN)
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn zdr");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut admin = None;
        let mut line = String::new();
        let addr = loop {
            line.clear();
            let n = stdout.read_line(&mut line).expect("read boot line");
            assert_ne!(n, 0, "process exited before READY");
            let text = line.trim();
            if let Some(a) = text.strip_prefix("ADMIN ") {
                admin = Some(a.parse().expect("parse ADMIN addr"));
            } else if let Some(a) = text.strip_prefix("READY ") {
                break a.parse().expect("parse READY addr");
            }
        };
        Daemon {
            child,
            addr,
            admin,
            stdout,
        }
    }

    fn wait_for_line(&mut self, needle: &str, timeout: Duration) -> bool {
        let start = std::time::Instant::now();
        let mut line = String::new();
        while start.elapsed() < timeout {
            line.clear();
            match self.stdout.read_line(&mut line) {
                Ok(0) => return false, // EOF
                Ok(_) if line.contains(needle) => return true,
                Ok(_) => continue,
                Err(_) => return false,
            }
        }
        false
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn sock_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "zdr-trace-{tag}-{}-{:x}.sock",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ))
        .to_string_lossy()
        .into_owned()
}

async fn send(addr: SocketAddr, req: &Request) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr).await?;
    stream.write_all(&serialize_request(req)).await?;
    read_response(&mut stream).await
}

async fn read_response(stream: &mut TcpStream) -> std::io::Result<Response> {
    let mut parser = ResponseParser::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = stream.read(&mut buf).await?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof",
            ));
        }
        if let Some(resp) = parser.push(&buf[..n]).map_err(std::io::Error::other)? {
            return Ok(resp);
        }
    }
}

/// Scrapes `/traces` from an admin endpoint; the JSON round-trips into
/// [`TraceSnapshot`] because the rendered field names and snake_case
/// span kinds match the serde view exactly.
async fn scrape_traces(admin: SocketAddr) -> TraceSnapshot {
    let resp = send(admin, &Request::get("/traces"))
        .await
        .expect("/traces");
    assert_eq!(resp.status.code, 200, "/traces must answer 200");
    serde_json::from_slice(&resp.body).expect("parse /traces JSON")
}

/// Polls `/traces` until `pred` holds (spans are recorded just after the
/// response bytes are written, so a client that already parsed its
/// response may race the recording).
async fn wait_for_traces(
    admin: SocketAddr,
    pred: impl Fn(&TraceSnapshot) -> bool,
) -> TraceSnapshot {
    for _ in 0..200 {
        let snap = scrape_traces(admin).await;
        if pred(&snap) {
            return snap;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    panic!("spans never matched: {:?}", scrape_traces(admin).await);
}

/// The one-trace tree across a supervised release: a slow upload carrying
/// an `x-zdr-trace` context is in flight on generation 0 when the FD
/// pass happens, so the predecessor's tracer holds the trace's spans
/// *and* parents the ambient [`SpanKind::TakeoverPause`] span under it;
/// a follow-up hop with the same context then lands on generation 1.
/// Merging both `/traces` payloads yields one connected tree whose spans
/// carry both generation tags.
#[tokio::test]
async fn supervised_takeover_spans_both_generations() {
    // Slow-reading app so the traced upload stays in flight across the
    // FD pass (~16 KiB read per 40 ms ≈ 1.3 s for 512 KiB).
    let app = Daemon::spawn(&[
        "app-server",
        "--listen",
        "127.0.0.1:0",
        "--name",
        "web-1",
        "--read-delay",
        "40",
    ]);
    let app_addr = app.addr.to_string();
    let path = sock_path("both-gens");

    // Generation 0: supervised, sampling OFF — the trace is adopted from
    // the propagated context, exactly like deadline propagation.
    let mut old = Daemon::spawn(&[
        "proxy",
        "--listen",
        "127.0.0.1:0",
        "--upstream",
        &app_addr,
        "--takeover-path",
        &path,
        "--drain-ms",
        "8000",
        "--supervised",
        "--watch-ms",
        "10000",
        "--admin-port",
        "0",
    ]);
    let vip = old.addr;
    let old_admin = old.admin.expect("old proxy admin endpoint");

    // An idle keep-alive connection whose request completed pre-release:
    // the drain waits for it, keeping the old process (and its admin
    // endpoint) alive while we scrape mid-drain.
    let mut held = TcpStream::connect(vip).await.unwrap();
    held.write_all(&serialize_request(&Request::get("/held")))
        .await
        .unwrap();
    let resp = read_response(&mut held).await.unwrap();
    assert_eq!(resp.status.code, 200);

    // The traced request: a downstream hop (played by this test) stamps
    // the sampled context; span_id 0 makes this hop's span the root.
    let ctx = TraceContext::sampled(0xfeed_f00d_cafe_0001, 0);
    let trace_id = ctx.trace_id;
    let mut upload = Request::post("/upload", vec![0x42u8; 512 * 1024]);
    upload.headers.set(TRACE_HEADER, &ctx.header_value());
    let in_flight = tokio::spawn(async move {
        let mut stream = TcpStream::connect(vip).await.unwrap();
        stream.write_all(&serialize_request(&upload)).await.unwrap();
        read_response(&mut stream).await.unwrap()
    });
    // Let generation 0 parse the head and adopt the context before the
    // FD pass, so the pause span has a live request to parent under.
    tokio::time::sleep(Duration::from_millis(300)).await;

    // The supervised release: generation 1 takes the sockets over and
    // reports healthy; the old process drains.
    let new = Daemon::spawn(&[
        "proxy",
        "--takeover",
        "--supervised",
        "--upstream",
        &app_addr,
        "--takeover-path",
        &path,
        "--drain-ms",
        "8000",
        "--health-report-ms",
        "100",
        "--trace-sample",
        "1",
        "--admin-port",
        "0",
    ]);
    assert_eq!(new.addr, vip, "successor must own the same VIP");
    let new_admin = new.admin.expect("successor admin endpoint");

    // The in-flight upload completes on the draining generation 0.
    let resp = in_flight.await.unwrap();
    assert_eq!(
        resp.status.code, 200,
        "in-flight request survives the release"
    );

    // Mid-drain scrape of generation 0: the request's root span AND the
    // ambient FD-pass pause span, all in the same trace, all tagged
    // generation 0.
    let old_snap = wait_for_traces(old_admin, |s| {
        let t = s.for_trace(trace_id);
        t.iter().any(|sp| sp.kind == SpanKind::Request)
            && t.iter().any(|sp| sp.kind == SpanKind::TakeoverPause)
    })
    .await;
    let old_trace = old_snap.for_trace(trace_id);
    assert!(
        old_trace.iter().all(|sp| sp.generation == 0),
        "generation 0 spans only: {old_trace:?}"
    );
    let pause = old_trace
        .iter()
        .find(|sp| sp.kind == SpanKind::TakeoverPause)
        .unwrap();
    assert!(
        pause.detail.contains("pause_us="),
        "pause span carries the measured pause: {pause:?}"
    );
    assert_ne!(pause.parent_id, 0, "pause parents under the live request");
    assert!(
        old_trace
            .iter()
            .any(|sp| sp.kind == SpanKind::Forward && sp.parent_id != 0),
        "forward child span present: {old_trace:?}"
    );

    // The follow-up hop of the same logical request (a downstream retry
    // or next phase) lands on generation 1 with the same trace id.
    let mut follow = Request::get("/follow-up");
    follow.headers.set(TRACE_HEADER, &ctx.header_value());
    assert_eq!(send(vip, &follow).await.unwrap().status.code, 200);
    let new_snap = wait_for_traces(new_admin, |s| {
        s.for_trace(trace_id)
            .iter()
            .any(|sp| sp.kind == SpanKind::Request)
    })
    .await;
    assert!(
        new_snap
            .for_trace(trace_id)
            .iter()
            .all(|sp| sp.generation == 1),
        "successor spans tagged generation 1: {new_snap:?}"
    );

    // Merged, the takeover pair reads as ONE connected tree spanning
    // both generations.
    let mut merged = old_snap.clone();
    merged.merge(&new_snap);
    assert!(
        merged.is_connected(trace_id),
        "parent links intact across the handoff: {:?}",
        merged.for_trace(trace_id)
    );
    let gens: std::collections::HashSet<u64> = merged
        .for_trace(trace_id)
        .iter()
        .map(|sp| sp.generation)
        .collect();
    assert!(
        gens.contains(&0) && gens.contains(&1),
        "one trace, both generations: {gens:?}"
    );

    // Release the drain: the old process finishes and exits cleanly.
    drop(held);
    let drained = tokio::task::spawn_blocking(move || {
        let ok = old.wait_for_line("DRAINED", Duration::from_secs(15));
        let status = old.child.wait().expect("old process exits");
        (ok, status.success())
    })
    .await
    .unwrap();
    assert!(drained.0, "old process must report DRAINED");
    assert!(drained.1, "old process must exit cleanly");
}

/// Sampling honesty end to end: with `--trace-sample N` only every Nth
/// request records a tree (sampled-out requests leave no spans at all),
/// and with sampling off nothing is ever recorded.
#[tokio::test]
async fn sampled_out_requests_record_nothing() {
    let app = Daemon::spawn(&["app-server", "--listen", "127.0.0.1:0"]);
    let app_addr = app.addr.to_string();

    // Sampling off (the default): traffic leaves the ring untouched.
    let off = Daemon::spawn(&[
        "proxy",
        "--listen",
        "127.0.0.1:0",
        "--upstream",
        &app_addr,
        "--takeover-path",
        &sock_path("sample-off"),
        "--admin-port",
        "0",
    ]);
    for i in 0..5 {
        let resp = send(off.addr, &Request::get(&format!("/r/{i}")))
            .await
            .unwrap();
        assert_eq!(resp.status.code, 200);
    }
    let snap = scrape_traces(off.admin.expect("admin")).await;
    assert_eq!(snap.sample_every, 0);
    assert!(
        snap.spans.is_empty() && snap.recorded == 0 && snap.dropped == 0,
        "sampling off must record nothing: {snap:?}"
    );

    // 1-in-3 sampling: 9 sequential requests yield exactly 3 traced
    // trees; the other 6 record nothing.
    let sampled = Daemon::spawn(&[
        "proxy",
        "--listen",
        "127.0.0.1:0",
        "--upstream",
        &app_addr,
        "--takeover-path",
        &sock_path("sample-3"),
        "--trace-sample",
        "3",
        "--admin-port",
        "0",
    ]);
    let admin = sampled.admin.expect("admin");
    for i in 0..9 {
        let resp = send(sampled.addr, &Request::get(&format!("/s/{i}")))
            .await
            .unwrap();
        assert_eq!(resp.status.code, 200);
    }
    let snap = wait_for_traces(admin, |s| {
        s.spans
            .iter()
            .filter(|sp| sp.kind == SpanKind::Request)
            .count()
            >= 3
    })
    .await;
    assert_eq!(snap.sample_every, 3);
    let traces: std::collections::HashSet<u64> = snap.spans.iter().map(|sp| sp.trace_id).collect();
    assert_eq!(
        traces.len(),
        3,
        "1-in-3 sampling over 9 requests is exactly 3 trees: {snap:?}"
    );
    for id in traces {
        assert!(snap.is_connected(id), "sampled tree connected: {snap:?}");
    }
}

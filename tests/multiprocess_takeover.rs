//! The real thing: Socket Takeover between two **separate OS processes**,
//! exactly as deployed — the old `zdr proxy` process passes its listening
//! socket to a newly exec'd `zdr proxy --takeover` process over the UNIX
//! socket, drains, and exits, while a client hammers the VIP and sees zero
//! failures.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

use zero_downtime_release::proto::http1::{serialize_request, Request, ResponseParser};

const ZDR_BIN: &str = env!("CARGO_BIN_EXE_zdr");

struct Daemon {
    child: Child,
    /// Address parsed from the `READY <addr>` line.
    addr: SocketAddr,
    /// Retained stdout reader (for DRAINED etc.).
    stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = Command::new(ZDR_BIN)
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn zdr");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read READY line");
        let addr = line
            .trim()
            .strip_prefix("READY ")
            .unwrap_or_else(|| panic!("expected READY line, got {line:?}"))
            .parse()
            .expect("parse READY addr");
        Daemon {
            child,
            addr,
            stdout,
        }
    }

    fn wait_for_line(&mut self, needle: &str, timeout: Duration) -> bool {
        // Reads lines until the needle appears (blocking reads; the caller
        // bounds the wall time by arranging the process to print or exit).
        let start = std::time::Instant::now();
        let mut line = String::new();
        while start.elapsed() < timeout {
            line.clear();
            match self.stdout.read_line(&mut line) {
                Ok(0) => return false, // EOF
                Ok(_) if line.contains(needle) => return true,
                Ok(_) => continue,
                Err(_) => return false,
            }
        }
        false
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn sock_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "zdr-mp-{tag}-{}-{:x}.sock",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ))
        .to_string_lossy()
        .into_owned()
}

async fn get_ok(addr: SocketAddr, path: &str) -> bool {
    let Ok(mut stream) = TcpStream::connect(addr).await else {
        return false;
    };
    let req = Request::get(path);
    if stream.write_all(&serialize_request(&req)).await.is_err() {
        return false;
    }
    let mut parser = ResponseParser::new();
    let mut buf = [0u8; 8192];
    loop {
        match stream.read(&mut buf).await {
            Ok(0) | Err(_) => return false,
            Ok(n) => match parser.push(&buf[..n]) {
                Ok(Some(resp)) => return resp.status.code == 200,
                Ok(None) => {}
                Err(_) => return false,
            },
        }
    }
}

#[tokio::test]
async fn cross_process_takeover_with_zero_failures() {
    // Real app-server process.
    let app = Daemon::spawn(&["app-server", "--listen", "127.0.0.1:0", "--name", "web-1"]);
    let app_addr = app.addr.to_string();

    // Generation-0 proxy process.
    let path = sock_path("g0");
    let mut old = Daemon::spawn(&[
        "proxy",
        "--listen",
        "127.0.0.1:0",
        "--upstream",
        &app_addr,
        "--takeover-path",
        &path,
        "--drain-ms",
        "500",
    ]);
    let vip = old.addr;

    // Continuous load against the VIP for the duration of the release.
    let load = tokio::spawn(async move {
        let mut ok = 0u32;
        let mut failed = 0u32;
        for i in 0..250 {
            if get_ok(vip, &format!("/r/{i}")).await {
                ok += 1;
            } else {
                failed += 1;
            }
            tokio::time::sleep(Duration::from_millis(4)).await;
        }
        (ok, failed)
    });
    tokio::time::sleep(Duration::from_millis(100)).await;

    // Release: exec the NEW process, which takes the sockets over.
    let new = Daemon::spawn(&[
        "proxy",
        "--takeover",
        "--upstream",
        &app_addr,
        "--takeover-path",
        &path,
        "--drain-ms",
        "500",
    ]);
    assert_eq!(new.addr, vip, "successor must own the same VIP");

    // The old process drains and exits on its own.
    let drained = tokio::task::spawn_blocking(move || {
        let ok = old.wait_for_line("DRAINED", Duration::from_secs(15));
        let status = old.child.wait().expect("old process exits");
        (ok, status.success())
    })
    .await
    .unwrap();
    assert!(drained.0, "old process must report DRAINED");
    assert!(drained.1, "old process must exit cleanly");

    // Zero failed requests across the whole cross-process restart.
    let (ok, failed) = load.await.unwrap();
    assert_eq!(failed, 0, "cross-process takeover must drop nothing");
    assert_eq!(ok, 250);

    // And the successor really is serving.
    assert!(get_ok(vip, "/post-release").await);
}

#[tokio::test]
async fn cross_process_generation_chain() {
    // Three generations across three OS processes, same VIP throughout.
    let app = Daemon::spawn(&["app-server", "--listen", "127.0.0.1:0"]);
    let app_addr = app.addr.to_string();
    let path = sock_path("chain");

    let g0 = Daemon::spawn(&[
        "proxy",
        "--listen",
        "127.0.0.1:0",
        "--upstream",
        &app_addr,
        "--takeover-path",
        &path,
        "--drain-ms",
        "200",
    ]);
    let vip = g0.addr;
    assert!(get_ok(vip, "/gen0").await);

    let g1 = Daemon::spawn(&[
        "proxy",
        "--takeover",
        "--upstream",
        &app_addr,
        "--takeover-path",
        &path,
        "--drain-ms",
        "200",
    ]);
    assert_eq!(g1.addr, vip);
    assert!(get_ok(vip, "/gen1").await);

    let g2 = Daemon::spawn(&[
        "proxy",
        "--takeover",
        "--upstream",
        &app_addr,
        "--takeover-path",
        &path,
        "--drain-ms",
        "200",
    ]);
    assert_eq!(g2.addr, vip);
    assert!(get_ok(vip, "/gen2").await);
}

#[tokio::test]
async fn cross_process_rollback_when_successor_dies_before_health_confirm() {
    // The robustness path: the successor confirms the takeover, then dies
    // (SIGKILL) before ever reporting health. The supervising old process
    // must notice the dropped watch channel, reclaim the listeners, and
    // keep serving the same VIP — the failed release degrades to a no-op.
    let app = Daemon::spawn(&["app-server", "--listen", "127.0.0.1:0", "--name", "web-1"]);
    let app_addr = app.addr.to_string();
    let path = sock_path("rollback");

    let mut old = Daemon::spawn(&[
        "proxy",
        "--listen",
        "127.0.0.1:0",
        "--upstream",
        &app_addr,
        "--takeover-path",
        &path,
        "--drain-ms",
        "500",
        "--supervised",
        "--watch-ms",
        "10000",
    ]);
    let vip = old.addr;

    // Baseline: generation 0 serves.
    for i in 0..25 {
        assert!(get_ok(vip, &format!("/pre/{i}")).await, "pre-release {i}");
    }

    // The successor takes the sockets, prints READY, and is killed before
    // its health report (--health-report-ms far beyond the watch window).
    let mut new = Daemon::spawn(&[
        "proxy",
        "--takeover",
        "--supervised",
        "--upstream",
        &app_addr,
        "--takeover-path",
        &path,
        "--drain-ms",
        "500",
        "--health-report-ms",
        "600000",
    ]);
    assert_eq!(new.addr, vip, "successor must own the same VIP");
    new.child.kill().expect("kill successor");
    new.child.wait().expect("reap successor");

    // A connection arriving while nobody accepts lands in the listen
    // backlog — the kernel file description never closed, because the old
    // process retained a clone — and must be served after the rollback.
    let in_gap = tokio::spawn(async move { get_ok(vip, "/in-gap").await });

    let (rolled_back, mut old) = tokio::task::spawn_blocking(move || {
        let ok = old.wait_for_line("ROLLBACK", Duration::from_secs(15));
        (ok, old)
    })
    .await
    .unwrap();
    assert!(rolled_back, "old process must report ROLLBACK");

    assert!(
        in_gap.await.unwrap(),
        "connection queued during the rollback gap must be served"
    );

    // Zero-loss after the failed release: the old process serves the VIP.
    for i in 0..25 {
        assert!(
            get_ok(vip, &format!("/post/{i}")).await,
            "post-rollback {i}"
        );
    }

    // And a healthy successor can still release afterwards: the supervisor
    // rebinds the takeover socket and completes normally.
    let new2 = Daemon::spawn(&[
        "proxy",
        "--takeover",
        "--supervised",
        "--upstream",
        &app_addr,
        "--takeover-path",
        &path,
        "--drain-ms",
        "500",
        "--health-report-ms",
        "100",
    ]);
    assert_eq!(new2.addr, vip);
    let drained = tokio::task::spawn_blocking(move || {
        let ok = old.wait_for_line("DRAINED", Duration::from_secs(15));
        let status = old.child.wait().expect("old process exits");
        (ok, status.success())
    })
    .await
    .unwrap();
    assert!(
        drained.0,
        "old process must drain after the second, healthy release"
    );
    assert!(drained.1, "old process must exit cleanly");
    assert!(get_ok(vip, "/post-release").await);
}

#[tokio::test]
async fn cross_process_ppr_during_app_release() {
    // A slow-reading app-server process that restarts itself mid-upload;
    // the proxy process replays to the healthy replica.
    let slow = Daemon::spawn(&[
        "app-server",
        "--listen",
        "127.0.0.1:0",
        "--name",
        "web-slow",
        "--read-delay",
        "50",
        "--restart-after",
        "600",
    ]);
    let healthy = Daemon::spawn(&[
        "app-server",
        "--listen",
        "127.0.0.1:0",
        "--name",
        "web-healthy",
    ]);
    let path = sock_path("ppr");
    let proxy = Daemon::spawn(&[
        "proxy",
        "--listen",
        "127.0.0.1:0",
        "--upstream",
        &slow.addr.to_string(),
        "--upstream",
        &healthy.addr.to_string(),
        "--takeover-path",
        &path,
    ]);

    // 1 MiB upload: the slow server reads ~16 KiB per 50 ms, so the
    // self-restart at t=600ms lands mid-body.
    let mut stream = TcpStream::connect(proxy.addr).await.unwrap();
    let req = Request::post("/upload", vec![0x7fu8; 1024 * 1024]);
    stream.write_all(&serialize_request(&req)).await.unwrap();
    let mut parser = ResponseParser::new();
    let mut buf = [0u8; 16 * 1024];
    let resp = loop {
        let n = tokio::time::timeout(Duration::from_secs(30), stream.read(&mut buf))
            .await
            .expect("response timeout")
            .unwrap();
        assert!(n > 0, "connection closed without response");
        if let Some(r) = parser.push(&buf[..n]).unwrap() {
            break r;
        }
    };
    assert_eq!(resp.status.code, 200, "user must never see the app release");
    assert_eq!(resp.headers.get("x-served-by"), Some("web-healthy"));
    assert_eq!(
        &resp.body[..],
        format!("received={}", 1024 * 1024).as_bytes()
    );
}

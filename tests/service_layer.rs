//! The unified service layer end to end: HTTP, MQTT, and QUIC services
//! draining **concurrently** under client load, each force-closing its
//! survivors at the hard deadline with its protocol's close signal — and
//! one merged `StatsSnapshot` whose forced-close/active-connection
//! accounting matches exactly what the clients observed on the wire.

use std::net::SocketAddr;
use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpStream, UdpSocket};

use zero_downtime_release::appserver::{self, AppServerConfig};
use zero_downtime_release::broker::server as broker;
use zero_downtime_release::proto::dcr::UserId;
use zero_downtime_release::proto::http1::{serialize_request, Request, ResponseParser};
use zero_downtime_release::proto::mqtt::{self, ConnectReturnCode, Packet, StreamDecoder};
use zero_downtime_release::proto::quic::{self, ConnectionId, Datagram, PacketType};
use zero_downtime_release::proxy::mqtt_relay::{spawn_edge, spawn_origin};
use zero_downtime_release::proxy::quic_service::{QuicInstance, QuicInstanceConfig};
use zero_downtime_release::proxy::reverse::{spawn_reverse_proxy, ReverseProxyConfig};
use zero_downtime_release::proxy::stats::StatsSnapshot;

const DEADLINE: Duration = Duration::from_millis(500);

/// One keep-alive HTTP request/response on an open stream.
async fn http_roundtrip(stream: &mut TcpStream, target: &str) -> std::io::Result<u16> {
    stream
        .write_all(&serialize_request(&Request::get(target)))
        .await?;
    let mut parser = ResponseParser::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = stream.read(&mut buf).await?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "closed mid-response",
            ));
        }
        if let Some(resp) = parser
            .push(&buf[..n])
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
        {
            return Ok(resp.status.code);
        }
    }
}

struct MqttClient {
    stream: TcpStream,
    decoder: StreamDecoder,
}

impl MqttClient {
    async fn connect(edge: SocketAddr, user: UserId) -> MqttClient {
        let mut stream = TcpStream::connect(edge).await.unwrap();
        let pkt = Packet::Connect {
            client_id: broker::client_id_for(user),
            keep_alive: 60,
            clean_session: true,
        };
        stream
            .write_all(&mqtt::encode(&pkt).unwrap())
            .await
            .unwrap();
        let mut c = MqttClient {
            stream,
            decoder: StreamDecoder::new(),
        };
        match c.recv().await {
            Packet::ConnAck {
                code: ConnectReturnCode::Accepted,
                ..
            } => c,
            other => panic!("expected CONNACK, got {other:?}"),
        }
    }

    async fn recv(&mut self) -> Packet {
        let mut buf = [0u8; 8192];
        loop {
            if let Some(p) = self.decoder.next_packet().unwrap() {
                return p;
            }
            let n = tokio::time::timeout(Duration::from_secs(10), self.stream.read(&mut buf))
                .await
                .expect("mqtt recv timeout")
                .unwrap();
            assert!(n > 0, "peer closed without a close signal");
            self.decoder.extend(&buf[..n]);
        }
    }
}

struct QuicFlow {
    socket: UdpSocket,
    cid: ConnectionId,
    next_pn: u64,
}

impl QuicFlow {
    async fn open(vip: SocketAddr, random: u64) -> QuicFlow {
        let socket = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let hello = Datagram::initial(ConnectionId::new(0, random), &b"hello"[..]);
        socket
            .send_to(&quic::encode(&hello).unwrap(), vip)
            .await
            .unwrap();
        let mut buf = [0u8; 2048];
        let (n, _) = tokio::time::timeout(Duration::from_secs(5), socket.recv_from(&mut buf))
            .await
            .expect("quic open timeout")
            .unwrap();
        let reply = quic::decode(&buf[..n]).unwrap();
        QuicFlow {
            socket,
            cid: reply.cid,
            next_pn: 1,
        }
    }

    async fn echo(&mut self, vip: SocketAddr, payload: &[u8]) -> Option<Vec<u8>> {
        let d = Datagram::one_rtt(self.cid, self.next_pn, payload.to_vec());
        self.next_pn += 1;
        self.socket
            .send_to(&quic::encode(&d).unwrap(), vip)
            .await
            .unwrap();
        let mut buf = [0u8; 2048];
        let (n, _) = tokio::time::timeout(Duration::from_secs(5), self.socket.recv_from(&mut buf))
            .await
            .ok()?
            .ok()?;
        Some(quic::decode(&buf[..n]).unwrap().payload.to_vec())
    }

    /// Waits for the CONNECTION_CLOSE the draining instance must send.
    async fn recv_close(&mut self) -> Datagram {
        let mut buf = [0u8; 2048];
        loop {
            let (n, _) =
                tokio::time::timeout(Duration::from_secs(5), self.socket.recv_from(&mut buf))
                    .await
                    .expect("quic close timeout")
                    .unwrap();
            let d = quic::decode(&buf[..n]).unwrap();
            // Skip any echo replies still in flight from the load phase.
            if d.packet_type == PacketType::Close {
                return d;
            }
        }
    }
}

fn tmp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "zdr-service-layer-{tag}-{}-{:x}.sock",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

#[tokio::test]
async fn concurrent_drain_across_http_mqtt_quic() {
    // --- Spin up all three protocol stacks. -------------------------------
    let app = appserver::spawn("127.0.0.1:0".parse().unwrap(), AppServerConfig::default())
        .await
        .unwrap();
    let http = spawn_reverse_proxy(
        "127.0.0.1:0".parse().unwrap(),
        ReverseProxyConfig {
            upstreams: vec![app.addr],
            upstream_timeout: Duration::from_secs(5),
            ..Default::default()
        },
    )
    .await
    .unwrap();

    let brk = broker::spawn("127.0.0.1:0".parse().unwrap()).await.unwrap();
    let origin = spawn_origin("127.0.0.1:0".parse().unwrap(), 1, vec![brk.addr], 5_000)
        .await
        .unwrap();
    let edge = spawn_edge("127.0.0.1:0".parse().unwrap(), vec![origin.addr])
        .await
        .unwrap();

    let quic_cfg = QuicInstanceConfig {
        takeover_path: tmp_path("quic"),
        sockets: 2,
        drain_ms: DEADLINE.as_millis() as u64,
        shed: Default::default(),
        admission: Default::default(),
        protection: Default::default(),
    };
    let quic_old = QuicInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), quic_cfg.clone())
        .await
        .unwrap();
    let vip = quic_old.vip;

    // --- Load phase: every protocol has live, active clients. -------------
    // HTTP: a keep-alive connection doing requests, plus an idle victim
    // that will outlive the drain.
    let mut http_loader = TcpStream::connect(http.addr).await.unwrap();
    let mut http_victim = TcpStream::connect(http.addr).await.unwrap();
    for _ in 0..3 {
        assert_eq!(
            http_roundtrip(&mut http_loader, "/feed").await.unwrap(),
            200
        );
    }
    assert_eq!(
        http_roundtrip(&mut http_victim, "/warm").await.unwrap(),
        200
    );

    // MQTT: a connected client that keeps pinging through the drain.
    let mut mqtt_client = MqttClient::connect(edge.addr, UserId(42)).await;

    // QUIC: an established flow, actively echoing.
    let mut flow = QuicFlow::open(vip, 7).await;
    assert_eq!(flow.echo(vip, b"pre").await.unwrap(), b"echo:pre");

    assert_eq!(http.active_connections(), 2);
    assert_eq!(edge.active_connections(), 1);
    assert_eq!(quic_old.active_connections(), 1);

    // --- Drain all three services CONCURRENTLY. ---------------------------
    // QUIC drains through a real Socket Takeover (its drain entry point);
    // HTTP and MQTT drain in place. Same deadline everywhere.
    let quic_task = tokio::spawn(quic_old.serve_one_takeover());
    tokio::time::sleep(Duration::from_millis(50)).await;
    let quic_new = QuicInstance::takeover_from(quic_cfg).await.unwrap();

    let drain_started = std::time::Instant::now();
    http.drain_with_deadline(DEADLINE);
    edge.drain_with_deadline(DEADLINE);
    assert!(http.is_draining() && edge.is_draining());

    // In-flight traffic keeps flowing while draining (the whole point of
    // the paper): a request already on the keep-alive connection finishes
    // with a 200 (the connection then closes gracefully — NOT a forced
    // close), the MQTT tunnel still answers pings, and the old QUIC
    // generation still serves its flow via user-space routing.
    assert_eq!(
        http_roundtrip(&mut http_loader, "/during-drain")
            .await
            .unwrap(),
        200,
        "in-flight HTTP requests must finish during the drain"
    );
    let mut post_drain_pongs = 0u32;
    let mut mqtt_disconnected = false;
    for _ in 0..3 {
        mqtt_client
            .stream
            .write_all(&mqtt::encode(&Packet::PingReq).unwrap())
            .await
            .unwrap();
        match mqtt_client.recv().await {
            Packet::PingResp => post_drain_pongs += 1,
            Packet::Disconnect => {
                mqtt_disconnected = true;
                break;
            }
            other => panic!("unexpected packet while draining: {other:?}"),
        }
        tokio::time::sleep(Duration::from_millis(25)).await;
    }
    assert!(
        post_drain_pongs >= 1,
        "tunnel must keep relaying while draining"
    );
    assert_eq!(
        flow.echo(vip, b"mid").await.unwrap(),
        b"echo:mid",
        "old flow must be served through the drain"
    );

    // --- Hard deadline: each client observes its protocol's close signal. -
    // HTTP victim: bare TCP close (EOF), no earlier than the deadline.
    let mut buf = [0u8; 64];
    let n = tokio::time::timeout(Duration::from_secs(5), http_victim.read(&mut buf))
        .await
        .expect("http victim outlived the hard deadline")
        .unwrap_or(0);
    assert_eq!(n, 0, "HTTP close signal is the TCP close itself");
    assert!(
        drain_started.elapsed() >= Duration::from_millis(400),
        "victim closed before the deadline"
    );

    // MQTT client: an explicit DISCONNECT packet before the close.
    while !mqtt_disconnected {
        match mqtt_client.recv().await {
            Packet::PingResp => continue,
            Packet::Disconnect => mqtt_disconnected = true,
            other => panic!("expected DISCONNECT, got {other:?}"),
        }
    }

    // QUIC flow: a CONNECTION_CLOSE datagram carrying the flow's CID.
    let quic_drained = quic_task.await.unwrap().unwrap();
    let close = flow.recv_close().await;
    assert_eq!(close.cid, flow.cid);

    // The loader's connection was closed gracefully after its in-drain
    // response: a further request fails, but it was NOT a forced close.
    assert!(http_roundtrip(&mut http_loader, "/late").await.is_err());

    // --- Drained: gauges at zero, every service settled. ------------------
    tokio::time::timeout(Duration::from_secs(2), http.drained())
        .await
        .expect("http drained");
    tokio::time::timeout(Duration::from_secs(2), edge.drained())
        .await
        .expect("edge drained");

    // --- One merged snapshot, accounting exactly what clients saw. --------
    let unified: StatsSnapshot = http
        .stats
        .snapshot()
        .merged(&http.tracker().snapshot())
        .merged(&edge.stats.snapshot())
        .merged(&edge.dcr_stats.snapshot())
        .merged(&edge.tracker().snapshot())
        .merged(&quic_drained.snapshot);

    assert_eq!(
        unified.forced_tcp_resets, 1,
        "exactly the idle HTTP victim was reset"
    );
    assert_eq!(
        unified.forced_mqtt_disconnects, 1,
        "exactly the MQTT client got a DISCONNECT"
    );
    assert_eq!(
        unified.forced_quic_closes, 1,
        "exactly the QUIC flow got a CONNECTION_CLOSE"
    );
    assert_eq!(unified.forced_closes(), 3, "one forced close per protocol");
    assert_eq!(unified.active_connections, 0, "all gauges settled to zero");
    assert!(
        unified.connections_tracked >= 4,
        "loader + victim + mqtt + quic all registered"
    );
    assert_eq!(unified.quic_flows_opened, 1);
    assert!(unified.quic_served >= 2);

    // The new QUIC generation is untouched by the old one's accounting.
    assert_eq!(quic_new.forced_closes(), 0);
}

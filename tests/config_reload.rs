//! Hot config plane end to end: a `ConfigStore` publish re-arms live
//! proxy generations mid-drain and mid-takeover without touching a single
//! established connection, the new limits govern the very next accept,
//! and `ConfigApplied` lands on the release timeline in epoch order.
//! Plus the lossless flag↔TOML round trip over the public surface.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

use zero_downtime_release::appserver::{self, AppServerConfig};
use zero_downtime_release::core::config::{ConfigStore, ZdrConfig, BOOT_EPOCH};
use zero_downtime_release::core::telemetry::ReleasePhase;
use zero_downtime_release::proto::http1::{serialize_request, Request, Response, ResponseParser};
use zero_downtime_release::proxy::reverse::ReverseProxyConfig;
use zero_downtime_release::proxy::takeover::{ProxyInstance, ProxyInstanceConfig};

fn takeover_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "zdr-cfgreload-{tag}-{}-{:x}.sock",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

async fn send(addr: SocketAddr, req: &Request) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr).await?;
    stream.write_all(&serialize_request(req)).await?;
    read_response(&mut stream, &mut ResponseParser::new()).await
}

async fn read_response(
    stream: &mut TcpStream,
    parser: &mut ResponseParser,
) -> std::io::Result<Response> {
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = stream.read(&mut buf).await?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof",
            ));
        }
        if let Some(resp) = parser.push(&buf[..n]).map_err(std::io::Error::other)? {
            parser.reset();
            return Ok(resp);
        }
    }
}

async fn spawn_apps(n: usize) -> Vec<appserver::AppServerHandle> {
    let mut apps = Vec::new();
    for i in 0..n {
        apps.push(
            appserver::spawn(
                "127.0.0.1:0".parse().unwrap(),
                AppServerConfig {
                    server_name: format!("web-{i}"),
                    ..Default::default()
                },
            )
            .await
            .unwrap(),
        );
    }
    apps
}

/// One request/response over an already-open keep-alive connection.
async fn roundtrip(stream: &mut TcpStream, parser: &mut ResponseParser, target: &str) -> u16 {
    stream
        .write_all(&serialize_request(&Request::get(target)))
        .await
        .unwrap();
    read_response(stream, parser).await.unwrap().status.code
}

fn boot_config(upstreams: &[SocketAddr], drain_ms: u64) -> ZdrConfig {
    let mut cfg = ZdrConfig::default();
    cfg.routing.upstreams = upstreams.to_vec();
    cfg.drain.drain_ms = drain_ms;
    cfg
}

fn instance_config(boot: &ZdrConfig, tag: &str) -> ProxyInstanceConfig {
    ProxyInstanceConfig {
        reverse: ReverseProxyConfig {
            upstreams: boot.routing.upstreams.clone(),
            upstream_timeout: Duration::from_secs(10),
            ..Default::default()
        },
        takeover_path: takeover_path(tag),
        drain_ms: boot.drain.drain_ms,
    }
}

/// The §2.3 choreography with a reload landing *mid-drain*: the old
/// generation is draining a held connection while the new generation owns
/// the VIP. One publish must re-arm both — new drain deadline on the
/// draining side, new shed limit on the very next VIP accept — with zero
/// established-connection churn.
#[tokio::test]
async fn hot_reload_mid_drain_spares_connections_and_rearms_next_accept() {
    let apps = spawn_apps(2).await;
    let upstreams: Vec<SocketAddr> = apps.iter().map(|a| a.addr).collect();
    let boot = boot_config(&upstreams, 30_000);
    let cfg = instance_config(&boot, "mid-drain");
    let store = Arc::new(ConfigStore::new(boot.clone()));

    let old = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
        .await
        .unwrap();
    let addr = old.addr;
    // Subscribed *before* the instance moves into serve_one_takeover: the
    // applier captures shared handles, so it keeps steering the drained
    // generation afterwards — the same wiring `zdr` does at boot.
    let apply_old = old.config_applier();
    store.subscribe(Box::new(move |c, e| apply_old(c.as_ref(), e)));

    // A keep-alive connection that must survive everything below.
    let mut held = TcpStream::connect(addr).await.unwrap();
    let mut held_parser = ResponseParser::new();
    assert_eq!(roundtrip(&mut held, &mut held_parser, "/held").await, 200);

    // The release: generation 1 takes the sockets, generation 0 drains.
    let old_task = tokio::spawn(old.serve_one_takeover());
    tokio::time::sleep(Duration::from_millis(50)).await;
    let new = ProxyInstance::takeover_from(cfg).await.unwrap();
    let drained = old_task.await.unwrap().unwrap();
    assert!(drained.reverse.state().is_draining());
    let apply_new = new.config_applier();
    store.subscribe(Box::new(move |c, e| apply_new(c.as_ref(), e)));

    // Mid-drain reload: tighter shed limit, longer drain deadline.
    let mut next = boot.clone();
    next.shed.max_active = 1;
    next.drain.drain_ms = 45_000;
    let epoch = store.publish(next).unwrap();
    assert_eq!(epoch, BOOT_EPOCH + 1);

    // Both generations now run the reloaded drain deadline — no restart.
    assert_eq!(drained.drain_ms(), 45_000);
    assert_eq!(new.drain_ms(), 45_000);

    // Zero churn: the held connection still answers, nothing was forced.
    assert_eq!(roundtrip(&mut held, &mut held_parser, "/held-again").await, 200);
    assert_eq!(drained.reverse.forced_closes(), 0);
    assert_eq!(new.reverse.forced_closes(), 0);

    // The reloaded shed limit governs the very next accepts at the VIP:
    // the first connection occupies the single admitted slot (the held
    // connection is tracked by the *old* generation, not this one), the
    // second is shed with the pre-rendered 503.
    let mut first = TcpStream::connect(addr).await.unwrap();
    let mut first_parser = ResponseParser::new();
    assert_eq!(roundtrip(&mut first, &mut first_parser, "/first").await, 200);
    let resp = send(addr, &Request::get("/second")).await.unwrap();
    assert_eq!(resp.status.code, 503);
    assert!(new.reverse.stats.load_shed.get() >= 1);

    // Timeline: the old side journals ConfigApplied *after* DrainStart
    // (the reload landed mid-drain), the new side journals it too.
    let tl = drained.reverse.stats.telemetry.timeline.snapshot();
    let drain_seq = tl
        .events
        .iter()
        .find(|e| e.phase == ReleasePhase::DrainStart)
        .expect("DrainStart journalled")
        .seq;
    let applied = tl
        .events
        .iter()
        .find(|e| e.phase == ReleasePhase::ConfigApplied)
        .expect("ConfigApplied journalled on the draining side");
    assert!(applied.detail.contains("epoch=2"), "{applied:?}");
    assert!(drain_seq < applied.seq, "{:?}", tl.events);
    let tl_new = new.reverse.stats.telemetry.timeline.snapshot();
    assert!(
        tl_new
            .events
            .iter()
            .any(|e| e.phase == ReleasePhase::ConfigApplied && e.detail.contains("epoch=2")),
        "{:?}",
        tl_new.events
    );
    drop(held);
    drop(first);
}

/// A reload landing *mid-takeover* — after the old generation started
/// serving the handover but before the successor exists. The successor
/// boots from stale settings and must catch up: apply the current
/// snapshot once (iff the epoch moved past boot), then subscribe. This is
/// the exact choreography `zdr` runs for a supervised successor after a
/// rollback swap.
#[tokio::test]
async fn reload_mid_takeover_catches_up_the_successor() {
    let apps = spawn_apps(2).await;
    let upstreams: Vec<SocketAddr> = apps.iter().map(|a| a.addr).collect();
    let boot = boot_config(&upstreams, 20_000);
    let cfg = instance_config(&boot, "mid-takeover");
    let store = Arc::new(ConfigStore::new(boot.clone()));

    let old = ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
        .await
        .unwrap();
    let addr = old.addr;
    let apply_old = old.config_applier();
    store.subscribe(Box::new(move |c, e| apply_old(c.as_ref(), e)));

    // Takeover in flight: the old generation is waiting on the handover
    // socket; the successor has not booted yet.
    let old_task = tokio::spawn(old.serve_one_takeover());
    tokio::time::sleep(Duration::from_millis(50)).await;

    // The reload lands in that window. The old generation applies it via
    // its subscription; there is no successor to notify yet.
    let mut next = boot.clone();
    next.drain.drain_ms = 60_000;
    let epoch = store.publish(next.clone()).unwrap();
    assert_eq!(epoch, BOOT_EPOCH + 1);

    let new = ProxyInstance::takeover_from(cfg).await.unwrap();
    let drained = old_task.await.unwrap().unwrap();
    assert_eq!(drained.drain_ms(), 60_000);

    // The successor booted from pre-reload flags and missed the publish.
    assert_eq!(new.drain_ms(), 20_000);

    // Catch-up: apply the current snapshot iff anything was published
    // since boot, then aim the subscription at the successor.
    let (epoch_now, current) = store.current_with_epoch();
    assert_eq!(epoch_now, epoch);
    if epoch_now > BOOT_EPOCH {
        new.apply_config(&current, epoch_now);
    }
    assert_eq!(new.drain_ms(), 60_000);
    let apply_new = new.config_applier();
    store.subscribe(Box::new(move |c, e| apply_new(c.as_ref(), e)));

    // Later publishes reach the successor through the subscription.
    let mut third = next.clone();
    third.drain.drain_ms = 75_000;
    assert_eq!(store.publish(third).unwrap(), epoch + 1);
    assert_eq!(new.drain_ms(), 75_000);

    // The VIP stayed clean throughout; nothing was force-closed.
    assert_eq!(send(addr, &Request::get("/after")).await.unwrap().status.code, 200);
    assert_eq!(drained.reverse.forced_closes(), 0);
    assert_eq!(new.reverse.forced_closes(), 0);

    // The successor's timeline records both applies in epoch order.
    let tl = new.reverse.stats.telemetry.timeline.snapshot();
    let applies: Vec<_> = tl
        .events
        .iter()
        .filter(|e| e.phase == ReleasePhase::ConfigApplied)
        .collect();
    assert_eq!(applies.len(), 2, "{:?}", tl.events);
    assert!(applies[0].detail.contains("epoch=2"), "{applies:?}");
    assert!(applies[1].detail.contains("epoch=3"), "{applies:?}");
}

/// Boot-only drift never reaches a subscriber: the publish is rejected
/// whole (all-or-nothing) with guidance to use a takeover, and the epoch
/// gauge does not move.
#[test]
fn boot_only_drift_is_rejected_with_takeover_guidance() {
    let store = ConfigStore::new(ZdrConfig::default());
    let mut drifted = ZdrConfig::default();
    drifted.admin.port = 9_100;
    drifted.shed.max_active = 7; // hot change riding along must not leak
    let errs = store.publish(drifted).unwrap_err();
    assert!(
        errs.iter()
            .any(|e| e.contains("admin.port") && e.contains("takeover")),
        "{errs:?}"
    );
    assert_eq!(store.epoch(), BOOT_EPOCH);
    assert_eq!(store.current().shed.max_active, ZdrConfig::default().shed.max_active);

    // The same hot change alone lands fine.
    let mut hot = ZdrConfig::default();
    hot.shed.max_active = 7;
    assert_eq!(store.publish(hot).unwrap(), BOOT_EPOCH + 1);
    assert_eq!(store.current().shed.max_active, 7);
}

mod round_trip {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every flag-reachable config survives flags → ZdrConfig → TOML
        /// → ZdrConfig losslessly over the *public* surface — what `zdr
        /// check` and the `--config`-vs-flags equivalence rest on.
        #[test]
        fn flags_to_toml_round_trip(
            ports in proptest::collection::vec(1u16..u16::MAX, 0..4),
            breaker in 1u32..1_000,
            reserve in 0u64..100,
            max_tokens in 100u64..1_000,
            deposit in 0u64..=1_000,
            shed_max in 0u64..10_000,
            admit_rate in 0u64..100_000,
            admit_window in 1u64..60_000,
            arm in 1u64..1_000,
            disarm in 1u32..100,
            drain in 1u64..100_000,
            admin_port in 0u16..u16::MAX,
        ) {
            let mut cfg = ZdrConfig::default();
            for p in &ports {
                cfg.set_flag("--upstream", &format!("127.0.0.1:{p}")).unwrap();
            }
            for (flag, value) in [
                ("--breaker-threshold", breaker.to_string()),
                ("--retry-reserve", reserve.to_string()),
                ("--retry-deposit-permille", deposit.to_string()),
                ("--shed-max-active", shed_max.to_string()),
                ("--admit-rate", admit_rate.to_string()),
                ("--admit-window-ms", admit_window.to_string()),
                ("--protection-arm-threshold", arm.to_string()),
                ("--protection-disarm-successes", disarm.to_string()),
                ("--drain-ms", drain.to_string()),
                ("--admin-port", admin_port.to_string()),
            ] {
                cfg.set_flag(flag, &value).unwrap();
            }
            // Duplicate --upstream ports (and any other cross-field
            // clash) are invalid configs; the round trip is only pinned
            // for configs a boot would accept.
            prop_assume!(cfg.validate().is_ok());

            // Flag surface: to_flag_pairs onto a default reconstructs it.
            let mut from_flags = ZdrConfig::default();
            for (flag, value) in cfg.to_flag_pairs() {
                from_flags.set_flag(&flag, &value).unwrap();
            }
            prop_assert_eq!(&from_flags, &cfg);

            // File surface: the canonical serializer parses back equal.
            let parsed = ZdrConfig::from_toml(&cfg.to_toml()).unwrap();
            prop_assert_eq!(parsed, cfg);
        }
    }
}

//! The complete Fig. 1 stack on real sockets: client → L4 (Maglev + LRU +
//! health checks) → L7 proxies (Socket Takeover) → app servers (PPR) —
//! with an L7 release happening under load and the L4 layer never noticing.

use std::net::SocketAddr;
use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

use zero_downtime_release::appserver::{self, AppServerConfig};
use zero_downtime_release::l4d::{self, L4Config};
use zero_downtime_release::l4lb::health::HealthState;
use zero_downtime_release::proto::http1::{serialize_request, Request, Response, ResponseParser};
use zero_downtime_release::proxy::reverse::ReverseProxyConfig;
use zero_downtime_release::proxy::takeover::{ProxyInstance, ProxyInstanceConfig};

async fn send(addr: SocketAddr, req: &Request) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr).await?;
    stream.write_all(&serialize_request(req)).await?;
    let mut parser = ResponseParser::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = stream.read(&mut buf).await?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof",
            ));
        }
        if let Some(resp) = parser.push(&buf[..n]).map_err(std::io::Error::other)? {
            return Ok(resp);
        }
    }
}

fn takeover_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "zdr-fullstack-{tag}-{}-{:x}.sock",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

struct Stack {
    _apps: Vec<appserver::AppServerHandle>,
    proxies: Vec<ProxyInstance>,
    proxy_cfgs: Vec<ProxyInstanceConfig>,
    l4: l4d::L4Handle,
}

async fn build_stack(tag: &str, n_proxies: usize) -> Stack {
    let mut apps = Vec::new();
    for name in ["web-1", "web-2"] {
        apps.push(
            appserver::spawn(
                "127.0.0.1:0".parse().unwrap(),
                AppServerConfig {
                    server_name: name.into(),
                    ..Default::default()
                },
            )
            .await
            .unwrap(),
        );
    }
    let upstreams: Vec<SocketAddr> = apps.iter().map(|a| a.addr).collect();

    let mut proxies = Vec::new();
    let mut proxy_cfgs = Vec::new();
    for i in 0..n_proxies {
        let cfg = ProxyInstanceConfig {
            reverse: ReverseProxyConfig {
                upstreams: upstreams.clone(),
                upstream_timeout: Duration::from_secs(10),
                ..Default::default()
            },
            takeover_path: takeover_path(&format!("{tag}-{i}")),
            drain_ms: 500,
        };
        proxies.push(
            ProxyInstance::bind_fresh("127.0.0.1:0".parse().unwrap(), cfg.clone())
                .await
                .unwrap(),
        );
        proxy_cfgs.push(cfg);
    }

    let l4 = l4d::spawn(
        "127.0.0.1:0".parse().unwrap(),
        L4Config {
            backends: proxies.iter().map(|p| p.addr).collect(),
            probe_interval: Duration::from_millis(50),
            probe_timeout: Duration::from_millis(300),
            ..Default::default()
        },
    )
    .await
    .unwrap();

    Stack {
        _apps: apps,
        proxies,
        proxy_cfgs,
        l4,
    }
}

#[tokio::test]
async fn requests_traverse_all_three_tiers() {
    let stack = build_stack("traverse", 2).await;
    for i in 0..20 {
        let resp = send(stack.l4.addr, &Request::get(format!("/item/{i}")))
            .await
            .unwrap();
        assert_eq!(resp.status.code, 200, "request {i}");
        let served = resp.headers.get("x-served-by").unwrap();
        assert!(served.starts_with("web-"), "{served}");
    }
    // Both proxies saw the user traffic (health probes also count into
    // requests_ok, so subtract the probe tally).
    let user_requests =
        |p: &ProxyInstance| p.reverse.stats.requests_ok.get() - p.reverse.stats.health_ok.get();
    let total = user_requests(&stack.proxies[0]) + user_requests(&stack.proxies[1]);
    assert_eq!(total, 20);
}

#[tokio::test]
async fn l7_release_invisible_to_l4_under_load() {
    let stack = build_stack("release", 2).await;
    let vip = stack.l4.addr;

    // Continuous load through the whole stack.
    let load = tokio::spawn(async move {
        let mut failures = 0u32;
        for i in 0..200 {
            match send(vip, &Request::get(format!("/r/{i}"))).await {
                Ok(resp) if resp.status.code == 200 => {}
                _ => failures += 1,
            }
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
        failures
    });
    tokio::time::sleep(Duration::from_millis(100)).await;

    // Release proxy 0 via Socket Takeover.
    let mut proxies = stack.proxies;
    let p0 = proxies.remove(0);
    let cfg = stack.proxy_cfgs[0].clone();
    let old_task = tokio::spawn(p0.serve_one_takeover());
    tokio::time::sleep(Duration::from_millis(50)).await;
    let p0_new = ProxyInstance::takeover_from(cfg).await.unwrap();
    old_task.await.unwrap().unwrap();
    assert_eq!(p0_new.generation, 1);

    let failures = load.await.unwrap();
    assert_eq!(failures, 0, "release must be invisible end to end");

    // Katran's view never flapped: both backends stayed Up throughout
    // (the prober ran every 50 ms across the restart).
    assert_eq!(stack.l4.backend_state(0), Some(HealthState::Up));
    assert_eq!(stack.l4.backend_state(1), Some(HealthState::Up));
    assert_eq!(stack.l4.healthy_backends().len(), 2);
}

#[tokio::test]
async fn l4_routes_around_a_dead_proxy() {
    let stack = build_stack("dead", 2).await;
    let vip = stack.l4.addr;

    // Kill proxy 0 outright (crash, not a release).
    stack.proxies[0].reverse.drain(); // closes its listener
                                      // Wait for fall_threshold consecutive probe failures.
    let mut down = false;
    for _ in 0..100 {
        if stack.l4.backend_state(0) == Some(HealthState::Down) {
            down = true;
            break;
        }
        tokio::time::sleep(Duration::from_millis(50)).await;
    }
    assert!(down, "prober must mark the dead proxy down");

    // Traffic keeps flowing via proxy 1.
    for i in 0..10 {
        let resp = send(vip, &Request::get(format!("/x/{i}"))).await.unwrap();
        assert_eq!(resp.status.code, 200, "request {i}");
    }
    assert_eq!(stack.l4.healthy_backends().len(), 1);
}

//! Socket Takeover for UDP: pass a live `SO_REUSEPORT` socket group to a
//! new "process" (task) and user-space route the draining generation's
//! packets back to the old one — the Fig. 10 mechanism on real sockets.
//!
//! ```sh
//! cargo run --example socket_takeover_udp
//! ```

use std::os::fd::OwnedFd;
use std::time::Duration;

use tokio::net::UdpSocket;

use zero_downtime_release::net::inventory::{
    bind_udp_reuseport_group, ListenerInventory, ReceivedInventory,
};
use zero_downtime_release::net::udp_router::UdpRouter;
use zero_downtime_release::proto::quic::{ConnectionId, Datagram};

#[tokio::main]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── Old process (generation 1) ─────────────────────────────────────
    // Owns the UDP VIP as a 2-socket SO_REUSEPORT group, plus a host-local
    // socket where forwarded packets arrive while it drains.
    let group = bind_udp_reuseport_group("127.0.0.1:0".parse()?, 2)?;
    let vip = group[0].local_addr()?;
    println!("UDP VIP {vip} with a 2-socket SO_REUSEPORT ring");

    let drain_socket = UdpSocket::bind("127.0.0.1:0").await?;
    let drain_addr = drain_socket.local_addr()?;
    let old_process = tokio::spawn(async move {
        // The draining old process counts packets for its flows.
        let mut received = 0u32;
        let mut buf = [0u8; 2048];
        loop {
            match tokio::time::timeout(Duration::from_secs(3), drain_socket.recv_from(&mut buf))
                .await
            {
                Ok(Ok((n, _))) => {
                    let (_client, inner) =
                        zero_downtime_release::net::udp_router::decapsulate(&buf[..n])
                            .expect("forwards are encapsulated with the client address");
                    let d = zero_downtime_release::proto::quic::decode(inner)
                        .expect("forwarded packets are valid datagrams");
                    assert_eq!(
                        d.cid.generation, 1,
                        "only gen-1 flows reach the old process"
                    );
                    received += 1;
                }
                _ => return received,
            }
        }
    });

    // ── Socket Takeover ────────────────────────────────────────────────
    // The inventory's manifest + FDs move to the new process. (In-process
    // here; `zdr-net::takeover` does the same over a UNIX socket between
    // real processes — see the quickstart example.)
    let mut inventory = ListenerInventory::new();
    inventory.add_udp_group(vip, group);
    let manifest = inventory.manifest();
    let fds: Vec<OwnedFd> = {
        // Simulate the SCM_RIGHTS trip by moving the owned FDs.
        let vips = inventory.vips();
        assert_eq!(vips.len(), 1);
        let mut received = Vec::new();
        for fd in inventory.borrowed_fds() {
            received.push(fd.try_clone_to_owned()?);
        }
        drop(inventory); // old process's copies close; ring survives via dups
        received
    };
    let mut received = ReceivedInventory::reassemble(&manifest, fds)?;
    let sockets = received.claim_udp_group(vip)?;
    received.finish()?; // §5.1: every FD claimed — no orphaned sockets
    println!(
        "took over {} UDP sockets; ring membership unchanged",
        sockets.len()
    );

    // ── New process (generation 2) ─────────────────────────────────────
    // One router per ring member; old-generation packets forward to the
    // draining process's host-local address.
    let (tx, mut deliveries) = tokio::sync::mpsc::channel(1024);
    let mut stats = Vec::new();
    for sock in sockets {
        sock.set_nonblocking(true)?;
        let router = UdpRouter::new(UdpSocket::from_std(sock)?, 2, Some(drain_addr));
        stats.push(router.stats());
        let tx = tx.clone();
        tokio::spawn(async move { router.run(tx).await });
    }

    // ── Traffic: a mix of old-generation and new-generation flows ──────
    let client = UdpSocket::bind("127.0.0.1:0").await?;
    let mut sent_old = 0u32;
    let mut sent_new = 0u32;
    for i in 0..100u64 {
        let generation = if i % 2 == 0 { 1 } else { 2 };
        let d = Datagram::one_rtt(ConnectionId::new(generation, i), i, &b"payload"[..]);
        client
            .send_to(&zero_downtime_release::proto::quic::encode(&d)?, vip)
            .await?;
        if generation == 1 {
            sent_old += 1;
        } else {
            sent_new += 1;
        }
    }

    // New-generation packets reach the new process's application.
    let mut delivered_new = 0u32;
    while delivered_new < sent_new {
        let d = tokio::time::timeout(Duration::from_secs(5), deliveries.recv())
            .await?
            .expect("router alive");
        assert_eq!(d.datagram.cid.generation, 2);
        delivered_new += 1;
    }

    let old_received = old_process.await?;
    let (local, forwarded, dropped): (u64, u64, u64) = stats
        .iter()
        .map(|s| s.snapshot())
        .fold((0, 0, 0), |a, s| (a.0 + s.0, a.1 + s.1, a.2 + s.2));

    println!("sent: {sent_old} old-gen + {sent_new} new-gen packets");
    println!(
        "router: {local} handled locally, {forwarded} forwarded to old process, {dropped} dropped"
    );
    println!("old process received {old_received} of its packets during drain");
    assert_eq!(delivered_new, sent_new);
    assert_eq!(forwarded, u64::from(sent_old));
    assert_eq!(old_received, sent_old);
    assert_eq!(dropped, 0);
    println!("zero misrouted packets ✔");
    Ok(())
}

//! Downstream Connection Reuse over the multiplexed HTTP/2-like trunk —
//! the paper's actual architecture, where **GOAWAY on the trunk is the
//! reconnect solicitation** (§4.2: "DCR is possible due to the design
//! choice of tunneling MQTT over HTTP/2, that has in-built graceful
//! shutdown").
//!
//! ```sh
//! cargo run --example mqtt_dcr_trunk
//! ```

use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

use zero_downtime_release::broker::server as broker;
use zero_downtime_release::proto::dcr::UserId;
use zero_downtime_release::proto::mqtt::{self, ConnectReturnCode, Packet, QoS, StreamDecoder};
use zero_downtime_release::proxy::mqtt_relay_trunk::{spawn_edge_trunk, spawn_origin_trunk};

struct Client {
    stream: TcpStream,
    decoder: StreamDecoder,
}

impl Client {
    async fn connect(edge: std::net::SocketAddr, user: UserId) -> std::io::Result<Client> {
        let mut stream = TcpStream::connect(edge).await?;
        let pkt = Packet::Connect {
            client_id: user.client_id(),
            keep_alive: 60,
            clean_session: true,
        };
        stream
            .write_all(&mqtt::encode(&pkt).expect("encodes"))
            .await?;
        let mut c = Client {
            stream,
            decoder: StreamDecoder::new(),
        };
        match c.recv().await? {
            Packet::ConnAck {
                code: ConnectReturnCode::Accepted,
                ..
            } => Ok(c),
            other => panic!("expected CONNACK, got {other:?}"),
        }
    }

    async fn send(&mut self, pkt: &Packet) -> std::io::Result<()> {
        self.stream
            .write_all(&mqtt::encode(pkt).expect("encodes"))
            .await
    }

    async fn recv(&mut self) -> std::io::Result<Packet> {
        let mut buf = [0u8; 8192];
        loop {
            if let Some(p) = self.decoder.next_packet().expect("valid mqtt") {
                return Ok(p);
            }
            let n = self.stream.read(&mut buf).await?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "closed",
                ));
            }
            self.decoder.extend(&buf[..n]);
        }
    }
}

#[tokio::main]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    let broker = broker::spawn("127.0.0.1:0".parse()?).await?;
    let origin1 = spawn_origin_trunk("127.0.0.1:0".parse()?, vec![broker.addr]).await?;
    let origin2 = spawn_origin_trunk("127.0.0.1:0".parse()?, vec![broker.addr]).await?;
    let edge = spawn_edge_trunk("127.0.0.1:0".parse()?, vec![origin1.addr, origin2.addr]).await?;
    println!(
        "broker {}, origin trunks {} / {}, edge {}",
        broker.addr, origin1.addr, origin2.addr, edge.addr
    );

    // Several subscribers, all multiplexed on origin 1's single trunk.
    let mut subscribers = Vec::new();
    for u in 0..5u64 {
        let mut c = Client::connect(edge.addr, UserId(u)).await?;
        c.send(&Packet::Subscribe {
            packet_id: 1,
            filters: vec![(format!("feed/{u}"), QoS::AtMostOnce)],
        })
        .await?;
        c.recv().await?; // SUBACK
        subscribers.push(c);
    }
    println!(
        "5 tunnels multiplexed on one trunk (origin 1 streams: {})",
        origin1.active_streams()
    );

    // Pre-restart delivery.
    broker.core.publish("feed/0", b"before", QoS::AtMostOnce);
    if let Packet::Publish { payload, .. } = subscribers[0].recv().await? {
        println!(
            "subscriber 0 received: {:?}",
            std::str::from_utf8(&payload)?
        );
    }

    // Origin 1 restarts: GOAWAY on the trunk IS the solicitation.
    println!("origin 1 draining: sending GOAWAY on its trunk…");
    origin1.drain();
    tokio::time::sleep(Duration::from_millis(400)).await;
    println!(
        "edge re-homed {} tunnels via DCR; origin 2 now carries {} streams",
        edge.dcr_stats.rehomed_ok.get(),
        origin2.active_streams()
    );

    // Post-restart delivery on the SAME client connections.
    for (u, c) in subscribers.iter_mut().enumerate() {
        broker
            .core
            .publish(&format!("feed/{u}"), b"after", QoS::AtMostOnce);
        match c.recv().await? {
            Packet::Publish { payload, .. } => assert_eq!(&payload[..], b"after"),
            other => panic!("subscriber {u}: {other:?}"),
        }
    }
    println!("all 5 subscribers still receiving on their original connections ✔");
    assert_eq!(broker.core.stats().dcr_accepted, 5);
    println!("GOAWAY-driven downstream connection reuse confirmed ✔");
    Ok(())
}

//! Fleet-scale release comparison on the deterministic simulator: rolls a
//! 100-machine edge cluster under HardRestart and under Zero Downtime
//! Release, and prints the capacity/disruption gap.
//!
//! ```sh
//! cargo run --release --example cluster_release
//! ```

use zero_downtime_release::core::mechanism::RestartStrategy;
use zero_downtime_release::core::metrics::ProxyErrorKind;
use zero_downtime_release::core::tier::Tier;
use zero_downtime_release::sim::cluster::{ClusterConfig, ClusterSim};

fn roll(strategy: RestartStrategy, label: &str) {
    let mut cfg = ClusterConfig::edge(100, strategy, 42);
    cfg.drain_ms = 60_000; // 1-minute drains keep the example snappy
    cfg.workload.mqtt_tunnels_per_machine = 1_000;
    let mut sim = ClusterSim::new(cfg);
    sim.run_ticks(10);
    let completion = sim.run_rolling_release(0.20);

    let capacity_floor = sim.series("capacity").unwrap().min().unwrap();
    let health_floor = sim.series("healthy_fraction").unwrap().min().unwrap();
    let c = sim.counters();
    println!("── {label} ──");
    println!("  completion: {:.1} min", completion as f64 / 60_000.0);
    println!("  capacity floor: {:.1}%", capacity_floor * 100.0);
    println!("  L4 health floor: {:.1}%", health_floor * 100.0);
    println!("  user-visible disruptions: {}", c.total_disruptions());
    println!(
        "    conn resets {}  write timeouts {}  timeouts {}  stream aborts {}",
        c.proxy_error(ProxyErrorKind::ConnReset),
        c.proxy_error(ProxyErrorKind::WriteTimeout),
        c.proxy_error(ProxyErrorKind::Timeout),
        c.proxy_error(ProxyErrorKind::StreamAbort),
    );
    println!(
        "    MQTT: {} re-homed by DCR, {} forced reconnects",
        c.dcr_handovers, c.mqtt_forced_reconnects
    );
}

fn main() {
    println!("rolling release of a 100-machine edge cluster, 20% batches\n");
    roll(RestartStrategy::HardRestart, "traditional HardRestart");
    roll(
        RestartStrategy::zero_downtime_for(Tier::EdgeProxygen),
        "Zero Downtime Release",
    );
    println!("\n(see EXPERIMENTS.md for the full figure reproductions)");
}
